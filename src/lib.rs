//! # sconna — Rust reproduction of the SCONNA optical accelerator
//!
//! SCONNA (Sri Vatsavai et al., IPDPS 2023) is a **S**tochastic
//! **C**omputing based **O**ptical **N**eural **N**etwork **A**ccelerator:
//! it replaces the analog vector-dot-product cores of photonic CNN
//! accelerators with microring-based *optical stochastic multipliers* and
//! *photo-charge accumulators*, escaping the precision-vs-size trade-off
//! that caps analog VDP cores at 44 points and reaching 176-point VDP
//! elements at 8-bit precision.
//!
//! This crate re-exports the whole reproduction stack:
//!
//! * [`sc`] — stochastic computing: bit-streams, SNGs, the OSM multiply,
//!   PCA-style accumulation;
//! * [`photonics`] — device/link models: MRRs, the optical AND gate,
//!   photodetector noise, the power-budget scalability solvers, the PCA
//!   circuit;
//! * [`tensor`] — CNN substrate: int8 quantized layers over a pluggable
//!   VDP engine, the four evaluated architectures, a trainable small CNN;
//! * [`sim`] — event-driven simulator substrate;
//! * [`accel`] — the SCONNA system model and the MAM/AMM analog baselines,
//!   performance + accuracy evaluation.
//!
//! ```
//! use sconna::accel::{simulate_inference, AcceleratorConfig};
//! use sconna::tensor::models::resnet50;
//!
//! let sconna = simulate_inference(&AcceleratorConfig::sconna(), &resnet50());
//! let mam = simulate_inference(&AcceleratorConfig::mam(), &resnet50());
//! assert!(sconna.fps > 10.0 * mam.fps);
//! ```

pub use sconna_accel as accel;
pub use sconna_photonics as photonics;
pub use sconna_sc as sc;
pub use sconna_sim as sim;
pub use sconna_tensor as tensor;
