//! Weight-stationary work mapping: assigns (kernel, chunk, slice) DKV
//! tasks to physical VDPEs and reports load balance.
//!
//! The analytic performance model (`perf`) divides pass counts by the
//! VDPE count; this module does the actual assignment, which matters at
//! the edges: a layer with fewer kernels than VDPEs leaves elements
//! idle, and ceiling effects at chunk boundaries skew per-VDPE loads.
//! The mapper is also what a software stack for the real accelerator
//! would ship.

use crate::organization::AcceleratorConfig;
use sconna_tensor::models::VdpWorkload;
use serde::{Deserialize, Serialize};

/// One DKV assignment: this VDPE holds chunk `chunk` of kernel `kernel`
/// (slice `slice` of the bit-sliced pair) and performs `passes` VDP
/// passes (one per output position of the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Kernel index within the layer.
    pub kernel: u32,
    /// Chunk index within the kernel vector.
    pub chunk: u32,
    /// Bit slice (0 for SCONNA; 0/1 for the analog baselines).
    pub slice: u8,
    /// VDP passes this assignment executes.
    pub passes: u32,
}

/// The mapping of one layer onto the accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerMapping {
    /// Per-VDPE assignment queues, indexed by physical VDPE.
    pub queues: Vec<Vec<Assignment>>,
    /// Total passes across all VDPEs.
    pub total_passes: u64,
}

impl LayerMapping {
    /// Passes on the most-loaded VDPE — the layer's critical path in
    /// rounds.
    pub fn max_passes(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.iter().map(|a| a.passes as u64).sum::<u64>())
            .max()
            .unwrap_or(0)
    }

    /// Fraction of VDPEs with at least one assignment.
    pub fn occupancy(&self) -> f64 {
        if self.queues.is_empty() {
            return 0.0;
        }
        let busy = self.queues.iter().filter(|q| !q.is_empty()).count();
        busy as f64 / self.queues.len() as f64
    }

    /// Load balance: mean per-VDPE passes over the maximum (1.0 =
    /// perfectly balanced).
    pub fn balance(&self) -> f64 {
        let max = self.max_passes();
        if max == 0 {
            return 1.0;
        }
        let mean = self.total_passes as f64 / self.queues.len() as f64;
        mean / max as f64
    }
}

/// Maps a layer onto the accelerator round-robin over (kernel, chunk,
/// slice) tasks — the weight-stationary schedule: each task is pinned to
/// one VDPE and re-used for all of the kernel's output positions.
pub fn map_layer(cfg: &AcceleratorConfig, w: &VdpWorkload) -> LayerMapping {
    let chunks = cfg.chunks(w.vector_len);
    let slices = cfg.bit_slices;
    let vdpes = cfg.total_vdpes;
    let mut queues: Vec<Vec<Assignment>> = vec![Vec::new(); vdpes];
    let mut next = 0usize;
    let mut total_passes = 0u64;
    for kernel in 0..w.kernels {
        for chunk in 0..chunks {
            for slice in 0..slices {
                queues[next].push(Assignment {
                    kernel: kernel as u32,
                    chunk: chunk as u32,
                    slice: slice as u8,
                    passes: w.ops_per_kernel as u32,
                });
                total_passes += w.ops_per_kernel as u64;
                next = (next + 1) % vdpes;
            }
        }
    }
    LayerMapping {
        queues,
        total_passes,
    }
}

/// Mapping statistics of a whole model: per-layer occupancy and balance,
/// for spotting layers that underfill the accelerator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingReport {
    /// Layer name.
    pub layer: String,
    /// Fraction of VDPEs used.
    pub occupancy: f64,
    /// Load balance (mean/max).
    pub balance: f64,
    /// Critical-path passes.
    pub max_passes: u64,
}

/// Maps every layer of a model and reports.
pub fn map_model(
    cfg: &AcceleratorConfig,
    model: &sconna_tensor::models::CnnModel,
) -> Vec<MappingReport> {
    model
        .workloads
        .iter()
        .map(|w| {
            let m = map_layer(cfg, w);
            MappingReport {
                layer: w.layer.clone(),
                occupancy: m.occupancy(),
                balance: m.balance(),
                max_passes: m.max_passes(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sconna_tensor::models::resnet50;

    fn workload(s: usize, l: usize, p: usize) -> VdpWorkload {
        VdpWorkload {
            layer: "t".into(),
            vector_len: s,
            kernels: l,
            ops_per_kernel: p,
        }
    }

    #[test]
    fn big_layer_fills_and_balances() {
        let cfg = AcceleratorConfig::sconna();
        // 512 kernels x 27 chunks = 13824 tasks over 1024 VDPEs.
        let m = map_layer(&cfg, &workload(4608, 512, 49));
        assert_eq!(m.occupancy(), 1.0);
        assert!(m.balance() > 0.95, "balance {}", m.balance());
        assert_eq!(m.total_passes, 512 * 27 * 49);
        // Critical path: ceil(13824/1024) = 14 tasks x 49 passes.
        assert_eq!(m.max_passes(), 14 * 49);
    }

    #[test]
    fn small_layer_underfills() {
        let cfg = AcceleratorConfig::sconna();
        // 32 kernels x 1 chunk: only 32 of 1024 VDPEs busy.
        let m = map_layer(&cfg, &workload(9, 32, 196));
        assert!((m.occupancy() - 32.0 / 1024.0).abs() < 1e-9);
        assert_eq!(m.max_passes(), 196);
    }

    #[test]
    fn bit_slicing_doubles_tasks() {
        let mam = AcceleratorConfig::mam();
        let m = map_layer(&mam, &workload(22, 100, 10));
        let tasks: usize = m.queues.iter().map(Vec::len).sum();
        // 100 kernels × 1 chunk × 2 bit-slices.
        assert_eq!(tasks, 100 * 2);
    }

    #[test]
    fn mapper_critical_path_brackets_perf_model() {
        // The analytic model splits work at pass granularity; the mapper
        // pins whole (kernel, chunk) tasks to VDPEs, so its critical path
        // is at least the analytic rounds and at most one task longer.
        let cfg = AcceleratorConfig::sconna();
        let w = workload(2304, 256, 196);
        let m = map_layer(&cfg, &w);
        let analytic = crate::perf::analyze_layer(&cfg, &w);
        let rounds_analytic = analytic.compute.as_ps() / cfg.symbol_time.as_ps();
        assert!(m.max_passes() >= rounds_analytic);
        assert!(m.max_passes() <= rounds_analytic + w.ops_per_kernel as u64);
    }

    #[test]
    fn model_report_flags_depthwise_underfill() {
        let cfg = AcceleratorConfig::sconna();
        let reports = map_model(&cfg, &resnet50());
        assert_eq!(reports.len(), resnet50().workloads.len());
        // Early ResNet50 layers (64 kernels x few chunks) underfill the
        // 1024-VDPE array; late layers fill it.
        let first = &reports[0];
        let last_conv = reports
            .iter()
            .rev()
            .find(|r| r.layer.contains("conv"))
            .unwrap();
        assert!(first.occupancy < last_conv.occupancy + 1e-9);
    }
}
