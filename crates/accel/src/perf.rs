//! Weight-stationary performance simulation (Fig. 9 of the paper).
//!
//! Each CNN layer becomes a transaction: its VDP passes, psum-reduction
//! adds, DKV reprogramming rounds and memory traffic are derived from the
//! layer's geometry and the accelerator organization, converted into four
//! throughput terms, and the layer occupies the accelerator for the
//! maximum of those terms plus its pipeline-fill latency. Layers execute
//! in sequence (batch size 1, layer dependencies), driven through the
//! discrete-event queue; energy integrates static power over the makespan
//! plus per-operation dynamic energy from Table IV.

use crate::organization::{AcceleratorConfig, AcceleratorKind, SERIALIZER_ACTIVITY};
use crate::peripherals as p;
use sconna_sim::energy::{ComponentSpec, EnergyLedger};
use sconna_sim::event::EventQueue;
use sconna_sim::time::SimTime;
use sconna_tensor::models::{CnnModel, VdpWorkload};
use serde::{Deserialize, Serialize};

/// Per-layer performance breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Layer name.
    pub layer: String,
    /// VDPE passes (including bit slices).
    pub passes: u64,
    /// Electronic psum-reduction adds.
    pub psum_adds: u64,
    /// DKV (re)programming events.
    pub reprogram_events: u64,
    /// Compute-throughput term.
    pub compute: SimTime,
    /// Psum-reduction-throughput term.
    pub psum: SimTime,
    /// DKV-reprogramming term.
    pub reprogram: SimTime,
    /// Memory-traffic term.
    pub memory: SimTime,
    /// Pipeline fill latency (paid once per layer).
    pub pipeline_fill: SimTime,
    /// Layer occupancy: max of the throughput terms plus the fill.
    pub total: SimTime,
}

/// Whole-inference result for one (accelerator, model) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferencePerf {
    /// Accelerator display name.
    pub accelerator: &'static str,
    /// Model name.
    pub model: String,
    /// End-to-end inference time (batch 1).
    pub makespan: SimTime,
    /// Frames per second.
    pub fps: f64,
    /// Energy per inference, joules.
    pub energy_j: f64,
    /// Average power, watts.
    pub avg_power_w: f64,
    /// Die area, mm².
    pub area_mm2: f64,
    /// Energy efficiency, FPS/W.
    pub fps_per_w: f64,
    /// Area efficiency, FPS/W/mm².
    pub fps_per_w_per_mm2: f64,
    /// Per-layer breakdown.
    pub layers: Vec<LayerPerf>,
    /// Per-component energy breakdown over the run, joules, sorted by
    /// component name.
    pub energy_breakdown_j: Vec<(String, f64)>,
}

/// Analyzes one layer on one accelerator (batch size 1).
pub fn analyze_layer(cfg: &AcceleratorConfig, w: &VdpWorkload) -> LayerPerf {
    analyze_layer_batched(cfg, w, 1)
}

/// Analyzes one layer processing `batch` images back-to-back. Weights
/// stay stationary across the batch, so DKV (re)programming is paid once
/// per layer regardless of batch size — the amortization that lets the
/// analog baselines claw back their reprogramming overhead (but not
/// their psum traffic, which scales with the batch).
pub fn analyze_layer_batched(cfg: &AcceleratorConfig, w: &VdpWorkload, batch: usize) -> LayerPerf {
    assert!(batch > 0, "batch must be positive");
    let batch = batch as u64;
    let chunks = cfg.chunks(w.vector_len) as u64;
    let outputs = (w.kernels * w.ops_per_kernel) as u64 * batch;
    let slices = cfg.bit_slices as u64;
    let passes = outputs * chunks * slices;

    // Compute: every pass occupies one VDPE for one symbol.
    let compute = scale_time(cfg.symbol_time, passes, cfg.total_vdpes as u64);

    // Psums: SCONNA accumulates an output's chunks locally on its VDPE
    // (weights stream from the LUT); the analog baselines push every
    // chunk psum plus the slice-combine through the per-VDPC reduction
    // lanes.
    let psum_adds = if cfg.local_psum_accumulate {
        0
    } else {
        outputs * chunks * slices
    };
    let psum = scale_time(p::REDUCTION_NETWORK.latency, psum_adds, cfg.tiles() as u64);

    // DKV programming: one event per (kernel, chunk, slice) assignment;
    // rounds of `total_vdpes` assignments program in parallel.
    let reprogram_events = (w.kernels as u64) * chunks * slices;
    let rounds = reprogram_events.div_ceil(cfg.total_vdpes as u64);
    let reprogram = SimTime::from_ps(cfg.dkv_reprogram.as_ps() * rounds);

    // Memory: unique DIV bytes (P·S per image) plus the layer's weights
    // (L·S, once) move into the per-VDPC operand scratchpads, each fed
    // at the eDRAM bandwidth (operand storage is distributed with the
    // VDPCs; SCONNA's LUT buffers live beside the OSMs).
    let bytes =
        (batch as usize * w.ops_per_kernel * w.vector_len + w.kernels * w.vector_len) as f64;
    let memory = SimTime::from_secs_f64(bytes / (cfg.vdpc_count() as f64 * p::EDRAM_BANDWIDTH_BPS));

    let pipeline_fill = pipeline_fill(cfg, chunks);
    let total = compute.max(psum).max(reprogram).max(memory) + pipeline_fill;

    LayerPerf {
        layer: w.layer.clone(),
        passes,
        psum_adds,
        reprogram_events,
        compute,
        psum,
        reprogram,
        memory,
        pipeline_fill,
        total,
    }
}

/// Cold-start weight-(re)load latency for one accelerator instance: the
/// time to bring a model's weights on-accelerator from scratch, layer by
/// layer — each layer pays the larger of its DKV reprogramming rounds and
/// its weight-memory traffic (`L·S` bytes through the per-VDPC eDRAM
/// ports), the same two terms [`analyze_layer_batched`] charges, minus
/// everything input-dependent. This is what a restarted serving instance
/// pays before taking work again
/// ([`FaultEvent::Restart`](crate::serve::FaultEvent::Restart)).
///
/// SCONNA's `dkv_reprogram` is zero (weights stream from pre-filled OSM
/// LUTs — the reprogramming cost the paper argues it avoids), so its
/// reload is pure memory traffic; the analog baselines pay their cell
/// programming rounds here in full.
pub fn model_reload_time(cfg: &AcceleratorConfig, model: &CnnModel) -> SimTime {
    model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
        let chunks = cfg.chunks(w.vector_len) as u64;
        let slices = cfg.bit_slices as u64;
        let reprogram_events = (w.kernels as u64) * chunks * slices;
        let rounds = reprogram_events.div_ceil(cfg.total_vdpes as u64);
        let reprogram = SimTime::from_ps(cfg.dkv_reprogram.as_ps() * rounds);
        let bytes = (w.kernels * w.vector_len) as f64;
        let memory =
            SimTime::from_secs_f64(bytes / (cfg.vdpc_count() as f64 * p::EDRAM_BANDWIDTH_BPS));
        acc + reprogram.max(memory)
    })
}

/// Warm-restart weight-reload latency: the instance process died but its
/// operand scratchpads survived (supervised restart on the same physical
/// accelerator), so the eDRAM weight traffic of [`model_reload_time`] is
/// skipped and only the DKV/cell reprogramming rounds must be replayed —
/// photonic device state does not survive a power cycle, cached bytes do.
///
/// For SCONNA `dkv_reprogram` is zero, so a warm restart costs exactly
/// [`SimTime::ZERO`]: the paper's avoided-reprogramming claim turned into
/// an availability number. Analog baselines pay their full programming
/// rounds even warm. Always `<=` the cold [`model_reload_time`].
pub fn model_warm_reload_time(cfg: &AcceleratorConfig, model: &CnnModel) -> SimTime {
    model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
        let chunks = cfg.chunks(w.vector_len) as u64;
        let slices = cfg.bit_slices as u64;
        let reprogram_events = (w.kernels as u64) * chunks * slices;
        let rounds = reprogram_events.div_ceil(cfg.total_vdpes as u64);
        acc + SimTime::from_ps(cfg.dkv_reprogram.as_ps() * rounds)
    })
}

/// Co-resident model-swap latency: what an instance pays to switch its
/// active model to `model` when both models' weight bytes are already
/// staged in its operand scratchpads (multi-tenant co-location keeps
/// every resident model's bytes warm, so unlike [`model_reload_time`]
/// the eDRAM weight traffic is never re-paid). What remains is putting
/// the incoming model's weights back *on the devices*:
///
/// * Analog MAM/AMM must replay the incoming model's full DKV
///   cell-programming rounds — a swap costs what a warm restart costs
///   ([`model_warm_reload_time`]), reprogram-dominated.
/// * SCONNA holds each resident model in its own pre-filled OSM LUT
///   banks; a swap repoints the bank select, one LUT access per layer —
///   near-zero, and independent of the model's size.
///
/// Unit-pinned against [`model_reload_time`]: a swap never exceeds a
/// cold reload, and the SCONNA/analog asymmetry here is the paper's
/// avoided-reprogramming claim measured as multi-tenancy overhead (the
/// serving scheduler charges this per cross-model dispatch).
pub fn model_swap_time(cfg: &AcceleratorConfig, model: &CnnModel) -> SimTime {
    let bank_select = match cfg.kind {
        AcceleratorKind::Sconna => p::OSM_LUT.latency,
        _ => SimTime::ZERO,
    };
    model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
        let chunks = cfg.chunks(w.vector_len) as u64;
        let slices = cfg.bit_slices as u64;
        let reprogram_events = (w.kernels as u64) * chunks * slices;
        let rounds = reprogram_events.div_ceil(cfg.total_vdpes as u64);
        acc + SimTime::from_ps(cfg.dkv_reprogram.as_ps() * rounds) + bank_select
    })
}

fn scale_time(unit: SimTime, ops: u64, parallelism: u64) -> SimTime {
    assert!(parallelism > 0, "parallelism must be positive");
    let rounds = ops.div_ceil(parallelism);
    SimTime::from_ps(unit.as_ps() * rounds)
}

fn pipeline_fill(cfg: &AcceleratorConfig, chunks: u64) -> SimTime {
    let tree_depth = (chunks.max(1) as f64).log2().ceil() as u64;
    let common = p::BUFFER_LATENCY
        + cfg.symbol_time
        + SimTime::from_ps(p::REDUCTION_NETWORK.latency.as_ps() * tree_depth)
        + p::ACTIVATION_UNIT.latency
        + p::POOLING_UNIT.latency
        + p::BUS.latency
        + p::ROUTER.latency;
    match cfg.kind {
        AcceleratorKind::Sconna => {
            common + p::OSM_LUT.latency + p::SERIALIZER.latency + p::SCONNA_ADC.latency
        }
        _ => common + p::ANALOG_DAC.latency + p::ANALOG_ADC.latency,
    }
}

/// Registers every component class of one accelerator instance on a
/// ledger (static power, area, per-op energy specs) without recording any
/// work. Call once per physical instance — instances accumulate, so a
/// fleet of R accelerators registers R times onto one ledger.
pub fn register_components(ledger: &mut EnergyLedger, cfg: &AcceleratorConfig) {
    let n = cfg.vdpe_size_n as u64;

    // Lasers: always-on optical supply.
    ledger.register(
        "laser",
        ComponentSpec::static_only(p::LASER_WALL_PLUG_W, 0.0),
        cfg.laser_count() as u64,
    );

    // Tile-level peripherals: static power per tile, dynamic per use.
    let tile = cfg.tiles() as u64;
    ledger.register(
        "edram",
        ComponentSpec::static_only(p::EDRAM.power_w, p::EDRAM.area_mm2),
        tile,
    );
    ledger.register(
        "io",
        ComponentSpec::static_only(p::IO_INTERFACE.power_w, p::IO_INTERFACE.area_mm2),
        tile,
    );
    ledger.register(
        "router",
        ComponentSpec::static_only(p::ROUTER.power_w, p::ROUTER.area_mm2),
        tile,
    );
    ledger.register(
        "bus",
        ComponentSpec::static_only(p::BUS.power_w, p::BUS.area_mm2),
        tile,
    );
    ledger.register(
        "activation",
        dynamic_spec(p::ACTIVATION_UNIT.power_w, p::ACTIVATION_UNIT.latency),
        tile,
    );
    ledger.register(
        "pooling",
        dynamic_spec(p::POOLING_UNIT.power_w, p::POOLING_UNIT.latency),
        tile,
    );
    ledger.register(
        "reduction",
        dynamic_spec(p::REDUCTION_NETWORK.power_w, p::REDUCTION_NETWORK.latency),
        cfg.tiles() as u64,
    );

    match cfg.kind {
        AcceleratorKind::Sconna => {
            // Serializer energy per OSM per pass, derated by switching
            // activity.
            let ser = ComponentSpec {
                static_power_w: 0.0,
                energy_per_op_j: p::SERIALIZER.power_w
                    * cfg.symbol_time.as_secs_f64()
                    * SERIALIZER_ACTIVITY,
                area_mm2: p::SERIALIZER.area_mm2,
                latency: p::SERIALIZER.latency,
            };
            ledger.register("serializer", ser, (cfg.total_vdpes as u64) * n);
            ledger.register(
                "osm-lut",
                dynamic_spec(p::OSM_LUT.power_w, p::OSM_LUT.latency),
                (cfg.total_vdpes as u64) * n,
            );
            ledger.register(
                "pca-adc",
                dynamic_spec(p::SCONNA_ADC.power_w, p::SCONNA_ADC.latency),
                cfg.total_vdpes as u64,
            );
            ledger.register(
                "pca",
                ComponentSpec::static_only(p::PCA.power_w, p::PCA.area_mm2),
                2 * cfg.total_vdpes as u64,
            );
        }
        AcceleratorKind::Mam | AcceleratorKind::Amm => {
            ledger.register(
                "dac",
                dynamic_spec(p::ANALOG_DAC.power_w, p::ANALOG_DAC.latency),
                (cfg.total_vdpes as u64) * n,
            );
            ledger.register(
                "adc",
                dynamic_spec(p::ANALOG_ADC.power_w, p::ANALOG_ADC.latency),
                cfg.total_vdpes as u64,
            );
        }
    }
}

/// Records the dynamic operations of one batched inference (analyzed as
/// `layers`) on a ledger whose components were registered with
/// [`register_components`] for the same accelerator kind.
pub fn record_inference_ops(
    ledger: &mut EnergyLedger,
    cfg: &AcceleratorConfig,
    layers: &[LayerPerf],
    model: &CnnModel,
    batch: usize,
) {
    let n = cfg.vdpe_size_n as u64;
    let total_passes: u64 = layers.iter().map(|l| l.passes).sum();
    let total_psum_adds: u64 = layers.iter().map(|l| l.psum_adds).sum();
    let total_reprograms: u64 = layers.iter().map(|l| l.reprogram_events).sum();
    let total_outputs: u64 = model
        .workloads
        .iter()
        .map(|w| (w.kernels * w.ops_per_kernel) as u64)
        .sum::<u64>()
        * batch as u64;

    ledger.record_ops("activation", total_outputs);
    ledger.record_ops("pooling", total_outputs / 4);
    ledger.record_ops("reduction", total_psum_adds);

    match cfg.kind {
        AcceleratorKind::Sconna => {
            ledger.record_ops("serializer", total_passes * n);
            ledger.record_ops("osm-lut", total_passes * n);
            ledger.record_ops("pca-adc", total_passes);
        }
        AcceleratorKind::Mam | AcceleratorKind::Amm => {
            // DIV DACs: MAM shares one DIV block per VDPC; AMM drives one
            // per VDPE.
            let div_dac_ops = if cfg.kind == AcceleratorKind::Mam {
                total_passes * n / cfg.vdpes_per_vdpc() as u64
            } else {
                total_passes * n
            };
            ledger.record_ops("dac", div_dac_ops + total_reprograms * n);
            ledger.record_ops("adc", total_passes);
        }
    }
}

/// Builds the energy ledger for an accelerator and records the dynamic
/// operations of an inference.
fn build_ledger(
    cfg: &AcceleratorConfig,
    layers: &[LayerPerf],
    model: &CnnModel,
    batch: usize,
) -> EnergyLedger {
    let mut ledger = EnergyLedger::new();
    register_components(&mut ledger, cfg);
    record_inference_ops(&mut ledger, cfg, layers, model, batch);
    ledger
}

fn dynamic_spec(power_w: f64, latency: SimTime) -> ComponentSpec {
    ComponentSpec {
        static_power_w: 0.0,
        energy_per_op_j: power_w * latency.as_secs_f64(),
        area_mm2: 0.0,
        latency,
    }
}

/// Runs one inference of `model` on `cfg` through the event queue and
/// returns the full performance result.
pub fn simulate_inference(cfg: &AcceleratorConfig, model: &CnnModel) -> InferencePerf {
    simulate_inference_batched(cfg, model, 1)
}

/// Runs a batch of `batch` images layer-by-layer (all images of a layer
/// before moving on, amortizing weight programming) and reports
/// per-batch energy with FPS = batch / makespan.
pub fn simulate_inference_batched(
    cfg: &AcceleratorConfig,
    model: &CnnModel,
    batch: usize,
) -> InferencePerf {
    let layers: Vec<LayerPerf> = model
        .workloads
        .iter()
        .map(|w| analyze_layer_batched(cfg, w, batch))
        .collect();

    // Event-driven execution: each layer's completion schedules the next
    // layer's start (sequential dependency at batch 1).
    #[derive(Clone, Copy)]
    enum Ev {
        LayerDone(usize),
    }
    let mut q = EventQueue::new();
    if !layers.is_empty() {
        q.schedule_at(layers[0].total, Ev::LayerDone(0));
    }
    let durations: Vec<SimTime> = layers.iter().map(|l| l.total).collect();
    let makespan = q.run(|q, _t, ev| match ev {
        Ev::LayerDone(i) => {
            if i + 1 < durations.len() {
                q.schedule_in(durations[i + 1], Ev::LayerDone(i + 1));
            }
        }
    });

    let ledger = build_ledger(cfg, &layers, model, batch);
    let energy_breakdown_j = ledger.breakdown_j(makespan);
    let energy_j = ledger.total_energy_j(makespan);
    let avg_power_w = ledger.average_power_w(makespan);
    let fps = batch as f64 / makespan.as_secs_f64();
    let area_mm2 = cfg.total_area_mm2();
    let fps_per_w = fps / avg_power_w;

    InferencePerf {
        accelerator: cfg.name,
        model: model.name.clone(),
        makespan,
        fps,
        energy_j,
        avg_power_w,
        area_mm2,
        fps_per_w,
        fps_per_w_per_mm2: fps_per_w / area_mm2,
        layers,
        energy_breakdown_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sconna_tensor::models::{googlenet, mobilenet_v2, resnet50, shufflenet_v2};

    fn one_layer(s: usize, l: usize, p_: usize) -> VdpWorkload {
        VdpWorkload {
            layer: "t".into(),
            vector_len: s,
            kernels: l,
            ops_per_kernel: p_,
        }
    }

    #[test]
    fn sconna_layer_has_no_electronic_psums() {
        let cfg = AcceleratorConfig::sconna();
        let lp = analyze_layer(&cfg, &one_layer(4608, 512, 49));
        assert_eq!(lp.psum_adds, 0);
        assert_eq!(lp.psum, SimTime::ZERO);
        assert_eq!(lp.reprogram, SimTime::ZERO);
        // 512·49 outputs × 27 chunks passes.
        assert_eq!(lp.passes, 512 * 49 * 27);
    }

    #[test]
    fn analog_layer_pays_psums_and_reprogramming() {
        let cfg = AcceleratorConfig::mam();
        let lp = analyze_layer(&cfg, &one_layer(4608, 512, 49));
        let chunks = 210u64;
        assert_eq!(lp.psum_adds, 512 * 49 * chunks * 2);
        assert_eq!(lp.reprogram_events, 512 * chunks * 2);
        assert!(lp.psum > lp.compute, "psum reduction dominates analog");
        assert!(lp.reprogram > SimTime::ZERO);
    }

    #[test]
    fn model_reload_is_memory_bound_for_sconna_and_slower_for_analog() {
        let model = shufflenet_v2();
        let cfg = AcceleratorConfig::sconna();
        let sconna = model_reload_time(&cfg, &model);
        assert!(sconna > SimTime::ZERO);
        // SCONNA never reprograms DKVs (zero `dkv_reprogram`), so its
        // reload is exactly the weight traffic through the eDRAM ports.
        let memory_only = model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
            let bytes = (w.kernels * w.vector_len) as f64;
            acc + SimTime::from_secs_f64(bytes / (cfg.vdpc_count() as f64 * p::EDRAM_BANDWIDTH_BPS))
        });
        assert_eq!(sconna, memory_only);
        // The analog baselines additionally pay cell-programming rounds.
        let mam = model_reload_time(&AcceleratorConfig::mam(), &model);
        assert!(mam > sconna);
    }

    #[test]
    fn warm_reload_is_free_for_sconna_and_reprogram_bound_for_analog() {
        let model = shufflenet_v2();
        // SCONNA keeps weights in pre-filled OSM LUTs — a warm restart
        // replays zero reprogramming rounds and costs nothing.
        let sconna = AcceleratorConfig::sconna();
        assert_eq!(model_warm_reload_time(&sconna, &model), SimTime::ZERO);
        // Analog baselines still pay full cell programming warm.
        let mam = AcceleratorConfig::mam();
        let warm = model_warm_reload_time(&mam, &model);
        assert!(warm > SimTime::ZERO);
        // Warm skips the memory term and can never exceed cold.
        for cfg in AcceleratorConfig::all() {
            assert!(
                model_warm_reload_time(&cfg, &model) <= model_reload_time(&cfg, &model),
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn model_swap_is_near_zero_for_sconna_and_reprogram_bound_for_analog() {
        let model = shufflenet_v2();
        // SCONNA swaps by repointing OSM LUT banks: one LUT access per
        // layer, regardless of model size — nonzero but vanishing next
        // to any reload.
        let sconna = AcceleratorConfig::sconna();
        let s = model_swap_time(&sconna, &model);
        assert!(s > SimTime::ZERO, "bank repointing is not free");
        assert_eq!(
            s,
            SimTime::from_ps(p::OSM_LUT.latency.as_ps() * model.workloads.len() as u64)
        );
        // Analog swaps replay cell programming: exactly the warm-reload
        // cost, since staged weight bytes skip the eDRAM traffic.
        let mam_cfg = AcceleratorConfig::mam();
        let m = model_swap_time(&mam_cfg, &model);
        assert_eq!(m, model_warm_reload_time(&mam_cfg, &model));
        // The paper's asymmetry as a multi-tenancy number: the analog
        // swap dwarfs SCONNA's by orders of magnitude.
        assert!(
            m > SimTime::from_ps(100 * s.as_ps()),
            "MAM swap {m} must dwarf SCONNA swap {s}"
        );
        // Pin against the reload ladder: swap <= cold reload everywhere.
        for cfg in AcceleratorConfig::all() {
            assert!(
                model_swap_time(&cfg, &model) <= model_reload_time(&cfg, &model),
                "{}: a swap of staged weights cannot exceed a cold reload",
                cfg.name
            );
        }
    }

    #[test]
    fn small_vector_needs_single_chunk_everywhere() {
        // Depthwise S = 9 fits every VDPE: no psum adds beyond the slice
        // combine for analog, no chunk splitting for SCONNA.
        for cfg in AcceleratorConfig::all() {
            let lp = analyze_layer(&cfg, &one_layer(9, 96, 196));
            assert_eq!(lp.passes, 96 * 196 * cfg.bit_slices as u64, "{}", cfg.name);
        }
    }

    #[test]
    fn sconna_beats_analog_on_resnet50() {
        let model = resnet50();
        let s = simulate_inference(&AcceleratorConfig::sconna(), &model);
        let m = simulate_inference(&AcceleratorConfig::mam(), &model);
        let a = simulate_inference(&AcceleratorConfig::amm(), &model);
        assert!(s.fps > 10.0 * m.fps, "SCONNA {} vs MAM {}", s.fps, m.fps);
        assert!(m.fps > a.fps, "MAM must beat AMM");
    }

    #[test]
    fn fig9_shape_gmean_ratios() {
        // The headline reproduction bar (DESIGN.md): SCONNA/MAM gmean FPS
        // ratio within 2x of the paper's 66.5x, SCONNA/AMM within 2x of
        // 146.4x, and MAM > AMM.
        let models = [googlenet(), resnet50(), mobilenet_v2(), shufflenet_v2()];
        let ratio = |a: &AcceleratorConfig, b: &AcceleratorConfig| {
            let rs: Vec<f64> = models
                .iter()
                .map(|m| simulate_inference(a, m).fps / simulate_inference(b, m).fps)
                .collect();
            sconna_sim::stats::gmean(&rs)
        };
        let sconna = AcceleratorConfig::sconna();
        let mam = AcceleratorConfig::mam();
        let amm = AcceleratorConfig::amm();
        let s_over_m = ratio(&sconna, &mam);
        let s_over_a = ratio(&sconna, &amm);
        assert!(
            s_over_m > 33.0 && s_over_m < 133.0,
            "SCONNA/MAM gmean {s_over_m} vs paper 66.5"
        );
        assert!(
            s_over_a > 73.0 && s_over_a < 293.0,
            "SCONNA/AMM gmean {s_over_a} vs paper 146.4"
        );
        assert!(s_over_a > s_over_m, "AMM must lose by more than MAM");
    }

    #[test]
    fn gains_larger_on_big_cnns_than_depthwise_cnns() {
        // Section VI-C: improvements are more evident for GoogleNet /
        // ResNet50 than for MobileNet_V2 / ShuffleNet_V2.
        let sconna = AcceleratorConfig::sconna();
        let mam = AcceleratorConfig::mam();
        let r = |m: &CnnModel| simulate_inference(&sconna, m).fps / simulate_inference(&mam, m).fps;
        let big = sconna_sim::stats::gmean(&[r(&googlenet()), r(&resnet50())]);
        let small = sconna_sim::stats::gmean(&[r(&mobilenet_v2()), r(&shufflenet_v2())]);
        assert!(
            big > small,
            "big-CNN ratio {big} vs small-CNN ratio {small}"
        );
    }

    #[test]
    fn energy_efficiency_favors_sconna() {
        let model = googlenet();
        let s = simulate_inference(&AcceleratorConfig::sconna(), &model);
        let m = simulate_inference(&AcceleratorConfig::mam(), &model);
        assert!(
            s.fps_per_w > 10.0 * m.fps_per_w,
            "SCONNA {} vs MAM {} FPS/W",
            s.fps_per_w,
            m.fps_per_w
        );
        // Area efficiency tracks energy efficiency (areas matched).
        assert!(s.fps_per_w_per_mm2 > 10.0 * m.fps_per_w_per_mm2);
    }

    #[test]
    fn makespan_is_sum_of_layer_times() {
        let cfg = AcceleratorConfig::sconna();
        let model = shufflenet_v2();
        let perf = simulate_inference(&cfg, &model);
        let sum: u64 = perf.layers.iter().map(|l| l.total.as_ps()).sum();
        assert_eq!(perf.makespan.as_ps(), sum);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use sconna_tensor::models::{googlenet, resnet50};

    #[test]
    fn batching_amortizes_analog_reprogramming() {
        let cfg = AcceleratorConfig::mam();
        let model = resnet50();
        let b1 = simulate_inference_batched(&cfg, &model, 1);
        let b64 = simulate_inference_batched(&cfg, &model, 64);
        // Reprogramming is paid once per layer, so per-frame throughput
        // improves with batch size.
        assert!(
            b64.fps > 1.1 * b1.fps,
            "batch-64 FPS {} vs batch-1 {}",
            b64.fps,
            b1.fps
        );
    }

    #[test]
    fn sconna_batching_is_nearly_flat() {
        // SCONNA has no reprogramming to amortize: only the per-layer
        // pipeline fill and weight fetch amortize, so FPS moves little.
        let cfg = AcceleratorConfig::sconna();
        let model = googlenet();
        let b1 = simulate_inference_batched(&cfg, &model, 1);
        let b64 = simulate_inference_batched(&cfg, &model, 64);
        let ratio = b64.fps / b1.fps;
        assert!(
            (0.9..1.6).contains(&ratio),
            "SCONNA batch-64/batch-1 FPS ratio {ratio}"
        );
    }

    #[test]
    fn sconna_still_wins_at_large_batch() {
        // The analog psum traffic scales with the batch, so amortization
        // cannot close the gap (the paper's advantage is structural).
        let model = resnet50();
        let s = simulate_inference_batched(&AcceleratorConfig::sconna(), &model, 128);
        let m = simulate_inference_batched(&AcceleratorConfig::mam(), &model, 128);
        assert!(s.fps > 10.0 * m.fps, "SCONNA {} vs MAM {}", s.fps, m.fps);
    }

    #[test]
    fn batch_one_matches_unbatched_api() {
        let cfg = AcceleratorConfig::amm();
        let model = googlenet();
        let a = simulate_inference(&cfg, &model);
        let b = simulate_inference_batched(&cfg, &model, 1);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    }

    #[test]
    fn batched_analysis_equals_batched_workload_helper() {
        // `analyze_layer_batched(cfg, w, b)` and the tensor-side helper
        // `analyze_layer(cfg, &w.batched(b))` describe the same
        // weight-stationary mapping, so every derived quantity must agree
        // exactly — the serving scheduler relies on this equivalence.
        let w = VdpWorkload {
            layer: "t".into(),
            vector_len: 4608,
            kernels: 512,
            ops_per_kernel: 49,
        };
        for cfg in AcceleratorConfig::all() {
            for batch in [1usize, 2, 7, 16, 64] {
                assert_eq!(
                    analyze_layer_batched(&cfg, &w, batch),
                    analyze_layer(&cfg, &w.batched(batch)),
                    "{} batch {batch}",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn fleet_registration_accumulates_instances() {
        use sconna_sim::energy::EnergyLedger;
        let cfg = AcceleratorConfig::sconna();
        let mut one = EnergyLedger::new();
        register_components(&mut one, &cfg);
        let mut four = EnergyLedger::new();
        for _ in 0..4 {
            register_components(&mut four, &cfg);
        }
        assert!((four.static_power_w() - 4.0 * one.static_power_w()).abs() < 1e-9);
        assert!((four.total_area_mm2() - 4.0 * one.total_area_mm2()).abs() < 1e-9);
        // No dynamic work recorded yet.
        assert_eq!(four.dynamic_energy_j(), 0.0);
    }

    #[test]
    fn repeated_recording_scales_dynamic_energy() {
        // Recording the same inference twice on one ledger doubles its
        // dynamic energy — the serving path records once per dispatched
        // batch.
        let cfg = AcceleratorConfig::sconna();
        let model = googlenet();
        let layers: Vec<LayerPerf> = model
            .workloads
            .iter()
            .map(|w| analyze_layer_batched(&cfg, w, 4))
            .collect();
        let mut ledger = sconna_sim::energy::EnergyLedger::new();
        register_components(&mut ledger, &cfg);
        record_inference_ops(&mut ledger, &cfg, &layers, &model, 4);
        let once = ledger.dynamic_energy_j();
        record_inference_ops(&mut ledger, &cfg, &layers, &model, 4);
        assert!((ledger.dynamic_energy_j() - 2.0 * once).abs() < 1e-12 * once.abs().max(1.0));
    }
}
