//! Accelerator organizations: SCONNA and the two analog baselines, with
//! the paper's Section VI-B configuration (1024 SCONNA VDPEs; MAM and AMM
//! scaled to the same die area: 3971 and 3172 VDPEs).
//!
//! All three share the Fig. 8 system organization — a mesh of tiles with
//! 4 VDPCs per tile, each VDPC holding M = N VDPE arms behind one
//! N-wavelength laser bank — and differ in what a VDPE is:
//!
//! * **SCONNA** — N = 176 OSMs + filter bank + PCA pair; one VDP pass per
//!   `2^B / BR = 8.53 ns` stream; weights *stream* from the LUT, so a
//!   VDPE can process consecutive DKV chunks of the same output and
//!   accumulate locally — no shared psum traffic.
//! * **MAM / AMM** — 4-bit analog VDPE (N = 22 / 16 at 5 GS/s); 8-bit
//!   inference needs two bit-sliced VDPEs per result; DKVs are imprinted
//!   in MRR thermal tuning, so chunks of one output land on different
//!   VDPEs and every psum crosses the electronic reduction network; and
//!   changing a VDPE's DKV assignment pays a thermal reprogramming
//!   latency.

use crate::peripherals;
use sconna_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Which architecture a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorKind {
    /// The paper's stochastic-computing accelerator.
    Sconna,
    /// MAM-organized analog baseline (HOLYLIGHT).
    Mam,
    /// AMM-organized analog baseline (DEAP-CNN).
    Amm,
}

/// Calibrated thermal DKV reprogramming latency of the analog baselines
/// (MRR heater settling; microsecond-class per the thermal-tuning
/// literature, calibrated within that range against Fig. 9(a) — see
/// EXPERIMENTS.md).
pub const ANALOG_DKV_REPROGRAM: SimTime = SimTime::from_ps(20_000_000); // 20 µs

/// Serializer switching-activity factor: the 5 mW Table IV figure is the
/// full-rate toggling power; shifting stochastic bit-vectors toggles a
/// fraction of cycles (calibrated against Fig. 9(b), documented in
/// EXPERIMENTS.md).
pub const SERIALIZER_ACTIVITY: f64 = 0.25;

/// MAM VDPE area implied by the paper's scaling (Section VI-B):
/// `(area(SCONNA, 1024 VDPEs) − tile peripherals) / 3971`.
pub const MAM_VDPE_AREA_MM2: f64 = 0.723_59;

/// AMM VDPE area implied by the paper's scaling:
/// `(area(SCONNA, 1024 VDPEs) − tile peripherals) / 3172`.
pub const AMM_VDPE_AREA_MM2: f64 = 0.905_44;

/// One accelerator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Architecture.
    pub kind: AcceleratorKind,
    /// Display name matching the paper's figures.
    pub name: &'static str,
    /// VDPE size N (points per VDP element).
    pub vdpe_size_n: usize,
    /// Total VDPEs across all VDPCs.
    pub total_vdpes: usize,
    /// Hardware precision per pass, bits.
    pub native_bits: u8,
    /// VDPEs ganged per 8-bit result (bit slicing).
    pub bit_slices: usize,
    /// Time per VDP pass on one VDPE.
    pub symbol_time: SimTime,
    /// Latency to change a VDPE's DKV assignment.
    pub dkv_reprogram: SimTime,
    /// True when an output's DKV chunks accumulate locally on one VDPE
    /// (SCONNA); false when every psum crosses the reduction network.
    pub local_psum_accumulate: bool,
}

/// VDPCs per tile (Fig. 8: each tile holds 4 VDPCs).
pub const VDPCS_PER_TILE: usize = 4;

impl AcceleratorConfig {
    /// The paper's SCONNA configuration: 1024 VDPEs of N = 176 at
    /// BR = 30 Gb/s with 256-bit streams.
    pub fn sconna() -> Self {
        Self {
            kind: AcceleratorKind::Sconna,
            name: "SCONNA",
            vdpe_size_n: 176,
            total_vdpes: 1024,
            native_bits: 8,
            bit_slices: 1,
            // 2^8 bits / 30 Gb/s = 8533.3 ps.
            symbol_time: SimTime::from_ps(8_533),
            dkv_reprogram: SimTime::ZERO,
            local_psum_accumulate: true,
        }
    }

    /// MAM (HOLYLIGHT) baseline: N = 22 at 4-bit / 5 GS/s (Table I),
    /// area-proportionately scaled to 3971 VDPEs (Section VI-B).
    pub fn mam() -> Self {
        Self {
            kind: AcceleratorKind::Mam,
            name: "MAM (HOLYLIGHT)",
            vdpe_size_n: 22,
            total_vdpes: 3971,
            native_bits: 4,
            bit_slices: 2,
            symbol_time: SimTime::from_ps(200), // 1 / 5 GS/s
            dkv_reprogram: ANALOG_DKV_REPROGRAM,
            local_psum_accumulate: false,
        }
    }

    /// AMM (DEAP-CNN) baseline: N = 16 at 4-bit / 5 GS/s, scaled to 3172
    /// VDPEs.
    pub fn amm() -> Self {
        Self {
            kind: AcceleratorKind::Amm,
            name: "AMM (DEAPCNN)",
            vdpe_size_n: 16,
            total_vdpes: 3172,
            native_bits: 4,
            bit_slices: 2,
            symbol_time: SimTime::from_ps(200),
            dkv_reprogram: ANALOG_DKV_REPROGRAM,
            local_psum_accumulate: false,
        }
    }

    /// All three evaluated configurations in the paper's order.
    pub fn all() -> [Self; 3] {
        [Self::sconna(), Self::mam(), Self::amm()]
    }

    /// The same organization at a reduced stream precision: a `bits`-bit
    /// stochastic stream is `2^bits` symbols long, so one VDP pass
    /// shortens proportionally (`symbol_time` here is the whole-stream
    /// pass time, `2^B / BR`). This is the fallback operating point the
    /// serving scheduler's `Degrade` admission policy dispatches shed
    /// requests at — cheaper passes, coarser products.
    ///
    /// Only meaningful for SCONNA: the analog baselines' `symbol_time`
    /// is a sample period (1 / GS/s), not a stream length, so their pass
    /// time does not scale with precision this way.
    ///
    /// # Panics
    /// Panics for a non-SCONNA configuration, `bits` of zero, or `bits`
    /// above the native precision (this models degradation only).
    pub fn with_native_bits(self, bits: u8) -> Self {
        assert_eq!(
            self.kind,
            AcceleratorKind::Sconna,
            "stream-length precision scaling only applies to SCONNA"
        );
        assert!(
            bits >= 1 && bits <= self.native_bits,
            "degraded precision must be in 1..={}, got {bits}",
            self.native_bits
        );
        let ps = self.symbol_time.as_ps() * (1u64 << bits) / (1u64 << self.native_bits);
        Self {
            native_bits: bits,
            symbol_time: SimTime::from_ps(ps.max(1)),
            ..self
        }
    }

    /// VDPEs per VDPC: the paper's VDPCs have M = N arms sharing one
    /// N-wavelength laser bank.
    pub fn vdpes_per_vdpc(&self) -> usize {
        self.vdpe_size_n
    }

    /// Number of VDPCs (the last may be partially populated).
    pub fn vdpc_count(&self) -> usize {
        self.total_vdpes.div_ceil(self.vdpes_per_vdpc())
    }

    /// Tiles in the mesh (4 VDPCs per tile, Fig. 8).
    pub fn tiles(&self) -> usize {
        self.vdpc_count().div_ceil(VDPCS_PER_TILE)
    }

    /// VDPEs usable in parallel for independent 8-bit results
    /// (bit-slicing gangs VDPEs together).
    pub fn effective_parallel_vdpes(&self) -> usize {
        self.total_vdpes / self.bit_slices
    }

    /// Laser diodes: one bank of N per VDPC.
    pub fn laser_count(&self) -> usize {
        self.vdpc_count() * self.vdpe_size_n
    }

    /// Chunks (psum passes) an `s`-point vector needs on this VDPE size.
    pub fn chunks(&self, vector_len: usize) -> usize {
        vector_len.div_ceil(self.vdpe_size_n)
    }

    /// VDPE area, mm².
    ///
    /// SCONNA's is the mechanical sum of its per-element components
    /// (Table IV + MRR footprints). The analog VDPE areas are the values
    /// *implied by the paper's own area-proportionate scaling* (Section
    /// VI-B: MAM 3971 and AMM 3172 VDPEs match SCONNA's 1024-VDPE die),
    /// i.e. the published counts are inverted into per-VDPE areas; our
    /// independent mechanical estimates land within ~35 % of these (see
    /// [`AcceleratorConfig::mechanical_vdpe_area_estimate`]).
    pub fn vdpe_area_mm2(&self) -> f64 {
        match self.kind {
            AcceleratorKind::Sconna => self.mechanical_vdpe_area_estimate(),
            AcceleratorKind::Mam => MAM_VDPE_AREA_MM2,
            AcceleratorKind::Amm => AMM_VDPE_AREA_MM2,
        }
    }

    /// Bottom-up component-sum estimate of the VDPE area, mm².
    pub fn mechanical_vdpe_area_estimate(&self) -> f64 {
        let n = self.vdpe_size_n as f64;
        match self.kind {
            AcceleratorKind::Sconna => {
                // Per OSM: OAG ring + filter ring + serializer + LUT.
                n * (2.0 * peripherals::MRR_AREA_MM2
                    + peripherals::SERIALIZER.area_mm2
                    + peripherals::OSM_LUT.area_mm2)
                    + 2.0 * peripherals::PCA.area_mm2
                    + peripherals::SCONNA_ADC.area_mm2
            }
            AcceleratorKind::Mam => {
                // Per element: DKV ring + DAC; one ADC per SE; the shared
                // DIV block amortizes to one ring + DAC per VDPE.
                n * (peripherals::MRR_AREA_MM2 + peripherals::ANALOG_DAC.area_mm2)
                    + peripherals::MRR_AREA_MM2
                    + peripherals::ANALOG_DAC.area_mm2
                    + peripherals::ANALOG_ADC.area_mm2
            }
            AcceleratorKind::Amm => {
                // Per element: DIV ring + DKV ring, each with a DAC.
                n * 2.0 * (peripherals::MRR_AREA_MM2 + peripherals::ANALOG_DAC.area_mm2)
                    + peripherals::ANALOG_ADC.area_mm2
            }
        }
    }

    /// Tile peripheral area, mm² (per tile).
    pub fn tile_peripheral_area_mm2(&self) -> f64 {
        peripherals::REDUCTION_NETWORK.area_mm2
            + peripherals::ACTIVATION_UNIT.area_mm2
            + peripherals::IO_INTERFACE.area_mm2
            + peripherals::POOLING_UNIT.area_mm2
            + peripherals::EDRAM.area_mm2
            + peripherals::BUS.area_mm2
            + peripherals::ROUTER.area_mm2
    }

    /// Total accelerator area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.total_vdpes as f64 * self.vdpe_area_mm2()
            + self.tiles() as f64 * self.tile_peripheral_area_mm2()
    }

    /// Area-proportionate VDPE count for this architecture matching a
    /// target die area — the Section VI-B scaling procedure.
    pub fn area_proportionate_vdpes(&self, target_area_mm2: f64) -> usize {
        let peripheral = self.tiles() as f64 * self.tile_peripheral_area_mm2();
        ((target_area_mm2 - peripheral) / self.vdpe_area_mm2()).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organization_counts() {
        let s = AcceleratorConfig::sconna();
        assert_eq!(s.vdpc_count(), 6);
        assert_eq!(s.vdpes_per_vdpc(), 176);
        assert_eq!(s.tiles(), 2);
        assert_eq!(s.effective_parallel_vdpes(), 1024);
        let m = AcceleratorConfig::mam();
        assert_eq!(m.effective_parallel_vdpes(), 1985);
        assert_eq!(m.vdpes_per_vdpc(), 22);
        assert_eq!(m.vdpc_count(), 181);
        assert_eq!(m.tiles(), 46);
    }

    #[test]
    fn chunk_counts_match_paper_examples() {
        // Section III-A: S = 4608 on N = 44 → 105 chunks; SCONNA
        // N = 176 → 27 chunks.
        let s = AcceleratorConfig::sconna();
        assert_eq!(s.chunks(4608), 27);
        let m = AcceleratorConfig::mam();
        assert_eq!(m.chunks(4608), 210); // 4608/22 = 209.45 → 210
        assert_eq!(4608usize.div_ceil(44), 105); // the paper's N=44 example
    }

    #[test]
    fn symbol_times() {
        // SCONNA: 256 bits at 30 Gb/s ≈ 8.53 ns; analog: 0.2 ns.
        let s = AcceleratorConfig::sconna();
        assert!((s.symbol_time.as_secs_f64() - 256.0 / 30e9).abs() < 1e-12);
        assert_eq!(AcceleratorConfig::mam().symbol_time, SimTime::from_ps(200));
    }

    #[test]
    fn area_proportionate_scaling_recovers_paper_counts() {
        // Section VI-B: matching SCONNA's 1024-VDPE area gives MAM 3971
        // and AMM 3172 VDPEs; the calibrated per-VDPE areas invert that
        // relation, so the solver must recover the published counts.
        let target = AcceleratorConfig::sconna().total_area_mm2();
        let mam_count = AcceleratorConfig::mam().area_proportionate_vdpes(target);
        let amm_count = AcceleratorConfig::amm().area_proportionate_vdpes(target);
        assert!(
            (mam_count as i64 - 3971).abs() <= 2,
            "MAM scaled count {mam_count} vs paper 3971"
        );
        assert!(
            (amm_count as i64 - 3172).abs() <= 2,
            "AMM scaled count {amm_count} vs paper 3172"
        );
    }

    #[test]
    fn mechanical_area_estimates_corroborate_calibration() {
        // The independent bottom-up component sums must land within 35 %
        // of the paper-implied per-VDPE areas.
        let mam = AcceleratorConfig::mam();
        let amm = AcceleratorConfig::amm();
        let mam_rel =
            (mam.mechanical_vdpe_area_estimate() - MAM_VDPE_AREA_MM2).abs() / MAM_VDPE_AREA_MM2;
        let amm_rel =
            (amm.mechanical_vdpe_area_estimate() - AMM_VDPE_AREA_MM2).abs() / AMM_VDPE_AREA_MM2;
        assert!(
            mam_rel < 0.35,
            "MAM mechanical estimate off by {mam_rel:.2}"
        );
        assert!(
            amm_rel < 0.35,
            "AMM mechanical estimate off by {amm_rel:.2}"
        );
    }

    #[test]
    fn all_areas_are_comparable_by_construction() {
        // With the paper's published VDPE counts and the calibrated
        // per-VDPE areas, total areas agree closely.
        let areas: Vec<f64> = AcceleratorConfig::all()
            .iter()
            .map(AcceleratorConfig::total_area_mm2)
            .collect();
        let max = areas.iter().fold(0f64, |a, &b| a.max(b));
        let min = areas.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(max / min < 1.01, "areas {areas:?} diverge");
    }

    #[test]
    fn degraded_precision_shortens_the_stream_pass() {
        let s = AcceleratorConfig::sconna();
        let d = s.with_native_bits(4);
        assert_eq!(d.native_bits, 4);
        // 2^4 / 2^8 of the 8-bit pass: 8533 ps / 16 = 533 ps.
        assert_eq!(d.symbol_time, SimTime::from_ps(533));
        // Everything but the stream length is the same hardware.
        assert_eq!(d.total_vdpes, s.total_vdpes);
        assert_eq!(d.vdpe_size_n, s.vdpe_size_n);
        // Native precision is the identity.
        assert_eq!(s.with_native_bits(8).symbol_time, s.symbol_time);
    }

    #[test]
    #[should_panic(expected = "only applies to SCONNA")]
    fn degraded_precision_rejects_analog_baselines() {
        let _ = AcceleratorConfig::mam().with_native_bits(2);
    }

    #[test]
    #[should_panic(expected = "degraded precision must be in")]
    fn degraded_precision_rejects_upgrades() {
        let _ = AcceleratorConfig::sconna().with_native_bits(9);
    }

    #[test]
    fn raw_mac_rate_favors_analog() {
        // Sanity: the analog baselines have higher *raw* MAC throughput;
        // SCONNA wins on psums/reprogramming, not raw rate (Section VI-C
        // attributes the win to psum reduction + higher N).
        let s = AcceleratorConfig::sconna();
        let m = AcceleratorConfig::mam();
        let rate = |c: &AcceleratorConfig| {
            (c.effective_parallel_vdpes() * c.vdpe_size_n) as f64 / c.symbol_time.as_secs_f64()
        };
        assert!(rate(&m) > rate(&s));
    }
}
