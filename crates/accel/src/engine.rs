//! The SCONNA execution engine: a [`VdpEngine`] that computes every inner
//! product exactly the way the hardware does — OSM stochastic multiplies,
//! sign-steered PCA accumulation per DKV chunk, and ADC conversion with
//! the calibrated 1.3 % MAPE error (Sections IV and V-C).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sconna_photonics::pca::AdcModel;
use sconna_sc::accumulate::SignedAccumulator;
use sconna_sc::multiply::osm_product_debiased;
use sconna_sc::Precision;
use sconna_tensor::engine::VdpEngine;

/// SCONNA stochastic VDP engine.
pub struct SconnaEngine {
    /// Stream precision (B = 8 in the paper).
    pub precision: Precision,
    /// VDPE size N: vectors longer than this are chunked and the chunk
    /// results accumulated after conversion.
    pub vdpe_size: usize,
    /// ADC model applied to each rail of each chunk; `None` isolates pure
    /// SC rounding error.
    pub adc: Option<AdcModel>,
    rng: Mutex<StdRng>,
}

impl SconnaEngine {
    /// The paper's operating point: B = 8, N = 176, ADC with the 1.3 %
    /// MAPE calibration.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            precision: Precision::B8,
            vdpe_size: 176,
            adc: Some(AdcModel::sconna_default()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// ADC-noise-free variant (pure stochastic rounding error).
    pub fn noiseless() -> Self {
        Self {
            precision: Precision::B8,
            vdpe_size: 176,
            adc: None,
            rng: Mutex::new(StdRng::seed_from_u64(0)),
        }
    }

    /// Custom configuration.
    pub fn new(precision: Precision, vdpe_size: usize, adc: Option<AdcModel>, seed: u64) -> Self {
        assert!(vdpe_size > 0, "VDPE size must be positive");
        Self {
            precision,
            vdpe_size,
            adc,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Converts one rail's count through the ADC. The TIR's amplifier
    /// gain (Section V-C: a configurable voltage amplifier) is assumed
    /// range-matched to the pass's occupancy: a chunk driving only
    /// `chunk_len` of the N wavelengths is amplified so the ADC's 8 bits
    /// span `chunk_len · 2^B` ones instead of the full `N · 2^B` — the
    /// standard programmable-gain idiom, without which short (e.g.
    /// depthwise, S = 9) vectors would be quantized into oblivion.
    fn convert_rail(&self, ones: u64, chunk_len: usize) -> f64 {
        match &self.adc {
            Some(adc) => {
                let ranged = AdcModel {
                    full_scale_ones: (chunk_len * self.precision.stream_len()) as u64,
                    ..*adc
                };
                let mut rng = self.rng.lock();
                ranged.convert(ones as f64, &mut *rng)
            }
            None => ones as f64,
        }
    }
}

impl VdpEngine for SconnaEngine {
    fn vdp(&self, inputs: &[u32], weights: &[i32]) -> f64 {
        assert_eq!(inputs.len(), weights.len(), "vector length mismatch");
        let scale = self.precision.stream_len() as f64;
        let qmax = self.precision.max_value();
        let mut total = 0.0f64;
        for (ichunk, wchunk) in inputs
            .chunks(self.vdpe_size)
            .zip(weights.chunks(self.vdpe_size))
        {
            // One VDPE pass: OSM multiplies (alternating LUT pairings to
            // cancel encoding bias) + sign-steered accumulation.
            let mut acc = SignedAccumulator::new();
            for (k, (&i, &w)) in ichunk.iter().zip(wchunk).enumerate() {
                let i = i.min(qmax);
                let mag = w.unsigned_abs().min(qmax);
                acc.accumulate(osm_product_debiased(i, mag, self.precision, k), w < 0);
            }
            // Each rail's PCA digitizes independently.
            let pos = self.convert_rail(acc.positive.total(), ichunk.len());
            let neg = self.convert_rail(acc.negative.total(), ichunk.len());
            // Counts are Σ i·w / 2^B; rescale to integer-product units.
            total += (pos - neg) * scale;
        }
        total
    }

    fn name(&self) -> &'static str {
        "sconna-stochastic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sconna_tensor::engine::ExactEngine;

    fn test_vectors(len: usize) -> (Vec<u32>, Vec<i32>) {
        let inputs: Vec<u32> = (0..len).map(|k| ((k * 37) % 256) as u32).collect();
        let weights: Vec<i32> = (0..len)
            .map(|k| ((k * 53) % 255) as i32 - 127)
            .collect();
        (inputs, weights)
    }

    #[test]
    fn noiseless_engine_tracks_exact_engine() {
        let (inputs, weights) = test_vectors(500);
        let exact = ExactEngine.vdp(&inputs, &weights);
        let sc = SconnaEngine::noiseless().vdp(&inputs, &weights);
        // Per-element SC error ≤ B counts, scaled by 256.
        let bound = 500.0 * 8.0 * 256.0;
        assert!((sc - exact).abs() <= bound, "sc {sc} exact {exact}");
        // And it should be much better than the bound in practice.
        let rel = (sc - exact).abs() / exact.abs().max(1.0);
        assert!(rel < 0.25, "relative error {rel}");
    }

    #[test]
    fn chunking_handles_vectors_longer_than_n() {
        let (inputs, weights) = test_vectors(4608);
        let sc = SconnaEngine::noiseless().vdp(&inputs, &weights);
        let exact = ExactEngine.vdp(&inputs, &weights);
        let rel = (sc - exact).abs() / exact.abs().max(1.0);
        assert!(rel < 0.25, "relative error {rel} on 27-chunk vector");
    }

    #[test]
    fn zero_inputs_give_zero() {
        let e = SconnaEngine::paper_default(1);
        assert_eq!(e.vdp(&[0; 64], &[5; 64]), 0.0);
        assert_eq!(e.vdp(&[], &[]), 0.0);
    }

    #[test]
    fn noisy_engine_is_seed_deterministic() {
        let (inputs, weights) = test_vectors(300);
        let a = SconnaEngine::paper_default(42).vdp(&inputs, &weights);
        let b = SconnaEngine::paper_default(42).vdp(&inputs, &weights);
        assert_eq!(a, b);
        // A single VDP can quantize identically across seeds (the ADC
        // step is coarse); across a batch the seeds must diverge
        // somewhere.
        let e42 = SconnaEngine::paper_default(42);
        let e43 = SconnaEngine::paper_default(43);
        let diverged = (0..20).any(|k| {
            let (i, w) = test_vectors(100 + 7 * k);
            e42.vdp(&i, &w) != e43.vdp(&i, &w)
        });
        assert!(diverged, "different seeds never diverged across a batch");
    }

    #[test]
    fn adc_noise_increases_error_over_noiseless() {
        let (inputs, weights) = test_vectors(352);
        let exact = ExactEngine.vdp(&inputs, &weights);
        let trials = 50;
        let mut noiseless_err = 0.0;
        let mut noisy_err = 0.0;
        for seed in 0..trials {
            noiseless_err += (SconnaEngine::noiseless().vdp(&inputs, &weights) - exact).abs();
            noisy_err +=
                (SconnaEngine::paper_default(seed).vdp(&inputs, &weights) - exact).abs();
        }
        assert!(
            noisy_err >= noiseless_err,
            "ADC noise must not reduce error: {noisy_err} vs {noiseless_err}"
        );
    }

    #[test]
    fn sign_symmetry() {
        let (inputs, weights) = test_vectors(200);
        let neg: Vec<i32> = weights.iter().map(|w| -w).collect();
        let e = SconnaEngine::noiseless();
        assert_eq!(e.vdp(&inputs, &weights), -e.vdp(&inputs, &neg));
    }
}
