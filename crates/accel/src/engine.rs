//! The SCONNA execution engine: a [`VdpEngine`] that computes every inner
//! product exactly the way the hardware does — OSM stochastic multiplies,
//! sign-steered PCA accumulation per DKV chunk, and ADC conversion with
//! the calibrated 1.3 % MAPE error (Sections IV and V-C).
//!
//! The engine is **lock-free**: ADC noise is not drawn from a shared RNG
//! (PR 2 guarded one behind a `Mutex`, serializing every rail conversion)
//! but derived from a counter-keyed deterministic stream seeded by
//! `(engine seed, caller key, chunk index, rail)`. Every conversion's
//! noise is therefore a pure function of *what* is being converted and
//! *where* it sits in the computation — bit-identical across call orders,
//! thread counts and interleavings, with zero synchronization on the hot
//! path. OSM products come from the precomputed [`OsmProductLut`] (the
//! in-simulator mirror of the paper's offline DPU conversion LUT,
//! Section II-B), so the inner loop is a table load plus a sign-steered
//! add.

use rand::RngCore;
use sconna_photonics::pca::AdcModel;
use sconna_sc::lut::OsmProductLut;
use sconna_sc::multiply::osm_product_debiased;
use sconna_sc::Precision;
use sconna_tensor::engine::{
    combine_keys, mix_key, PatchMatrix, PreparedWeights, VdpEngine, WeightMatrix,
};

/// Counter-based deterministic noise stream (SplitMix64): constructed
/// per rail conversion from the conversion's coordinates, never shared,
/// never locked.
struct KeyedAdcStream {
    state: u64,
}

impl KeyedAdcStream {
    /// Seeds the stream for one chunk's rail-pair conversion: `seed` is
    /// the engine seed, `key` the caller's accumulator key, and `lane`
    /// the chunk index within the vector. [`combine_keys`] keeps the
    /// mixing non-commutative, so `(seed = A, key = B)` and
    /// `(seed = B, key = A)` draw unrelated streams.
    #[inline]
    fn new(seed: u64, key: u64, lane: u64) -> Self {
        Self {
            state: combine_keys(combine_keys(seed, key), lane),
        }
    }
}

impl RngCore for KeyedAdcStream {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64: increment by the golden-ratio constant, finalize.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix_key(self.state)
    }
}

/// Sign-steered rail accumulation of one VDPE chunk: every element's
/// debiased OSM product (from `product(i, |w|, osm_index)`) lands on the
/// positive or negative rail by its weight's sign bit. Returns
/// `(positive, negative)` ones counts.
#[inline]
fn accumulate_rails(
    ichunk: &[u32],
    wchunk: &[i32],
    qmax: u32,
    product: impl Fn(u32, u32, usize) -> u32,
) -> (u64, u64) {
    let (mut pos, mut neg) = (0u64, 0u64);
    for (k, (&i, &w)) in ichunk.iter().zip(wchunk).enumerate() {
        let p = product(i.min(qmax), w.unsigned_abs().min(qmax), k) as u64;
        if w < 0 {
            neg += p;
        } else {
            pos += p;
        }
    }
    (pos, neg)
}

/// Sign-steered rail accumulation against a **prepared** weight row:
/// magnitudes are already clamped LUT addresses and signs are steering
/// bits, so the inner loop touches no signed arithmetic at all. Must
/// steer and clamp exactly like [`accumulate_rails`] — the prepared path
/// is bit-equal to the raw path by construction.
#[inline]
fn accumulate_rails_prepared(
    ichunk: &[u32],
    mags: &[u16],
    negs: &[bool],
    qmax: u32,
    product: impl Fn(u32, u32, usize) -> u32,
) -> (u64, u64) {
    let (mut pos, mut neg) = (0u64, 0u64);
    for (k, ((&i, &mag), &steer_neg)) in ichunk.iter().zip(mags).zip(negs).enumerate() {
        let p = product(i.min(qmax), mag as u32, k) as u64;
        if steer_neg {
            neg += p;
        } else {
            pos += p;
        }
    }
    (pos, neg)
}

/// [`SconnaEngine`]'s prepared weight form — everything the stochastic
/// pipeline derives from a weight matrix per call, hoisted to model-load
/// time:
///
/// * the clamped weight magnitudes, i.e. the binary operands the offline
///   DKV conversion turns into weight-stream LUT addresses (`Wb`,
///   Section II-B);
/// * the sign steering bits that route each OSM product onto the
///   positive or negative PCA rail (the filter MRR's sign bit);
/// * the range-matched per-chunk ADC models (the TIR amplifier gain is a
///   function of chunk occupancy only, so it is a property of the layer
///   geometry, not of any individual call).
///
/// The fingerprint fields pin the engine configuration the handle was
/// derived for; an engine with a different precision, VDPE size or ADC
/// ignores the payload and recomputes from the raw weights.
#[derive(Debug)]
struct SconnaPrepared {
    /// Clamped magnitudes (LUT weight-stream addresses), row-major.
    mags: Vec<u16>,
    /// Sign steering bits, row-major; `true` lands on the negative rail.
    negs: Vec<bool>,
    /// Range-matched ADC per VDPE chunk of one kernel vector; empty when
    /// the engine runs without an ADC model.
    ranged: Vec<AdcModel>,
    /// Precision fingerprint: largest representable magnitude.
    qmax: u32,
    /// VDPE-size fingerprint (chunk decomposition).
    vdpe_size: usize,
    /// ADC fingerprint: `(bits, relative noise sigma)`, if any.
    adc: Option<(u8, f64)>,
}

/// SCONNA stochastic VDP engine.
pub struct SconnaEngine {
    /// Stream precision (B = 8 in the paper).
    pub precision: Precision,
    /// VDPE size N: vectors longer than this are chunked and the chunk
    /// results accumulated after conversion.
    pub vdpe_size: usize,
    /// ADC model applied to each rail of each chunk; `None` isolates pure
    /// SC rounding error.
    pub adc: Option<AdcModel>,
    seed: u64,
    /// Product tables; `None` above [`OsmProductLut::MAX_BITS`], where
    /// the closed form takes over.
    lut: Option<std::sync::Arc<OsmProductLut>>,
}

impl SconnaEngine {
    /// The paper's operating point: B = 8, N = 176, ADC with the 1.3 %
    /// MAPE calibration.
    pub fn paper_default(seed: u64) -> Self {
        Self::new(Precision::B8, 176, Some(AdcModel::sconna_default()), seed)
    }

    /// ADC-noise-free variant (pure stochastic rounding error).
    pub fn noiseless() -> Self {
        Self::new(Precision::B8, 176, None, 0)
    }

    /// Custom configuration.
    pub fn new(precision: Precision, vdpe_size: usize, adc: Option<AdcModel>, seed: u64) -> Self {
        assert!(vdpe_size > 0, "VDPE size must be positive");
        Self {
            precision,
            vdpe_size,
            adc,
            seed,
            lut: OsmProductLut::shared(precision),
        }
    }

    /// The ADC range-matched to a chunk's occupancy. The TIR's amplifier
    /// gain (Section V-C: a configurable voltage amplifier) is assumed
    /// range-matched to the pass's occupancy: a chunk driving only
    /// `chunk_len` of the N wavelengths is amplified so the ADC's 8 bits
    /// span `chunk_len · 2^B` ones instead of the full `N · 2^B` — the
    /// standard programmable-gain idiom, without which short (e.g.
    /// depthwise, S = 9) vectors would be quantized into oblivion.
    #[inline]
    fn ranged_adc(&self, adc: &AdcModel, chunk_len: usize) -> AdcModel {
        AdcModel {
            full_scale_ones: (chunk_len * self.precision.stream_len()) as u64,
            ..*adc
        }
    }

    /// Converts one chunk's rail pair through a range-matched ADC, noise
    /// keyed by `(engine seed, accumulator key, chunk)`. The rails share
    /// one Box-Muller draw ([`AdcModel::convert_pair`]) but receive its
    /// two independent Gaussian projections.
    #[inline]
    fn convert_rails(
        &self,
        ranged: &AdcModel,
        pos: u64,
        neg: u64,
        key: u64,
        chunk: usize,
    ) -> (f64, f64) {
        let mut stream = KeyedAdcStream::new(self.seed, key, chunk as u64);
        ranged.convert_pair(pos as f64, neg as f64, &mut stream)
    }

    /// One accumulator: chunked OSM products, sign-steered rail counts,
    /// keyed ADC conversion. Shared verbatim by the single-vector and
    /// batched paths, which is what makes them bit-identical.
    #[inline]
    fn vdp_core(&self, inputs: &[u32], weights: &[i32], key: u64) -> f64 {
        let scale = self.precision.stream_len() as f64;
        let qmax = self.precision.max_value();
        let mut total = 0.0f64;
        for (chunk, (ichunk, wchunk)) in inputs
            .chunks(self.vdpe_size)
            .zip(weights.chunks(self.vdpe_size))
            .enumerate()
        {
            // One VDPE pass: OSM multiplies (alternating LUT pairings to
            // cancel encoding bias) + sign-steered accumulation. One
            // accumulation loop, two monomorphized product sources — the
            // clamping and rail steering can never diverge between the
            // LUT and closed-form precisions.
            let (pos, neg) = match &self.lut {
                Some(lut) => {
                    accumulate_rails(ichunk, wchunk, qmax, |i, mag, k| lut.product(i, mag, k))
                }
                None => accumulate_rails(ichunk, wchunk, qmax, |i, mag, k| {
                    osm_product_debiased(i, mag, self.precision, k)
                }),
            };
            // Each rail's PCA digitizes independently (independent noise
            // projections of one keyed draw).
            let (pos, neg) = match &self.adc {
                Some(adc) => {
                    let ranged = self.ranged_adc(adc, ichunk.len());
                    self.convert_rails(&ranged, pos, neg, key, chunk)
                }
                None => (pos as f64, neg as f64),
            };
            // Counts are Σ i·w / 2^B; rescale to integer-product units.
            total += (pos - neg) * scale;
        }
        total
    }

    /// [`SconnaEngine::vdp_core`] against one prepared weight row: the
    /// clamp, sign steering and ADC range matching all come from the
    /// handle. Chunking, product source, noise keying and rail
    /// conversion are shared with the raw path, which is what keeps the
    /// two bit-identical.
    #[inline]
    fn vdp_core_prepared(
        &self,
        inputs: &[u32],
        mags: &[u16],
        negs: &[bool],
        ranged: &[AdcModel],
        key: u64,
    ) -> f64 {
        let scale = self.precision.stream_len() as f64;
        let qmax = self.precision.max_value();
        let mut total = 0.0f64;
        for (chunk, (ichunk, (mchunk, nchunk))) in inputs
            .chunks(self.vdpe_size)
            .zip(mags.chunks(self.vdpe_size).zip(negs.chunks(self.vdpe_size)))
            .enumerate()
        {
            let (pos, neg) = match &self.lut {
                Some(lut) => {
                    accumulate_rails_prepared(ichunk, mchunk, nchunk, qmax, |i, mag, k| {
                        lut.product(i, mag, k)
                    })
                }
                None => accumulate_rails_prepared(ichunk, mchunk, nchunk, qmax, |i, mag, k| {
                    osm_product_debiased(i, mag, self.precision, k)
                }),
            };
            let (pos, neg) = if self.adc.is_some() {
                self.convert_rails(&ranged[chunk], pos, neg, key, chunk)
            } else {
                (pos as f64, neg as f64)
            };
            total += (pos - neg) * scale;
        }
        total
    }

    /// Whether a prepared payload was derived for this engine's exact
    /// configuration (precision clamp, chunk decomposition, ADC).
    fn accepts(&self, prep: &SconnaPrepared, cols: usize) -> bool {
        prep.qmax == self.precision.max_value()
            && prep.vdpe_size == self.vdpe_size
            && prep.adc == self.adc.as_ref().map(|a| (a.bits, a.relative_noise_sigma))
            && (self.adc.is_none() || prep.ranged.len() == cols.div_ceil(self.vdpe_size))
    }
}

impl VdpEngine for SconnaEngine {
    fn vdp_keyed(&self, inputs: &[u32], weights: &[i32], key: u64) -> f64 {
        assert_eq!(inputs.len(), weights.len(), "vector length mismatch");
        self.vdp_core(inputs, weights, key)
    }

    // vdp_batch: the trait default already runs the whole patch × kernel
    // tile through `vdp_keyed` with position-derived keys; since this
    // engine's per-pair work is the lock-free `vdp_core` either way, an
    // override would duplicate the default verbatim.

    /// Derives the weight-stationary form the hardware mapping assumes:
    /// the offline DKV conversion of every weight to its clamped LUT
    /// stream address, the per-element sign steering bit, and the
    /// range-matched ADC of every VDPE chunk — computed once per layer
    /// instead of on every tile call.
    fn prepare_weights(&self, weights: &WeightMatrix<'_>) -> PreparedWeights {
        let qmax = self.precision.max_value();
        let mags = weights
            .as_slice()
            .iter()
            .map(|w| w.unsigned_abs().min(qmax) as u16)
            .collect();
        let negs = weights.as_slice().iter().map(|&w| w < 0).collect();
        let ranged = match &self.adc {
            Some(adc) => (0..weights.cols())
                .step_by(self.vdpe_size.max(1))
                .map(|start| self.ranged_adc(adc, self.vdpe_size.min(weights.cols() - start)))
                .collect(),
            None => Vec::new(),
        };
        PreparedWeights::with_payload(
            self.name(),
            weights,
            SconnaPrepared {
                mags,
                negs,
                ranged,
                qmax,
                vdpe_size: self.vdpe_size,
                adc: self.adc.as_ref().map(|a| (a.bits, a.relative_noise_sigma)),
            },
        )
    }

    /// The weight-stationary tile: every `(patch, kernel)` pair runs the
    /// prepared core under the same [`combine_keys`] derivation as the
    /// raw paths — bit-identical to [`VdpEngine::vdp_batch`] on the same
    /// weights (property-tested in `tests/batch_parity.rs`).
    fn vdp_batch_prepared(
        &self,
        patches: &PatchMatrix,
        weights: &PreparedWeights,
        keys: &[u64],
    ) -> Vec<f64> {
        let cols = weights.cols();
        let prep = match weights.payload::<SconnaPrepared>() {
            // Foreign handle or one derived for a differently configured
            // SCONNA engine: recompute from the raw weights.
            Some(p) if self.accepts(p, cols) => p,
            _ => return self.vdp_batch(patches, &weights.as_matrix(), keys),
        };
        assert_eq!(patches.cols(), cols, "patch/kernel vector length mismatch");
        assert_eq!(keys.len(), patches.rows(), "one noise key per patch");
        let mut out = Vec::with_capacity(patches.rows() * weights.rows());
        for (p, &pkey) in keys.iter().enumerate() {
            let prow = patches.row(p);
            for k in 0..weights.rows() {
                out.push(self.vdp_core_prepared(
                    prow,
                    &prep.mags[k * cols..(k + 1) * cols],
                    &prep.negs[k * cols..(k + 1) * cols],
                    &prep.ranged,
                    combine_keys(pkey, k as u64),
                ));
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "sconna-stochastic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sconna_tensor::engine::{combine_keys, ExactEngine, PatchMatrix, WeightMatrix};

    fn test_vectors(len: usize) -> (Vec<u32>, Vec<i32>) {
        let inputs: Vec<u32> = (0..len).map(|k| ((k * 37) % 256) as u32).collect();
        let weights: Vec<i32> = (0..len).map(|k| ((k * 53) % 255) as i32 - 127).collect();
        (inputs, weights)
    }

    #[test]
    fn noiseless_engine_tracks_exact_engine() {
        let (inputs, weights) = test_vectors(500);
        let exact = ExactEngine.vdp(&inputs, &weights);
        let sc = SconnaEngine::noiseless().vdp(&inputs, &weights);
        // Per-element SC error ≤ B counts, scaled by 256.
        let bound = 500.0 * 8.0 * 256.0;
        assert!((sc - exact).abs() <= bound, "sc {sc} exact {exact}");
        // And it should be much better than the bound in practice.
        let rel = (sc - exact).abs() / exact.abs().max(1.0);
        assert!(rel < 0.25, "relative error {rel}");
    }

    #[test]
    fn chunking_handles_vectors_longer_than_n() {
        let (inputs, weights) = test_vectors(4608);
        let sc = SconnaEngine::noiseless().vdp(&inputs, &weights);
        let exact = ExactEngine.vdp(&inputs, &weights);
        let rel = (sc - exact).abs() / exact.abs().max(1.0);
        assert!(rel < 0.25, "relative error {rel} on 27-chunk vector");
    }

    #[test]
    fn zero_inputs_give_zero() {
        let e = SconnaEngine::paper_default(1);
        assert_eq!(e.vdp(&[0; 64], &[5; 64]), 0.0);
        assert_eq!(e.vdp(&[], &[]), 0.0);
    }

    #[test]
    fn noisy_engine_is_seed_deterministic() {
        let (inputs, weights) = test_vectors(300);
        let a = SconnaEngine::paper_default(42).vdp(&inputs, &weights);
        let b = SconnaEngine::paper_default(42).vdp(&inputs, &weights);
        assert_eq!(a, b);
        // A single VDP can quantize identically across seeds (the ADC
        // step is coarse); across a batch the seeds must diverge
        // somewhere.
        let e42 = SconnaEngine::paper_default(42);
        let e43 = SconnaEngine::paper_default(43);
        let diverged = (0..20).any(|k| {
            let (i, w) = test_vectors(100 + 7 * k);
            e42.vdp(&i, &w) != e43.vdp(&i, &w)
        });
        assert!(diverged, "different seeds never diverged across a batch");
    }

    #[test]
    fn distinct_keys_decorrelate_noise() {
        // The keyed scheme must give different noise draws for different
        // accumulator keys somewhere across a batch of vectors (a single
        // pair can collapse onto the same coarse ADC code).
        let e = SconnaEngine::paper_default(7);
        let diverged = (0..20).any(|k| {
            let (i, w) = test_vectors(150 + 11 * k);
            e.vdp_keyed(&i, &w, 1) != e.vdp_keyed(&i, &w, 2)
        });
        assert!(diverged, "keys 1 and 2 never diverged");
        // And the same key is always bit-identical.
        let (i, w) = test_vectors(352);
        assert_eq!(e.vdp_keyed(&i, &w, 99), e.vdp_keyed(&i, &w, 99));
    }

    #[test]
    fn lut_path_matches_closed_form_path() {
        // B12 exceeds the LUT bound, so the engine runs the closed form;
        // B8 runs the tables. On common ground (operands ≤ B8 max, same
        // chunking, no ADC) the noiseless results must agree exactly.
        let (inputs, weights) = test_vectors(400);
        let b8 = SconnaEngine::new(Precision::B8, 176, None, 0);
        assert!(b8.lut.is_some(), "B8 must use the product LUT");
        let closed = {
            let mut e = SconnaEngine::new(Precision::B8, 176, None, 0);
            e.lut = None;
            e
        };
        assert_eq!(
            b8.vdp(&inputs, &weights),
            closed.vdp(&inputs, &weights),
            "LUT and closed form diverged"
        );
    }

    #[test]
    fn adc_noise_increases_error_over_noiseless() {
        let (inputs, weights) = test_vectors(352);
        let exact = ExactEngine.vdp(&inputs, &weights);
        let trials = 50;
        let mut noiseless_err = 0.0;
        let mut noisy_err = 0.0;
        for seed in 0..trials {
            noiseless_err += (SconnaEngine::noiseless().vdp(&inputs, &weights) - exact).abs();
            noisy_err += (SconnaEngine::paper_default(seed).vdp(&inputs, &weights) - exact).abs();
        }
        assert!(
            noisy_err >= noiseless_err,
            "ADC noise must not reduce error: {noisy_err} vs {noiseless_err}"
        );
    }

    #[test]
    fn sign_symmetry() {
        let (inputs, weights) = test_vectors(200);
        let neg: Vec<i32> = weights.iter().map(|w| -w).collect();
        let e = SconnaEngine::noiseless();
        assert_eq!(e.vdp(&inputs, &weights), -e.vdp(&inputs, &neg));
    }

    #[test]
    fn prepared_tile_is_bit_identical_to_raw_tile() {
        // Prepared weights (clamped LUT addresses + signs + ranged ADC)
        // must reproduce the raw batched path bit for bit, ragged tail
        // chunk included (cols 180 = one full 176-chunk + a 4-wide tail).
        let cols = 180;
        let patches = PatchMatrix::from_vec(
            3,
            cols,
            (0..3 * cols).map(|i| ((i * 29) % 256) as u32).collect(),
        );
        let wdata: Vec<i32> = (0..4 * cols)
            .map(|i| ((i * 43) % 255) as i32 - 127)
            .collect();
        let wm = WeightMatrix::new(&wdata, 4, cols);
        let keys = [5u64, 77, 4242];
        for engine in [SconnaEngine::paper_default(11), SconnaEngine::noiseless()] {
            let prepared = engine.prepare_weights(&wm);
            let raw = engine.vdp_batch(&patches, &wm, &keys);
            let fast = engine.vdp_batch_prepared(&patches, &prepared, &keys);
            assert_eq!(
                raw.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn prepared_handle_from_mismatched_config_falls_back() {
        // A handle derived at B8 handed to a B6 engine must not poison
        // the result: the B6 engine recomputes from the raw weights.
        let cols = 24;
        let patches = PatchMatrix::from_vec(
            2,
            cols,
            (0..2 * cols).map(|i| ((i * 13) % 64) as u32).collect(),
        );
        let wdata: Vec<i32> = (0..2 * cols).map(|i| ((i * 7) % 127) as i32 - 63).collect();
        let wm = WeightMatrix::new(&wdata, 2, cols);
        let b8 = SconnaEngine::paper_default(3);
        let b6 = SconnaEngine::new(Precision::new(6), 176, Some(AdcModel::sconna_default()), 3);
        let foreign = b8.prepare_weights(&wm);
        assert_eq!(
            b6.vdp_batch_prepared(&patches, &foreign, &[1, 2]),
            b6.vdp_batch(&patches, &wm, &[1, 2]),
        );
        // And an exact-engine handle handed to SCONNA also falls back.
        let exact_handle = ExactEngine.prepare_weights(&wm);
        assert_eq!(
            b8.vdp_batch_prepared(&patches, &exact_handle, &[1, 2]),
            b8.vdp_batch(&patches, &wm, &[1, 2]),
        );
    }

    #[test]
    fn batch_tile_matches_per_vector_calls() {
        // The tile path must honor the vdp_batch contract bit for bit,
        // including ADC noise keying and ragged tail chunks (vector
        // length 180 = one full 176-chunk + a 4-wide tail).
        let cols = 180;
        let patches = PatchMatrix::from_vec(
            3,
            cols,
            (0..3 * cols).map(|i| ((i * 31) % 256) as u32).collect(),
        );
        let wdata: Vec<i32> = (0..5 * cols)
            .map(|i| ((i * 41) % 255) as i32 - 127)
            .collect();
        let wm = WeightMatrix::new(&wdata, 5, cols);
        let keys = [3u64, 99, 12345];
        let e = SconnaEngine::paper_default(11);
        let got = e.vdp_batch(&patches, &wm, &keys);
        for p in 0..3 {
            for k in 0..5u64 {
                assert_eq!(
                    got[p * 5 + k as usize].to_bits(),
                    e.vdp_keyed(patches.row(p), wm.row(k as usize), combine_keys(keys[p], k))
                        .to_bits(),
                    "p={p} k={k}"
                );
            }
        }
    }
}
