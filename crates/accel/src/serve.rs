//! Multi-instance serving simulation: the traffic dimension the paper's
//! headline throughput claim implies but never models.
//!
//! A *fleet* of R identical accelerator instances serves a stream of
//! inference requests. Requests arrive either by an open-loop Poisson
//! process (independent users at a target rate) or a closed loop (a fixed
//! population of clients, each firing its next request the moment the
//! previous one completes). A batching scheduler packs pending requests
//! into batches of up to `max_batch`, dispatching a full batch as soon as
//! an instance is idle and flushing partial batches once the oldest
//! pending request has waited `batch_window` — the standard
//! dynamic-batching policy of production inference servers.
//!
//! Each dispatched batch occupies one instance for the weight-stationary
//! batched makespan from [`crate::perf`], so the per-batch service time
//! and per-batch dynamic energy are exactly the single-accelerator
//! model's; what this module adds is queueing, packing and fleet-level
//! accounting: throughput, latency percentiles, per-instance utilization
//! and energy per inference.
//!
//! **Functional serving** ([`simulate_serving_functional`]) goes one step
//! further: besides *timing* each batch, every instance owns an
//! engine-backed prepared model
//! ([`sconna_tensor::network::PreparedNetwork`] — weights DKV/LUT
//! converted once at fleet bring-up, the weight-stationary load the
//! hardware mapping assumes) and **executes** each dequeued batch through
//! real `vdp_batch` tiles, the im2col patches of the whole batch stacked
//! per layer. The fleet then reports per-request predictions and top-1
//! **accuracy-under-load** alongside FPS/latency/energy. Request `r`
//! runs under noise key `r`, so its prediction is a pure function of
//! `(model, engine, sample, r)` — independent of batch packing, instance
//! assignment, arrival ordering and worker count.
//!
//! Everything runs on one deterministic [`EventQueue`] per simulation, so
//! a [`ServingReport`] is a pure function of its [`ServingConfig`] —
//! bit-identical across runs and across sweep worker-thread counts.

use crate::organization::AcceleratorConfig;
use crate::perf::{analyze_layer_batched, record_inference_ops, register_components, LayerPerf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sconna_sim::energy::EnergyLedger;
use sconna_sim::event::EventQueue;
use sconna_sim::parallel::parallel_map_with;
use sconna_sim::stats::{LatencySamples, LatencySummary, Utilization};
use sconna_sim::time::SimTime;
use sconna_tensor::dataset::Sample;
use sconna_tensor::engine::VdpEngine;
use sconna_tensor::models::CnnModel;
use sconna_tensor::network::{PreparedNetwork, QuantizedNetwork};
use sconna_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How requests enter the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open loop: exponential inter-arrival times at `rate_fps`
    /// requests per second, independent of service progress.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_fps: f64,
    },
    /// Closed loop: `clients` concurrent users; each fires its next
    /// request the instant its previous one completes (zero think time).
    /// This is the saturation workload that measures peak throughput.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
    },
}

/// One serving experiment: a fleet, a scheduler policy, a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Accelerator configuration every instance runs.
    pub accelerator: AcceleratorConfig,
    /// Number of accelerator instances in the fleet.
    pub instances: usize,
    /// Largest batch the scheduler packs onto one instance.
    pub max_batch: usize,
    /// How long the oldest pending request may wait before a partial
    /// batch is flushed to an idle instance.
    pub batch_window: SimTime,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Total requests to serve; the simulation ends when all complete.
    pub requests: usize,
    /// Seed for the arrival process (unused by `ClosedLoop`).
    pub seed: u64,
}

impl ServingConfig {
    /// A closed-loop saturation test: enough clients to keep every
    /// instance's batch slots full, serving `requests` requests.
    pub fn saturation(
        accelerator: AcceleratorConfig,
        instances: usize,
        max_batch: usize,
        requests: usize,
    ) -> Self {
        Self {
            accelerator,
            instances,
            max_batch,
            batch_window: SimTime::from_ns(100_000), // 100 µs
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 2 * instances * max_batch,
            },
            requests,
            seed: 0,
        }
    }
}

/// The functional side of a serving experiment: the quantized model the
/// instances actually execute, the labelled request population, and the
/// VDP engine backing every instance.
///
/// Request `r` is drawn round-robin from `samples`
/// (`samples[r % samples.len()]`) and runs under image noise key `r`, so
/// the prediction set is a pure function of this workload — independent
/// of fleet size, batch packing, arrival process and `workers`.
pub struct FunctionalWorkload<'a> {
    /// The quantized network every instance loads.
    pub net: &'a QuantizedNetwork,
    /// Labelled request population (round-robin by request id).
    pub samples: &'a [Sample],
    /// Engine each instance's prepared model executes on.
    pub engine: &'a dyn VdpEngine,
    /// Worker threads for the row-block parallelism inside one instance's
    /// batch execution. Results are worker-count invariant; this only
    /// changes host wall time.
    pub workers: usize,
}

/// [`ServingReport`] plus the functional outputs: what the fleet actually
/// computed while the queueing model timed it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionalServingReport {
    /// The queueing/energy report (identical to the analytic-only
    /// simulation of the same config).
    pub serving: ServingReport,
    /// Predicted class per request, indexed by request id.
    pub predictions: Vec<usize>,
    /// Requests whose prediction matched the sample label.
    pub correct: u64,
    /// Fleet-level top-1 accuracy-under-load: `correct / completed`.
    pub accuracy_under_load: f64,
}

/// Per-instance functional execution state: each instance owns a
/// prepared (weight-stationary) copy of the model, loaded once at fleet
/// bring-up, plus the request-id-indexed prediction ledger.
struct FunctionalExec<'a> {
    workload: &'a FunctionalWorkload<'a>,
    /// One engine-backed prepared model per instance.
    instances: Vec<PreparedNetwork<'a>>,
    /// Prediction per request id (`usize::MAX` = not yet served).
    predictions: Vec<usize>,
    correct: u64,
}

impl<'a> FunctionalExec<'a> {
    fn new(workload: &'a FunctionalWorkload<'a>, instances: usize, requests: usize) -> Self {
        assert!(!workload.samples.is_empty(), "functional serving needs samples");
        assert!(workload.workers > 0, "need at least one worker");
        Self {
            workload,
            // Model load: every instance prepares the weights once —
            // per-layer DKV/LUT stream conversion, narrow GEMM forms —
            // before the first request arrives.
            instances: (0..instances)
                .map(|_| PreparedNetwork::new(workload.net, workload.engine))
                .collect(),
            predictions: vec![usize::MAX; requests],
            correct: 0,
        }
    }

    /// Executes one dispatched batch on instance `inst`: the whole
    /// batch's images run through stacked `vdp_batch` tiles, keyed per
    /// request id.
    fn execute_batch(&mut self, inst: usize, ids: &[u64]) {
        let samples = self.workload.samples;
        let images: Vec<&Tensor<f32>> = ids
            .iter()
            .map(|&id| &samples[id as usize % samples.len()].image)
            .collect();
        let preds = self.instances[inst].predict_batch(&images, ids, self.workload.workers);
        for (&id, pred) in ids.iter().zip(preds) {
            self.predictions[id as usize] = pred;
            if pred == samples[id as usize % samples.len()].label {
                self.correct += 1;
            }
        }
    }
}

/// Fleet-level result of one serving simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingReport {
    /// Accelerator display name.
    pub accelerator: &'static str,
    /// Model name.
    pub model: String,
    /// Fleet size.
    pub instances: usize,
    /// Scheduler batch limit.
    pub max_batch: usize,
    /// Requests completed.
    pub completed: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch (batch-slot fill).
    pub mean_batch_fill: f64,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Served throughput: completed / makespan.
    pub fps: f64,
    /// End-to-end request latency distribution (queueing + service).
    pub latency: LatencySummary,
    /// Per-instance utilization over the makespan, instance order.
    pub utilization: Vec<f64>,
    /// Total fleet energy over the makespan, joules.
    pub energy_j: f64,
    /// Energy per completed inference, joules.
    pub energy_per_inference_j: f64,
    /// Average fleet power, watts.
    pub avg_power_w: f64,
}

/// Scheduler events.
enum Ev {
    /// A request enters the queue.
    Arrive,
    /// The batching window of epoch `.0` expired.
    Flush(u64),
    /// Instance `.0` finished a batch of `(request id, arrival time)`
    /// requests.
    BatchDone(usize, Vec<(u64, SimTime)>),
}

/// Per-batch-size analysis cache: the batched layer walk is identical for
/// every batch of the same size, so it is computed once per size.
struct BatchProfiles<'a> {
    cfg: &'a AcceleratorConfig,
    model: &'a CnnModel,
    by_size: Vec<Option<(SimTime, Vec<LayerPerf>)>>,
}

impl<'a> BatchProfiles<'a> {
    fn new(cfg: &'a AcceleratorConfig, model: &'a CnnModel, max_batch: usize) -> Self {
        Self {
            cfg,
            model,
            by_size: vec![None; max_batch + 1],
        }
    }

    fn get(&mut self, batch: usize) -> &(SimTime, Vec<LayerPerf>) {
        let slot = &mut self.by_size[batch];
        if slot.is_none() {
            let layers: Vec<LayerPerf> = self
                .model
                .workloads
                .iter()
                .map(|w| analyze_layer_batched(self.cfg, w, batch))
                .collect();
            let makespan = layers
                .iter()
                .fold(SimTime::ZERO, |acc, l| acc + l.total);
            *slot = Some((makespan, layers));
        }
        slot.as_ref().expect("just filled")
    }
}

/// Mutable scheduler state threaded through the event handlers.
struct Scheduler<'a> {
    cfg: ServingConfig,
    model: &'a CnnModel,
    profiles: BatchProfiles<'a>,
    /// Functional execution state; `None` runs the analytic-only model.
    functional: Option<FunctionalExec<'a>>,
    ledger: EnergyLedger,
    /// `(request id, arrival time)` of requests waiting to be batched.
    /// Ids are assigned in arrival order, so id `r` always denotes the
    /// `r`-th request to enter the system regardless of the arrival
    /// process.
    pending: VecDeque<(u64, SimTime)>,
    /// Next request id to assign.
    next_id: u64,
    busy: Vec<bool>,
    util: Vec<Utilization>,
    latency: LatencySamples,
    issued: usize,
    completed: u64,
    batches: u64,
    batched_requests: u64,
    last_completion: SimTime,
    /// Monotonic epoch invalidating stale flush timers.
    flush_epoch: u64,
    /// A flush timer for the current epoch is in flight.
    flush_armed: bool,
    /// The window expired with requests still queued: dispatch partial
    /// batches at the next opportunity.
    force_flush: bool,
    rng: StdRng,
}

impl Scheduler<'_> {
    /// Lowest-numbered idle instance, if any.
    fn idle_instance(&self) -> Option<usize> {
        self.busy.iter().position(|&b| !b)
    }

    fn schedule_poisson_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if self.issued >= self.cfg.requests {
            return;
        }
        let ArrivalProcess::Poisson { rate_fps } = self.cfg.arrivals else {
            return;
        };
        assert!(rate_fps > 0.0, "Poisson rate must be positive");
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate_fps;
        self.issued += 1;
        q.schedule_in(SimTime::from_secs_f64(dt), Ev::Arrive);
    }

    /// Dispatches as many batches as idle instances and pending requests
    /// allow. Full batches always go; partial batches only when
    /// `force_flush` is set (the window expired).
    fn try_dispatch(&mut self, q: &mut EventQueue<Ev>) {
        while !self.pending.is_empty() {
            let take = if self.pending.len() >= self.cfg.max_batch {
                self.cfg.max_batch
            } else if self.force_flush {
                self.pending.len()
            } else {
                break;
            };
            let Some(inst) = self.idle_instance() else {
                break;
            };
            let reqs: Vec<(u64, SimTime)> = self.pending.drain(..take).collect();
            let (makespan, layers) = self.profiles.get(take);
            let makespan = *makespan;
            record_inference_ops(
                &mut self.ledger,
                &self.cfg.accelerator,
                layers,
                self.model,
                take,
            );
            if let Some(func) = &mut self.functional {
                // Run the real inference the analytic model is timing:
                // the whole batch through one stack of prepared tiles on
                // this instance's model copy.
                let ids: Vec<u64> = reqs.iter().map(|&(id, _)| id).collect();
                func.execute_batch(inst, &ids);
            }
            self.busy[inst] = true;
            self.util[inst].add_busy(makespan);
            self.batches += 1;
            self.batched_requests += take as u64;
            q.schedule_in(makespan, Ev::BatchDone(inst, reqs));
        }
        if self.pending.is_empty() {
            // Window satisfied; stale timers are invalidated by the epoch.
            self.force_flush = false;
            self.flush_armed = false;
            self.flush_epoch += 1;
        } else if !self.flush_armed && !self.force_flush {
            self.flush_armed = true;
            q.schedule_in(self.cfg.batch_window, Ev::Flush(self.flush_epoch));
        }
    }

    /// Enqueues a request, assigning the next id in arrival order.
    fn enqueue(&mut self, now: SimTime) {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back((id, now));
    }

    fn handle(&mut self, q: &mut EventQueue<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive => {
                self.enqueue(now);
                self.schedule_poisson_arrival(q);
                self.try_dispatch(q);
            }
            Ev::Flush(epoch) => {
                if epoch != self.flush_epoch {
                    return; // stale timer from an already-drained queue
                }
                self.flush_armed = false;
                self.force_flush = true;
                self.try_dispatch(q);
            }
            Ev::BatchDone(inst, reqs) => {
                self.busy[inst] = false;
                self.last_completion = now;
                let n_done = reqs.len();
                for (_, arrival) in reqs {
                    self.latency.record(now - arrival);
                    self.completed += 1;
                }
                if let ArrivalProcess::ClosedLoop { .. } = self.cfg.arrivals {
                    // Each completed client immediately re-requests.
                    for _ in 0..n_done {
                        if self.issued < self.cfg.requests {
                            self.issued += 1;
                            self.enqueue(now);
                        }
                    }
                }
                self.try_dispatch(q);
            }
        }
    }
}

/// Runs one serving simulation to completion, analytic timing only.
///
/// # Panics
/// Panics on degenerate configurations: zero instances, zero batch limit,
/// zero requests, or a non-positive Poisson rate.
pub fn simulate_serving(config: &ServingConfig, model: &CnnModel) -> ServingReport {
    run_serving(config, model, None).0
}

/// Runs one **functional** serving simulation: the same queueing, timing
/// and energy model as [`simulate_serving`] (the `serving` field is
/// bit-identical to the analytic-only run of the same config), with every
/// instance additionally executing its dequeued batches through real
/// stacked `vdp_batch` tiles on a prepared model copy.
///
/// Request `r` serves `workload.samples[r % samples.len()]` under noise
/// key `r`, so `predictions` and `accuracy_under_load` are invariant
/// under fleet size, batch packing, arrival ordering and `workers`
/// (property-tested in `tests/functional_serving.rs`).
///
/// # Panics
/// Panics on degenerate configurations or an empty sample set.
pub fn simulate_serving_functional(
    config: &ServingConfig,
    model: &CnnModel,
    workload: &FunctionalWorkload<'_>,
) -> FunctionalServingReport {
    let (serving, func) = run_serving(config, model, Some(workload));
    let func = func.expect("functional state present");
    debug_assert!(
        func.predictions.iter().all(|&p| p != usize::MAX),
        "every request must have been executed"
    );
    let correct = func.correct;
    FunctionalServingReport {
        accuracy_under_load: correct as f64 / serving.completed as f64,
        predictions: func.predictions,
        correct,
        serving,
    }
}

/// Shared core of the analytic and functional entry points.
fn run_serving<'a>(
    config: &'a ServingConfig,
    model: &'a CnnModel,
    workload: Option<&'a FunctionalWorkload<'a>>,
) -> (ServingReport, Option<FunctionalExec<'a>>) {
    assert!(config.instances > 0, "need at least one instance");
    assert!(config.max_batch > 0, "max_batch must be positive");
    assert!(config.requests > 0, "need at least one request");

    let mut ledger = EnergyLedger::new();
    for _ in 0..config.instances {
        register_components(&mut ledger, &config.accelerator);
    }

    let mut sched = Scheduler {
        model,
        profiles: BatchProfiles::new(&config.accelerator, model, config.max_batch),
        functional: workload.map(|w| FunctionalExec::new(w, config.instances, config.requests)),
        ledger,
        pending: VecDeque::new(),
        next_id: 0,
        busy: vec![false; config.instances],
        util: vec![Utilization::new(); config.instances],
        latency: LatencySamples::new(),
        issued: 0,
        completed: 0,
        batches: 0,
        batched_requests: 0,
        last_completion: SimTime::ZERO,
        flush_epoch: 0,
        flush_armed: false,
        force_flush: false,
        rng: StdRng::seed_from_u64(config.seed),
        cfg: config.clone(),
    };

    let mut q = EventQueue::new();
    match config.arrivals {
        ArrivalProcess::Poisson { .. } => {
            // Seed the first arrival; each arrival schedules the next.
            sched.schedule_poisson_arrival(&mut q);
        }
        ArrivalProcess::ClosedLoop { clients } => {
            assert!(clients > 0, "closed loop needs at least one client");
            let initial = clients.min(config.requests);
            for _ in 0..initial {
                sched.issued += 1;
                q.schedule_at(SimTime::ZERO, Ev::Arrive);
            }
        }
    }

    q.run(|q, now, ev| sched.handle(q, now, ev));

    assert_eq!(
        sched.completed as usize, config.requests,
        "scheduler must drain every request"
    );
    // Stale flush timers may fire after the last completion, so the
    // serving makespan is the last completion time, not the queue's final
    // clock.
    let makespan = sched.last_completion;
    let energy_j = sched.ledger.total_energy_j(makespan);
    let report = ServingReport {
        accelerator: config.accelerator.name,
        model: model.name.clone(),
        instances: config.instances,
        max_batch: config.max_batch,
        completed: sched.completed,
        batches: sched.batches,
        mean_batch_fill: sched.batched_requests as f64 / sched.batches as f64,
        makespan,
        fps: sched.completed as f64 / makespan.as_secs_f64(),
        latency: sched.latency.summary(),
        utilization: sched.util.iter().map(|u| u.ratio(makespan)).collect(),
        energy_j,
        energy_per_inference_j: energy_j / sched.completed as f64,
        avg_power_w: sched.ledger.average_power_w(makespan),
    };
    (report, sched.functional)
}

/// Runs a sweep of serving configurations in parallel on `workers`
/// threads. Each sweep point is an independent simulation with its own
/// event queue and seed, so the result vector is bit-identical for every
/// worker count (property-tested in `tests/determinism.rs`).
pub fn sweep(configs: Vec<ServingConfig>, model: &CnnModel, workers: usize) -> Vec<ServingReport> {
    parallel_map_with(configs, workers, |c| simulate_serving(&c, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SconnaEngine;
    use sconna_tensor::layers::{MaxPool2d, QConv2d, QFc};
    use sconna_tensor::models::{googlenet, shufflenet_v2};
    use sconna_tensor::network::QLayer;
    use sconna_tensor::quant::{ActivationQuant, Requant, WeightQuant};

    fn small_closed(instances: usize, max_batch: usize, requests: usize) -> ServingConfig {
        ServingConfig::saturation(
            AcceleratorConfig::sconna(),
            instances,
            max_batch,
            requests,
        )
    }

    /// A hand-built quantized CNN (no training) plus a labelled request
    /// population for functional-serving tests.
    fn tiny_workload() -> (QuantizedNetwork, Vec<Sample>) {
        let aq = ActivationQuant { scale: 1.0 / 255.0, bits: 8 };
        let wq = WeightQuant { scale: 1.0 / 127.0, bits: 8 };
        let net = QuantizedNetwork {
            input_quant: aq,
            layers: vec![
                QLayer::Conv(QConv2d {
                    name: "c1".into(),
                    weights: Tensor::from_fn(&[4, 1, 3, 3], |i| ((i * 29) % 255) as i32 - 127),
                    bias: vec![0.0; 4],
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    requant: Requant::new(aq, wq, aq),
                }),
                QLayer::MaxPool(MaxPool2d { kernel: 2, stride: 2, padding: 0 }),
                QLayer::GlobalAvgPool,
                QLayer::Fc(QFc {
                    name: "fc".into(),
                    weights: Tensor::from_fn(&[3, 4], |i| ((i * 67) % 255) as i32 - 127),
                    bias: vec![0.0; 3],
                    dequant: aq.scale * wq.scale,
                }),
            ],
        };
        let samples: Vec<Sample> = (0..6)
            .map(|s| Sample {
                image: Tensor::from_fn(&[1, 8, 8], |i| ((s * 37 + i) % 256) as f32 / 255.0),
                label: s % 3,
            })
            .collect();
        (net, samples)
    }

    #[test]
    fn functional_report_matches_offline_per_request_inference() {
        // Every prediction must equal the offline forward of the same
        // sample under the same request-id key — the fleet adds queueing,
        // never computation.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(5);
        let workload = FunctionalWorkload { net: &net, samples: &samples, engine: &engine, workers: 1 };
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 13);
        let r = simulate_serving_functional(&cfg, &model, &workload);
        assert_eq!(r.predictions.len(), 13);
        for (id, &pred) in r.predictions.iter().enumerate() {
            let s = &samples[id % samples.len()];
            let offline = sconna_tensor::layers::argmax(&net.forward_keyed(&s.image, &engine, id as u64));
            assert_eq!(pred, offline, "request {id}");
        }
        let correct = r
            .predictions
            .iter()
            .enumerate()
            .filter(|&(id, &p)| p == samples[id % samples.len()].label)
            .count() as u64;
        assert_eq!(r.correct, correct);
        assert_eq!(r.accuracy_under_load, correct as f64 / 13.0);
    }

    #[test]
    fn functional_timing_is_identical_to_analytic_run() {
        // Executing real inference must not perturb the queueing model:
        // the serving half of the functional report is bit-identical to
        // the analytic-only simulation of the same config.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(5);
        let workload = FunctionalWorkload { net: &net, samples: &samples, engine: &engine, workers: 2 };
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 16);
        let functional = simulate_serving_functional(&cfg, &model, &workload);
        let analytic = simulate_serving(&cfg, &model);
        assert_eq!(format!("{:?}", functional.serving), format!("{analytic:?}"));
    }

    #[test]
    fn accuracy_under_load_is_fleet_and_schedule_invariant() {
        // Predictions are keyed per request id, so fleet size, batch
        // limit, arrival process and instance workers must not move a
        // single prediction bit.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(9);
        let model = shufflenet_v2();
        let requests = 17;
        let baseline = {
            let workload = FunctionalWorkload { net: &net, samples: &samples, engine: &engine, workers: 1 };
            simulate_serving_functional(&small_closed(1, 1, requests), &model, &workload)
        };
        for (instances, max_batch, workers) in [(1usize, 4usize, 2usize), (2, 4, 1), (4, 2, 8)] {
            let workload = FunctionalWorkload { net: &net, samples: &samples, engine: &engine, workers };
            let r = simulate_serving_functional(
                &small_closed(instances, max_batch, requests),
                &model,
                &workload,
            );
            assert_eq!(r.predictions, baseline.predictions, "{instances}x{max_batch} w{workers}");
            assert_eq!(r.accuracy_under_load, baseline.accuracy_under_load);
        }
        // Open-loop arrivals reorder timing but not request identity.
        let workload = FunctionalWorkload { net: &net, samples: &samples, engine: &engine, workers: 2 };
        let poisson = simulate_serving_functional(
            &ServingConfig {
                arrivals: ArrivalProcess::Poisson { rate_fps: 800.0 },
                seed: 3,
                ..small_closed(2, 4, requests)
            },
            &model,
            &workload,
        );
        assert_eq!(poisson.predictions, baseline.predictions);
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 37), &model);
        assert_eq!(r.completed, 37);
        assert_eq!(r.latency.count, 37);
        assert!(r.batches >= 37u64.div_ceil(4));
        assert!(r.mean_batch_fill >= 1.0 && r.mean_batch_fill <= 4.0);
    }

    #[test]
    fn fps_scales_with_instance_count() {
        // The acceptance bar: ≥ 1.8× served FPS from 1 → 2 instances on
        // GoogleNet under saturation.
        let model = googlenet();
        let one = simulate_serving(&small_closed(1, 8, 64), &model);
        let two = simulate_serving(&small_closed(2, 8, 64), &model);
        let scaling = two.fps / one.fps;
        assert!(
            scaling >= 1.8,
            "1→2 instance scaling {scaling} (fps {} → {})",
            one.fps,
            two.fps
        );
    }

    #[test]
    fn batching_lowers_energy_per_inference() {
        // Pipeline fill and weight traffic amortize across a batch while
        // static power integrates over a shorter makespan. 64 requests
        // pack both sweeps tail-free (64 = 2·32·1 = 2·2·16), so the
        // comparison isolates amortization from batch-quantization idle.
        let model = googlenet();
        let b1 = simulate_serving(&small_closed(2, 1, 64), &model);
        let b16 = simulate_serving(&small_closed(2, 16, 64), &model);
        assert!(
            b16.energy_per_inference_j < b1.energy_per_inference_j,
            "batch-16 {} J vs batch-1 {} J",
            b16.energy_per_inference_j,
            b1.energy_per_inference_j
        );
        assert!(b16.fps >= b1.fps, "batching must not lose throughput");
    }

    #[test]
    fn saturated_fleet_is_highly_utilized() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 64), &model);
        assert_eq!(r.utilization.len(), 2);
        for (i, u) in r.utilization.iter().enumerate() {
            assert!(*u > 0.8, "instance {i} utilization {u}");
        }
    }

    #[test]
    fn latency_percentiles_are_ordered_and_cover_service_time() {
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 64);
        let r = simulate_serving(&cfg, &model);
        assert!(r.latency.p50 <= r.latency.p95);
        assert!(r.latency.p95 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.max);
        // Every request at least pays one batch service time.
        let service = model
            .workloads
            .iter()
            .fold(SimTime::ZERO, |acc, w| {
                acc + analyze_layer_batched(&cfg.accelerator, w, 1).total
            });
        assert!(r.latency.p50 >= service);
    }

    #[test]
    fn poisson_below_capacity_keeps_queue_short() {
        let model = shufflenet_v2();
        // Closed-loop saturation first, to find capacity.
        let sat = simulate_serving(&small_closed(1, 4, 48), &model);
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson {
                rate_fps: sat.fps * 0.3,
            },
            seed: 7,
            ..small_closed(1, 4, 48)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 48);
        // At 30 % load the p50 wait is bounded by the batch window plus
        // a couple of service times.
        let bound = cfg.batch_window
            + SimTime::from_ps(3 * sat.latency.p50.as_ps());
        assert!(
            r.latency.p50 <= bound,
            "p50 {} vs bound {}",
            r.latency.p50,
            bound
        );
        // Mean utilization is moderate.
        let mean_util: f64 = r.utilization.iter().sum::<f64>() / r.utilization.len() as f64;
        assert!(mean_util < 0.9, "utilization {mean_util} at 30% load");
    }

    #[test]
    fn poisson_is_seed_deterministic_and_seed_sensitive() {
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson { rate_fps: 500.0 },
            seed: 11,
            ..small_closed(1, 4, 32)
        };
        let a = simulate_serving(&cfg, &model);
        let b = simulate_serving(&cfg, &model);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = simulate_serving(&ServingConfig { seed: 12, ..cfg.clone() }, &model);
        assert_ne!(
            a.makespan, c.makespan,
            "different seeds must shift the arrival process"
        );
    }

    #[test]
    fn partial_batches_flush_after_window() {
        // 3 requests, max_batch 8: the only way they complete is a
        // window flush; fill must reflect the partial batch.
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 3 },
            ..small_closed(1, 8, 3)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 3);
        assert_eq!(r.batches, 1);
        assert!((r.mean_batch_fill - 3.0).abs() < 1e-12);
        // Latency includes the flush wait.
        assert!(r.latency.p50 >= cfg.batch_window);
    }

    #[test]
    fn single_request_single_instance() {
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 1 },
            ..small_closed(1, 1, 1)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 1);
        assert_eq!(r.batches, 1);
        // A lone request with max_batch 1 dispatches immediately: its
        // latency is exactly the batch-1 service time, which equals the
        // single-inference makespan.
        let single = crate::perf::simulate_inference(&cfg.accelerator, &model);
        assert_eq!(r.latency.max, single.makespan);
    }

    #[test]
    fn sweep_covers_every_config_in_order() {
        let model = shufflenet_v2();
        let configs: Vec<ServingConfig> = [1usize, 2, 3]
            .into_iter()
            .map(|i| small_closed(i, 2, 12))
            .collect();
        let reports = sweep(configs, &model, 2);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.instances, i + 1);
            assert_eq!(r.completed, 12);
        }
    }
}
