//! Multi-instance serving simulation: the traffic dimension the paper's
//! headline throughput claim implies but never models.
//!
//! A *fleet* of R identical accelerator instances serves a stream of
//! inference requests. Requests arrive by an open-loop Poisson process
//! (independent users at a target rate), a closed loop (a fixed
//! population of clients, each firing its next request the moment the
//! previous one completes), or a replayed trace. A batching scheduler
//! packs pending requests into batches of up to `max_batch`, dispatching
//! a full batch as soon as an instance is idle and flushing partial
//! batches once the oldest pending request has waited `batch_window` —
//! the standard dynamic-batching policy of production inference servers.
//!
//! Each dispatched batch occupies one instance for the weight-stationary
//! batched makespan from [`crate::perf`], so the per-batch service time
//! and per-batch dynamic energy are exactly the single-accelerator
//! model's; what this module adds is queueing, packing and fleet-level
//! accounting: throughput, latency percentiles, per-instance utilization
//! and energy per inference.
//!
//! **Overload & admission control.** The pending queue can be bounded
//! (`queue_cap` requests per instance) and an [`AdmissionPolicy`] decides
//! what happens to traffic the fleet cannot absorb: reject the newcomer
//! ([`AdmissionPolicy::DropNewest`]), evict the oldest waiter
//! ([`AdmissionPolicy::DropOldest`]), shed requests whose queue wait has
//! already blown their latency SLO ([`AdmissionPolicy::Deadline`]), or
//! route overflow to a cheaper low-precision fallback model so shedding
//! trades accuracy instead of availability
//! ([`AdmissionPolicy::Degrade`]). Reports account every offered request
//! into exactly one of *served*, *dropped* or *degraded*, quote goodput
//! and drop rate, and carry the queue-depth time series
//! ([`sconna_sim::stats::QueueDepthSamples`]). [`overload_sweep`] walks
//! the offered load across the saturation knee and returns the
//! accuracy-vs-load / tail-latency-vs-load curve.
//!
//! **Functional serving** ([`simulate_serving_functional`]) goes one step
//! further: besides *timing* each batch, every instance owns an
//! engine-backed prepared model
//! ([`sconna_tensor::network::PreparedNetwork`] — weights DKV/LUT
//! converted once at fleet bring-up, the weight-stationary load the
//! hardware mapping assumes) and **executes** each dequeued batch through
//! real `vdp_batch` tiles, the im2col patches of the whole batch stacked
//! per layer. The fleet then reports per-request predictions and top-1
//! **accuracy-under-load** alongside FPS/latency/energy. Request `r`
//! runs under noise key `r`, so its prediction is a pure function of
//! `(model, engine, sample, r)` — independent of batch packing, instance
//! assignment, arrival ordering and worker count. Under
//! [`AdmissionPolicy::Degrade`] the instances additionally hold a
//! prepared copy of the low-precision fallback network and run degraded
//! batches through it.
//!
//! Everything runs on one deterministic [`EventQueue`] per simulation, so
//! a [`ServingReport`] is a pure function of its [`ServingConfig`] —
//! bit-identical across runs and across sweep worker-thread counts.

use crate::organization::AcceleratorConfig;
use crate::perf::{analyze_layer_batched, record_inference_ops, register_components, LayerPerf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sconna_sim::energy::EnergyLedger;
use sconna_sim::event::EventQueue;
use sconna_sim::parallel::parallel_map_with;
use sconna_sim::stats::{LatencySamples, LatencySummary, QueueDepthSamples, Utilization};
use sconna_sim::time::SimTime;
use sconna_tensor::dataset::Sample;
use sconna_tensor::engine::VdpEngine;
use sconna_tensor::models::CnnModel;
use sconna_tensor::network::{PreparedNetwork, QuantizedNetwork};
use sconna_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How requests enter the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open loop: exponential inter-arrival times at `rate_fps`
    /// requests per second, independent of service progress.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_fps: f64,
    },
    /// Closed loop: `clients` concurrent users; each fires its next
    /// request the instant its previous one completes — or is shed (a
    /// rejected client immediately retries with a fresh request). This
    /// is the saturation workload that measures peak throughput.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
    },
    /// Replay: request `i` of the trace arrives at `times[i]`. The trace
    /// length must equal `ServingConfig::requests`. Request ids are
    /// assigned in *time* order (ties by schedule order), so any
    /// permutation of a tie-free trace simulates identically —
    /// the reordering invariance the overload determinism tests pin.
    Trace {
        /// Absolute arrival times (need not be sorted).
        times: Vec<SimTime>,
    },
}

/// What the scheduler does with traffic the bounded queue cannot absorb.
///
/// Shedding triggers when a request arrives while the pending queue
/// holds at least `queue_cap × instances` requests (and, for
/// [`AdmissionPolicy::Deadline`], additionally at dispatch time). With
/// `queue_cap: None` only `Deadline` ever sheds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject the arriving request (classic tail drop). The default; with
    /// an unbounded queue this is exactly the pre-overload scheduler.
    #[default]
    DropNewest,
    /// Evict the oldest waiting request and admit the newcomer (the
    /// freshest traffic is the most likely to still meet its deadline).
    DropOldest,
    /// Tail drop at the queue cap, plus SLO-aware shedding at dispatch:
    /// any request whose queue wait already exceeds `slo` when an
    /// instance would pick it up is shed instead of served — it could
    /// only have become a late answer nobody is waiting for.
    Deadline {
        /// Queue-wait budget per request.
        slo: SimTime,
    },
    /// Never drop: requests arriving over the cap are admitted onto the
    /// same queue but marked **degraded** — they execute on a cheaper
    /// `fallback_bits`-weight-precision copy of the model
    /// ([`sconna_tensor::network::QuantizedNetwork::with_weight_bits`])
    /// whose shorter stochastic streams make their batches
    /// `2^native / 2^fallback` times faster
    /// ([`AcceleratorConfig::with_native_bits`]). Shedding trades
    /// accuracy instead of availability.
    Degrade {
        /// Weight precision of the fallback model, bits.
        fallback_bits: u8,
    },
}

/// One serving experiment: a fleet, a scheduler policy, a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Accelerator configuration every instance runs.
    pub accelerator: AcceleratorConfig,
    /// Number of accelerator instances in the fleet.
    pub instances: usize,
    /// Largest batch the scheduler packs onto one instance.
    pub max_batch: usize,
    /// How long the oldest pending request may wait before a partial
    /// batch is flushed to an idle instance.
    pub batch_window: SimTime,
    /// Pending-queue bound, requests **per instance** (the shared queue
    /// holds at most `queue_cap × instances`); `None` is unbounded.
    pub queue_cap: Option<usize>,
    /// What happens to traffic over the bound.
    pub admission: AdmissionPolicy,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Total requests to serve; the simulation ends when every one has
    /// been served, degraded or shed.
    pub requests: usize,
    /// Seed for the arrival process (unused by `ClosedLoop`/`Trace`).
    pub seed: u64,
}

impl ServingConfig {
    /// A closed-loop saturation test: `2 × instances × max_batch`
    /// zero-think-time clients — enough that whenever an instance goes
    /// idle a full batch is already waiting, so every batch slot stays
    /// occupied and the measured FPS is the fleet's service **capacity**.
    /// That capacity is the knee of the open-loop overload sweep: offered
    /// load below it is served at the offered rate, load above it can
    /// only be absorbed by queueing and shedding (see [`overload_sweep`]
    /// and the closed-form [`ServingConfig::estimated_capacity_fps`],
    /// which this measured knee is unit-pinned against).
    ///
    /// Unbounded queue, [`AdmissionPolicy::DropNewest`] — i.e. no
    /// shedding: the closed loop self-limits at `clients` outstanding
    /// requests.
    pub fn saturation(
        accelerator: AcceleratorConfig,
        instances: usize,
        max_batch: usize,
        requests: usize,
    ) -> Self {
        Self {
            accelerator,
            instances,
            max_batch,
            batch_window: SimTime::from_ns(100_000), // 100 µs
            queue_cap: None,
            admission: AdmissionPolicy::DropNewest,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 2 * instances * max_batch,
            },
            requests,
            seed: 0,
        }
    }

    /// Closed-form service-capacity estimate: `instances × max_batch`
    /// requests complete every full-batch makespan, so
    /// `capacity = instances · max_batch / makespan(max_batch)`. This is
    /// the saturation throughput the closed-loop measurement converges to
    /// (it ignores window flushes and the final partial batch, so short
    /// runs measure slightly below it) and the knee of the open-loop
    /// overload sweep — pinned against both in this module's tests so
    /// the estimate and the simulator cannot silently diverge.
    pub fn estimated_capacity_fps(&self, model: &CnnModel) -> f64 {
        let makespan = model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
            acc + analyze_layer_batched(&self.accelerator, w, self.max_batch).total
        });
        (self.instances * self.max_batch) as f64 / makespan.as_secs_f64()
    }
}

/// The terminal state of one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Served at full fidelity.
    Served,
    /// Served on the low-precision fallback model
    /// ([`AdmissionPolicy::Degrade`]).
    Degraded,
    /// Rejected on arrival at a full queue ([`AdmissionPolicy::DropNewest`]
    /// or the arrival-side bound of [`AdmissionPolicy::Deadline`]).
    ShedNewest,
    /// Evicted from the queue head by a newer arrival
    /// ([`AdmissionPolicy::DropOldest`]).
    ShedOldest,
    /// Shed at dispatch with its queue wait past the SLO
    /// ([`AdmissionPolicy::Deadline`]).
    ShedDeadline,
}

/// Per-cause shed counters. `newest + oldest + deadline` is the dropped
/// total; `degraded` counts requests routed to the fallback model (they
/// are *served*, not dropped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedCounts {
    /// Arrivals rejected at a full queue.
    pub newest: u64,
    /// Oldest waiters evicted by newer arrivals.
    pub oldest: u64,
    /// Requests shed at dispatch with their SLO already blown.
    pub deadline: u64,
    /// Requests admitted onto the degraded (fallback-model) tier.
    pub degraded: u64,
}

/// The functional side of a serving experiment: the quantized model the
/// instances actually execute, the labelled request population, and the
/// VDP engine backing every instance.
///
/// Request `r` is drawn round-robin from `samples`
/// (`samples[r % samples.len()]`) and runs under image noise key `r`, so
/// the prediction set is a pure function of this workload — independent
/// of fleet size, batch packing, arrival process and `workers`.
pub struct FunctionalWorkload<'a> {
    /// The quantized network every instance loads.
    pub net: &'a QuantizedNetwork,
    /// Low-precision fallback network degraded batches execute on;
    /// required when the admission policy is [`AdmissionPolicy::Degrade`]
    /// (typically `net.degraded(fallback_bits)`).
    pub fallback: Option<&'a QuantizedNetwork>,
    /// Engine the fallback network runs on — typically the same
    /// organization at `Precision::new(fallback_bits)`, whose shorter
    /// streams and range-matched ADC keep the fallback's signal-to-noise
    /// at its own grid. `None` shares the primary engine.
    pub fallback_engine: Option<&'a dyn VdpEngine>,
    /// Labelled request population (round-robin by request id).
    pub samples: &'a [Sample],
    /// Engine each instance's prepared model executes on.
    pub engine: &'a dyn VdpEngine,
    /// Worker threads for the row-block parallelism inside one instance's
    /// batch execution. Results are worker-count invariant; this only
    /// changes host wall time.
    pub workers: usize,
}

/// [`ServingReport`] plus the functional outputs: what the fleet actually
/// computed while the queueing model timed it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionalServingReport {
    /// The queueing/energy report (identical to the analytic-only
    /// simulation of the same config).
    pub serving: ServingReport,
    /// Predicted class per request, indexed by request id; `usize::MAX`
    /// marks a dropped request (it never got a response).
    pub predictions: Vec<usize>,
    /// Terminal state per request, indexed by request id — the **shed
    /// set** of the run.
    pub outcomes: Vec<RequestOutcome>,
    /// Responses (full-fidelity or degraded) whose prediction matched the
    /// sample label.
    pub correct: u64,
    /// Top-1 accuracy over **admitted** traffic: `correct / responses`
    /// where `responses = completed + degraded` (0 when nothing was
    /// served).
    pub accuracy_under_load: f64,
    /// Top-1 accuracy over **offered** traffic: `correct / offered` — a
    /// dropped request is an answer nobody got, so it scores as wrong.
    pub accuracy_offered: f64,
}

/// Per-instance functional execution state: each instance owns a
/// prepared (weight-stationary) copy of the model — and, under
/// [`AdmissionPolicy::Degrade`], of the fallback model — loaded once at
/// fleet bring-up, plus the request-id-indexed prediction ledger.
struct FunctionalExec<'a> {
    workload: &'a FunctionalWorkload<'a>,
    /// One engine-backed prepared model per instance.
    instances: Vec<PreparedNetwork<'a>>,
    /// Prepared fallback copies, one per instance, when degrading.
    fallback: Option<Vec<PreparedNetwork<'a>>>,
    /// Prediction per request id (`usize::MAX` = no response).
    predictions: Vec<usize>,
    correct: u64,
}

impl<'a> FunctionalExec<'a> {
    fn new(
        workload: &'a FunctionalWorkload<'a>,
        instances: usize,
        requests: usize,
        degrading: bool,
    ) -> Self {
        assert!(
            !workload.samples.is_empty(),
            "functional serving needs samples"
        );
        assert!(workload.workers > 0, "need at least one worker");
        let fallback = if degrading {
            let fb = workload.fallback.expect(
                "invariant: Degrade admission requires FunctionalWorkload::fallback (documented)",
            );
            let engine = workload.fallback_engine.unwrap_or(workload.engine);
            Some(
                (0..instances)
                    .map(|_| PreparedNetwork::new(fb, engine))
                    .collect(),
            )
        } else {
            None
        };
        Self {
            workload,
            // Model load: every instance prepares the weights once —
            // per-layer DKV/LUT stream conversion, narrow GEMM forms —
            // before the first request arrives.
            instances: (0..instances)
                .map(|_| PreparedNetwork::new(workload.net, workload.engine))
                .collect(),
            fallback,
            predictions: vec![usize::MAX; requests],
            correct: 0,
        }
    }

    /// Executes one dispatched batch on instance `inst`: the whole
    /// batch's images run through stacked `vdp_batch` tiles, keyed per
    /// request id — on the primary or the fallback prepared copy
    /// according to the batch's tier.
    fn execute_batch(&mut self, inst: usize, ids: &[u64], degraded: bool) {
        let samples = self.workload.samples;
        let images: Vec<&Tensor<f32>> = ids
            .iter()
            .map(|&id| &samples[id as usize % samples.len()].image)
            .collect();
        let nets = if degraded {
            self.fallback.as_ref().expect(
                "invariant: degraded batches are only dispatched after fallback nets were built",
            )
        } else {
            &self.instances
        };
        let preds = nets[inst].predict_batch(&images, ids, self.workload.workers);
        for (&id, pred) in ids.iter().zip(preds) {
            self.predictions[id as usize] = pred;
            if pred == samples[id as usize % samples.len()].label {
                self.correct += 1;
            }
        }
    }
}

/// Fleet-level result of one serving simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingReport {
    /// Accelerator display name.
    pub accelerator: &'static str,
    /// Model name.
    pub model: String,
    /// Fleet size.
    pub instances: usize,
    /// Scheduler batch limit.
    pub max_batch: usize,
    /// Requests that entered the system
    /// (`= completed + dropped + degraded`).
    pub offered: u64,
    /// Requests served to completion at full fidelity.
    pub completed: u64,
    /// Requests shed with no response.
    pub dropped: u64,
    /// Requests served on the low-precision fallback model.
    pub degraded: u64,
    /// Per-cause shed breakdown.
    pub shed: ShedCounts,
    /// `dropped / offered`.
    pub drop_rate: f64,
    /// Batches dispatched (both tiers).
    pub batches: u64,
    /// Mean requests per dispatched batch (batch-slot fill).
    pub mean_batch_fill: f64,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Full-fidelity served throughput: completed / makespan.
    pub fps: f64,
    /// Responses per second — full-fidelity *and* degraded
    /// (`(completed + degraded) / makespan`): the availability a client
    /// population observes. Excludes drops; under
    /// [`AdmissionPolicy::Degrade`] it holds past the knee while `fps`
    /// (and accuracy) give way.
    pub goodput_fps: f64,
    /// End-to-end latency distribution of the responses (queueing +
    /// service; dropped requests contribute no sample). All-zero when
    /// nothing was served.
    pub latency: LatencySummary,
    /// Pending-queue depth over time, sampled at every change.
    pub queue_depth: QueueDepthSamples,
    /// Per-instance utilization over the makespan, instance order.
    pub utilization: Vec<f64>,
    /// Total fleet energy over the makespan, joules.
    pub energy_j: f64,
    /// Energy per response, joules.
    pub energy_per_inference_j: f64,
    /// Average fleet power, watts.
    pub avg_power_w: f64,
}

/// Scheduler events.
enum Ev {
    /// A request enters the queue.
    Arrive,
    /// The batching window of epoch `.0` expired.
    Flush(u64),
    /// Instance `.0` finished a batch of `(request id, arrival time)`
    /// requests; `.1` marks the degraded tier.
    BatchDone(usize, bool, Vec<(u64, SimTime)>),
}

/// One waiting request.
struct PendingReq {
    id: u64,
    arrived: SimTime,
    /// Admitted onto the degraded (fallback-model) tier.
    degraded: bool,
}

/// Per-batch-size analysis cache: the batched layer walk is identical for
/// every batch of the same size, so it is computed once per size.
struct BatchProfiles<'a> {
    cfg: AcceleratorConfig,
    model: &'a CnnModel,
    by_size: Vec<Option<(SimTime, Vec<LayerPerf>)>>,
}

impl<'a> BatchProfiles<'a> {
    fn new(cfg: AcceleratorConfig, model: &'a CnnModel, max_batch: usize) -> Self {
        Self {
            cfg,
            model,
            by_size: vec![None; max_batch + 1],
        }
    }

    fn get(&mut self, batch: usize) -> &(SimTime, Vec<LayerPerf>) {
        let slot = &mut self.by_size[batch];
        if slot.is_none() {
            let layers: Vec<LayerPerf> = self
                .model
                .workloads
                .iter()
                .map(|w| analyze_layer_batched(&self.cfg, w, batch))
                .collect();
            let makespan = layers.iter().fold(SimTime::ZERO, |acc, l| acc + l.total);
            *slot = Some((makespan, layers));
        }
        slot.as_ref()
            .expect("invariant: slot was filled by the branch above")
    }
}

/// Mutable scheduler state threaded through the event handlers.
struct Scheduler<'a> {
    cfg: ServingConfig,
    model: &'a CnnModel,
    profiles: BatchProfiles<'a>,
    /// Fallback-tier profiles ([`AdmissionPolicy::Degrade`] only), on the
    /// reduced-precision accelerator operating point.
    degraded_profiles: Option<BatchProfiles<'a>>,
    /// The reduced-precision operating point degraded batches record
    /// their energy against.
    degraded_accel: Option<AcceleratorConfig>,
    /// Functional execution state; `None` runs the analytic-only model.
    functional: Option<FunctionalExec<'a>>,
    ledger: EnergyLedger,
    /// Requests waiting to be batched, arrival order. Ids are assigned in
    /// arrival order, so id `r` always denotes the `r`-th request to
    /// enter the system regardless of the arrival process.
    pending: VecDeque<PendingReq>,
    /// Next request id to assign.
    next_id: u64,
    /// Terminal state per request id (`None` while in flight).
    outcomes: Vec<Option<RequestOutcome>>,
    busy: Vec<bool>,
    util: Vec<Utilization>,
    latency: LatencySamples,
    queue_depth: QueueDepthSamples,
    issued: usize,
    offered: u64,
    completed: u64,
    dropped: u64,
    degraded_done: u64,
    shed: ShedCounts,
    batches: u64,
    batched_requests: u64,
    last_completion: SimTime,
    /// Monotonic epoch invalidating stale flush timers.
    flush_epoch: u64,
    /// A flush timer for the current epoch is in flight.
    flush_armed: bool,
    /// The window expired with requests still queued: dispatch partial
    /// batches at the next opportunity.
    force_flush: bool,
    rng: StdRng,
}

impl Scheduler<'_> {
    /// Lowest-numbered idle instance, if any.
    fn idle_instance(&self) -> Option<usize> {
        self.busy.iter().position(|&b| !b)
    }

    /// Shared-queue bound implied by the per-instance `queue_cap`.
    fn queue_bound(&self) -> Option<usize> {
        self.cfg
            .queue_cap
            .map(|c| c.saturating_mul(self.cfg.instances))
    }

    /// Records the queue depth if it changed.
    fn note_depth(&mut self, now: SimTime) {
        let depth = self.pending.len();
        if self.queue_depth.last_depth() != Some(depth) {
            self.queue_depth.record(now, depth);
        }
    }

    fn schedule_poisson_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if self.issued >= self.cfg.requests {
            return;
        }
        let ArrivalProcess::Poisson { rate_fps } = self.cfg.arrivals else {
            return;
        };
        assert!(rate_fps > 0.0, "Poisson rate must be positive");
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate_fps;
        self.issued += 1;
        q.schedule_in(SimTime::from_secs_f64(dt), Ev::Arrive);
    }

    /// Marks request `id` shed for `cause` (a drop, not a response).
    fn record_drop(&mut self, id: u64, cause: RequestOutcome) {
        match cause {
            RequestOutcome::ShedNewest => self.shed.newest += 1,
            RequestOutcome::ShedOldest => self.shed.oldest += 1,
            RequestOutcome::ShedDeadline => self.shed.deadline += 1,
            _ => unreachable!("record_drop takes shed causes only"),
        }
        self.dropped += 1;
        self.outcomes[id as usize] = Some(cause);
    }

    /// Admits one fresh arrival at `now` under the admission policy.
    /// Returns how many requests were shed in the process (0 or 1): the
    /// newcomer (`DropNewest`/`Deadline` at a full queue) or an evicted
    /// older waiter (`DropOldest`).
    fn admit(&mut self, now: SimTime) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.offered += 1;
        self.outcomes.push(None);
        let full = self
            .queue_bound()
            .is_some_and(|bound| self.pending.len() >= bound);
        let shed = if !full {
            self.pending.push_back(PendingReq {
                id,
                arrived: now,
                degraded: false,
            });
            0
        } else {
            match self.cfg.admission {
                AdmissionPolicy::DropNewest | AdmissionPolicy::Deadline { .. } => {
                    self.record_drop(id, RequestOutcome::ShedNewest);
                    1
                }
                AdmissionPolicy::DropOldest => {
                    let old = self
                        .pending
                        .pop_front()
                        .expect("invariant: the queue is full here, so it has a head");
                    self.record_drop(old.id, RequestOutcome::ShedOldest);
                    self.pending.push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: false,
                    });
                    1
                }
                AdmissionPolicy::Degrade { .. } => {
                    // Admit anyway, but onto the fallback tier: the
                    // request keeps its place in line and its client gets
                    // a (coarser) answer.
                    self.shed.degraded += 1;
                    self.pending.push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: true,
                    });
                    0
                }
            }
        };
        self.note_depth(now);
        shed
    }

    /// Admits `n` fresh arrivals at `now`. In the closed loop every shed
    /// frees a client, which immediately fires its next request — so
    /// admission keeps going until nothing was shed or the request
    /// budget is exhausted.
    fn admit_arrivals(&mut self, now: SimTime, mut n: usize) {
        let closed = matches!(self.cfg.arrivals, ArrivalProcess::ClosedLoop { .. });
        while n > 0 {
            n -= 1;
            let shed = self.admit(now);
            if closed && shed > 0 && self.issued < self.cfg.requests {
                self.issued += 1;
                n += 1;
            }
        }
    }

    /// Dispatches as many batches as idle instances and pending requests
    /// allow. Full batches always go; partial batches when the window
    /// expired (`force_flush`) or when a tier boundary caps the head run
    /// (it can never grow — later arrivals queue behind the other tier).
    /// Under [`AdmissionPolicy::Deadline`] requests whose wait already
    /// exceeds the SLO are shed first — FIFO order means only a queue
    /// prefix can have expired.
    fn try_dispatch(&mut self, q: &mut EventQueue<Ev>, now: SimTime) {
        if let AdmissionPolicy::Deadline { slo } = self.cfg.admission {
            let mut expired = 0usize;
            while let Some(front) = self.pending.front() {
                if now - front.arrived > slo {
                    let r = self
                        .pending
                        .pop_front()
                        .expect("invariant: front() returned Some above");
                    self.record_drop(r.id, RequestOutcome::ShedDeadline);
                    expired += 1;
                } else {
                    break;
                }
            }
            if expired > 0 {
                self.note_depth(now);
                if matches!(self.cfg.arrivals, ArrivalProcess::ClosedLoop { .. }) {
                    // Each shed frees a client for its next request.
                    let replacements = expired.min(self.cfg.requests.saturating_sub(self.issued));
                    self.issued += replacements;
                    self.admit_arrivals(now, replacements);
                }
            }
        }
        while let Some(front) = self.pending.front() {
            let tier_degraded = front.degraded;
            // The head run of same-tier requests, scanned only as far as
            // the batch limit needs.
            let scan = self
                .pending
                .iter()
                .take(self.cfg.max_batch + 1)
                .take_while(|r| r.degraded == tier_degraded)
                .count();
            let take = scan.min(self.cfg.max_batch);
            let dispatchable =
                take == self.cfg.max_batch || scan < self.pending.len() || self.force_flush;
            if !dispatchable {
                break;
            }
            let Some(inst) = self.idle_instance() else {
                break;
            };
            let reqs: Vec<(u64, SimTime)> = self
                .pending
                .drain(..take)
                .map(|r| (r.id, r.arrived))
                .collect();
            let (makespan, layers) = if tier_degraded {
                self.degraded_profiles
                    .as_mut()
                    .expect("invariant: the degraded tier is only entered after fallback profiles were built")
                    .get(take)
            } else {
                self.profiles.get(take)
            };
            let makespan = *makespan;
            let accel = if tier_degraded {
                self.degraded_accel.expect(
                    "invariant: the degraded tier is only entered after fallback config was set",
                )
            } else {
                self.cfg.accelerator
            };
            record_inference_ops(&mut self.ledger, &accel, layers, self.model, take);
            if let Some(func) = &mut self.functional {
                // Run the real inference the analytic model is timing:
                // the whole batch through one stack of prepared tiles on
                // this instance's model copy (primary or fallback).
                let ids: Vec<u64> = reqs.iter().map(|&(id, _)| id).collect();
                func.execute_batch(inst, &ids, tier_degraded);
            }
            self.busy[inst] = true;
            self.util[inst].add_busy(makespan);
            self.batches += 1;
            self.batched_requests += take as u64;
            q.schedule_in(makespan, Ev::BatchDone(inst, tier_degraded, reqs));
            self.note_depth(now);
        }
        if self.pending.is_empty() {
            // Window satisfied; stale timers are invalidated by the epoch.
            self.force_flush = false;
            self.flush_armed = false;
            self.flush_epoch += 1;
        } else if !self.flush_armed && !self.force_flush {
            self.flush_armed = true;
            q.schedule_in(self.cfg.batch_window, Ev::Flush(self.flush_epoch));
        }
    }

    fn handle(&mut self, q: &mut EventQueue<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive => {
                self.admit_arrivals(now, 1);
                self.schedule_poisson_arrival(q);
                self.try_dispatch(q, now);
            }
            Ev::Flush(epoch) => {
                if epoch != self.flush_epoch {
                    return; // stale timer from an already-drained queue
                }
                self.flush_armed = false;
                self.force_flush = true;
                self.try_dispatch(q, now);
            }
            Ev::BatchDone(inst, tier_degraded, reqs) => {
                self.busy[inst] = false;
                self.last_completion = now;
                let n_done = reqs.len();
                for (id, arrival) in reqs {
                    self.latency.record(now - arrival);
                    if tier_degraded {
                        self.degraded_done += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Degraded);
                    } else {
                        self.completed += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Served);
                    }
                }
                if matches!(self.cfg.arrivals, ArrivalProcess::ClosedLoop { .. }) {
                    // Each completed client immediately re-requests.
                    let replacements = n_done.min(self.cfg.requests - self.issued);
                    self.issued += replacements;
                    self.admit_arrivals(now, replacements);
                }
                self.try_dispatch(q, now);
            }
        }
    }
}

/// Runs one serving simulation to completion, analytic timing only.
///
/// # Panics
/// Panics on degenerate configurations: zero instances, zero batch limit,
/// zero requests, a zero queue cap, a non-positive Poisson rate, or a
/// trace whose length disagrees with `requests`.
pub fn simulate_serving(config: &ServingConfig, model: &CnnModel) -> ServingReport {
    run_serving(config, model, None).0
}

/// Runs one **functional** serving simulation: the same queueing, timing
/// and energy model as [`simulate_serving`] (the `serving` field is
/// bit-identical to the analytic-only run of the same config), with every
/// instance additionally executing its dequeued batches through real
/// stacked `vdp_batch` tiles on a prepared model copy — the fallback copy
/// for degraded batches.
///
/// Request `r` serves `workload.samples[r % samples.len()]` under noise
/// key `r`, so every *response's* prediction is a pure function of the
/// workload and the request's tier — independent of fleet size, batch
/// packing, arrival ordering and `workers` (property-tested in
/// `tests/functional_serving.rs`). Which requests get shed or degraded
/// is decided by the deterministic event simulation, so the whole report
/// is bit-identical across runs and worker counts for a fixed config.
///
/// # Panics
/// Panics on degenerate configurations, an empty sample set, or a
/// [`AdmissionPolicy::Degrade`] policy without `workload.fallback`.
pub fn simulate_serving_functional(
    config: &ServingConfig,
    model: &CnnModel,
    workload: &FunctionalWorkload<'_>,
) -> FunctionalServingReport {
    let (serving, outcomes, func) = run_serving_full(config, model, Some(workload));
    let func =
        func.expect("invariant: run_serving_full returns functional state when given a workload");
    debug_assert!(
        outcomes
            .iter()
            .zip(&func.predictions)
            .all(
                |(o, &p)| matches!(o, RequestOutcome::Served | RequestOutcome::Degraded)
                    == (p != usize::MAX)
            ),
        "exactly the responses must have been executed"
    );
    let correct = func.correct;
    let responses = serving.completed + serving.degraded;
    FunctionalServingReport {
        accuracy_under_load: if responses == 0 {
            0.0
        } else {
            correct as f64 / responses as f64
        },
        accuracy_offered: correct as f64 / serving.offered as f64,
        predictions: func.predictions,
        outcomes,
        correct,
        serving,
    }
}

/// Shared core of the analytic and functional entry points.
fn run_serving<'a>(
    config: &'a ServingConfig,
    model: &'a CnnModel,
    workload: Option<&'a FunctionalWorkload<'a>>,
) -> (ServingReport, Option<FunctionalExec<'a>>) {
    let (report, _, func) = run_serving_full(config, model, workload);
    (report, func)
}

/// [`run_serving`] also returning the per-request outcome vector.
fn run_serving_full<'a>(
    config: &'a ServingConfig,
    model: &'a CnnModel,
    workload: Option<&'a FunctionalWorkload<'a>>,
) -> (
    ServingReport,
    Vec<RequestOutcome>,
    Option<FunctionalExec<'a>>,
) {
    assert!(config.instances > 0, "need at least one instance");
    assert!(config.max_batch > 0, "max_batch must be positive");
    assert!(config.requests > 0, "need at least one request");
    if let Some(cap) = config.queue_cap {
        assert!(
            cap > 0,
            "queue_cap must be positive (use None for unbounded)"
        );
    }

    let degrading = matches!(config.admission, AdmissionPolicy::Degrade { .. });
    let degraded_accel = if let AdmissionPolicy::Degrade { fallback_bits } = config.admission {
        Some(config.accelerator.with_native_bits(fallback_bits))
    } else {
        None
    };

    let mut ledger = EnergyLedger::new();
    for _ in 0..config.instances {
        register_components(&mut ledger, &config.accelerator);
    }

    let mut sched = Scheduler {
        model,
        profiles: BatchProfiles::new(config.accelerator, model, config.max_batch),
        degraded_profiles: degraded_accel
            .map(|cfg| BatchProfiles::new(cfg, model, config.max_batch)),
        degraded_accel,
        functional: workload
            .map(|w| FunctionalExec::new(w, config.instances, config.requests, degrading)),
        ledger,
        pending: VecDeque::new(),
        next_id: 0,
        outcomes: Vec::with_capacity(config.requests),
        busy: vec![false; config.instances],
        util: vec![Utilization::new(); config.instances],
        latency: LatencySamples::new(),
        queue_depth: QueueDepthSamples::new(),
        issued: 0,
        offered: 0,
        completed: 0,
        dropped: 0,
        degraded_done: 0,
        shed: ShedCounts::default(),
        batches: 0,
        batched_requests: 0,
        last_completion: SimTime::ZERO,
        flush_epoch: 0,
        flush_armed: false,
        force_flush: false,
        rng: StdRng::seed_from_u64(config.seed),
        cfg: config.clone(),
    };

    let mut q = EventQueue::new();
    match &config.arrivals {
        ArrivalProcess::Poisson { .. } => {
            // Seed the first arrival; each arrival schedules the next.
            sched.schedule_poisson_arrival(&mut q);
        }
        ArrivalProcess::ClosedLoop { clients } => {
            assert!(*clients > 0, "closed loop needs at least one client");
            let initial = (*clients).min(config.requests);
            for _ in 0..initial {
                sched.issued += 1;
                q.schedule_at(SimTime::ZERO, Ev::Arrive);
            }
        }
        ArrivalProcess::Trace { times } => {
            assert_eq!(
                times.len(),
                config.requests,
                "trace length must equal the request count"
            );
            sched.issued = times.len();
            for &t in times {
                q.schedule_at(t, Ev::Arrive);
            }
        }
    }

    q.run(|q, now, ev| sched.handle(q, now, ev));

    assert_eq!(
        sched.offered as usize, config.requests,
        "every request must enter the system"
    );
    assert_eq!(
        sched.completed + sched.dropped + sched.degraded_done,
        sched.offered,
        "served + dropped + degraded must account every offered request"
    );
    let outcomes: Vec<RequestOutcome> = sched
        .outcomes
        .iter()
        .map(|o| {
            o.expect("invariant: every request reaches a terminal state before the queue drains")
        })
        .collect();
    let responses = sched.completed + sched.degraded_done;
    // Stale flush timers may fire after the last completion, so the
    // serving makespan is the last completion time, not the queue's final
    // clock. ZERO (degenerate all-shed runs) zeroes the rate metrics.
    let makespan = sched.last_completion;
    let secs = makespan.as_secs_f64();
    let energy_j = sched.ledger.total_energy_j(makespan);
    let report = ServingReport {
        accelerator: config.accelerator.name,
        model: model.name.clone(),
        instances: config.instances,
        max_batch: config.max_batch,
        offered: sched.offered,
        completed: sched.completed,
        dropped: sched.dropped,
        degraded: sched.degraded_done,
        shed: sched.shed,
        drop_rate: sched.dropped as f64 / sched.offered as f64,
        batches: sched.batches,
        mean_batch_fill: if sched.batches == 0 {
            0.0
        } else {
            sched.batched_requests as f64 / sched.batches as f64
        },
        makespan,
        fps: if secs > 0.0 {
            sched.completed as f64 / secs
        } else {
            0.0
        },
        goodput_fps: if secs > 0.0 {
            responses as f64 / secs
        } else {
            0.0
        },
        latency: if sched.latency.is_empty() {
            LatencySummary {
                count: 0,
                p50: SimTime::ZERO,
                p95: SimTime::ZERO,
                p99: SimTime::ZERO,
                mean: SimTime::ZERO,
                max: SimTime::ZERO,
            }
        } else {
            sched.latency.summary()
        },
        queue_depth: sched.queue_depth,
        utilization: if makespan > SimTime::ZERO {
            sched.util.iter().map(|u| u.ratio(makespan)).collect()
        } else {
            vec![0.0; config.instances]
        },
        energy_j,
        energy_per_inference_j: if responses > 0 {
            energy_j / responses as f64
        } else {
            0.0
        },
        avg_power_w: if secs > 0.0 {
            sched.ledger.average_power_w(makespan)
        } else {
            0.0
        },
    };
    (report, outcomes, sched.functional)
}

/// Runs a sweep of serving configurations in parallel on `workers`
/// threads. Each sweep point is an independent simulation with its own
/// event queue and seed, so the result vector is bit-identical for every
/// worker count (property-tested in `tests/determinism.rs`).
pub fn sweep(configs: Vec<ServingConfig>, model: &CnnModel, workers: usize) -> Vec<ServingReport> {
    parallel_map_with(configs, workers, |c| simulate_serving(&c, model))
}

/// One point of an overload sweep: an offered load and what the fleet
/// made of it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadPoint {
    /// Offered Poisson arrival rate, requests per second.
    pub offered_fps: f64,
    /// The functional serving report at that load.
    pub report: FunctionalServingReport,
}

/// Sweeps the offered (open-loop Poisson) load across the saturation
/// knee under `base`'s fleet shape and admission policy, running the
/// **functional** fleet at every point so the curve carries accuracy as
/// well as goodput, drop rate and tail latency. Points are independent
/// simulations parallelized over `workers` threads; the result is
/// bit-identical for every worker count.
///
/// `base.arrivals` and `base.seed` are kept except that the arrival rate
/// is overridden per point, so pass the Poisson seed in `base.seed`.
pub fn overload_sweep(
    base: &ServingConfig,
    model: &CnnModel,
    workload: &FunctionalWorkload<'_>,
    offered_fps: &[f64],
    workers: usize,
) -> Vec<OverloadPoint> {
    parallel_map_with(offered_fps.to_vec(), workers, |rate| {
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson { rate_fps: rate },
            ..base.clone()
        };
        OverloadPoint {
            offered_fps: rate,
            report: simulate_serving_functional(&cfg, model, workload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SconnaEngine;
    use sconna_tensor::layers::{MaxPool2d, QConv2d, QFc};
    use sconna_tensor::models::{googlenet, shufflenet_v2};
    use sconna_tensor::network::QLayer;
    use sconna_tensor::quant::{ActivationQuant, Requant, WeightQuant};

    fn small_closed(instances: usize, max_batch: usize, requests: usize) -> ServingConfig {
        ServingConfig::saturation(AcceleratorConfig::sconna(), instances, max_batch, requests)
    }

    /// A hand-built quantized CNN (no training) plus a labelled request
    /// population for functional-serving tests.
    fn tiny_workload() -> (QuantizedNetwork, Vec<Sample>) {
        let aq = ActivationQuant {
            scale: 1.0 / 255.0,
            bits: 8,
        };
        let wq = WeightQuant {
            scale: 1.0 / 127.0,
            bits: 8,
        };
        let net = QuantizedNetwork {
            input_quant: aq,
            layers: vec![
                QLayer::Conv(QConv2d {
                    name: "c1".into(),
                    weights: Tensor::from_fn(&[4, 1, 3, 3], |i| ((i * 29) % 255) as i32 - 127),
                    bias: vec![0.0; 4],
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    requant: Requant::new(aq, wq, aq),
                }),
                QLayer::MaxPool(MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                }),
                QLayer::GlobalAvgPool,
                QLayer::Fc(QFc {
                    name: "fc".into(),
                    weights: Tensor::from_fn(&[3, 4], |i| ((i * 67) % 255) as i32 - 127),
                    bias: vec![0.0; 3],
                    dequant: aq.scale * wq.scale,
                }),
            ],
        };
        let samples: Vec<Sample> = (0..6)
            .map(|s| Sample {
                image: Tensor::from_fn(&[1, 8, 8], |i| ((s * 37 + i) % 256) as f32 / 255.0),
                label: s % 3,
            })
            .collect();
        (net, samples)
    }

    #[test]
    fn functional_report_matches_offline_per_request_inference() {
        // Every prediction must equal the offline forward of the same
        // sample under the same request-id key — the fleet adds queueing,
        // never computation.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(5);
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 1,
        };
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 13);
        let r = simulate_serving_functional(&cfg, &model, &workload);
        assert_eq!(r.predictions.len(), 13);
        assert!(r.outcomes.iter().all(|&o| o == RequestOutcome::Served));
        for (id, &pred) in r.predictions.iter().enumerate() {
            let s = &samples[id % samples.len()];
            let offline =
                sconna_tensor::layers::argmax(&net.forward_keyed(&s.image, &engine, id as u64));
            assert_eq!(pred, offline, "request {id}");
        }
        let correct = r
            .predictions
            .iter()
            .enumerate()
            .filter(|&(id, &p)| p == samples[id % samples.len()].label)
            .count() as u64;
        assert_eq!(r.correct, correct);
        assert_eq!(r.accuracy_under_load, correct as f64 / 13.0);
        assert_eq!(r.accuracy_offered, r.accuracy_under_load);
    }

    #[test]
    fn functional_timing_is_identical_to_analytic_run() {
        // Executing real inference must not perturb the queueing model:
        // the serving half of the functional report is bit-identical to
        // the analytic-only simulation of the same config.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(5);
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 2,
        };
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 16);
        let functional = simulate_serving_functional(&cfg, &model, &workload);
        let analytic = simulate_serving(&cfg, &model);
        assert_eq!(format!("{:?}", functional.serving), format!("{analytic:?}"));
    }

    #[test]
    fn accuracy_under_load_is_fleet_and_schedule_invariant() {
        // Predictions are keyed per request id, so fleet size, batch
        // limit, arrival process and instance workers must not move a
        // single prediction bit.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(9);
        let model = shufflenet_v2();
        let requests = 17;
        let baseline = {
            let workload = FunctionalWorkload {
                net: &net,
                fallback: None,
                fallback_engine: None,
                samples: &samples,
                engine: &engine,
                workers: 1,
            };
            simulate_serving_functional(&small_closed(1, 1, requests), &model, &workload)
        };
        for (instances, max_batch, workers) in [(1usize, 4usize, 2usize), (2, 4, 1), (4, 2, 8)] {
            let workload = FunctionalWorkload {
                net: &net,
                fallback: None,
                fallback_engine: None,
                samples: &samples,
                engine: &engine,
                workers,
            };
            let r = simulate_serving_functional(
                &small_closed(instances, max_batch, requests),
                &model,
                &workload,
            );
            assert_eq!(
                r.predictions, baseline.predictions,
                "{instances}x{max_batch} w{workers}"
            );
            assert_eq!(r.accuracy_under_load, baseline.accuracy_under_load);
        }
        // Open-loop arrivals reorder timing but not request identity.
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 2,
        };
        let poisson = simulate_serving_functional(
            &ServingConfig {
                arrivals: ArrivalProcess::Poisson { rate_fps: 800.0 },
                seed: 3,
                ..small_closed(2, 4, requests)
            },
            &model,
            &workload,
        );
        assert_eq!(poisson.predictions, baseline.predictions);
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 37), &model);
        assert_eq!(r.completed, 37);
        assert_eq!(r.offered, 37);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.degraded, 0);
        assert_eq!(r.latency.count, 37);
        assert!(r.batches >= 37u64.div_ceil(4));
        assert!(r.mean_batch_fill >= 1.0 && r.mean_batch_fill <= 4.0);
    }

    #[test]
    fn unbounded_drop_newest_is_bit_identical_to_pr2_scheduler() {
        // Regression pin: the overload machinery must not move a bit of
        // the unbounded scheduler's behavior. Expected values captured
        // from the pre-overload implementation (PR 4) on these exact
        // configs.
        let model = shufflenet_v2();
        let closed = simulate_serving(&small_closed(2, 4, 37), &model);
        assert_eq!(closed.completed, 37);
        assert_eq!(closed.batches, 10);
        assert!((closed.mean_batch_fill - 3.7).abs() < 1e-12);
        assert_eq!(closed.makespan, SimTime::from_ps(385_286_830));
        assert!((closed.fps - 96_032.350_755_409_95).abs() < 1e-6);
        assert_eq!(closed.latency.p50, SimTime::from_ps(154_114_732));
        assert_eq!(closed.latency.p99, SimTime::from_ps(154_114_732));
        assert_eq!(closed.latency.mean, SimTime::from_ps(135_982_316));
        assert_eq!(closed.utilization[0], 1.0);
        assert!((closed.utilization[1] - 0.858_701_422_522_020_9).abs() < 1e-12);
        assert!((closed.energy_j - 0.236_006_470_388_707_2).abs() < 1e-12);

        let poisson = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess::Poisson { rate_fps: 2_000.0 },
                seed: 17,
                ..small_closed(2, 4, 24)
            },
            &model,
        );
        assert_eq!(poisson.completed, 24);
        assert_eq!(poisson.batches, 22);
        assert_eq!(poisson.makespan, SimTime::from_ps(12_234_353_686));
        assert_eq!(poisson.latency.p50, SimTime::from_ps(122_616_885));
        assert_eq!(poisson.latency.max, SimTime::from_ps(140_701_453));
        assert!((poisson.energy_j - 2.696_219_434_090_293).abs() < 1e-12);

        // A huge finite cap behaves exactly like the unbounded queue.
        let capped = simulate_serving(
            &ServingConfig {
                queue_cap: Some(1_000_000),
                ..small_closed(2, 4, 37)
            },
            &model,
        );
        assert_eq!(format!("{capped:?}"), format!("{closed:?}"));
    }

    #[test]
    fn drop_newest_bounds_the_queue_and_sheds_overflow() {
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 64);
        let capacity = base.estimated_capacity_fps(&model);
        let cfg = ServingConfig {
            queue_cap: Some(2),
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 3.0 * capacity,
            },
            seed: 5,
            ..base
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.offered, 64);
        assert_eq!(r.completed + r.dropped, 64);
        assert!(
            r.dropped > 0,
            "3x overload against a 2-deep queue must shed"
        );
        assert_eq!(r.shed.newest, r.dropped);
        assert_eq!(r.shed.oldest + r.shed.deadline + r.shed.degraded, 0);
        assert!((r.drop_rate - r.dropped as f64 / 64.0).abs() < 1e-12);
        // The queue bound holds over the whole series.
        assert!(
            r.queue_depth.max_depth() <= 2,
            "depth {}",
            r.queue_depth.max_depth()
        );
        let end = r
            .makespan
            .max(r.queue_depth.last_time().expect("series non-empty"));
        assert!(r.queue_depth.mean_depth(end) <= 2.0);
        // Bounded queue => bounded wait: every response saw at most a
        // full queue ahead of it plus its own batch (+ window flushes).
        assert!(r.goodput_fps >= r.fps);
    }

    #[test]
    fn drop_oldest_sheds_the_head_of_the_queue() {
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 48);
        let capacity = base.estimated_capacity_fps(&model);
        let cfg = ServingConfig {
            queue_cap: Some(1),
            admission: AdmissionPolicy::DropOldest,
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 4.0 * capacity,
            },
            seed: 9,
            ..base
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed + r.dropped, 48);
        assert!(
            r.shed.oldest > 0,
            "4x overload against a 1-deep queue must evict"
        );
        assert_eq!(r.shed.oldest, r.dropped);
        assert_eq!(r.shed.newest, 0);
        // Eviction keeps the freshest traffic: the newest request always
        // survives admission, so the very last request is always served.
        assert!(r.queue_depth.max_depth() <= 1);
    }

    #[test]
    fn deadline_policy_sheds_stale_requests_and_bounds_tail_latency() {
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 64);
        let capacity = base.estimated_capacity_fps(&model);
        // SLO: two batch services of queue wait.
        let service = SimTime::from_secs_f64(2.0 * base.max_batch as f64 / capacity);
        let over = ServingConfig {
            admission: AdmissionPolicy::Deadline { slo: service },
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 3.0 * capacity,
            },
            seed: 3,
            ..base.clone()
        };
        let r = simulate_serving(&over, &model);
        assert_eq!(r.completed + r.dropped, 64);
        assert!(r.shed.deadline > 0, "3x overload must blow the SLO");
        // Served requests waited at most `slo` in queue, so their
        // end-to-end latency is bounded by slo + one batch service + one
        // flush window.
        let bound =
            service + SimTime::from_secs_f64(base.max_batch as f64 / capacity) + base.batch_window;
        assert!(
            r.latency.max <= bound,
            "deadline shedding must bound the tail: {} > {}",
            r.latency.max,
            bound
        );
    }

    #[test]
    fn degrade_policy_trades_accuracy_for_availability() {
        let (net, samples) = tiny_workload();
        let fallback = net.with_weight_bits(2);
        let engine = SconnaEngine::paper_default(11);
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 48);
        let capacity = base.estimated_capacity_fps(&model);
        let cfg = ServingConfig {
            queue_cap: Some(1),
            admission: AdmissionPolicy::Degrade { fallback_bits: 4 },
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 3.0 * capacity,
            },
            seed: 7,
            ..base
        };
        let workload = FunctionalWorkload {
            net: &net,
            fallback: Some(&fallback),
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 1,
        };
        let r = simulate_serving_functional(&cfg, &model, &workload);
        // Availability: nobody is dropped.
        assert_eq!(r.serving.dropped, 0);
        assert_eq!(r.serving.completed + r.serving.degraded, 48);
        assert!(r.serving.degraded > 0, "3x overload must degrade");
        assert_eq!(r.serving.shed.degraded, r.serving.degraded);
        assert!(r.serving.goodput_fps > r.serving.fps);
        // Every degraded response matches the offline fallback forward;
        // every full response the offline primary forward.
        for (id, (&pred, &outcome)) in r.predictions.iter().zip(&r.outcomes).enumerate() {
            let s = &samples[id % samples.len()];
            let reference = match outcome {
                RequestOutcome::Served => &net,
                RequestOutcome::Degraded => &fallback,
                _ => panic!("no drops under Degrade"),
            };
            let offline = sconna_tensor::layers::argmax(
                &reference.forward_keyed(&s.image, &engine, id as u64),
            );
            assert_eq!(pred, offline, "request {id} ({outcome:?})");
        }
        // Accuracy accounting: offered == admitted here (no drops).
        assert_eq!(r.accuracy_under_load, r.accuracy_offered);
    }

    #[test]
    fn degraded_batches_run_faster_than_full_fidelity_ones() {
        // The whole point of degrading: a 4-bit stream is 16x shorter, so
        // under identical overload the Degrade fleet finishes far sooner
        // than a fleet that must serve everyone at full fidelity.
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 48);
        let capacity = base.estimated_capacity_fps(&model);
        let over = ArrivalProcess::Poisson {
            rate_fps: 4.0 * capacity,
        };
        let full = simulate_serving(
            &ServingConfig {
                arrivals: over.clone(),
                seed: 2,
                ..base.clone()
            },
            &model,
        );
        let degrade = simulate_serving(
            &ServingConfig {
                queue_cap: Some(1),
                admission: AdmissionPolicy::Degrade { fallback_bits: 4 },
                arrivals: over,
                seed: 2,
                ..base
            },
            &model,
        );
        assert!(degrade.degraded > 0);
        assert!(
            degrade.makespan < full.makespan,
            "degraded fleet {} vs full-fidelity {}",
            degrade.makespan,
            full.makespan
        );
    }

    #[test]
    fn trace_arrivals_are_insertion_order_invariant() {
        // A tie-free trace assigns request ids in time order, so any
        // permutation of the times vector simulates identically.
        let model = shufflenet_v2();
        let times: Vec<SimTime> = (0..24u64)
            .map(|i| SimTime::from_ps((i * 37 + 11) * 1_000_000 % 300_000_000 + i))
            .collect();
        let mut shuffled = times.clone();
        shuffled.reverse();
        shuffled.rotate_left(7);
        let run = |ts: Vec<SimTime>| {
            simulate_serving(
                &ServingConfig {
                    queue_cap: Some(1),
                    admission: AdmissionPolicy::DropOldest,
                    arrivals: ArrivalProcess::Trace { times: ts },
                    ..small_closed(1, 2, 24)
                },
                &model,
            )
        };
        assert_eq!(format!("{:?}", run(times)), format!("{:?}", run(shuffled)));
    }

    #[test]
    #[should_panic(expected = "trace length must equal")]
    fn trace_length_mismatch_panics() {
        let model = shufflenet_v2();
        let _ = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess::Trace {
                    times: vec![SimTime::ZERO; 3],
                },
                ..small_closed(1, 2, 4)
            },
            &model,
        );
    }

    #[test]
    fn saturation_measures_the_closed_form_capacity_estimate() {
        // The knee pin, closed-loop half: the saturation workload's
        // measured FPS converges on `estimated_capacity_fps` (short runs
        // sit slightly below it — window flushes and the final partial
        // batch waste slots). The open-loop half lives in
        // tests/overload.rs next to the sweep itself.
        let model = shufflenet_v2();
        for (instances, max_batch) in [(1usize, 4usize), (2, 8)] {
            let cfg = small_closed(instances, max_batch, 96);
            let estimate = cfg.estimated_capacity_fps(&model);
            let measured = simulate_serving(&cfg, &model).fps;
            let ratio = measured / estimate;
            assert!(
                (0.85..=1.02).contains(&ratio),
                "{instances}x{max_batch}: measured {measured:.0} vs estimate {estimate:.0} (ratio {ratio:.3})"
            );
        }
    }

    #[test]
    fn fps_scales_with_instance_count() {
        // The acceptance bar: ≥ 1.8× served FPS from 1 → 2 instances on
        // GoogleNet under saturation.
        let model = googlenet();
        let one = simulate_serving(&small_closed(1, 8, 64), &model);
        let two = simulate_serving(&small_closed(2, 8, 64), &model);
        let scaling = two.fps / one.fps;
        assert!(
            scaling >= 1.8,
            "1→2 instance scaling {scaling} (fps {} → {})",
            one.fps,
            two.fps
        );
    }

    #[test]
    fn batching_lowers_energy_per_inference() {
        // Pipeline fill and weight traffic amortize across a batch while
        // static power integrates over a shorter makespan. 64 requests
        // pack both sweeps tail-free (64 = 2·32·1 = 2·2·16), so the
        // comparison isolates amortization from batch-quantization idle.
        let model = googlenet();
        let b1 = simulate_serving(&small_closed(2, 1, 64), &model);
        let b16 = simulate_serving(&small_closed(2, 16, 64), &model);
        assert!(
            b16.energy_per_inference_j < b1.energy_per_inference_j,
            "batch-16 {} J vs batch-1 {} J",
            b16.energy_per_inference_j,
            b1.energy_per_inference_j
        );
        assert!(b16.fps >= b1.fps, "batching must not lose throughput");
    }

    #[test]
    fn saturated_fleet_is_highly_utilized() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 64), &model);
        assert_eq!(r.utilization.len(), 2);
        for (i, u) in r.utilization.iter().enumerate() {
            assert!(*u > 0.8, "instance {i} utilization {u}");
        }
    }

    #[test]
    fn latency_percentiles_are_ordered_and_cover_service_time() {
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 64);
        let r = simulate_serving(&cfg, &model);
        assert!(r.latency.p50 <= r.latency.p95);
        assert!(r.latency.p95 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.max);
        // Every request at least pays one batch service time.
        let service = model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
            acc + analyze_layer_batched(&cfg.accelerator, w, 1).total
        });
        assert!(r.latency.p50 >= service);
    }

    #[test]
    fn poisson_below_capacity_keeps_queue_short() {
        let model = shufflenet_v2();
        // Closed-loop saturation first, to find capacity.
        let sat = simulate_serving(&small_closed(1, 4, 48), &model);
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson {
                rate_fps: sat.fps * 0.3,
            },
            seed: 7,
            ..small_closed(1, 4, 48)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 48);
        // At 30 % load the p50 wait is bounded by the batch window plus
        // a couple of service times.
        let bound = cfg.batch_window + SimTime::from_ps(3 * sat.latency.p50.as_ps());
        assert!(
            r.latency.p50 <= bound,
            "p50 {} vs bound {}",
            r.latency.p50,
            bound
        );
        // Mean utilization is moderate.
        let mean_util: f64 = r.utilization.iter().sum::<f64>() / r.utilization.len() as f64;
        assert!(mean_util < 0.9, "utilization {mean_util} at 30% load");
    }

    #[test]
    fn poisson_is_seed_deterministic_and_seed_sensitive() {
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson { rate_fps: 500.0 },
            seed: 11,
            ..small_closed(1, 4, 32)
        };
        let a = simulate_serving(&cfg, &model);
        let b = simulate_serving(&cfg, &model);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = simulate_serving(
            &ServingConfig {
                seed: 12,
                ..cfg.clone()
            },
            &model,
        );
        assert_ne!(
            a.makespan, c.makespan,
            "different seeds must shift the arrival process"
        );
    }

    #[test]
    fn partial_batches_flush_after_window() {
        // 3 requests, max_batch 8: the only way they complete is a
        // window flush; fill must reflect the partial batch.
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 3 },
            ..small_closed(1, 8, 3)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 3);
        assert_eq!(r.batches, 1);
        assert!((r.mean_batch_fill - 3.0).abs() < 1e-12);
        // Latency includes the flush wait.
        assert!(r.latency.p50 >= cfg.batch_window);
    }

    #[test]
    fn single_request_single_instance() {
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 1 },
            ..small_closed(1, 1, 1)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 1);
        assert_eq!(r.batches, 1);
        // A lone request with max_batch 1 dispatches immediately: its
        // latency is exactly the batch-1 service time, which equals the
        // single-inference makespan.
        let single = crate::perf::simulate_inference(&cfg.accelerator, &model);
        assert_eq!(r.latency.max, single.makespan);
    }

    #[test]
    fn queue_depth_series_tracks_the_backlog() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 37), &model);
        // Saturation backlog: 2·instances·max_batch clients against
        // 2·max_batch in-flight slots leaves 8 waiting at peak.
        assert!(!r.queue_depth.is_empty());
        assert!(
            r.queue_depth.max_depth() >= 4,
            "depth {}",
            r.queue_depth.max_depth()
        );
        // The queue drains by the end.
        assert_eq!(r.queue_depth.last_depth(), Some(0));
        // The series is time-ordered by construction; mean is finite.
        let mean = r.queue_depth.mean_depth(r.makespan);
        assert!(mean > 0.0 && mean <= r.queue_depth.max_depth() as f64);
    }

    #[test]
    fn sweep_covers_every_config_in_order() {
        let model = shufflenet_v2();
        let configs: Vec<ServingConfig> = [1usize, 2, 3]
            .into_iter()
            .map(|i| small_closed(i, 2, 12))
            .collect();
        let reports = sweep(configs, &model, 2);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.instances, i + 1);
            assert_eq!(r.completed, 12);
        }
    }

    #[test]
    fn overload_sweep_is_worker_count_invariant() {
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(3);
        let model = shufflenet_v2();
        let base = ServingConfig {
            queue_cap: Some(2),
            seed: 1,
            ..small_closed(1, 2, 24)
        };
        let capacity = base.estimated_capacity_fps(&model);
        let rates = [0.5 * capacity, 1.5 * capacity];
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 1,
        };
        let baseline = overload_sweep(&base, &model, &workload, &rates, 1);
        assert_eq!(baseline.len(), 2);
        for workers in [2usize, 8] {
            let run = overload_sweep(&base, &model, &workload, &rates, workers);
            assert_eq!(
                format!("{run:?}"),
                format!("{baseline:?}"),
                "{workers} workers"
            );
        }
        // Past the knee the bounded queue sheds; below it nothing does.
        assert_eq!(baseline[0].report.serving.dropped, 0);
        assert!(baseline[1].report.serving.dropped > 0);
    }
}
