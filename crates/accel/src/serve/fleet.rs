//! The steppable fleet state machine: the serving simulation as an
//! incrementally-driven object instead of a run-to-completion function.
//!
//! [`Fleet::new`] builds the same scheduler the entry-point wrappers
//! always ran — shared pending queue, dynamic batching, admission
//! policy, deterministic [`EventQueue`] — but hands control of the event
//! loop to the caller: [`Fleet::step`] processes exactly one event,
//! [`Fleet::step_until`] drains events up to a simulated instant, and a
//! [`FleetSnapshot`] is available at **any** step boundary, exposing sim
//! time, per-instance state, queue depth, in-flight batches and the
//! served/dropped/degraded tallies. [`Fleet::run_to_completion`] followed
//! by [`Fleet::into_report`] reproduces the wrapper behavior
//! bit-identically (pinned in `tests/scenarios.rs`).
//!
//! On top of the steppable core sits fault injection
//! ([`Fleet::with_faults`]): a [`FaultPlan`](super::FaultPlan) of timed
//! kill / restart / stall events scheduled on the same event queue as the
//! traffic. A killed instance's in-flight batch is aborted and its
//! requests rejoin the front of the queue through the admission policy —
//! requests are never silently lost; the step-level conservation
//! invariant `offered == completed + dropped + degraded + queued +
//! in-flight` ([`FleetSnapshot::accounted`]) holds at every step
//! boundary, faults or not. A restarted instance pays the
//! [`model_reload_time`] weight-reload latency before taking work again.
//! If the whole fleet dies with no restart coming, requests that can
//! provably never be served drain as
//! [`RequestOutcome::ShedStranded`] when the fleet settles.

use super::{
    AdmissionPolicy, ArrivalProcess, FaultEvent, FaultPlan, FunctionalServingReport,
    RequestOutcome, ServingConfig, ServingReport, ShedCounts,
};
use crate::organization::AcceleratorConfig;
use crate::perf::{
    analyze_layer_batched, model_reload_time, record_inference_ops, register_components, LayerPerf,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sconna_sim::energy::EnergyLedger;
use sconna_sim::event::EventQueue;
use sconna_sim::stats::{LatencySamples, LatencySummary, QueueDepthSamples, Utilization};
use sconna_sim::time::SimTime;
use sconna_tensor::dataset::Sample;
use sconna_tensor::engine::VdpEngine;
use sconna_tensor::models::CnnModel;
use sconna_tensor::network::{PreparedNetwork, QuantizedNetwork};
use sconna_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The functional side of a serving experiment: the quantized model the
/// instances actually execute, the labelled request population, and the
/// VDP engine backing every instance.
///
/// Request `r` is drawn round-robin from `samples`
/// (`samples[r % samples.len()]`) and runs under image noise key `r`, so
/// the prediction set is a pure function of this workload — independent
/// of fleet size, batch packing, arrival process and `workers`. That
/// purity is also what makes fault injection safe functionally: a batch
/// aborted by a kill and re-executed later reproduces the same
/// predictions bit-for-bit.
pub struct FunctionalWorkload<'a> {
    /// The quantized network every instance loads.
    pub net: &'a QuantizedNetwork,
    /// Low-precision fallback network degraded batches execute on;
    /// required when the admission policy is [`AdmissionPolicy::Degrade`]
    /// (typically `net.degraded(fallback_bits)`).
    pub fallback: Option<&'a QuantizedNetwork>,
    /// Engine the fallback network runs on — typically the same
    /// organization at `Precision::new(fallback_bits)`, whose shorter
    /// streams and range-matched ADC keep the fallback's signal-to-noise
    /// at its own grid. `None` shares the primary engine.
    pub fallback_engine: Option<&'a dyn VdpEngine>,
    /// Labelled request population (round-robin by request id).
    pub samples: &'a [Sample],
    /// Engine each instance's prepared model executes on.
    pub engine: &'a dyn VdpEngine,
    /// Worker threads for the row-block parallelism inside one instance's
    /// batch execution. Results are worker-count invariant; this only
    /// changes host wall time.
    pub workers: usize,
}

/// Per-instance functional execution state: each instance owns a
/// prepared (weight-stationary) copy of the model — and, under
/// [`AdmissionPolicy::Degrade`], of the fallback model — loaded once at
/// fleet bring-up, plus the request-id-indexed prediction ledger.
struct FunctionalExec<'a> {
    workload: &'a FunctionalWorkload<'a>,
    /// One engine-backed prepared model per instance.
    instances: Vec<PreparedNetwork<'a>>,
    /// Prepared fallback copies, one per instance, when degrading.
    fallback: Option<Vec<PreparedNetwork<'a>>>,
    /// Prediction per request id (`usize::MAX` = no response).
    predictions: Vec<usize>,
}

impl<'a> FunctionalExec<'a> {
    fn new(
        workload: &'a FunctionalWorkload<'a>,
        instances: usize,
        requests: usize,
        degrading: bool,
    ) -> Self {
        assert!(
            !workload.samples.is_empty(),
            "functional serving needs samples"
        );
        assert!(workload.workers > 0, "need at least one worker");
        let fallback = if degrading {
            let fb = workload.fallback.expect(
                "invariant: Degrade admission requires FunctionalWorkload::fallback (documented)",
            );
            let engine = workload.fallback_engine.unwrap_or(workload.engine);
            Some(
                (0..instances)
                    .map(|_| PreparedNetwork::new(fb, engine))
                    .collect(),
            )
        } else {
            None
        };
        Self {
            workload,
            // Model load: every instance prepares the weights once —
            // per-layer DKV/LUT stream conversion, narrow GEMM forms —
            // before the first request arrives.
            instances: (0..instances)
                .map(|_| PreparedNetwork::new(workload.net, workload.engine))
                .collect(),
            fallback,
            predictions: vec![usize::MAX; requests],
        }
    }

    /// Executes one dispatched batch on instance `inst`: the whole
    /// batch's images run through stacked `vdp_batch` tiles, keyed per
    /// request id — on the primary or the fallback prepared copy
    /// according to the batch's tier.
    fn execute_batch(&mut self, inst: usize, ids: &[u64], degraded: bool) {
        let samples = self.workload.samples;
        let images: Vec<&Tensor<f32>> = ids
            .iter()
            .map(|&id| &samples[id as usize % samples.len()].image)
            .collect();
        let nets = if degraded {
            self.fallback.as_ref().expect(
                "invariant: degraded batches are only dispatched after fallback nets were built",
            )
        } else {
            &self.instances
        };
        let preds = nets[inst].predict_batch(&images, ids, self.workload.workers);
        for (&id, pred) in ids.iter().zip(preds) {
            self.predictions[id as usize] = pred;
        }
    }

    /// Correct responses over the run: predictions matching their sample
    /// label, counted only for requests that reached a response terminal
    /// state. Computed from the final ledger (not incrementally) so a
    /// batch aborted by a kill and re-executed is counted exactly once.
    fn correct_responses(&self, outcomes: &[RequestOutcome]) -> u64 {
        let samples = self.workload.samples;
        self.predictions
            .iter()
            .enumerate()
            .filter(|&(id, &pred)| {
                matches!(
                    outcomes[id],
                    RequestOutcome::Served | RequestOutcome::Degraded
                ) && pred == samples[id % samples.len()].label
            })
            .count() as u64
    }
}

/// Scheduler events.
enum Ev {
    /// A request enters the queue.
    Arrive,
    /// The batching window of epoch `.0` expired.
    Flush(u64),
    /// Instance `inst` finished the batch it dispatched in boot epoch
    /// `epoch`; stale if the instance was killed since (its epoch moved
    /// on).
    BatchDone { inst: usize, epoch: u64 },
    /// Fault `.0` of the normalized plan fires.
    Fault(usize),
    /// Instance `.0`'s stall window may be over (superseded if the stall
    /// was extended meanwhile).
    StallEnd(usize),
    /// Instance `inst` finishes its weight reload, begun in boot epoch
    /// `epoch`; stale if the instance was killed mid-reload.
    ReloadDone { inst: usize, epoch: u64 },
}

/// One waiting request.
struct PendingReq {
    id: u64,
    arrived: SimTime,
    /// Admitted onto the degraded (fallback-model) tier.
    degraded: bool,
}

/// A batch occupying an instance.
struct InFlight {
    /// Fallback-tier batch.
    degraded: bool,
    /// Dispatch time (busy time accrues `completion - started`, or
    /// `kill - started` for an aborted batch).
    started: SimTime,
    /// `(request id, arrival time)` in queue order.
    reqs: Vec<(u64, SimTime)>,
}

/// One fleet instance's liveness state.
struct Instance {
    /// Alive and (eventually) dispatchable.
    up: bool,
    /// Mid-reload after a restart (`up` is still false).
    reloading: bool,
    /// Boot epoch: bumped by every kill, stamped into `BatchDone` /
    /// `ReloadDone` events so completions of a previous life are ignored.
    epoch: u64,
    /// No new dispatches before this instant ([`FaultEvent::Stall`]).
    stall_until: SimTime,
    /// The batch this instance is serving, if any.
    in_flight: Option<InFlight>,
}

impl Instance {
    fn fresh() -> Self {
        Self {
            up: true,
            reloading: false,
            epoch: 0,
            stall_until: SimTime::ZERO,
            in_flight: None,
        }
    }

    fn dispatchable(&self, now: SimTime) -> bool {
        self.up && self.in_flight.is_none() && self.stall_until <= now
    }
}

/// Per-batch-size analysis cache: the batched layer walk is identical for
/// every batch of the same size, so it is computed once per size.
struct BatchProfiles<'a> {
    cfg: AcceleratorConfig,
    model: &'a CnnModel,
    by_size: Vec<Option<(SimTime, Vec<LayerPerf>)>>,
}

impl<'a> BatchProfiles<'a> {
    fn new(cfg: AcceleratorConfig, model: &'a CnnModel, max_batch: usize) -> Self {
        Self {
            cfg,
            model,
            by_size: vec![None; max_batch + 1],
        }
    }

    fn get(&mut self, batch: usize) -> &(SimTime, Vec<LayerPerf>) {
        let slot = &mut self.by_size[batch];
        if slot.is_none() {
            let layers: Vec<LayerPerf> = self
                .model
                .workloads
                .iter()
                .map(|w| analyze_layer_batched(&self.cfg, w, batch))
                .collect();
            let makespan = layers.iter().fold(SimTime::ZERO, |acc, l| acc + l.total);
            *slot = Some((makespan, layers));
        }
        slot.as_ref()
            .expect("invariant: slot was filled by the branch above")
    }
}

/// Mutable scheduler state threaded through the event handlers.
struct Scheduler<'a> {
    cfg: ServingConfig,
    model: &'a CnnModel,
    profiles: BatchProfiles<'a>,
    /// Fallback-tier profiles ([`AdmissionPolicy::Degrade`] only), on the
    /// reduced-precision accelerator operating point.
    degraded_profiles: Option<BatchProfiles<'a>>,
    /// The reduced-precision operating point degraded batches record
    /// their energy against.
    degraded_accel: Option<AcceleratorConfig>,
    /// Functional execution state; `None` runs the analytic-only model.
    functional: Option<FunctionalExec<'a>>,
    ledger: EnergyLedger,
    /// Requests waiting to be batched, arrival order. Ids are assigned in
    /// arrival order, so id `r` always denotes the `r`-th request to
    /// enter the system regardless of the arrival process.
    pending: VecDeque<PendingReq>,
    /// Next request id to assign.
    next_id: u64,
    /// Terminal state per request id (`None` while in flight).
    outcomes: Vec<Option<RequestOutcome>>,
    /// Per-instance liveness + in-flight state.
    nodes: Vec<Instance>,
    /// The normalized fault schedule ([`Ev::Fault`] indexes into it).
    faults: Vec<FaultEvent>,
    /// Weight-reload latency a restarted instance pays
    /// ([`model_reload_time`] of this config and model).
    reload_time: SimTime,
    util: Vec<Utilization>,
    latency: LatencySamples,
    queue_depth: QueueDepthSamples,
    issued: usize,
    offered: u64,
    completed: u64,
    dropped: u64,
    degraded_done: u64,
    shed: ShedCounts,
    batches: u64,
    batched_requests: u64,
    last_completion: SimTime,
    /// Monotonic epoch invalidating stale flush timers.
    flush_epoch: u64,
    /// A flush timer for the current epoch is in flight.
    flush_armed: bool,
    /// The window expired with requests still queued: dispatch partial
    /// batches at the next opportunity.
    force_flush: bool,
    rng: StdRng,
}

impl Scheduler<'_> {
    /// Lowest-numbered dispatchable instance, if any: up, idle, and not
    /// inside a stall window.
    fn idle_instance(&self, now: SimTime) -> Option<usize> {
        self.nodes.iter().position(|n| n.dispatchable(now))
    }

    /// Shared-queue bound implied by the per-instance `queue_cap`.
    fn queue_bound(&self) -> Option<usize> {
        self.cfg
            .queue_cap
            .map(|c| c.saturating_mul(self.cfg.instances))
    }

    /// Records the queue depth if it changed.
    fn note_depth(&mut self, now: SimTime) {
        let depth = self.pending.len();
        if self.queue_depth.last_depth() != Some(depth) {
            self.queue_depth.record(now, depth);
        }
    }

    /// Unconditionally samples the queue depth: fault boundaries (kill,
    /// restart, stall, reload-done, settle) must be visible in the time
    /// series even when the depth itself did not move.
    fn note_fault_boundary(&mut self, now: SimTime) {
        self.queue_depth.record(now, self.pending.len());
    }

    fn schedule_poisson_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if self.issued >= self.cfg.requests {
            return;
        }
        let ArrivalProcess::Poisson { rate_fps } = self.cfg.arrivals else {
            return;
        };
        assert!(rate_fps > 0.0, "Poisson rate must be positive");
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate_fps;
        self.issued += 1;
        q.schedule_in(SimTime::from_secs_f64(dt), Ev::Arrive);
    }

    /// Marks request `id` shed for `cause` (a drop, not a response).
    fn record_drop(&mut self, id: u64, cause: RequestOutcome) {
        match cause {
            RequestOutcome::ShedNewest => self.shed.newest += 1,
            RequestOutcome::ShedOldest => self.shed.oldest += 1,
            RequestOutcome::ShedDeadline => self.shed.deadline += 1,
            RequestOutcome::ShedStranded => self.shed.stranded += 1,
            _ => unreachable!("record_drop takes shed causes only"),
        }
        self.dropped += 1;
        self.outcomes[id as usize] = Some(cause);
    }

    /// Admits one fresh arrival at `now` under the admission policy.
    /// Returns how many requests were shed in the process (0 or 1): the
    /// newcomer (`DropNewest`/`Deadline` at a full queue) or an evicted
    /// older waiter (`DropOldest`).
    fn admit(&mut self, now: SimTime) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.offered += 1;
        self.outcomes.push(None);
        let full = self
            .queue_bound()
            .is_some_and(|bound| self.pending.len() >= bound);
        let shed = if !full {
            self.pending.push_back(PendingReq {
                id,
                arrived: now,
                degraded: false,
            });
            0
        } else {
            match self.cfg.admission {
                AdmissionPolicy::DropNewest | AdmissionPolicy::Deadline { .. } => {
                    self.record_drop(id, RequestOutcome::ShedNewest);
                    1
                }
                AdmissionPolicy::DropOldest => {
                    let old = self
                        .pending
                        .pop_front()
                        .expect("invariant: the queue is full here, so it has a head");
                    self.record_drop(old.id, RequestOutcome::ShedOldest);
                    self.pending.push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: false,
                    });
                    1
                }
                AdmissionPolicy::Degrade { .. } => {
                    // Admit anyway, but onto the fallback tier: the
                    // request keeps its place in line and its client gets
                    // a (coarser) answer.
                    self.shed.degraded += 1;
                    self.pending.push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: true,
                    });
                    0
                }
            }
        };
        self.note_depth(now);
        shed
    }

    /// Admits `n` fresh arrivals at `now`. In the closed loop every shed
    /// frees a client, which immediately fires its next request — so
    /// admission keeps going until nothing was shed or the request
    /// budget is exhausted.
    fn admit_arrivals(&mut self, now: SimTime, mut n: usize) {
        let closed = matches!(self.cfg.arrivals, ArrivalProcess::ClosedLoop { .. });
        while n > 0 {
            n -= 1;
            let shed = self.admit(now);
            if closed && shed > 0 && self.issued < self.cfg.requests {
                self.issued += 1;
                n += 1;
            }
        }
    }

    /// Closed-loop client replacement: `freed` clients got a terminal
    /// answer (completion or shed), so each fires its next request —
    /// capped by the remaining request budget. No-op for open-loop and
    /// trace arrivals.
    fn respawn_clients(&mut self, now: SimTime, freed: usize) {
        if !matches!(self.cfg.arrivals, ArrivalProcess::ClosedLoop { .. }) {
            return;
        }
        let replacements = freed.min(self.cfg.requests.saturating_sub(self.issued));
        self.issued += replacements;
        self.admit_arrivals(now, replacements);
    }

    /// Dispatches as many batches as idle instances and pending requests
    /// allow. Full batches always go; partial batches when the window
    /// expired (`force_flush`) or when a tier boundary caps the head run
    /// (it can never grow — later arrivals queue behind the other tier).
    /// Under [`AdmissionPolicy::Deadline`] requests whose wait already
    /// exceeds the SLO are shed first — FIFO order means only a queue
    /// prefix can have expired.
    fn try_dispatch(&mut self, q: &mut EventQueue<Ev>, now: SimTime) {
        if let AdmissionPolicy::Deadline { slo } = self.cfg.admission {
            let mut expired = 0usize;
            while let Some(front) = self.pending.front() {
                if now - front.arrived > slo {
                    let r = self
                        .pending
                        .pop_front()
                        .expect("invariant: front() returned Some above");
                    self.record_drop(r.id, RequestOutcome::ShedDeadline);
                    expired += 1;
                } else {
                    break;
                }
            }
            if expired > 0 {
                self.note_depth(now);
                // Each shed frees a client for its next request.
                self.respawn_clients(now, expired);
            }
        }
        while let Some(front) = self.pending.front() {
            let tier_degraded = front.degraded;
            // The head run of same-tier requests, scanned only as far as
            // the batch limit needs.
            let scan = self
                .pending
                .iter()
                .take(self.cfg.max_batch + 1)
                .take_while(|r| r.degraded == tier_degraded)
                .count();
            let take = scan.min(self.cfg.max_batch);
            let dispatchable =
                take == self.cfg.max_batch || scan < self.pending.len() || self.force_flush;
            if !dispatchable {
                break;
            }
            let Some(inst) = self.idle_instance(now) else {
                break;
            };
            let reqs: Vec<(u64, SimTime)> = self
                .pending
                .drain(..take)
                .map(|r| (r.id, r.arrived))
                .collect();
            let (makespan, layers) = if tier_degraded {
                self.degraded_profiles
                    .as_mut()
                    .expect("invariant: the degraded tier is only entered after fallback profiles were built")
                    .get(take)
            } else {
                self.profiles.get(take)
            };
            let makespan = *makespan;
            let accel = if tier_degraded {
                self.degraded_accel.expect(
                    "invariant: the degraded tier is only entered after fallback config was set",
                )
            } else {
                self.cfg.accelerator
            };
            record_inference_ops(&mut self.ledger, &accel, layers, self.model, take);
            if let Some(func) = &mut self.functional {
                // Run the real inference the analytic model is timing:
                // the whole batch through one stack of prepared tiles on
                // this instance's model copy (primary or fallback).
                let ids: Vec<u64> = reqs.iter().map(|&(id, _)| id).collect();
                func.execute_batch(inst, &ids, tier_degraded);
            }
            let node = &mut self.nodes[inst];
            node.in_flight = Some(InFlight {
                degraded: tier_degraded,
                started: now,
                reqs,
            });
            self.batches += 1;
            self.batched_requests += take as u64;
            q.schedule_in(
                makespan,
                Ev::BatchDone {
                    inst,
                    epoch: node.epoch,
                },
            );
            self.note_depth(now);
        }
        if self.pending.is_empty() {
            // Window satisfied; stale timers are invalidated by the epoch.
            self.force_flush = false;
            self.flush_armed = false;
            self.flush_epoch += 1;
        } else if !self.flush_armed && !self.force_flush {
            self.flush_armed = true;
            q.schedule_in(self.cfg.batch_window, Ev::Flush(self.flush_epoch));
        }
    }

    /// Kills instance `inst`: bump its boot epoch (in-flight completions
    /// and reloads of the old life become stale), truncate its busy time
    /// at the kill instant, and requeue the aborted batch's requests at
    /// the **front** of the pending queue in their original order — then
    /// let the admission policy settle any overflow. A kill against a
    /// dead idle instance is a no-op; a kill mid-reload cancels the
    /// reload.
    fn apply_kill(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        let node = &mut self.nodes[inst];
        if node.up || node.reloading {
            node.epoch += 1;
            node.up = false;
            node.reloading = false;
            node.stall_until = SimTime::ZERO;
            if let Some(fl) = node.in_flight.take() {
                // Wasted work is real work: the dispatch energy stays on
                // the ledger, but only the busy time actually accrued
                // counts toward utilization.
                self.util[inst].add_busy(now - fl.started);
                if let Some(func) = &mut self.functional {
                    // The aborted requests never produced a response;
                    // their (deterministic) predictions are re-computed
                    // identically if they are re-dispatched.
                    for &(id, _) in &fl.reqs {
                        func.predictions[id as usize] = usize::MAX;
                    }
                }
                let tier_degraded = fl.degraded;
                for (id, arrived) in fl.reqs.into_iter().rev() {
                    self.pending.push_front(PendingReq {
                        id,
                        arrived,
                        degraded: tier_degraded,
                    });
                }
                self.enforce_bound_after_requeue(now);
            }
        }
        self.note_fault_boundary(now);
        self.try_dispatch(q, now);
    }

    /// Re-applies the queue bound after a kill pushed an aborted batch
    /// back onto the queue: the overflow passes through the same
    /// admission policy as arriving traffic — the tail is shed under
    /// `DropNewest`/`Deadline`, the head under `DropOldest`, and under
    /// `Degrade` everything beyond the bound is (re)marked for the
    /// fallback tier instead of shed.
    fn enforce_bound_after_requeue(&mut self, now: SimTime) {
        let Some(bound) = self.queue_bound() else {
            return;
        };
        let mut freed = 0usize;
        match self.cfg.admission {
            AdmissionPolicy::DropNewest | AdmissionPolicy::Deadline { .. } => {
                while self.pending.len() > bound {
                    let r = self
                        .pending
                        .pop_back()
                        .expect("invariant: over-bound queue is non-empty");
                    self.record_drop(r.id, RequestOutcome::ShedNewest);
                    freed += 1;
                }
            }
            AdmissionPolicy::DropOldest => {
                while self.pending.len() > bound {
                    let r = self
                        .pending
                        .pop_front()
                        .expect("invariant: over-bound queue is non-empty");
                    self.record_drop(r.id, RequestOutcome::ShedOldest);
                    freed += 1;
                }
            }
            AdmissionPolicy::Degrade { .. } => {
                for r in self.pending.iter_mut().skip(bound) {
                    if !r.degraded {
                        r.degraded = true;
                        self.shed.degraded += 1;
                    }
                }
            }
        }
        if freed > 0 {
            self.note_depth(now);
            self.respawn_clients(now, freed);
        }
    }

    /// Begins rebooting instance `inst`: the reload completes — and the
    /// instance becomes dispatchable — after [`Self::reload_time`]. A
    /// restart against a live or already-reloading instance is a no-op.
    fn apply_restart(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        let node = &mut self.nodes[inst];
        if !node.up && !node.reloading {
            node.reloading = true;
            q.schedule_at(
                now + self.reload_time,
                Ev::ReloadDone {
                    inst,
                    epoch: node.epoch,
                },
            );
        }
        self.note_fault_boundary(now);
    }

    /// Stalls instance `inst` until `now + duration`: its in-flight batch
    /// (if any) completes normally, but no new batch is dispatched to it
    /// inside the window. Overlapping stalls extend each other; stalling
    /// a dead instance is a no-op.
    fn apply_stall(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize, dur: SimTime) {
        let node = &mut self.nodes[inst];
        if node.up {
            let until = now + dur;
            if until > node.stall_until {
                node.stall_until = until;
                q.schedule_at(until, Ev::StallEnd(inst));
            }
        }
        self.note_fault_boundary(now);
    }

    fn handle(&mut self, q: &mut EventQueue<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive => {
                self.admit_arrivals(now, 1);
                self.schedule_poisson_arrival(q);
                self.try_dispatch(q, now);
            }
            Ev::Flush(epoch) => {
                if epoch != self.flush_epoch {
                    return; // stale timer from an already-drained queue
                }
                self.flush_armed = false;
                self.force_flush = true;
                self.try_dispatch(q, now);
            }
            Ev::BatchDone { inst, epoch } => {
                if self.nodes[inst].epoch != epoch {
                    return; // the instance died mid-batch; already requeued
                }
                let fl = self.nodes[inst].in_flight.take().expect(
                    "invariant: a current-epoch BatchDone matches a stored in-flight batch",
                );
                self.util[inst].add_busy(now - fl.started);
                self.last_completion = now;
                let n_done = fl.reqs.len();
                for (id, arrival) in fl.reqs {
                    self.latency.record(now - arrival);
                    if fl.degraded {
                        self.degraded_done += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Degraded);
                    } else {
                        self.completed += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Served);
                    }
                }
                // Each completed client immediately re-requests.
                self.respawn_clients(now, n_done);
                self.try_dispatch(q, now);
            }
            Ev::Fault(idx) => match self.faults[idx] {
                FaultEvent::Kill { instance, .. } => self.apply_kill(q, now, instance),
                FaultEvent::Restart { instance, .. } => self.apply_restart(q, now, instance),
                FaultEvent::Stall {
                    instance, duration, ..
                } => self.apply_stall(q, now, instance, duration),
            },
            Ev::StallEnd(inst) => {
                let node = &self.nodes[inst];
                if node.up && node.stall_until <= now {
                    // The window really is over (not extended meanwhile,
                    // not cut short by a kill): the instance is
                    // dispatchable again.
                    self.note_fault_boundary(now);
                    self.try_dispatch(q, now);
                }
            }
            Ev::ReloadDone { inst, epoch } => {
                let node = &mut self.nodes[inst];
                if !node.reloading || node.epoch != epoch {
                    return; // killed mid-reload; this boot was cancelled
                }
                node.reloading = false;
                node.up = true;
                self.note_fault_boundary(now);
                self.try_dispatch(q, now);
            }
        }
    }
}

/// Liveness of one instance at a step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceHealth {
    /// Up and idle (dispatchable).
    Idle,
    /// Up with a batch in flight.
    Busy,
    /// Up but inside a stall window: no new dispatches.
    Stalled,
    /// Killed; no restart in progress.
    Down,
    /// Rebooting: paying the weight-reload latency.
    Reloading,
}

/// One instance's state in a [`FleetSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// Liveness at the snapshot instant.
    pub health: InstanceHealth,
    /// Requests in this instance's in-flight batch (0 when idle).
    pub in_flight: usize,
    /// The in-flight batch is on the degraded (fallback-model) tier.
    pub degraded_batch: bool,
}

/// A consistent view of the fleet at a step boundary.
///
/// The conservation invariant the scenario harness asserts at every step:
/// [`FleetSnapshot::accounted`] `== offered` — every request that entered
/// the system is in exactly one of completed / dropped / degraded /
/// queued / in-flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Simulated time of the last processed event.
    pub now: SimTime,
    /// Events processed so far.
    pub events_processed: u64,
    /// The simulation has settled: no events remain and every request
    /// reached a terminal state.
    pub is_complete: bool,
    /// Requests that entered the system so far.
    pub offered: u64,
    /// Full-fidelity responses so far.
    pub completed: u64,
    /// Drops so far.
    pub dropped: u64,
    /// Degraded (fallback-tier) responses so far.
    pub degraded: u64,
    /// Per-cause shed counters so far.
    pub shed: ShedCounts,
    /// Requests waiting in the shared pending queue.
    pub queued: u64,
    /// Requests inside dispatched, unfinished batches.
    pub in_flight: u64,
    /// Batches dispatched so far (re-dispatches after a kill recount).
    pub batches: u64,
    /// Per-instance liveness and in-flight state, instance order.
    pub instances: Vec<InstanceSnapshot>,
}

impl FleetSnapshot {
    /// Requests in *some* accounted state:
    /// `completed + dropped + degraded + queued + in_flight`. Equals
    /// [`FleetSnapshot::offered`] at every step boundary — requests are
    /// never silently lost, faults or not.
    pub fn accounted(&self) -> u64 {
        self.completed + self.dropped + self.degraded + self.queued + self.in_flight
    }
}

/// The serving simulation as an incrementally-steppable state machine.
///
/// ```
/// use sconna_accel::serve::{Fleet, FaultPlan, ServingConfig};
/// use sconna_accel::AcceleratorConfig;
/// use sconna_sim::time::SimTime;
/// use sconna_tensor::models::shufflenet_v2;
///
/// let model = shufflenet_v2();
/// let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 16);
/// let plan = FaultPlan::new()
///     .kill(SimTime::from_ns(200_000), 0)
///     .restart(SimTime::from_ns(400_000), 0);
/// let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
/// while fleet.step() {
///     let snap = fleet.snapshot();
///     assert_eq!(snap.accounted(), snap.offered); // conservation
/// }
/// let report = fleet.into_report();
/// assert_eq!(report.offered, 16);
/// ```
pub struct Fleet<'a> {
    sched: Scheduler<'a>,
    q: EventQueue<Ev>,
    done: bool,
}

impl<'a> Fleet<'a> {
    /// Builds a steppable analytic-timing fleet. Equivalent to
    /// [`simulate_serving`](super::simulate_serving) when driven to
    /// completion (bit-identical reports, pinned in
    /// `tests/scenarios.rs`).
    ///
    /// # Panics
    /// Panics on degenerate configurations: zero instances, zero batch
    /// limit, zero requests, a zero queue cap, a non-positive Poisson
    /// rate, or a trace whose length disagrees with `requests`.
    pub fn new(config: &ServingConfig, model: &'a CnnModel) -> Self {
        Self::new_inner(config, model, None)
    }

    /// Builds a steppable **functional** fleet: every instance owns a
    /// prepared model copy and executes its dequeued batches for real.
    /// Equivalent to
    /// [`simulate_serving_functional`](super::simulate_serving_functional)
    /// when driven to completion.
    ///
    /// # Panics
    /// Panics on degenerate configurations, an empty sample set, or a
    /// [`AdmissionPolicy::Degrade`] policy without `workload.fallback`.
    pub fn new_functional(
        config: &ServingConfig,
        model: &'a CnnModel,
        workload: &'a FunctionalWorkload<'a>,
    ) -> Self {
        Self::new_inner(config, model, Some(workload))
    }

    fn new_inner(
        config: &ServingConfig,
        model: &'a CnnModel,
        workload: Option<&'a FunctionalWorkload<'a>>,
    ) -> Self {
        assert!(config.instances > 0, "need at least one instance");
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.requests > 0, "need at least one request");
        if let Some(cap) = config.queue_cap {
            assert!(
                cap > 0,
                "queue_cap must be positive (use None for unbounded)"
            );
        }

        let degrading = matches!(config.admission, AdmissionPolicy::Degrade { .. });
        let degraded_accel = if let AdmissionPolicy::Degrade { fallback_bits } = config.admission {
            Some(config.accelerator.with_native_bits(fallback_bits))
        } else {
            None
        };

        let mut ledger = EnergyLedger::new();
        for _ in 0..config.instances {
            register_components(&mut ledger, &config.accelerator);
        }

        let mut sched = Scheduler {
            model,
            profiles: BatchProfiles::new(config.accelerator, model, config.max_batch),
            degraded_profiles: degraded_accel
                .map(|cfg| BatchProfiles::new(cfg, model, config.max_batch)),
            degraded_accel,
            functional: workload
                .map(|w| FunctionalExec::new(w, config.instances, config.requests, degrading)),
            ledger,
            pending: VecDeque::new(),
            next_id: 0,
            outcomes: Vec::with_capacity(config.requests),
            nodes: (0..config.instances).map(|_| Instance::fresh()).collect(),
            faults: Vec::new(),
            reload_time: model_reload_time(&config.accelerator, model),
            util: vec![Utilization::new(); config.instances],
            latency: LatencySamples::new(),
            queue_depth: QueueDepthSamples::new(),
            issued: 0,
            offered: 0,
            completed: 0,
            dropped: 0,
            degraded_done: 0,
            shed: ShedCounts::default(),
            batches: 0,
            batched_requests: 0,
            last_completion: SimTime::ZERO,
            flush_epoch: 0,
            flush_armed: false,
            force_flush: false,
            rng: StdRng::seed_from_u64(config.seed),
            cfg: config.clone(),
        };

        let mut q = EventQueue::new();
        match &config.arrivals {
            ArrivalProcess::Poisson { .. } => {
                // Seed the first arrival; each arrival schedules the next.
                sched.schedule_poisson_arrival(&mut q);
            }
            ArrivalProcess::ClosedLoop { clients } => {
                assert!(*clients > 0, "closed loop needs at least one client");
                let initial = (*clients).min(config.requests);
                for _ in 0..initial {
                    sched.issued += 1;
                    q.schedule_at(SimTime::ZERO, Ev::Arrive);
                }
            }
            ArrivalProcess::Trace { times } => {
                assert_eq!(
                    times.len(),
                    config.requests,
                    "trace length must equal the request count"
                );
                sched.issued = times.len();
                for &t in times {
                    q.schedule_at(t, Ev::Arrive);
                }
            }
        }

        Self {
            sched,
            q,
            done: false,
        }
    }

    /// Installs a fault plan: schedules every event of the plan's
    /// canonical order ([`FaultPlan::normalized`]) on the fleet's event
    /// queue. Faults scheduled at the same instant as already-seeded
    /// arrivals fire after those arrivals and before any arrival seeded
    /// later (event-queue insertion order) — a deterministic, documented
    /// tie-break. An empty plan schedules nothing: bit-identical to no
    /// plan at all.
    ///
    /// # Panics
    /// Panics if any step was already taken or if a fault targets an
    /// instance outside the fleet.
    #[must_use]
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        assert_eq!(
            self.q.processed(),
            0,
            "install fault plans before the first step"
        );
        let events = plan.normalized();
        for e in &events {
            assert!(
                e.instance() < self.sched.cfg.instances,
                "fault targets instance {} of a {}-instance fleet",
                e.instance(),
                self.sched.cfg.instances
            );
        }
        let base = self.sched.faults.len();
        for (i, e) in events.iter().enumerate() {
            self.q.schedule_at(e.at(), Ev::Fault(base + i));
        }
        self.sched.faults.extend(events);
        self
    }

    /// Processes exactly one event. Returns `true` if an event was
    /// processed; when the queue is empty it settles the simulation
    /// (stranded requests drain, terminal accounting closes) and returns
    /// `false` — after which [`Fleet::is_complete`] holds.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        match self.q.pop() {
            Some((now, ev)) => {
                self.sched.handle(&mut self.q, now, ev);
                true
            }
            None => {
                self.settle();
                self.done = true;
                false
            }
        }
    }

    /// Processes every event scheduled at or before `t` (settling if the
    /// queue empties first). Returns the number of events processed.
    pub fn step_until(&mut self, t: SimTime) -> usize {
        let mut n = 0usize;
        while !self.done {
            match self.q.peek_time() {
                Some(next) if next <= t => {
                    self.step();
                    n += 1;
                }
                Some(_) => break,
                None => {
                    self.step(); // settles; not an event
                    break;
                }
            }
        }
        n
    }

    /// Drives the simulation until it settles.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Simulated time of the last processed event.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Time of the next scheduled event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    /// The simulation has settled: every request reached a terminal
    /// state and no events remain.
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// A consistent view of the fleet at the current step boundary.
    pub fn snapshot(&self) -> FleetSnapshot {
        let now = self.q.now();
        let s = &self.sched;
        let in_flight: u64 = s
            .nodes
            .iter()
            .map(|n| n.in_flight.as_ref().map_or(0, |f| f.reqs.len() as u64))
            .sum();
        FleetSnapshot {
            now,
            events_processed: self.q.processed(),
            is_complete: self.done,
            offered: s.offered,
            completed: s.completed,
            dropped: s.dropped,
            degraded: s.degraded_done,
            shed: s.shed,
            queued: s.pending.len() as u64,
            in_flight,
            batches: s.batches,
            instances: s
                .nodes
                .iter()
                .map(|n| InstanceSnapshot {
                    health: if n.reloading {
                        InstanceHealth::Reloading
                    } else if !n.up {
                        InstanceHealth::Down
                    } else if n.in_flight.is_some() {
                        InstanceHealth::Busy
                    } else if n.stall_until > now {
                        InstanceHealth::Stalled
                    } else {
                        InstanceHealth::Idle
                    },
                    in_flight: n.in_flight.as_ref().map_or(0, |f| f.reqs.len()),
                    degraded_batch: n.in_flight.as_ref().is_some_and(|f| f.degraded),
                })
                .collect(),
        }
    }

    /// Terminal drain once the event queue is empty. In a fault-free run
    /// this is a no-op: every request already reached a terminal state.
    /// Under a fault plan the queue can drain with requests still pending
    /// — only possible when every instance is dead with no restart
    /// scheduled — and those provably-unservable requests are accounted
    /// as [`RequestOutcome::ShedStranded`] (in the closed loop, the
    /// freed clients' remaining request budget strands the same way).
    fn settle(&mut self) {
        if self.sched.pending.is_empty() && self.sched.offered as usize == self.sched.cfg.requests {
            return;
        }
        assert!(
            self.sched.nodes.iter().all(|n| !n.up && !n.reloading),
            "invariant: the queue only drains with work outstanding when the whole fleet is dead"
        );
        let now = self.q.now();
        while !self.sched.pending.is_empty() {
            let mut freed = 0usize;
            while let Some(r) = self.sched.pending.pop_front() {
                self.sched.record_drop(r.id, RequestOutcome::ShedStranded);
                freed += 1;
            }
            // Closed-loop clients freed by the strand fire their next
            // requests — into the same dead fleet, stranding in turn,
            // until the request budget is spent.
            self.sched.respawn_clients(now, freed);
        }
        self.sched.note_fault_boundary(now);
    }

    /// Runs to completion (if not already settled) and builds the
    /// [`ServingReport`].
    pub fn into_report(mut self) -> ServingReport {
        self.run_to_completion();
        self.into_parts().0
    }

    /// Runs to completion and builds the [`FunctionalServingReport`].
    ///
    /// # Panics
    /// Panics if the fleet was not built with [`Fleet::new_functional`].
    pub fn into_functional_report(mut self) -> FunctionalServingReport {
        self.run_to_completion();
        let (serving, outcomes, func) = self.into_parts();
        let func = func.expect(
            "invariant: into_functional_report is only called on Fleet::new_functional fleets",
        );
        debug_assert!(
            outcomes
                .iter()
                .zip(&func.predictions)
                .all(
                    |(o, &p)| matches!(o, RequestOutcome::Served | RequestOutcome::Degraded)
                        == (p != usize::MAX)
                ),
            "exactly the responses must have been executed"
        );
        let correct = func.correct_responses(&outcomes);
        let responses = serving.completed + serving.degraded;
        FunctionalServingReport {
            accuracy_under_load: if responses == 0 {
                0.0
            } else {
                correct as f64 / responses as f64
            },
            accuracy_offered: correct as f64 / serving.offered as f64,
            predictions: func.predictions,
            outcomes,
            correct,
            serving,
        }
    }

    /// Final accounting: terminal asserts plus report construction.
    fn into_parts(
        self,
    ) -> (
        ServingReport,
        Vec<RequestOutcome>,
        Option<FunctionalExec<'a>>,
    ) {
        assert!(self.done, "into_parts only after the simulation settled");
        let sched = self.sched;
        let config = &sched.cfg;
        assert_eq!(
            sched.offered as usize, config.requests,
            "every request must enter the system"
        );
        assert_eq!(
            sched.completed + sched.dropped + sched.degraded_done,
            sched.offered,
            "served + dropped + degraded must account every offered request"
        );
        let outcomes: Vec<RequestOutcome> = sched
            .outcomes
            .iter()
            .map(|o| {
                o.expect(
                    "invariant: every request reaches a terminal state before the queue drains",
                )
            })
            .collect();
        let responses = sched.completed + sched.degraded_done;
        // Stale flush timers may fire after the last completion, so the
        // serving makespan is the last completion time, not the queue's
        // final clock. ZERO (degenerate all-shed runs) zeroes the rate
        // metrics.
        let makespan = sched.last_completion;
        let secs = makespan.as_secs_f64();
        let energy_j = sched.ledger.total_energy_j(makespan);
        let report = ServingReport {
            accelerator: config.accelerator.name,
            model: sched.model.name.clone(),
            instances: config.instances,
            max_batch: config.max_batch,
            offered: sched.offered,
            completed: sched.completed,
            dropped: sched.dropped,
            degraded: sched.degraded_done,
            shed: sched.shed,
            drop_rate: sched.dropped as f64 / sched.offered as f64,
            batches: sched.batches,
            mean_batch_fill: if sched.batches == 0 {
                0.0
            } else {
                sched.batched_requests as f64 / sched.batches as f64
            },
            makespan,
            fps: if secs > 0.0 {
                sched.completed as f64 / secs
            } else {
                0.0
            },
            goodput_fps: if secs > 0.0 {
                responses as f64 / secs
            } else {
                0.0
            },
            latency: if sched.latency.is_empty() {
                LatencySummary {
                    count: 0,
                    p50: SimTime::ZERO,
                    p95: SimTime::ZERO,
                    p99: SimTime::ZERO,
                    mean: SimTime::ZERO,
                    max: SimTime::ZERO,
                }
            } else {
                sched.latency.summary()
            },
            queue_depth: sched.queue_depth,
            utilization: if makespan > SimTime::ZERO {
                sched.util.iter().map(|u| u.ratio(makespan)).collect()
            } else {
                vec![0.0; config.instances]
            },
            energy_j,
            energy_per_inference_j: if responses > 0 {
                energy_j / responses as f64
            } else {
                0.0
            },
            avg_power_w: if secs > 0.0 {
                sched.ledger.average_power_w(makespan)
            } else {
                0.0
            },
        };
        (report, outcomes, sched.functional)
    }
}
