//! The steppable fleet state machine: the serving simulation as an
//! incrementally-driven object instead of a run-to-completion function.
//!
//! [`Fleet::new`] builds the same scheduler the entry-point wrappers
//! always ran — shared pending queue, dynamic batching, admission
//! policy, deterministic [`EventQueue`] — but hands control of the event
//! loop to the caller: [`Fleet::step`] processes exactly one event,
//! [`Fleet::step_until`] drains events up to a simulated instant, and a
//! [`FleetSnapshot`] is available at **any** step boundary, exposing sim
//! time, per-instance state, queue depth, in-flight batches and the
//! served/dropped/degraded tallies. [`Fleet::run_to_completion`] followed
//! by [`Fleet::into_report`] reproduces the wrapper behavior
//! bit-identically (pinned in `tests/scenarios.rs`).
//!
//! On top of the steppable core sits fault injection
//! ([`Fleet::with_faults`]): a [`FaultPlan`](super::FaultPlan) of timed
//! kill / restart / stall events scheduled on the same event queue as the
//! traffic. A killed instance's in-flight batch is aborted and its
//! requests rejoin the front of the queue through the admission policy —
//! requests are never silently lost; the step-level conservation
//! invariant `offered == completed + dropped + degraded + queued +
//! in-flight` ([`FleetSnapshot::accounted`]) holds at every step
//! boundary, faults or not. A restarted instance pays the
//! [`model_reload_time`] weight-reload latency before taking work again.
//! If the whole fleet dies with no restart coming, requests that can
//! provably never be served drain as
//! [`RequestOutcome::ShedStranded`] when the fleet settles.
//!
//! Two datacenter-scale mechanisms ride on the same event loop:
//!
//! * **Rack routing.** Dispatch no longer scans the node list linearly:
//!   a two-level bitmap ([`RackRouter`]) groups instances into racks of
//!   64 under a cluster summary word set, so the lowest-numbered
//!   dispatchable instance is found with two `trailing_zeros` scans.
//!   The linear scan survives as a `debug_assert!` parity oracle.
//! * **Autoscaling.** When the config carries an
//!   [`AutoscalePolicy`](super::AutoscalePolicy), only part of the
//!   provisioned pool takes traffic; the rest is **standby**. A
//!   periodic [`Ev::ScaleTick`] compares demand against per-instance
//!   capacity and wakes or parks instances through the same
//!   epoch-guarded reload/drain machinery as fault handling — see
//!   [`autoscale`](super::autoscale) for the controller.

use super::autoscale::{AutoscaleCtl, ScaleEvent};
use super::config::{ServingConfigError, TenantScheduler, TenantSpec};
use super::report::{TenantAccuracy, TenantUsage};
use super::supervisor::{RestartMode, Supervisor};
use super::{
    AdmissionPolicy, ArrivalProcess, AvailabilityStats, FaultEvent, FaultPlan,
    FunctionalServingReport, RequestOutcome, ServingConfig, ServingReport, ShedCounts,
};
use crate::organization::AcceleratorConfig;
use crate::perf::{
    analyze_layer_batched, model_reload_time, model_swap_time, model_warm_reload_time,
    record_inference_ops, register_components, LayerPerf,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sconna_sim::energy::EnergyLedger;
use sconna_sim::event::EventQueue;
use sconna_sim::stats::{
    GoodputSamples, LatencySamples, LatencySummary, QueueDepthSamples, Utilization,
};
use sconna_sim::time::SimTime;
use sconna_tensor::arena::BatchArena;
use sconna_tensor::dataset::Sample;
use sconna_tensor::engine::VdpEngine;
use sconna_tensor::models::CnnModel;
use sconna_tensor::network::{PreparedNetwork, QuantizedNetwork};
use sconna_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The functional side of a serving experiment: the quantized model the
/// instances actually execute, the labelled request population, and the
/// VDP engine backing every instance.
///
/// Request `r` is drawn round-robin from `samples`
/// (`samples[r % samples.len()]`) and runs under image noise key `r`, so
/// the prediction set is a pure function of this workload — independent
/// of fleet size, batch packing, arrival process and `workers`. That
/// purity is also what makes fault injection safe functionally: a batch
/// aborted by a kill and re-executed later reproduces the same
/// predictions bit-for-bit.
pub struct FunctionalWorkload<'a> {
    /// The quantized network every instance loads.
    pub net: &'a QuantizedNetwork,
    /// Low-precision fallback network degraded batches execute on;
    /// required when the admission policy is [`AdmissionPolicy::Degrade`]
    /// (typically `net.degraded(fallback_bits)`).
    pub fallback: Option<&'a QuantizedNetwork>,
    /// Engine the fallback network runs on — typically the same
    /// organization at `Precision::new(fallback_bits)`, whose shorter
    /// streams and range-matched ADC keep the fallback's signal-to-noise
    /// at its own grid. `None` shares the primary engine.
    pub fallback_engine: Option<&'a dyn VdpEngine>,
    /// Labelled request population (round-robin by request id).
    pub samples: &'a [Sample],
    /// Engine each instance's prepared model executes on.
    pub engine: &'a dyn VdpEngine,
    /// Worker threads for the row-block parallelism inside one instance's
    /// batch execution. Results are worker-count invariant; this only
    /// changes host wall time.
    pub workers: usize,
}

/// Per-instance functional execution state: each instance owns a
/// **co-resident** prepared (weight-stationary) copy of every model of
/// the fleet — and, under [`AdmissionPolicy::Degrade`], of each
/// fallback model — loaded once at fleet bring-up, plus the
/// request-id-indexed prediction ledger. A single-model fleet (every
/// legacy entry point) holds exactly one prepared copy per instance,
/// as before; a multi-tenant fleet keeps one per model so a swap costs
/// only the analytic [`model_swap_time`], never a functional rebuild.
struct FunctionalExec<'a> {
    /// One workload per model index, parallel to the fleet's model
    /// slice.
    workloads: Vec<&'a FunctionalWorkload<'a>>,
    /// Engine-backed prepared models, `[instance][model]`.
    nets: Vec<Vec<PreparedNetwork<'a>>>,
    /// Prepared fallback copies, `[instance][model]`, when degrading.
    fallback: Option<Vec<Vec<PreparedNetwork<'a>>>>,
    /// Per-instance scratch arenas: a long-lived instance reuses its
    /// im2col patch matrices and activation buffers across batches
    /// instead of reallocating them per dispatch. Observationally pure —
    /// recycled buffers are re-zeroed and noise is keyed by coordinates,
    /// so predictions are bit-identical to fresh allocation
    /// (property-tested in `tests/batch_parity.rs`).
    arenas: Vec<BatchArena>,
    /// Prediction per request id (`usize::MAX` = no response).
    predictions: Vec<usize>,
}

impl<'a> FunctionalExec<'a> {
    fn new(
        workloads: Vec<&'a FunctionalWorkload<'a>>,
        instances: usize,
        requests: usize,
        degrading: bool,
    ) -> Self {
        for w in &workloads {
            assert!(!w.samples.is_empty(), "functional serving needs samples");
            assert!(w.workers > 0, "need at least one worker");
        }
        let fallback = if degrading {
            Some(
                (0..instances)
                    .map(|_| {
                        workloads
                            .iter()
                            .map(|w| {
                                let fb = w.fallback.expect(
                                    "invariant: Degrade admission requires FunctionalWorkload::fallback (documented)",
                                );
                                let engine = w.fallback_engine.unwrap_or(w.engine);
                                PreparedNetwork::new(fb, engine)
                            })
                            .collect()
                    })
                    .collect(),
            )
        } else {
            None
        };
        Self {
            // Model load: every instance prepares every model's weights
            // once — per-layer DKV/LUT stream conversion, narrow GEMM
            // forms — before the first request arrives; later swaps
            // repoint, they never re-prepare.
            nets: (0..instances)
                .map(|_| {
                    workloads
                        .iter()
                        .map(|w| PreparedNetwork::new(w.net, w.engine))
                        .collect()
                })
                .collect(),
            fallback,
            arenas: (0..instances).map(|_| BatchArena::new()).collect(),
            predictions: vec![usize::MAX; requests],
            workloads,
        }
    }

    /// Executes one dispatched batch on instance `inst`: the whole
    /// batch's images run through stacked `vdp_batch` tiles, keyed per
    /// request id — on the primary or the fallback prepared copy of
    /// `model` according to the batch's tier.
    fn execute_batch(&mut self, inst: usize, model: usize, ids: &[u64], degraded: bool) {
        let w = self.workloads[model];
        let samples = w.samples;
        let images: Vec<&Tensor<f32>> = ids
            .iter()
            .map(|&id| &samples[id as usize % samples.len()].image)
            .collect();
        let net = if degraded {
            &self.fallback.as_ref().expect(
                "invariant: degraded batches are only dispatched after fallback nets were built",
            )[inst][model]
        } else {
            &self.nets[inst][model]
        };
        let preds = net.predict_batch_in(&images, ids, w.workers, &self.arenas[inst]);
        for (&id, pred) in ids.iter().zip(preds) {
            self.predictions[id as usize] = pred;
        }
    }

    /// Correct responses over the run: predictions matching their sample
    /// label (looked up through `model_of`, the request-id → model-index
    /// map of the tenant roster), counted only for requests that reached
    /// a response terminal state. Computed from the final ledger (not
    /// incrementally) so a batch aborted by a kill and re-executed is
    /// counted exactly once.
    fn correct_responses(
        &self,
        outcomes: &[RequestOutcome],
        model_of: impl Fn(usize) -> usize,
    ) -> u64 {
        self.predictions
            .iter()
            .enumerate()
            .filter(|&(id, &pred)| {
                matches!(
                    outcomes[id],
                    RequestOutcome::Served | RequestOutcome::Degraded
                ) && {
                    let samples = self.workloads[model_of(id)].samples;
                    pred == samples[id % samples.len()].label
                }
            })
            .count() as u64
    }
}

/// Scheduler events.
enum Ev {
    /// A request of tenant `.0` enters that tenant's queue.
    Arrive(u32),
    /// The batching window of epoch `.0` expired.
    Flush(u64),
    /// Instance `inst` finished the batch it dispatched in boot epoch
    /// `epoch`; stale if the instance was killed since (its epoch moved
    /// on).
    BatchDone { inst: usize, epoch: u64 },
    /// Fault `.0` of the normalized plan fires.
    Fault(usize),
    /// Instance `.0`'s stall window may be over (superseded if the stall
    /// was extended meanwhile).
    StallEnd(usize),
    /// Instance `inst` finishes its weight reload, begun in boot epoch
    /// `epoch`; stale if the instance was killed mid-reload.
    ReloadDone { inst: usize, epoch: u64 },
    /// The supervisor's backoff for instance `inst` expired: begin the
    /// supervised reload. Stale if the boot epoch moved on or something
    /// else (a scripted restart) already began healing the instance.
    SupRestart { inst: usize, epoch: u64 },
    /// Instance `inst` stayed up [`Supervisor::reset_after`] since its
    /// supervised reload finished: its backoff ladder resets. Stale if
    /// the boot epoch moved on (killed again first).
    BackoffReset { inst: usize, epoch: u64 },
    /// The batch dispatched as sequence number `seq` on instance `inst`
    /// has been in flight [`RetryPolicy::hedge_after`](super::RetryPolicy):
    /// issue a hedged duplicate if the batch is still running, unhedged,
    /// no traffic is waiting and an idle instance exists. Stale if the
    /// batch completed (the sequence number no longer matches).
    HedgeTimer { inst: usize, seq: u64 },
    /// The autoscale controller's periodic decision point: measure
    /// demand since the last tick and retarget the active pool. Only
    /// scheduled when the config carries an
    /// [`AutoscalePolicy`](super::AutoscalePolicy); reschedules itself
    /// while the run can still make progress.
    ScaleTick,
}

/// One waiting request.
struct PendingReq {
    id: u64,
    arrived: SimTime,
    /// Admitted onto the degraded (fallback-model) tier.
    degraded: bool,
}

/// A batch occupying an instance.
struct InFlight {
    /// Tenant whose queue this batch was formed from (batches are
    /// single-tenant: one batch runs one resident model).
    tenant: u32,
    /// Fallback-tier batch.
    degraded: bool,
    /// Dispatch time (busy time accrues `completion - started`, or
    /// `kill - started` for an aborted batch).
    started: SimTime,
    /// `(request id, arrival time)` in queue order. A hedge holds a
    /// *copy* of its primary's requests (authoritative only after
    /// promotion); fleet-level in-flight accounting counts primaries
    /// only.
    reqs: Vec<(u64, SimTime)>,
    /// Dispatch sequence number, the [`Ev::HedgeTimer`] staleness guard:
    /// unlike the boot epoch it changes on every dispatch, so a timer
    /// armed for one batch can never fire against a later batch on the
    /// same instance.
    seq: u64,
    /// Instance running this batch's hedged duplicate, if any.
    hedge: Option<usize>,
    /// This batch *is* the hedged duplicate of the primary running on
    /// the named instance. Cleared on promotion (primary killed).
    hedge_of: Option<usize>,
}

/// Per-instance supervision state (only allocated when the config has a
/// [`Supervisor`]).
struct SupState {
    /// Restart attempts on the current backoff ladder (reset by
    /// [`Ev::BackoffReset`] after sustained uptime).
    ladder_attempt: u32,
    /// Lifetime supervised restarts of this instance — the jitter key,
    /// so delays stay decorrelated even after ladder resets.
    ordinal: u64,
    /// Kill timestamps inside the sliding crash-loop window.
    recent_kills: VecDeque<SimTime>,
    /// Permanently benched by crash-loop detection; only a scripted
    /// [`FaultEvent::Restart`] (the operator override) revives it.
    benched: bool,
}

impl SupState {
    fn fresh() -> Self {
        Self {
            ladder_attempt: 0,
            ordinal: 0,
            recent_kills: VecDeque::new(),
            benched: false,
        }
    }
}

/// Supervisor control block: the policy plus the run-wide mutable state.
struct SupCtl {
    policy: Supervisor,
    /// What a supervised reload costs, per model index (the restarted
    /// instance reloads its resident model): [`model_reload_time`] for
    /// [`RestartMode::Cold`], [`model_warm_reload_time`] for
    /// [`RestartMode::Warm`] (zero on SCONNA).
    reload: Vec<SimTime>,
    /// Remaining restart budget (`None` = unlimited).
    budget_left: Option<u64>,
    states: Vec<SupState>,
}

/// One fleet instance's liveness state.
struct Instance {
    /// Alive and (eventually) dispatchable.
    up: bool,
    /// Mid-reload after a restart (`up` is still false).
    reloading: bool,
    /// Boot epoch: bumped by every kill, stamped into `BatchDone` /
    /// `ReloadDone` events so completions of a previous life are ignored.
    epoch: u64,
    /// No new dispatches before this instant ([`FaultEvent::Stall`]).
    stall_until: SimTime,
    /// Parked by the autoscaler: admin-down (`up` is false), holding no
    /// loaded weights, outside the active pool until a scale-up wakes it.
    standby: bool,
    /// Retiring on scale-down: still up and finishing its in-flight
    /// batch, but taking no new dispatches; parks into standby at batch
    /// completion. A scale-up before then reprieves it in place.
    draining: bool,
    /// Model index currently programmed into this instance's weight
    /// banks. Dispatching a batch of a different model charges
    /// [`model_swap_time`] (near-zero LUT repointing on SCONNA,
    /// cell-reprogramming-dominated on the analog baselines) before the
    /// batch runs; restarts and wakes reload this model.
    resident: usize,
    /// The batch this instance is serving, if any.
    in_flight: Option<InFlight>,
}

impl Instance {
    fn fresh(resident: usize) -> Self {
        Self {
            up: true,
            reloading: false,
            epoch: 0,
            stall_until: SimTime::ZERO,
            standby: false,
            draining: false,
            resident,
            in_flight: None,
        }
    }

    fn dispatchable(&self, now: SimTime) -> bool {
        self.up && !self.draining && self.in_flight.is_none() && self.stall_until <= now
    }
}

/// Per-batch-size analysis cache: the batched layer walk is identical for
/// every batch of the same size, so it is computed once per size.
struct BatchProfiles<'a> {
    cfg: AcceleratorConfig,
    model: &'a CnnModel,
    by_size: Vec<Option<(SimTime, Vec<LayerPerf>)>>,
}

impl<'a> BatchProfiles<'a> {
    fn new(cfg: AcceleratorConfig, model: &'a CnnModel, max_batch: usize) -> Self {
        Self {
            cfg,
            model,
            by_size: vec![None; max_batch + 1],
        }
    }

    fn get(&mut self, batch: usize) -> &(SimTime, Vec<LayerPerf>) {
        let slot = &mut self.by_size[batch];
        if slot.is_none() {
            let layers: Vec<LayerPerf> = self
                .model
                .workloads
                .iter()
                .map(|w| analyze_layer_batched(&self.cfg, w, batch))
                .collect();
            let makespan = layers.iter().fold(SimTime::ZERO, |acc, l| acc + l.total);
            *slot = Some((makespan, layers));
        }
        slot.as_ref()
            .expect("invariant: slot was filled by the branch above")
    }
}

/// Everything the scheduler knows about one servable model: the model,
/// its per-batch-size timing profiles (native and fallback tier), and
/// what it costs to swap it into — or cold-reload it onto — an
/// instance.
struct ModelCtx<'a> {
    model: &'a CnnModel,
    profiles: BatchProfiles<'a>,
    /// Fallback-tier profiles ([`AdmissionPolicy::Degrade`] only), on
    /// the reduced-precision accelerator operating point.
    degraded_profiles: Option<BatchProfiles<'a>>,
    /// Cost of swapping this model into an instance whose scratchpads
    /// already stage its weights ([`model_swap_time`]): OSM-LUT bank
    /// repointing on SCONNA, full cell reprogramming on the analog
    /// baselines — the paper's reprogramming asymmetry at
    /// batch-formation granularity.
    swap_time: SimTime,
    /// Cold weight-reload latency a restart or scale-up wake pays
    /// ([`model_reload_time`]).
    reload_time: SimTime,
}

/// Run-wide mutable state of one tenant: its spec, its weighted-fair
/// virtual clock, its private arrival stream, and the usage counters
/// that become its [`TenantUsage`] record. (The per-origin usage-record
/// shape follows the traffic-accounting idiom: every counter the
/// operator bills or SLO-audits lives on the tenant, and the fleet
/// totals are provably the sum over tenants.)
struct TenantRt {
    spec: TenantSpec,
    /// Weighted-fair virtual finish time: advanced `batch / weight` per
    /// dispatched batch; a tenant rejoining the backlog is bumped to
    /// the fleet's virtual clock so idle time earns no credit.
    vtime: f64,
    /// Private arrival RNG (tenant 0 owns the config seed, so a
    /// single-tenant roster replays the legacy arrival stream
    /// bit-identically).
    rng: StdRng,
    /// Requests issued into this tenant's arrival process so far.
    issued: usize,
    offered: u64,
    completed: u64,
    degraded_done: u64,
    dropped: u64,
    shed: ShedCounts,
    latency: LatencySamples,
    batches: u64,
    batched_requests: u64,
    /// Model swaps instances paid to serve this tenant.
    swaps: u64,
    /// Total simulated time those swaps cost.
    swap_time: SimTime,
    /// Dynamic energy attributed to this tenant's dispatches, joules.
    energy_j: f64,
}

impl TenantRt {
    fn new(spec: TenantSpec, index: usize, seed: u64) -> Self {
        Self {
            spec,
            vtime: 0.0,
            // Tenant 0 inherits the config seed verbatim (single-tenant
            // bit-identity); later tenants decorrelate by a golden-ratio
            // stride.
            rng: StdRng::seed_from_u64(if index == 0 {
                seed
            } else {
                seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            }),
            issued: 0,
            offered: 0,
            completed: 0,
            degraded_done: 0,
            dropped: 0,
            shed: ShedCounts::default(),
            latency: LatencySamples::new(),
            batches: 0,
            batched_requests: 0,
            swaps: 0,
            swap_time: SimTime::ZERO,
            energy_j: 0.0,
        }
    }
}

/// Instances per rack word in the [`RackRouter`].
const RACK_SIZE: usize = 64;

/// Two-level dispatch routing: per-rack occupancy bitmaps under a
/// cluster summary.
///
/// Instances are grouped into racks of [`RACK_SIZE`]; bit `i` of rack
/// word `r` is set when instance `r·64 + i` is a dispatch *candidate* —
/// up, not draining, nothing in flight. Bit `r` of summary word `w` is
/// set when rack `w·64 + r` has any candidate, so the lowest-numbered
/// candidate is found with two `trailing_zeros` scans instead of a
/// linear walk over the fleet — O(1) per dispatch at datacenter scale
/// instead of O(instances).
///
/// Stall windows are time-dependent and rare, so they are *not*
/// tracked in the bitmaps: the router over-approximates dispatchability
/// and the caller filters candidates lazily at scan time. Every
/// actually-dispatchable instance always has its bit set (maintained by
/// [`Scheduler::sync_router`] at every liveness/occupancy transition),
/// so the first accepted candidate equals the linear-scan answer.
struct RackRouter {
    racks: Vec<u64>,
    summary: Vec<u64>,
}

impl RackRouter {
    fn new(instances: usize) -> Self {
        let racks = vec![0u64; instances.div_ceil(RACK_SIZE)];
        let summary = vec![0u64; racks.len().div_ceil(64)];
        Self { racks, summary }
    }

    /// Records whether `inst` is a dispatch candidate.
    fn set(&mut self, inst: usize, candidate: bool) {
        let (r, b) = (inst / RACK_SIZE, inst % RACK_SIZE);
        if candidate {
            self.racks[r] |= 1u64 << b;
        } else {
            self.racks[r] &= !(1u64 << b);
        }
        let (w, s) = (r / 64, r % 64);
        if self.racks[r] != 0 {
            self.summary[w] |= 1u64 << s;
        } else {
            self.summary[w] &= !(1u64 << s);
        }
    }

    /// Lowest-numbered candidate accepted by `admit` (the lazy stall
    /// filter), scanning summary words, then racks, then instances in
    /// index order.
    fn first(&self, mut admit: impl FnMut(usize) -> bool) -> Option<usize> {
        for (w, &word) in self.summary.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let r = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let mut bits = self.racks[r];
                while bits != 0 {
                    let inst = r * RACK_SIZE + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if admit(inst) {
                        return Some(inst);
                    }
                }
            }
        }
        None
    }
}

/// Mutable scheduler state threaded through the event handlers.
struct Scheduler<'a> {
    cfg: ServingConfig,
    /// The servable models, index order of the tenant specs' `model`
    /// field. Single-model fleets hold exactly one entry.
    models: Vec<ModelCtx<'a>>,
    /// The resolved tenant roster: the config's tenants, or one
    /// synthesized tenant mirroring the config-level
    /// arrivals/requests/queue-cap for every legacy entry point.
    tenants: Vec<TenantRt>,
    /// The reduced-precision operating point degraded batches record
    /// their energy against.
    degraded_accel: Option<AcceleratorConfig>,
    /// Functional execution state; `None` runs the analytic-only model.
    functional: Option<FunctionalExec<'a>>,
    ledger: EnergyLedger,
    /// Per-tenant bounded queues of requests waiting to be batched,
    /// arrival order within each queue. Ids are assigned in global
    /// arrival order, so id `r` always denotes the `r`-th request to
    /// enter the system regardless of the arrival process or tenant.
    pending: Vec<VecDeque<PendingReq>>,
    /// Tenant index per request id.
    tenant_of: Vec<u32>,
    /// The fleet's weighted-fair virtual clock: the virtual start time
    /// of the most recent dispatch, to which newly-backlogged tenants
    /// are synced.
    vclock: f64,
    /// Next request id to assign.
    next_id: u64,
    /// Terminal state per request id (`None` while in flight).
    outcomes: Vec<Option<RequestOutcome>>,
    /// Per-instance liveness + in-flight state.
    nodes: Vec<Instance>,
    /// Two-level dispatch bitmaps over `nodes` (racks of 64 under a
    /// cluster summary), kept in sync by [`Self::sync_router`].
    router: RackRouter,
    /// Autoscale controller; `None` without a configured policy.
    auto: Option<AutoscaleCtl>,
    /// The normalized fault schedule ([`Ev::Fault`] indexes into it).
    faults: Vec<FaultEvent>,
    util: Vec<Utilization>,
    latency: LatencySamples,
    queue_depth: QueueDepthSamples,
    offered: u64,
    completed: u64,
    dropped: u64,
    degraded_done: u64,
    shed: ShedCounts,
    batches: u64,
    batched_requests: u64,
    last_completion: SimTime,
    /// Monotonic epoch invalidating stale flush timers.
    flush_epoch: u64,
    /// A flush timer for the current epoch is in flight.
    flush_armed: bool,
    /// The window expired with requests still queued: dispatch partial
    /// batches at the next opportunity.
    force_flush: bool,
    /// Supervision state; `None` without a configured [`Supervisor`].
    sup: Option<SupCtl>,
    /// Dispatch attempts per request id (bumped at dispatch; hedged
    /// duplicates do not count).
    attempts: Vec<u32>,
    /// Monotonic dispatch sequence (stamps [`InFlight::seq`]).
    next_seq: u64,
    /// Self-healing counters, accumulated as events fire; the
    /// per-instance downtime and MTTR summary are finalized in
    /// `into_parts`.
    avail: AvailabilityStats,
    /// When each currently-down instance went down (first kill of the
    /// outage, surviving kills-while-reloading).
    down_since: Vec<Option<SimTime>>,
    /// Accrued downtime per instance over completed outages.
    downtime: Vec<SimTime>,
    /// Sum of completed outage durations (mean MTTR numerator).
    mttr_total: SimTime,
    /// Windowed response series; `None` unless the config enables it.
    goodput: Option<GoodputSamples>,
}

impl Scheduler<'_> {
    /// Lowest-numbered dispatchable instance, if any: up, idle, not
    /// draining, and not inside a stall window. Answered by the rack
    /// router's bitmap scan; the linear walk it replaced survives as a
    /// debug-build parity oracle.
    fn idle_instance(&self, now: SimTime) -> Option<usize> {
        let found = self.router.first(|inst| self.nodes[inst].dispatchable(now));
        debug_assert_eq!(
            found,
            self.nodes.iter().position(|n| n.dispatchable(now)),
            "rack router diverged from the linear dispatch scan"
        );
        found
    }

    /// Recomputes instance `inst`'s candidate bit after a liveness or
    /// occupancy transition (dispatch, completion, kill, reload, hedge,
    /// scale). Stall windows are deliberately not tracked — the router
    /// over-approximates and [`Self::idle_instance`] filters lazily.
    fn sync_router(&mut self, inst: usize) {
        let n = &self.nodes[inst];
        self.router
            .set(inst, n.up && !n.draining && n.in_flight.is_none());
    }

    /// Tenant `t`'s queue bound implied by its per-instance cap (the
    /// tenant override, else the config-level `queue_cap`).
    fn queue_bound(&self, t: usize) -> Option<usize> {
        self.tenants[t]
            .spec
            .queue_cap
            .or(self.cfg.queue_cap)
            .map(|c| c.saturating_mul(self.cfg.instances))
    }

    /// Requests waiting across every tenant queue.
    fn total_queued(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    /// Records the (fleet-total) queue depth if it changed.
    fn note_depth(&mut self, now: SimTime) {
        let depth = self.total_queued();
        if self.queue_depth.last_depth() != Some(depth) {
            self.queue_depth.record(now, depth);
        }
    }

    /// Syncs tenant `t`'s virtual clock to the fleet's before it rejoins
    /// the backlog: an idle tenant earns no credit, so its next dispatch
    /// competes from the current virtual time, not from however long it
    /// sat out. No-op unless the tenant's queue is empty.
    fn backlog_vtime(&mut self, t: usize) {
        if self.pending[t].is_empty() {
            let tr = &mut self.tenants[t];
            if tr.vtime < self.vclock {
                tr.vtime = self.vclock;
            }
        }
    }

    /// Unconditionally samples the queue depth — and extends the goodput
    /// series — at fault *and supervisor* boundaries (kill, restart,
    /// stall, reload-done, supervised restart, settle): healing
    /// transients must be visible in the time series even when the depth
    /// itself did not move, and an outage tail must show as empty
    /// goodput windows rather than a truncated series.
    fn note_fault_boundary(&mut self, now: SimTime) {
        let depth = self.total_queued();
        self.queue_depth.record(now, depth);
        if let Some(g) = &mut self.goodput {
            g.note(now);
        }
    }

    fn schedule_poisson_arrival(&mut self, q: &mut EventQueue<Ev>, t: usize) {
        let tr = &mut self.tenants[t];
        if tr.issued >= tr.spec.requests {
            return;
        }
        let ArrivalProcess::Poisson { rate_fps } = tr.spec.arrivals else {
            return;
        };
        assert!(rate_fps > 0.0, "Poisson rate must be positive");
        let u: f64 = tr.rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate_fps;
        tr.issued += 1;
        q.schedule_in(SimTime::from_secs_f64(dt), Ev::Arrive(t as u32));
    }

    /// Marks request `id` shed for `cause` (a drop, not a response),
    /// on both the fleet ledger and its tenant's.
    fn record_drop(&mut self, id: u64, cause: RequestOutcome) {
        let t = self.tenant_of[id as usize] as usize;
        let ts = &mut self.tenants[t];
        match cause {
            RequestOutcome::ShedNewest => {
                self.shed.newest += 1;
                ts.shed.newest += 1;
            }
            RequestOutcome::ShedOldest => {
                self.shed.oldest += 1;
                ts.shed.oldest += 1;
            }
            RequestOutcome::ShedDeadline => {
                self.shed.deadline += 1;
                ts.shed.deadline += 1;
            }
            RequestOutcome::ShedStranded => {
                self.shed.stranded += 1;
                ts.shed.stranded += 1;
            }
            RequestOutcome::ShedRetryBudget => {
                self.shed.retry += 1;
                ts.shed.retry += 1;
            }
            _ => unreachable!("record_drop takes shed causes only"),
        }
        ts.dropped += 1;
        self.dropped += 1;
        self.outcomes[id as usize] = Some(cause);
    }

    /// Admits one fresh arrival of tenant `t` at `now` under the
    /// admission policy. Returns how many requests were shed in the
    /// process (0 or 1): the newcomer (`DropNewest`/`Deadline` at a full
    /// queue) or an evicted older waiter (`DropOldest`).
    fn admit(&mut self, now: SimTime, t: usize) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.offered += 1;
        self.tenants[t].offered += 1;
        self.outcomes.push(None);
        self.attempts.push(0);
        self.tenant_of.push(t as u32);
        let full = self
            .queue_bound(t)
            .is_some_and(|bound| self.pending[t].len() >= bound);
        let shed = if !full {
            self.backlog_vtime(t);
            self.pending[t].push_back(PendingReq {
                id,
                arrived: now,
                degraded: false,
            });
            0
        } else {
            match self.cfg.admission {
                AdmissionPolicy::DropNewest | AdmissionPolicy::Deadline { .. } => {
                    self.record_drop(id, RequestOutcome::ShedNewest);
                    1
                }
                AdmissionPolicy::DropOldest => {
                    let old = self.pending[t]
                        .pop_front()
                        .expect("invariant: the queue is full here, so it has a head");
                    self.record_drop(old.id, RequestOutcome::ShedOldest);
                    self.pending[t].push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: false,
                    });
                    1
                }
                AdmissionPolicy::Degrade { .. } => {
                    // Admit anyway, but onto the fallback tier: the
                    // request keeps its place in line and its client gets
                    // a (coarser) answer.
                    self.shed.degraded += 1;
                    self.tenants[t].shed.degraded += 1;
                    self.pending[t].push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: true,
                    });
                    0
                }
            }
        };
        self.note_depth(now);
        shed
    }

    /// Admits `n` fresh arrivals of tenant `t` at `now`. In the closed
    /// loop every shed frees a client, which immediately fires its next
    /// request — so admission keeps going until nothing was shed or the
    /// tenant's request budget is exhausted.
    fn admit_arrivals(&mut self, now: SimTime, t: usize, mut n: usize) {
        let closed = matches!(
            self.tenants[t].spec.arrivals,
            ArrivalProcess::ClosedLoop { .. }
        );
        while n > 0 {
            n -= 1;
            let shed = self.admit(now, t);
            if closed && shed > 0 && self.tenants[t].issued < self.tenants[t].spec.requests {
                self.tenants[t].issued += 1;
                n += 1;
            }
        }
    }

    /// Closed-loop client replacement for tenant `t`: `freed` of its
    /// clients got a terminal answer (completion or shed), so each fires
    /// its next request — capped by the tenant's remaining request
    /// budget. No-op for open-loop and trace arrivals.
    fn respawn_clients(&mut self, now: SimTime, t: usize, freed: usize) {
        if !matches!(
            self.tenants[t].spec.arrivals,
            ArrivalProcess::ClosedLoop { .. }
        ) {
            return;
        }
        let tr = &self.tenants[t];
        let replacements = freed.min(tr.spec.requests.saturating_sub(tr.issued));
        self.tenants[t].issued += replacements;
        self.admit_arrivals(now, t, replacements);
    }

    /// Whether tenant `t` can form a batch right now: returns the batch
    /// size and its tier if so. Full batches always go; partial batches
    /// when the window expired (`force_flush`) or when a tier boundary
    /// caps the head run (it can never grow — later arrivals queue
    /// behind the other tier).
    fn formable(&self, t: usize) -> Option<(usize, bool)> {
        let front = self.pending[t].front()?;
        let tier_degraded = front.degraded;
        // The head run of same-tier requests, scanned only as far as
        // the batch limit needs.
        let scan = self.pending[t]
            .iter()
            .take(self.cfg.max_batch + 1)
            .take_while(|r| r.degraded == tier_degraded)
            .count();
        let take = scan.min(self.cfg.max_batch);
        let dispatchable =
            take == self.cfg.max_batch || scan < self.pending[t].len() || self.force_flush;
        dispatchable.then_some((take, tier_degraded))
    }

    /// Picks the next tenant to serve under the configured
    /// [`TenantScheduler`], among tenants that can form a batch.
    /// Weighted-fair: smallest virtual finish time. Strict-priority:
    /// best latency class first, virtual time as the tiebreak within a
    /// class. Shared-FIFO: oldest head-of-line request fleet-wide, as if
    /// all tenants fed one queue. Every tie falls to the lowest tenant
    /// index, keeping the choice deterministic.
    fn pick_tenant(&self) -> Option<(usize, usize, bool)> {
        let strict = matches!(self.cfg.tenant_scheduler, TenantScheduler::StrictPriority);
        let shared = matches!(self.cfg.tenant_scheduler, TenantScheduler::SharedFifo);
        let mut best: Option<(usize, usize, bool)> = None;
        let mut fifo_key: Option<(SimTime, u64)> = None;
        let mut wfq_key: (u8, f64) = (u8::MAX, f64::INFINITY);
        for t in 0..self.tenants.len() {
            let Some((take, tier)) = self.formable(t) else {
                continue;
            };
            if shared {
                let head = self.pending[t]
                    .front()
                    .expect("invariant: formable tenants have a queue head");
                let key = (head.arrived, head.id);
                if fifo_key.is_none_or(|k| key < k) {
                    fifo_key = Some(key);
                    best = Some((t, take, tier));
                }
            } else {
                let rank = if strict {
                    self.tenants[t].spec.latency_class.rank()
                } else {
                    0
                };
                let vt = self.tenants[t].vtime;
                if rank < wfq_key.0 || (rank == wfq_key.0 && vt.total_cmp(&wfq_key.1).is_lt()) {
                    wfq_key = (rank, vt);
                    best = Some((t, take, tier));
                }
            }
        }
        best
    }

    /// Dispatches as many batches as idle instances and pending requests
    /// allow, choosing tenants through [`Self::pick_tenant`]. Batches
    /// are single-tenant: one batch runs one resident model, and an
    /// instance switching tenants pays that model's swap cost up front.
    /// Under [`AdmissionPolicy::Deadline`] requests whose wait already
    /// exceeds the SLO are shed first — FIFO order within each tenant
    /// means only a queue prefix can have expired.
    fn try_dispatch(&mut self, q: &mut EventQueue<Ev>, now: SimTime) {
        if let AdmissionPolicy::Deadline { slo } = self.cfg.admission {
            for t in 0..self.tenants.len() {
                let mut expired = 0usize;
                while let Some(front) = self.pending[t].front() {
                    if now - front.arrived > slo {
                        let r = self.pending[t]
                            .pop_front()
                            .expect("invariant: front() returned Some above");
                        self.record_drop(r.id, RequestOutcome::ShedDeadline);
                        expired += 1;
                    } else {
                        break;
                    }
                }
                if expired > 0 {
                    self.note_depth(now);
                    // Each shed frees a client for its next request.
                    self.respawn_clients(now, t, expired);
                }
            }
        }
        while let Some((t, take, tier_degraded)) = self.pick_tenant() {
            let Some(inst) = self.idle_instance(now) else {
                break;
            };
            if !matches!(self.cfg.tenant_scheduler, TenantScheduler::SharedFifo) {
                // Charge the virtual clock: the tenant's next turn moves
                // out proportionally to work taken over weight.
                let vt = self.tenants[t].vtime;
                self.vclock = self.vclock.max(vt);
                self.tenants[t].vtime = vt + take as f64 / self.tenants[t].spec.weight;
            }
            let reqs: Vec<(u64, SimTime)> = self.pending[t]
                .drain(..take)
                .map(|r| (r.id, r.arrived))
                .collect();
            let midx = self.tenants[t].spec.model;
            let model = self.models[midx].model;
            let energy_before = self.ledger.dynamic_energy_j();
            let (makespan, layers) = if tier_degraded {
                self.models[midx]
                    .degraded_profiles
                    .as_mut()
                    .expect("invariant: the degraded tier is only entered after fallback profiles were built")
                    .get(take)
            } else {
                self.models[midx].profiles.get(take)
            };
            let makespan = *makespan;
            let accel = if tier_degraded {
                self.degraded_accel.expect(
                    "invariant: the degraded tier is only entered after fallback config was set",
                )
            } else {
                self.cfg.accelerator
            };
            record_inference_ops(&mut self.ledger, &accel, layers, model, take);
            self.tenants[t].energy_j += self.ledger.dynamic_energy_j() - energy_before;
            let swap = if self.nodes[inst].resident != midx {
                // Co-resident weights: switching models repoints (SCONNA)
                // or reprograms (analog) the arrays before the batch runs.
                self.nodes[inst].resident = midx;
                let swap = self.models[midx].swap_time;
                self.tenants[t].swaps += 1;
                self.tenants[t].swap_time += swap;
                swap
            } else {
                SimTime::ZERO
            };
            if let Some(func) = &mut self.functional {
                // Run the real inference the analytic model is timing:
                // the whole batch through one stack of prepared tiles on
                // this instance's copy of the tenant's model (primary or
                // fallback).
                let ids: Vec<u64> = reqs.iter().map(|&(id, _)| id).collect();
                func.execute_batch(inst, midx, &ids, tier_degraded);
            }
            for &(id, _) in &reqs {
                let a = &mut self.attempts[id as usize];
                *a += 1;
                self.avail.max_attempts_seen = self.avail.max_attempts_seen.max(*a);
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let node = &mut self.nodes[inst];
            node.in_flight = Some(InFlight {
                tenant: t as u32,
                degraded: tier_degraded,
                started: now,
                reqs,
                seq,
                hedge: None,
                hedge_of: None,
            });
            self.batches += 1;
            self.batched_requests += take as u64;
            self.tenants[t].batches += 1;
            self.tenants[t].batched_requests += take as u64;
            q.schedule_in(
                swap + makespan,
                Ev::BatchDone {
                    inst,
                    epoch: node.epoch,
                },
            );
            if let Some(h) = self.cfg.retry.hedge_after {
                // Armed per dispatch; a timer outliving its batch finds
                // a different sequence number and lapses.
                q.schedule_in(h, Ev::HedgeTimer { inst, seq });
            }
            self.sync_router(inst);
            self.note_depth(now);
        }
        if self.total_queued() == 0 {
            // Window satisfied; stale timers are invalidated by the epoch.
            self.force_flush = false;
            self.flush_armed = false;
            self.flush_epoch += 1;
        } else if !self.flush_armed && !self.force_flush {
            self.flush_armed = true;
            q.schedule_in(self.cfg.batch_window, Ev::Flush(self.flush_epoch));
        }
    }

    /// Kills instance `inst`: bump its boot epoch (in-flight completions
    /// and reloads of the old life become stale), truncate its busy time
    /// at the kill instant, and re-admit the aborted batch's requests at
    /// the **front** of the pending queue in their original order
    /// through the [`RetryPolicy`](super::RetryPolicy) — then let the
    /// admission policy settle any overflow. A batch with a live hedge
    /// skips the requeue entirely: the hedge is promoted to primary and
    /// carries the requests to completion. A kill against a dead idle
    /// instance is a no-op; a kill mid-reload cancels the reload. When a
    /// supervisor is configured, the kill feeds crash-loop detection and
    /// (unless the instance is benched or the budget is spent) schedules
    /// a backed-off supervised restart.
    fn apply_kill(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        let node = &mut self.nodes[inst];
        if node.up || node.reloading {
            node.epoch += 1;
            node.up = false;
            node.reloading = false;
            node.stall_until = SimTime::ZERO;
            self.avail.incidents += 1;
            // The outage clock starts at the first kill and survives
            // kills-while-reloading: MTTR measures down-at → back-up.
            if self.down_since[inst].is_none() {
                self.down_since[inst] = Some(now);
            }
            if let Some(fl) = self.nodes[inst].in_flight.take() {
                // Wasted work is real work: the dispatch energy stays on
                // the ledger, but only the busy time actually accrued
                // counts toward utilization.
                self.util[inst].add_busy(now - fl.started);
                if let Some(primary) = fl.hedge_of {
                    // A dying *hedge* costs nothing but its energy: the
                    // primary still owns the requests — just unlink it.
                    if let Some(pfl) = self.nodes[primary].in_flight.as_mut() {
                        pfl.hedge = None;
                    }
                } else if let Some(twin) = fl.hedge {
                    // The hedge pays off: promote the duplicate to
                    // primary — its request copy becomes authoritative,
                    // nothing is requeued and the (request-id-keyed)
                    // predictions recorded at dispatch stay valid.
                    self.avail.hedges_promoted += 1;
                    let tfl = self.nodes[twin].in_flight.as_mut().expect(
                        "invariant: a live hedge pointer names an instance running the duplicate",
                    );
                    debug_assert_eq!(tfl.hedge_of, Some(inst));
                    tfl.hedge_of = None;
                } else {
                    if let Some(func) = &mut self.functional {
                        // The aborted requests never produced a response;
                        // their (deterministic) predictions are
                        // re-computed identically if re-dispatched.
                        for &(id, _) in &fl.reqs {
                            func.predictions[id as usize] = usize::MAX;
                        }
                    }
                    let tier_degraded = fl.degraded;
                    let t = fl.tenant as usize;
                    let mut refused = 0usize;
                    self.backlog_vtime(t);
                    for (id, arrived) in fl.reqs.into_iter().rev() {
                        let over_attempts = self
                            .cfg
                            .retry
                            .max_attempts
                            .is_some_and(|m| self.attempts[id as usize] >= m);
                        let budget_spent = self
                            .cfg
                            .retry
                            .retry_budget
                            .is_some_and(|b| self.avail.retries >= b);
                        if over_attempts || budget_spent {
                            // Retry-storm protection: the request is shed
                            // instead of amplifying the overload.
                            self.record_drop(id, RequestOutcome::ShedRetryBudget);
                            refused += 1;
                        } else {
                            self.avail.retries += 1;
                            self.pending[t].push_front(PendingReq {
                                id,
                                arrived,
                                degraded: tier_degraded,
                            });
                        }
                    }
                    self.enforce_bound_after_requeue(now, t);
                    if refused > 0 {
                        self.note_depth(now);
                        self.respawn_clients(now, t, refused);
                    }
                }
            }
            if self.nodes[inst].draining {
                // The kill beat the drain: the instance was retiring
                // anyway, so it parks into standby instead of entering
                // the supervised-restart path.
                let n = &mut self.nodes[inst];
                n.draining = false;
                n.standby = true;
            }
            if !self.nodes[inst].standby {
                self.supervise_kill(q, now, inst);
            }
            self.sync_router(inst);
        }
        self.note_fault_boundary(now);
        self.try_dispatch(q, now);
    }

    /// The supervisor's kill hook: slide the crash-loop window, bench
    /// the instance if it flapped past the limit, otherwise schedule a
    /// restart after the backoff (consuming restart budget). No-op
    /// without a supervisor or on a benched instance.
    fn supervise_kill(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        let Some(sup) = &mut self.sup else {
            return;
        };
        let st = &mut sup.states[inst];
        if st.benched {
            // Revived by operator override, killed again: stays benched.
            return;
        }
        let cutoff = now.saturating_sub(sup.policy.crash_loop_window);
        while st.recent_kills.front().is_some_and(|&t| t < cutoff) {
            st.recent_kills.pop_front();
        }
        st.recent_kills.push_back(now);
        if st.recent_kills.len() as u32 >= sup.policy.crash_loop_limit {
            st.benched = true;
            self.avail.benched += 1;
            return;
        }
        if let Some(budget) = sup.budget_left {
            if budget == 0 {
                return; // ops capacity exhausted: the instance stays down
            }
            sup.budget_left = Some(budget - 1);
        }
        let delay = sup.policy.backoff_for(inst, st.ordinal, st.ladder_attempt);
        st.ordinal += 1;
        st.ladder_attempt = st.ladder_attempt.saturating_add(1);
        self.avail.restarts_issued += 1;
        q.schedule_at(
            now + delay,
            Ev::SupRestart {
                inst,
                epoch: self.nodes[inst].epoch,
            },
        );
    }

    /// Re-applies tenant `t`'s queue bound after a kill pushed an
    /// aborted batch back onto its queue: the overflow passes through
    /// the same admission policy as arriving traffic — the tail is shed
    /// under `DropNewest`/`Deadline`, the head under `DropOldest`, and
    /// under `Degrade` everything beyond the bound is (re)marked for the
    /// fallback tier instead of shed.
    fn enforce_bound_after_requeue(&mut self, now: SimTime, t: usize) {
        let Some(bound) = self.queue_bound(t) else {
            return;
        };
        let mut freed = 0usize;
        match self.cfg.admission {
            AdmissionPolicy::DropNewest | AdmissionPolicy::Deadline { .. } => {
                while self.pending[t].len() > bound {
                    let r = self.pending[t]
                        .pop_back()
                        .expect("invariant: over-bound queue is non-empty");
                    self.record_drop(r.id, RequestOutcome::ShedNewest);
                    freed += 1;
                }
            }
            AdmissionPolicy::DropOldest => {
                while self.pending[t].len() > bound {
                    let r = self.pending[t]
                        .pop_front()
                        .expect("invariant: over-bound queue is non-empty");
                    self.record_drop(r.id, RequestOutcome::ShedOldest);
                    freed += 1;
                }
            }
            AdmissionPolicy::Degrade { .. } => {
                for r in self.pending[t].iter_mut().skip(bound) {
                    if !r.degraded {
                        r.degraded = true;
                        self.shed.degraded += 1;
                        self.tenants[t].shed.degraded += 1;
                    }
                }
            }
        }
        if freed > 0 {
            self.note_depth(now);
            self.respawn_clients(now, t, freed);
        }
    }

    /// Begins rebooting instance `inst`: the reload completes — and the
    /// instance becomes dispatchable — after `reload`.
    fn begin_reload(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize, reload: SimTime) {
        let node = &mut self.nodes[inst];
        node.reloading = true;
        q.schedule_at(
            now + reload,
            Ev::ReloadDone {
                inst,
                epoch: node.epoch,
            },
        );
    }

    /// A scripted [`FaultEvent::Restart`]: reboots a down instance at
    /// its resident model's full cold reload time. A restart against a live or
    /// already-reloading instance is a no-op. This is also the operator
    /// override for crash-loop benching: a benched instance is given a
    /// fresh ladder and revived.
    fn apply_restart(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        if self.nodes[inst].standby {
            // The autoscaler owns standby capacity: a scripted restart
            // targets failures, not deliberately-parked instances.
            self.note_fault_boundary(now);
            return;
        }
        let node = &mut self.nodes[inst];
        if !node.up && !node.reloading {
            if let Some(sup) = &mut self.sup {
                let st = &mut sup.states[inst];
                if st.benched {
                    st.benched = false;
                    st.recent_kills.clear();
                    st.ladder_attempt = 0;
                    self.avail.benched -= 1;
                }
            }
            let reload = self.models[self.nodes[inst].resident].reload_time;
            self.begin_reload(q, now, inst, reload);
        }
        self.note_fault_boundary(now);
    }

    /// Stalls instance `inst` until `now + duration`: its in-flight batch
    /// (if any) completes normally, but no new batch is dispatched to it
    /// inside the window. Overlapping stalls extend each other; stalling
    /// a dead instance is a no-op.
    fn apply_stall(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize, dur: SimTime) {
        let node = &mut self.nodes[inst];
        if node.up {
            let until = now + dur;
            if until > node.stall_until {
                node.stall_until = until;
                q.schedule_at(until, Ev::StallEnd(inst));
            }
        }
        self.note_fault_boundary(now);
    }

    fn handle(&mut self, q: &mut EventQueue<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive(t) => {
                let t = t as usize;
                self.admit_arrivals(now, t, 1);
                self.schedule_poisson_arrival(q, t);
                self.try_dispatch(q, now);
            }
            Ev::Flush(epoch) => {
                if epoch != self.flush_epoch {
                    return; // stale timer from an already-drained queue
                }
                self.flush_armed = false;
                self.force_flush = true;
                self.try_dispatch(q, now);
            }
            Ev::BatchDone { inst, epoch } => {
                if self.nodes[inst].epoch != epoch {
                    return; // the instance died mid-batch; already requeued
                }
                let fl = self.nodes[inst].in_flight.take().expect(
                    "invariant: a current-epoch BatchDone matches a stored in-flight batch",
                );
                // An unpromoted hedge can never get here: it started
                // strictly after its primary with the same makespan, so
                // the primary's completion cancelled it (epoch bump)
                // first.
                debug_assert!(fl.hedge_of.is_none());
                if let Some(twin) = fl.hedge {
                    // The primary won: cancel the duplicate. The epoch
                    // bump invalidates its scheduled BatchDone; its busy
                    // time (and its dispatch energy, long since on the
                    // ledger) was genuinely spent.
                    if let Some(tfl) = self.nodes[twin].in_flight.take() {
                        debug_assert_eq!(tfl.hedge_of, Some(inst));
                        self.util[twin].add_busy(now - tfl.started);
                        self.nodes[twin].epoch += 1;
                        self.avail.hedges_cancelled += 1;
                        if self.nodes[twin].draining {
                            // The twin was marked for retirement while
                            // running the duplicate: with the hedge
                            // cancelled (epoch already bumped) it parks.
                            let t = &mut self.nodes[twin];
                            t.draining = false;
                            t.up = false;
                            t.standby = true;
                        }
                        self.sync_router(twin);
                    }
                }
                self.util[inst].add_busy(now - fl.started);
                if self.nodes[inst].draining {
                    // Drain complete: the batch it was finishing is done,
                    // so the instance parks into standby; the epoch bump
                    // lapses any timers of its retired life.
                    let n = &mut self.nodes[inst];
                    n.draining = false;
                    n.up = false;
                    n.epoch += 1;
                    n.standby = true;
                }
                self.sync_router(inst);
                self.last_completion = now;
                let t = fl.tenant as usize;
                let n_done = fl.reqs.len();
                if let Some(g) = &mut self.goodput {
                    g.record(now, n_done as u64);
                }
                for (id, arrival) in fl.reqs {
                    self.latency.record(now - arrival);
                    self.tenants[t].latency.record(now - arrival);
                    if fl.degraded {
                        self.degraded_done += 1;
                        self.tenants[t].degraded_done += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Degraded);
                    } else {
                        self.completed += 1;
                        self.tenants[t].completed += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Served);
                    }
                }
                // Each completed client immediately re-requests.
                self.respawn_clients(now, t, n_done);
                self.try_dispatch(q, now);
            }
            Ev::Fault(idx) => match self.faults[idx] {
                FaultEvent::Kill { instance, .. } => self.apply_kill(q, now, instance),
                FaultEvent::Restart { instance, .. } => self.apply_restart(q, now, instance),
                FaultEvent::Stall {
                    instance, duration, ..
                } => self.apply_stall(q, now, instance, duration),
            },
            Ev::StallEnd(inst) => {
                let node = &self.nodes[inst];
                if node.up && node.stall_until <= now {
                    // The window really is over (not extended meanwhile,
                    // not cut short by a kill): the instance is
                    // dispatchable again.
                    self.note_fault_boundary(now);
                    self.try_dispatch(q, now);
                }
            }
            Ev::ReloadDone { inst, epoch } => {
                let node = &mut self.nodes[inst];
                if !node.reloading || node.epoch != epoch {
                    return; // killed mid-reload; this boot was cancelled
                }
                node.reloading = false;
                node.up = true;
                let boot_epoch = node.epoch;
                self.avail.recoveries += 1;
                if let Some(down_at) = self.down_since[inst].take() {
                    let outage = now - down_at;
                    self.downtime[inst] += outage;
                    self.mttr_total += outage;
                }
                self.sync_router(inst);
                if let Some(sup) = &self.sup {
                    // Sustained uptime earns the backoff ladder back.
                    q.schedule_at(
                        now + sup.policy.reset_after,
                        Ev::BackoffReset {
                            inst,
                            epoch: boot_epoch,
                        },
                    );
                }
                self.note_fault_boundary(now);
                self.try_dispatch(q, now);
            }
            Ev::SupRestart { inst, epoch } => {
                let node = &self.nodes[inst];
                if node.epoch != epoch || node.up || node.reloading {
                    return; // killed again, or a scripted restart beat us
                }
                let reload = self
                    .sup
                    .as_ref()
                    .expect("invariant: SupRestart events are only scheduled with a supervisor")
                    .reload[self.nodes[inst].resident];
                self.begin_reload(q, now, inst, reload);
                // Supervisor restart boundaries are sampled into the
                // time series like every fault boundary.
                self.note_fault_boundary(now);
            }
            Ev::BackoffReset { inst, epoch } => {
                let node = &self.nodes[inst];
                if node.epoch != epoch || !node.up {
                    return; // killed again before earning the reset
                }
                if let Some(sup) = &mut self.sup {
                    sup.states[inst].ladder_attempt = 0;
                }
            }
            Ev::HedgeTimer { inst, seq } => self.maybe_hedge(q, now, inst, seq),
            Ev::ScaleTick => self.handle_scale_tick(q, now),
        }
    }

    /// Instances currently committed to traffic: up or mid-reload, not
    /// standby and not draining. This is what the autoscaler compares
    /// its target against — capacity lost to kills is *not* counted, so
    /// the controller replaces it from standby at the next tick instead
    /// of believing it still exists.
    fn live_pool(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| (n.up || n.reloading) && !n.standby && !n.draining)
            .count()
    }

    /// One autoscale decision ([`Ev::ScaleTick`]): measure demand since
    /// the last tick, retarget the live pool by waking standby (or
    /// reprieving draining) instances or parking surplus ones, and
    /// reschedule the next tick while the run can still make progress —
    /// the tick chain ends once every request is terminal, or once the
    /// whole fleet is dead with nothing left to wake.
    fn handle_scale_tick(&mut self, q: &mut EventQueue<Ev>, now: SimTime) {
        let current = self.live_pool();
        let offered = self.offered;
        let queued = self.total_queued();
        let (interval, decision, cooled) = {
            let auto = self
                .auto
                .as_mut()
                .expect("invariant: ScaleTick events are only scheduled with an autoscaler");
            (
                auto.policy.check_interval,
                auto.measure(now, offered, queued),
                auto.cooled_down(now),
            )
        };
        if let Some((desired, demand_fps)) = decision {
            if desired != current && cooled {
                let achieved = if desired > current {
                    current + self.wake(q, now, desired - current)
                } else {
                    current - self.park(current - desired)
                };
                if achieved != current {
                    self.auto
                        .as_mut()
                        .expect("invariant: presence was checked above")
                        .commit(ScaleEvent {
                            at: now,
                            from: current,
                            to: achieved,
                            demand_fps,
                        });
                    // Scale transitions are fault-boundary-like: the
                    // time series samples the instant the pool moves.
                    self.note_fault_boundary(now);
                }
            }
        }
        let all_terminal =
            self.completed + self.dropped + self.degraded_done >= self.cfg.requests as u64;
        let fleet_dead = self
            .nodes
            .iter()
            .all(|n| !n.up && !n.reloading && !n.standby);
        if !all_terminal && !fleet_dead {
            q.schedule_in(interval, Ev::ScaleTick);
        }
    }

    /// Scales up by `delta`: draining instances are reprieved first —
    /// they still hold loaded weights and rejoin without a reload —
    /// then standby instances boot lowest-numbered first, each paying
    /// the full cold weight reload (epoch-guarded [`Ev::ReloadDone`],
    /// exactly like a fault restart) before taking work. Returns how
    /// many instances actually joined (bounded by what is parked).
    fn wake(&mut self, q: &mut EventQueue<Ev>, now: SimTime, mut delta: usize) -> usize {
        let mut woken = 0usize;
        for i in 0..self.nodes.len() {
            if delta == 0 {
                break;
            }
            if self.nodes[i].draining {
                self.nodes[i].draining = false;
                self.sync_router(i);
                delta -= 1;
                woken += 1;
            }
        }
        for i in 0..self.nodes.len() {
            if delta == 0 {
                break;
            }
            if self.nodes[i].standby {
                self.nodes[i].standby = false;
                let reload = self.models[self.nodes[i].resident].reload_time;
                self.begin_reload(q, now, i, reload);
                delta -= 1;
                woken += 1;
            }
        }
        woken
    }

    /// Scales down by `delta`, highest-numbered live instance first: an
    /// idle (or still-reloading) instance parks into standby immediately
    /// — the epoch bump lapses its pending timers — while a busy one
    /// drains: it finishes its in-flight batch and parks at completion.
    /// Requests are never aborted by scaling. Returns how many instances
    /// left the live pool.
    fn park(&mut self, mut delta: usize) -> usize {
        let mut parked = 0usize;
        for i in (0..self.nodes.len()).rev() {
            if delta == 0 {
                break;
            }
            let n = &mut self.nodes[i];
            if n.standby || n.draining || !(n.up || n.reloading) {
                continue;
            }
            if n.in_flight.is_some() {
                n.draining = true;
            } else {
                n.epoch += 1;
                n.up = false;
                n.reloading = false;
                n.stall_until = SimTime::ZERO;
                n.standby = true;
            }
            self.sync_router(i);
            delta -= 1;
            parked += 1;
        }
        parked
    }

    /// Issues a hedged duplicate of the batch dispatched as `seq` on
    /// `inst`, if it is still in flight, unhedged, not itself a hedge,
    /// nothing is waiting in the queue (spare capacity goes to real
    /// traffic first), and an idle instance exists. The duplicate pays
    /// real dispatch energy but is *not* re-executed functionally —
    /// predictions are keyed per request id and already recorded — nor
    /// counted in `batches`/attempts: it is insurance, not traffic.
    fn maybe_hedge(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize, seq: u64) {
        if self.total_queued() != 0 {
            return;
        }
        let Some(fl) = self.nodes[inst].in_flight.as_ref() else {
            return;
        };
        if fl.seq != seq || fl.hedge.is_some() || fl.hedge_of.is_some() {
            return;
        }
        let Some(twin) = self.idle_instance(now) else {
            return;
        };
        let tenant = fl.tenant;
        let t = tenant as usize;
        let degraded = fl.degraded;
        let reqs = fl.reqs.clone();
        let midx = self.tenants[t].spec.model;
        let model = self.models[midx].model;
        let energy_before = self.ledger.dynamic_energy_j();
        let (makespan, layers) = if degraded {
            self.models[midx]
                .degraded_profiles
                .as_mut()
                .expect("invariant: degraded batches only exist with fallback profiles")
                .get(reqs.len())
        } else {
            self.models[midx].profiles.get(reqs.len())
        };
        let makespan = *makespan;
        let accel = if degraded {
            self.degraded_accel
                .expect("invariant: degraded batches only exist with a fallback config")
        } else {
            self.cfg.accelerator
        };
        record_inference_ops(&mut self.ledger, &accel, layers, model, reqs.len());
        self.tenants[t].energy_j += self.ledger.dynamic_energy_j() - energy_before;
        let swap = if self.nodes[twin].resident != midx {
            // The duplicate needs the tenant's model resident too.
            self.nodes[twin].resident = midx;
            let swap = self.models[midx].swap_time;
            self.tenants[t].swaps += 1;
            self.tenants[t].swap_time += swap;
            swap
        } else {
            SimTime::ZERO
        };
        let hedge_seq = self.next_seq;
        self.next_seq += 1;
        let twin_epoch = self.nodes[twin].epoch;
        self.nodes[twin].in_flight = Some(InFlight {
            tenant,
            degraded,
            started: now,
            reqs,
            seq: hedge_seq,
            hedge: None,
            hedge_of: Some(inst),
        });
        self.nodes[inst]
            .in_flight
            .as_mut()
            .expect("invariant: checked in flight above")
            .hedge = Some(twin);
        self.avail.hedges_dispatched += 1;
        self.sync_router(twin);
        q.schedule_in(
            swap + makespan,
            Ev::BatchDone {
                inst: twin,
                epoch: twin_epoch,
            },
        );
    }
}

/// Liveness of one instance at a step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceHealth {
    /// Up and idle (dispatchable).
    Idle,
    /// Up with a batch in flight.
    Busy,
    /// Up but inside a stall window: no new dispatches.
    Stalled,
    /// Killed; no restart in progress.
    Down,
    /// Rebooting: paying the weight-reload latency.
    Reloading,
    /// Permanently benched by the supervisor's crash-loop detection;
    /// only a scripted [`FaultEvent::Restart`] (operator override)
    /// revives it.
    Benched,
    /// Parked by the autoscaler: admin-down, holding no loaded weights,
    /// outside the active pool until a scale-up wakes it.
    Standby,
    /// Retiring on scale-down: up and finishing its in-flight batch, but
    /// taking no new dispatches; parks into standby at completion.
    Draining,
}

/// One instance's state in a [`FleetSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// Liveness at the snapshot instant.
    pub health: InstanceHealth,
    /// Requests in this instance's in-flight batch (0 when idle — and 0
    /// for a hedged duplicate: its requests are accounted to the
    /// primary).
    pub in_flight: usize,
    /// The in-flight batch is on the degraded (fallback-model) tier.
    pub degraded_batch: bool,
    /// The in-flight batch is a hedged duplicate of a batch running on
    /// another instance.
    pub hedge_batch: bool,
}

/// One tenant's request accounting at a step boundary. The per-tenant
/// conservation invariant mirrors the fleet-wide one:
/// [`TenantSnapshot::accounted`] `== offered`, and summing any field
/// over tenants reproduces the fleet total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Requests of this tenant that entered the system so far.
    pub offered: u64,
    /// Full-fidelity responses so far.
    pub completed: u64,
    /// Drops so far.
    pub dropped: u64,
    /// Degraded (fallback-tier) responses so far.
    pub degraded: u64,
    /// Requests waiting in this tenant's pending queue.
    pub queued: u64,
    /// Requests inside dispatched, unfinished batches.
    pub in_flight: u64,
}

impl TenantSnapshot {
    /// Requests in a terminal or tracked transient state — the
    /// per-tenant conservation check compares this against
    /// [`TenantSnapshot::offered`].
    pub fn accounted(&self) -> u64 {
        self.completed + self.dropped + self.degraded + self.queued + self.in_flight
    }
}

/// A consistent view of the fleet at a step boundary.
///
/// The conservation invariant the scenario harness asserts at every step:
/// [`FleetSnapshot::accounted`] `== offered` — every request that entered
/// the system is in exactly one of completed / dropped / degraded /
/// queued / in-flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Simulated time of the last processed event.
    pub now: SimTime,
    /// Events processed so far.
    pub events_processed: u64,
    /// The simulation has settled: no events remain and every request
    /// reached a terminal state.
    pub is_complete: bool,
    /// Requests that entered the system so far.
    pub offered: u64,
    /// Full-fidelity responses so far.
    pub completed: u64,
    /// Drops so far.
    pub dropped: u64,
    /// Degraded (fallback-tier) responses so far.
    pub degraded: u64,
    /// Per-cause shed counters so far.
    pub shed: ShedCounts,
    /// Requests waiting in the shared pending queue.
    pub queued: u64,
    /// Requests inside dispatched, unfinished batches.
    pub in_flight: u64,
    /// Batches dispatched so far (re-dispatches after a kill recount).
    pub batches: u64,
    /// Per-instance liveness and in-flight state, instance order.
    pub instances: Vec<InstanceSnapshot>,
    /// Per-tenant accounting, roster order. A single-tenant run has
    /// exactly one entry whose fields equal the fleet totals.
    pub tenants: Vec<TenantSnapshot>,
}

impl FleetSnapshot {
    /// Requests in *some* accounted state:
    /// `completed + dropped + degraded + queued + in_flight`. Equals
    /// [`FleetSnapshot::offered`] at every step boundary — requests are
    /// never silently lost, faults or not.
    pub fn accounted(&self) -> u64 {
        self.completed + self.dropped + self.degraded + self.queued + self.in_flight
    }
}

/// The serving simulation as an incrementally-steppable state machine.
///
/// ```
/// use sconna_accel::serve::{Fleet, FaultPlan, ServingConfig};
/// use sconna_accel::AcceleratorConfig;
/// use sconna_sim::time::SimTime;
/// use sconna_tensor::models::shufflenet_v2;
///
/// let model = shufflenet_v2();
/// let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 16);
/// let plan = FaultPlan::new()
///     .kill(SimTime::from_ns(200_000), 0)
///     .restart(SimTime::from_ns(400_000), 0);
/// let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
/// while fleet.step() {
///     let snap = fleet.snapshot();
///     assert_eq!(snap.accounted(), snap.offered); // conservation
/// }
/// let report = fleet.into_report();
/// assert_eq!(report.offered, 16);
/// ```
pub struct Fleet<'a> {
    sched: Scheduler<'a>,
    q: EventQueue<Ev>,
    done: bool,
}

impl<'a> Fleet<'a> {
    /// Builds a steppable analytic-timing fleet. Equivalent to
    /// [`simulate_serving`](super::simulate_serving) when driven to
    /// completion (bit-identical reports, pinned in
    /// `tests/scenarios.rs`).
    ///
    /// # Panics
    /// Panics on degenerate configurations: zero instances, zero batch
    /// limit, zero requests, a zero queue cap, a non-positive Poisson
    /// rate, or a trace whose length disagrees with `requests`. Use
    /// [`Fleet::try_new`] for a recoverable error instead.
    pub fn new(config: &ServingConfig, model: &'a CnnModel) -> Self {
        Self::try_new(config, model).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Fleet::new`]: degenerate configurations surface as a
    /// descriptive [`ServingConfigError`] instead of a panic.
    pub fn try_new(
        config: &ServingConfig,
        model: &'a CnnModel,
    ) -> Result<Self, ServingConfigError> {
        Self::build(config, vec![model], None)
    }

    /// Builds a steppable **multi-tenant** fleet: `config.tenants` name
    /// their models by index into `models`, every instance can host any
    /// of them co-resident, and switching the active model pays
    /// [`model_swap_time`]. With an empty roster this is exactly
    /// [`Fleet::new`] over `models[0]`.
    ///
    /// # Panics
    /// Panics on degenerate configurations (see [`Fleet::try_new_multi`]).
    pub fn new_multi(config: &ServingConfig, models: &[&'a CnnModel]) -> Self {
        Self::try_new_multi(config, models).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Fleet::new_multi`]: degenerate configurations —
    /// including a tenant whose model index falls outside `models` —
    /// surface as a descriptive [`ServingConfigError`].
    pub fn try_new_multi(
        config: &ServingConfig,
        models: &[&'a CnnModel],
    ) -> Result<Self, ServingConfigError> {
        Self::build(config, models.to_vec(), None)
    }

    /// Builds a steppable **functional** fleet: every instance owns a
    /// prepared model copy and executes its dequeued batches for real.
    /// Equivalent to
    /// [`simulate_serving_functional`](super::simulate_serving_functional)
    /// when driven to completion.
    ///
    /// # Panics
    /// Panics on degenerate configurations, an empty sample set, or a
    /// [`AdmissionPolicy::Degrade`] policy without `workload.fallback`.
    pub fn new_functional(
        config: &ServingConfig,
        model: &'a CnnModel,
        workload: &'a FunctionalWorkload<'a>,
    ) -> Self {
        Self::try_new_functional(config, model, workload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Fleet::new_functional`].
    pub fn try_new_functional(
        config: &ServingConfig,
        model: &'a CnnModel,
        workload: &'a FunctionalWorkload<'a>,
    ) -> Result<Self, ServingConfigError> {
        Self::build(config, vec![model], Some(vec![workload]))
    }

    /// Builds a steppable multi-tenant **functional** fleet:
    /// `workloads[i]` carries the samples and prepared-network source
    /// for `models[i]`, and every instance holds co-resident prepared
    /// copies of *all* models.
    ///
    /// # Panics
    /// Panics on degenerate configurations or when `workloads` and
    /// `models` disagree in length.
    pub fn new_multi_functional(
        config: &ServingConfig,
        models: &[&'a CnnModel],
        workloads: &[&'a FunctionalWorkload<'a>],
    ) -> Self {
        Self::try_new_multi_functional(config, models, workloads).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Fleet::new_multi_functional`].
    pub fn try_new_multi_functional(
        config: &ServingConfig,
        models: &[&'a CnnModel],
        workloads: &[&'a FunctionalWorkload<'a>],
    ) -> Result<Self, ServingConfigError> {
        assert_eq!(
            models.len(),
            workloads.len(),
            "one functional workload per model"
        );
        Self::build(config, models.to_vec(), Some(workloads.to_vec()))
    }

    fn build(
        config: &ServingConfig,
        models: Vec<&'a CnnModel>,
        workloads: Option<Vec<&'a FunctionalWorkload<'a>>>,
    ) -> Result<Self, ServingConfigError> {
        config.validate()?;
        assert!(!models.is_empty(), "need at least one model");

        // A single-tenant run is a one-tenant roster carrying the
        // config's own arrival process and budget: the legacy path *is*
        // the multi-tenant path, so both stay bit-identical by
        // construction.
        let roster: Vec<TenantSpec> = if config.tenants.is_empty() {
            vec![TenantSpec::new(
                "default",
                0,
                config.arrivals.clone(),
                config.requests,
            )]
        } else {
            config.tenants.clone()
        };
        for t in &roster {
            if t.model >= models.len() {
                return Err(ServingConfigError::TenantModelOutOfRange {
                    tenant: t.name.clone(),
                    model: t.model,
                    models: models.len(),
                });
            }
        }

        let degrading = matches!(config.admission, AdmissionPolicy::Degrade { .. });
        let degraded_accel = if let AdmissionPolicy::Degrade { fallback_bits } = config.admission {
            Some(config.accelerator.with_native_bits(fallback_bits))
        } else {
            None
        };

        let mut ledger = EnergyLedger::new();
        for _ in 0..config.instances {
            register_components(&mut ledger, &config.accelerator);
        }

        let auto = config.autoscale.map(|policy| {
            // With one tenant the per-instance estimate is the legacy
            // formula verbatim; a mixed roster takes the weighted
            // harmonic mean of the tenants' capacities — the rate a
            // weighted-fair server actually sustains across the mix.
            let per_instance = if roster.len() == 1 {
                config.estimated_capacity_fps(models[roster[0].model]) / config.instances as f64
            } else {
                let wsum: f64 = roster.iter().map(|t| t.weight).sum();
                let inv: f64 = roster
                    .iter()
                    .map(|t| {
                        let cap = config.estimated_capacity_fps(models[t.model])
                            / config.instances as f64;
                        t.weight / cap
                    })
                    .sum();
                wsum / inv
            };
            AutoscaleCtl::new(policy, per_instance)
        });

        let sup = config.supervisor.map(|policy| {
            policy.validate();
            SupCtl {
                policy,
                reload: models
                    .iter()
                    .map(|m| match policy.restart_mode {
                        RestartMode::Cold => model_reload_time(&config.accelerator, m),
                        RestartMode::Warm => model_warm_reload_time(&config.accelerator, m),
                    })
                    .collect(),
                budget_left: policy.restart_budget,
                states: (0..config.instances).map(|_| SupState::fresh()).collect(),
            }
        });

        let model_ctxs: Vec<ModelCtx<'a>> = models
            .iter()
            .map(|m| ModelCtx {
                model: m,
                profiles: BatchProfiles::new(config.accelerator, m, config.max_batch),
                degraded_profiles: degraded_accel
                    .map(|cfg| BatchProfiles::new(cfg, m, config.max_batch)),
                swap_time: model_swap_time(&config.accelerator, m),
                reload_time: model_reload_time(&config.accelerator, m),
            })
            .collect();
        let tenants: Vec<TenantRt> = roster
            .iter()
            .enumerate()
            .map(|(i, spec)| TenantRt::new(spec.clone(), i, config.seed))
            .collect();

        let mut sched = Scheduler {
            models: model_ctxs,
            degraded_accel,
            functional: workloads
                .map(|ws| FunctionalExec::new(ws, config.instances, config.requests, degrading)),
            ledger,
            pending: (0..roster.len()).map(|_| VecDeque::new()).collect(),
            tenants,
            tenant_of: Vec::with_capacity(config.requests),
            vclock: 0.0,
            next_id: 0,
            outcomes: Vec::with_capacity(config.requests),
            attempts: Vec::with_capacity(config.requests),
            nodes: (0..config.instances)
                // Round-robin bring-up residency: instance i starts
                // holding the model of tenant i mod roster. One tenant →
                // every instance already resident → no swaps, ever.
                .map(|i| Instance::fresh(roster[i % roster.len()].model))
                .collect(),
            router: RackRouter::new(config.instances),
            auto,
            faults: Vec::new(),
            sup,
            next_seq: 0,
            avail: AvailabilityStats::default(),
            down_since: vec![None; config.instances],
            downtime: vec![SimTime::ZERO; config.instances],
            mttr_total: SimTime::ZERO,
            goodput: config.goodput_window.map(GoodputSamples::new),
            util: vec![Utilization::new(); config.instances],
            latency: LatencySamples::new(),
            queue_depth: QueueDepthSamples::new(),
            offered: 0,
            completed: 0,
            dropped: 0,
            degraded_done: 0,
            shed: ShedCounts::default(),
            batches: 0,
            batched_requests: 0,
            last_completion: SimTime::ZERO,
            flush_epoch: 0,
            flush_armed: false,
            force_flush: false,
            cfg: config.clone(),
        };

        if let Some(auto) = &sched.auto {
            // Instances beyond the bring-up pool start parked in standby.
            for node in sched.nodes.iter_mut().skip(auto.policy.initial) {
                node.up = false;
                node.standby = true;
            }
        }
        for i in 0..config.instances {
            sched.sync_router(i);
        }

        let mut q = EventQueue::new();
        for t in 0..sched.tenants.len() {
            match sched.tenants[t].spec.arrivals.clone() {
                ArrivalProcess::Poisson { .. } => {
                    // Seed the first arrival; each arrival schedules the
                    // next.
                    sched.schedule_poisson_arrival(&mut q, t);
                }
                ArrivalProcess::ClosedLoop { clients } => {
                    let initial = clients.min(sched.tenants[t].spec.requests);
                    for _ in 0..initial {
                        sched.tenants[t].issued += 1;
                        q.schedule_at(SimTime::ZERO, Ev::Arrive(t as u32));
                    }
                }
                ArrivalProcess::Trace { times } => {
                    sched.tenants[t].issued = times.len();
                    for &at in &times {
                        q.schedule_at(at, Ev::Arrive(t as u32));
                    }
                }
            }
        }
        if let Some(auto) = &sched.auto {
            q.schedule_at(auto.policy.check_interval, Ev::ScaleTick);
        }

        Ok(Self {
            sched,
            q,
            done: false,
        })
    }

    /// Installs a fault plan: schedules every event of the plan's
    /// canonical order ([`FaultPlan::normalized`]) on the fleet's event
    /// queue. Faults scheduled at the same instant as already-seeded
    /// arrivals fire after those arrivals and before any arrival seeded
    /// later (event-queue insertion order) — a deterministic, documented
    /// tie-break. An empty plan schedules nothing: bit-identical to no
    /// plan at all.
    ///
    /// # Panics
    /// Panics if any step was already taken or if a fault targets an
    /// instance outside the fleet.
    #[must_use]
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        assert_eq!(
            self.q.processed(),
            0,
            "install fault plans before the first step"
        );
        let events = plan.normalized();
        for e in &events {
            assert!(
                e.instance() < self.sched.cfg.instances,
                "fault targets instance {} of a {}-instance fleet",
                e.instance(),
                self.sched.cfg.instances
            );
        }
        let base = self.sched.faults.len();
        for (i, e) in events.iter().enumerate() {
            self.q.schedule_at(e.at(), Ev::Fault(base + i));
        }
        self.sched.faults.extend(events);
        self
    }

    /// Processes exactly one event. Returns `true` if an event was
    /// processed; when the queue is empty it settles the simulation
    /// (stranded requests drain, terminal accounting closes) and returns
    /// `false` — after which [`Fleet::is_complete`] holds.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        match self.q.pop() {
            Some((now, ev)) => {
                self.sched.handle(&mut self.q, now, ev);
                true
            }
            None => {
                self.settle();
                self.done = true;
                false
            }
        }
    }

    /// Processes every event scheduled at or before `t` (settling if the
    /// queue empties first). Returns the number of events processed.
    pub fn step_until(&mut self, t: SimTime) -> usize {
        let mut n = 0usize;
        while !self.done {
            match self.q.peek_time() {
                Some(next) if next <= t => {
                    self.step();
                    n += 1;
                }
                Some(_) => break,
                None => {
                    self.step(); // settles; not an event
                    break;
                }
            }
        }
        n
    }

    /// Drives the simulation until it settles.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Simulated time of the last processed event.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Time of the next scheduled event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    /// The simulation has settled: every request reached a terminal
    /// state and no events remain.
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// The autoscale controller's decision trace so far, in decision
    /// order (empty when the config carries no policy).
    pub fn scale_events(&self) -> &[ScaleEvent] {
        self.sched
            .auto
            .as_ref()
            .map_or(&[], |a| a.events.as_slice())
    }

    /// A consistent view of the fleet at the current step boundary.
    pub fn snapshot(&self) -> FleetSnapshot {
        let now = self.q.now();
        let s = &self.sched;
        // Hedged duplicates hold a *copy* of their primary's requests;
        // counting primaries only keeps the conservation invariant exact.
        let in_flight: u64 = s
            .nodes
            .iter()
            .map(|n| {
                n.in_flight
                    .as_ref()
                    .filter(|f| f.hedge_of.is_none())
                    .map_or(0, |f| f.reqs.len() as u64)
            })
            .sum();
        let mut tin = vec![0u64; s.tenants.len()];
        for n in &s.nodes {
            if let Some(f) = n.in_flight.as_ref().filter(|f| f.hedge_of.is_none()) {
                tin[f.tenant as usize] += f.reqs.len() as u64;
            }
        }
        FleetSnapshot {
            now,
            events_processed: self.q.processed(),
            is_complete: self.done,
            offered: s.offered,
            completed: s.completed,
            dropped: s.dropped,
            degraded: s.degraded_done,
            shed: s.shed,
            queued: s.total_queued() as u64,
            in_flight,
            batches: s.batches,
            instances: s
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let benched = s.sup.as_ref().is_some_and(|sup| sup.states[i].benched);
                    InstanceSnapshot {
                        health: if n.standby {
                            InstanceHealth::Standby
                        } else if n.reloading {
                            InstanceHealth::Reloading
                        } else if !n.up {
                            if benched {
                                InstanceHealth::Benched
                            } else {
                                InstanceHealth::Down
                            }
                        } else if n.in_flight.is_some() {
                            if n.draining {
                                InstanceHealth::Draining
                            } else {
                                InstanceHealth::Busy
                            }
                        } else if n.stall_until > now {
                            InstanceHealth::Stalled
                        } else {
                            InstanceHealth::Idle
                        },
                        in_flight: n
                            .in_flight
                            .as_ref()
                            .filter(|f| f.hedge_of.is_none())
                            .map_or(0, |f| f.reqs.len()),
                        degraded_batch: n.in_flight.as_ref().is_some_and(|f| f.degraded),
                        hedge_batch: n.in_flight.as_ref().is_some_and(|f| f.hedge_of.is_some()),
                    }
                })
                .collect(),
            tenants: s
                .tenants
                .iter()
                .enumerate()
                .map(|(t, tr)| TenantSnapshot {
                    offered: tr.offered,
                    completed: tr.completed,
                    dropped: tr.dropped,
                    degraded: tr.degraded_done,
                    queued: s.pending[t].len() as u64,
                    in_flight: tin[t],
                })
                .collect(),
        }
    }

    /// Terminal drain once the event queue is empty. In a fault-free run
    /// this is a no-op: every request already reached a terminal state.
    /// Under a fault plan the queue can drain with requests still pending
    /// — only possible when every instance is dead with no restart
    /// scheduled — and those provably-unservable requests are accounted
    /// as [`RequestOutcome::ShedStranded`] (in the closed loop, the
    /// freed clients' remaining request budget strands the same way).
    fn settle(&mut self) {
        if self.sched.total_queued() == 0 && self.sched.offered as usize == self.sched.cfg.requests
        {
            return;
        }
        assert!(
            self.sched.nodes.iter().all(|n| !n.up && !n.reloading),
            "invariant: the queue only drains with work outstanding when the whole fleet is dead"
        );
        let now = self.q.now();
        loop {
            let mut any = false;
            for t in 0..self.sched.tenants.len() {
                let mut freed = 0usize;
                while let Some(r) = self.sched.pending[t].pop_front() {
                    self.sched.record_drop(r.id, RequestOutcome::ShedStranded);
                    freed += 1;
                }
                // Closed-loop clients freed by the strand fire their next
                // requests — into the same dead fleet, stranding in turn,
                // until the tenant's request budget is spent.
                self.sched.respawn_clients(now, t, freed);
                any |= freed > 0;
            }
            if !any {
                break;
            }
        }
        self.sched.note_fault_boundary(now);
    }

    /// Runs to completion (if not already settled) and builds the
    /// [`ServingReport`].
    pub fn into_report(mut self) -> ServingReport {
        self.run_to_completion();
        self.into_parts().report
    }

    /// Runs to completion and builds the [`FunctionalServingReport`].
    ///
    /// # Panics
    /// Panics if the fleet was not built with [`Fleet::new_functional`]
    /// or [`Fleet::new_multi_functional`].
    pub fn into_functional_report(mut self) -> FunctionalServingReport {
        self.run_to_completion();
        let fin = self.into_parts();
        let func = fin
            .functional
            .expect("invariant: into_functional_report is only called on functional fleets");
        debug_assert!(
            fin.outcomes
                .iter()
                .zip(&func.predictions)
                .all(
                    |(o, &p)| matches!(o, RequestOutcome::Served | RequestOutcome::Degraded)
                        == (p != usize::MAX)
                ),
            "exactly the responses must have been executed"
        );
        let model_of: Vec<usize> = fin
            .tenant_of
            .iter()
            .map(|&t| fin.tenant_models[t as usize])
            .collect();
        let correct = func.correct_responses(&fin.outcomes, |id| model_of[id]);
        let serving = fin.report;
        let responses = serving.completed + serving.degraded;
        // Per-tenant correctness: walk the responses once, crediting the
        // tenant that owns each request id.
        let mut t_correct = vec![0u64; serving.tenants.len()];
        for (id, o) in fin.outcomes.iter().enumerate() {
            if !matches!(o, RequestOutcome::Served | RequestOutcome::Degraded) {
                continue;
            }
            let t = fin.tenant_of[id] as usize;
            let w = func.workloads[fin.tenant_models[t]];
            let label = w.samples[id % w.samples.len()].label;
            if func.predictions[id] == label {
                t_correct[t] += 1;
            }
        }
        let tenant_accuracy: Vec<TenantAccuracy> = serving
            .tenants
            .iter()
            .zip(&t_correct)
            .map(|(tu, &correct)| {
                let responses = tu.completed + tu.degraded;
                TenantAccuracy {
                    name: tu.name.clone(),
                    correct,
                    accuracy_under_load: if responses == 0 {
                        0.0
                    } else {
                        correct as f64 / responses as f64
                    },
                    accuracy_offered: if tu.offered == 0 {
                        0.0
                    } else {
                        correct as f64 / tu.offered as f64
                    },
                }
            })
            .collect();
        FunctionalServingReport {
            accuracy_under_load: if responses == 0 {
                0.0
            } else {
                correct as f64 / responses as f64
            },
            accuracy_offered: if serving.offered == 0 {
                0.0
            } else {
                correct as f64 / serving.offered as f64
            },
            predictions: func.predictions,
            outcomes: fin.outcomes,
            attempts: fin.attempts,
            correct,
            tenant_accuracy,
            serving,
        }
    }

    /// Final accounting: terminal asserts plus report construction.
    fn into_parts(self) -> FinishedRun<'a> {
        assert!(self.done, "into_parts only after the simulation settled");
        let final_now = self.q.now();
        let mut sched = self.sched;
        // Close the availability books: an instance still down at the
        // end accrues downtime up to the final event time (but not MTTR
        // — it never recovered), and capacity is re-estimated over the
        // instances still serving.
        for (i, since) in sched.down_since.iter_mut().enumerate() {
            if let Some(at) = since.take() {
                sched.downtime[i] += final_now.saturating_sub(at);
            }
        }
        sched.avail.downtime = std::mem::take(&mut sched.downtime);
        sched.avail.active_instances = sched.nodes.iter().filter(|n| n.up || n.reloading).count();
        sched.avail.mean_mttr = sched
            .mttr_total
            .as_ps()
            .checked_div(sched.avail.recoveries)
            .map_or(SimTime::ZERO, SimTime::from_ps);
        let config = &sched.cfg;
        assert_eq!(
            sched.offered as usize, config.requests,
            "every request must enter the system"
        );
        assert_eq!(
            sched.completed + sched.dropped + sched.degraded_done,
            sched.offered,
            "served + dropped + degraded must account every offered request"
        );
        let outcomes: Vec<RequestOutcome> = sched
            .outcomes
            .iter()
            .map(|o| {
                o.expect(
                    "invariant: every request reaches a terminal state before the queue drains",
                )
            })
            .collect();
        let responses = sched.completed + sched.degraded_done;
        // Stale flush timers may fire after the last completion, so the
        // serving makespan is the last completion time, not the queue's
        // final clock. ZERO (degenerate all-shed runs) zeroes the rate
        // metrics.
        let makespan = sched.last_completion;
        let secs = makespan.as_secs_f64();
        let energy_j = sched.ledger.total_energy_j(makespan);
        let model_names: Vec<&str> = sched.models.iter().map(|m| m.model.name.as_str()).collect();
        let tenants: Vec<TenantUsage> = sched
            .tenants
            .iter()
            .map(|tr| {
                let responses = tr.completed + tr.degraded_done;
                TenantUsage {
                    name: tr.spec.name.clone(),
                    model: model_names[tr.spec.model].to_string(),
                    weight: tr.spec.weight,
                    latency_class: tr.spec.latency_class,
                    offered: tr.offered,
                    completed: tr.completed,
                    dropped: tr.dropped,
                    degraded: tr.degraded_done,
                    shed: tr.shed,
                    drop_rate: if tr.offered == 0 {
                        0.0
                    } else {
                        tr.dropped as f64 / tr.offered as f64
                    },
                    latency: summarize(&tr.latency),
                    served_fps: if secs > 0.0 {
                        tr.completed as f64 / secs
                    } else {
                        0.0
                    },
                    goodput_fps: if secs > 0.0 {
                        responses as f64 / secs
                    } else {
                        0.0
                    },
                    batches: tr.batches,
                    mean_batch_fill: if tr.batches == 0 {
                        0.0
                    } else {
                        tr.batched_requests as f64 / tr.batches as f64
                    },
                    model_swaps: tr.swaps,
                    swap_time: tr.swap_time,
                    energy_j: tr.energy_j,
                    energy_per_inference_j: if responses > 0 {
                        tr.energy_j / responses as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let report = ServingReport {
            accelerator: config.accelerator.name,
            model: model_names.join("+"),
            instances: config.instances,
            max_batch: config.max_batch,
            offered: sched.offered,
            completed: sched.completed,
            dropped: sched.dropped,
            degraded: sched.degraded_done,
            shed: sched.shed,
            drop_rate: if sched.offered == 0 {
                0.0
            } else {
                sched.dropped as f64 / sched.offered as f64
            },
            batches: sched.batches,
            mean_batch_fill: if sched.batches == 0 {
                0.0
            } else {
                sched.batched_requests as f64 / sched.batches as f64
            },
            makespan,
            fps: if secs > 0.0 {
                sched.completed as f64 / secs
            } else {
                0.0
            },
            goodput_fps: if secs > 0.0 {
                responses as f64 / secs
            } else {
                0.0
            },
            latency: summarize(&sched.latency),
            queue_depth: sched.queue_depth,
            utilization: if makespan > SimTime::ZERO {
                sched.util.iter().map(|u| u.ratio(makespan)).collect()
            } else {
                vec![0.0; config.instances]
            },
            energy_j,
            energy_per_inference_j: if responses > 0 {
                energy_j / responses as f64
            } else {
                0.0
            },
            avg_power_w: if secs > 0.0 {
                sched.ledger.average_power_w(makespan)
            } else {
                0.0
            },
            availability: sched.avail,
            goodput_series: sched.goodput,
            tenants,
        };
        FinishedRun {
            report,
            outcomes,
            attempts: sched.attempts,
            functional: sched.functional,
            tenant_of: sched.tenant_of,
            tenant_models: sched.tenants.iter().map(|tr| tr.spec.model).collect(),
        }
    }
}

/// Everything a settled run yields, before report-flavour packaging.
struct FinishedRun<'a> {
    report: ServingReport,
    outcomes: Vec<RequestOutcome>,
    attempts: Vec<u32>,
    functional: Option<FunctionalExec<'a>>,
    /// Owning tenant per request id.
    tenant_of: Vec<u32>,
    /// Model index per tenant, roster order.
    tenant_models: Vec<usize>,
}

/// [`LatencySummary`] of possibly-empty samples: the all-zero summary
/// when nothing was recorded (degenerate all-shed runs), the real one
/// otherwise.
fn summarize(samples: &LatencySamples) -> LatencySummary {
    if samples.is_empty() {
        LatencySummary {
            count: 0,
            p50: SimTime::ZERO,
            p95: SimTime::ZERO,
            p99: SimTime::ZERO,
            mean: SimTime::ZERO,
            max: SimTime::ZERO,
        }
    } else {
        samples.summary()
    }
}
