//! The steppable fleet state machine: the serving simulation as an
//! incrementally-driven object instead of a run-to-completion function.
//!
//! [`Fleet::new`] builds the same scheduler the entry-point wrappers
//! always ran — shared pending queue, dynamic batching, admission
//! policy, deterministic [`EventQueue`] — but hands control of the event
//! loop to the caller: [`Fleet::step`] processes exactly one event,
//! [`Fleet::step_until`] drains events up to a simulated instant, and a
//! [`FleetSnapshot`] is available at **any** step boundary, exposing sim
//! time, per-instance state, queue depth, in-flight batches and the
//! served/dropped/degraded tallies. [`Fleet::run_to_completion`] followed
//! by [`Fleet::into_report`] reproduces the wrapper behavior
//! bit-identically (pinned in `tests/scenarios.rs`).
//!
//! On top of the steppable core sits fault injection
//! ([`Fleet::with_faults`]): a [`FaultPlan`](super::FaultPlan) of timed
//! kill / restart / stall events scheduled on the same event queue as the
//! traffic. A killed instance's in-flight batch is aborted and its
//! requests rejoin the front of the queue through the admission policy —
//! requests are never silently lost; the step-level conservation
//! invariant `offered == completed + dropped + degraded + queued +
//! in-flight` ([`FleetSnapshot::accounted`]) holds at every step
//! boundary, faults or not. A restarted instance pays the
//! [`model_reload_time`] weight-reload latency before taking work again.
//! If the whole fleet dies with no restart coming, requests that can
//! provably never be served drain as
//! [`RequestOutcome::ShedStranded`] when the fleet settles.
//!
//! Two datacenter-scale mechanisms ride on the same event loop:
//!
//! * **Rack routing.** Dispatch no longer scans the node list linearly:
//!   a two-level bitmap ([`RackRouter`]) groups instances into racks of
//!   64 under a cluster summary word set, so the lowest-numbered
//!   dispatchable instance is found with two `trailing_zeros` scans.
//!   The linear scan survives as a `debug_assert!` parity oracle.
//! * **Autoscaling.** When the config carries an
//!   [`AutoscalePolicy`](super::AutoscalePolicy), only part of the
//!   provisioned pool takes traffic; the rest is **standby**. A
//!   periodic [`Ev::ScaleTick`] compares demand against per-instance
//!   capacity and wakes or parks instances through the same
//!   epoch-guarded reload/drain machinery as fault handling — see
//!   [`autoscale`](super::autoscale) for the controller.

use super::autoscale::{AutoscaleCtl, ScaleEvent};
use super::supervisor::{RestartMode, Supervisor};
use super::{
    AdmissionPolicy, ArrivalProcess, AvailabilityStats, FaultEvent, FaultPlan,
    FunctionalServingReport, RequestOutcome, ServingConfig, ServingReport, ShedCounts,
};
use crate::organization::AcceleratorConfig;
use crate::perf::{
    analyze_layer_batched, model_reload_time, model_warm_reload_time, record_inference_ops,
    register_components, LayerPerf,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sconna_sim::energy::EnergyLedger;
use sconna_sim::event::EventQueue;
use sconna_sim::stats::{
    GoodputSamples, LatencySamples, LatencySummary, QueueDepthSamples, Utilization,
};
use sconna_sim::time::SimTime;
use sconna_tensor::arena::BatchArena;
use sconna_tensor::dataset::Sample;
use sconna_tensor::engine::VdpEngine;
use sconna_tensor::models::CnnModel;
use sconna_tensor::network::{PreparedNetwork, QuantizedNetwork};
use sconna_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The functional side of a serving experiment: the quantized model the
/// instances actually execute, the labelled request population, and the
/// VDP engine backing every instance.
///
/// Request `r` is drawn round-robin from `samples`
/// (`samples[r % samples.len()]`) and runs under image noise key `r`, so
/// the prediction set is a pure function of this workload — independent
/// of fleet size, batch packing, arrival process and `workers`. That
/// purity is also what makes fault injection safe functionally: a batch
/// aborted by a kill and re-executed later reproduces the same
/// predictions bit-for-bit.
pub struct FunctionalWorkload<'a> {
    /// The quantized network every instance loads.
    pub net: &'a QuantizedNetwork,
    /// Low-precision fallback network degraded batches execute on;
    /// required when the admission policy is [`AdmissionPolicy::Degrade`]
    /// (typically `net.degraded(fallback_bits)`).
    pub fallback: Option<&'a QuantizedNetwork>,
    /// Engine the fallback network runs on — typically the same
    /// organization at `Precision::new(fallback_bits)`, whose shorter
    /// streams and range-matched ADC keep the fallback's signal-to-noise
    /// at its own grid. `None` shares the primary engine.
    pub fallback_engine: Option<&'a dyn VdpEngine>,
    /// Labelled request population (round-robin by request id).
    pub samples: &'a [Sample],
    /// Engine each instance's prepared model executes on.
    pub engine: &'a dyn VdpEngine,
    /// Worker threads for the row-block parallelism inside one instance's
    /// batch execution. Results are worker-count invariant; this only
    /// changes host wall time.
    pub workers: usize,
}

/// Per-instance functional execution state: each instance owns a
/// prepared (weight-stationary) copy of the model — and, under
/// [`AdmissionPolicy::Degrade`], of the fallback model — loaded once at
/// fleet bring-up, plus the request-id-indexed prediction ledger.
struct FunctionalExec<'a> {
    workload: &'a FunctionalWorkload<'a>,
    /// One engine-backed prepared model per instance.
    instances: Vec<PreparedNetwork<'a>>,
    /// Prepared fallback copies, one per instance, when degrading.
    fallback: Option<Vec<PreparedNetwork<'a>>>,
    /// Per-instance scratch arenas: a long-lived instance reuses its
    /// im2col patch matrices and activation buffers across batches
    /// instead of reallocating them per dispatch. Observationally pure —
    /// recycled buffers are re-zeroed and noise is keyed by coordinates,
    /// so predictions are bit-identical to fresh allocation
    /// (property-tested in `tests/batch_parity.rs`).
    arenas: Vec<BatchArena>,
    /// Prediction per request id (`usize::MAX` = no response).
    predictions: Vec<usize>,
}

impl<'a> FunctionalExec<'a> {
    fn new(
        workload: &'a FunctionalWorkload<'a>,
        instances: usize,
        requests: usize,
        degrading: bool,
    ) -> Self {
        assert!(
            !workload.samples.is_empty(),
            "functional serving needs samples"
        );
        assert!(workload.workers > 0, "need at least one worker");
        let fallback = if degrading {
            let fb = workload.fallback.expect(
                "invariant: Degrade admission requires FunctionalWorkload::fallback (documented)",
            );
            let engine = workload.fallback_engine.unwrap_or(workload.engine);
            Some(
                (0..instances)
                    .map(|_| PreparedNetwork::new(fb, engine))
                    .collect(),
            )
        } else {
            None
        };
        Self {
            workload,
            // Model load: every instance prepares the weights once —
            // per-layer DKV/LUT stream conversion, narrow GEMM forms —
            // before the first request arrives.
            instances: (0..instances)
                .map(|_| PreparedNetwork::new(workload.net, workload.engine))
                .collect(),
            fallback,
            arenas: (0..instances).map(|_| BatchArena::new()).collect(),
            predictions: vec![usize::MAX; requests],
        }
    }

    /// Executes one dispatched batch on instance `inst`: the whole
    /// batch's images run through stacked `vdp_batch` tiles, keyed per
    /// request id — on the primary or the fallback prepared copy
    /// according to the batch's tier.
    fn execute_batch(&mut self, inst: usize, ids: &[u64], degraded: bool) {
        let samples = self.workload.samples;
        let images: Vec<&Tensor<f32>> = ids
            .iter()
            .map(|&id| &samples[id as usize % samples.len()].image)
            .collect();
        let nets = if degraded {
            self.fallback.as_ref().expect(
                "invariant: degraded batches are only dispatched after fallback nets were built",
            )
        } else {
            &self.instances
        };
        let preds =
            nets[inst].predict_batch_in(&images, ids, self.workload.workers, &self.arenas[inst]);
        for (&id, pred) in ids.iter().zip(preds) {
            self.predictions[id as usize] = pred;
        }
    }

    /// Correct responses over the run: predictions matching their sample
    /// label, counted only for requests that reached a response terminal
    /// state. Computed from the final ledger (not incrementally) so a
    /// batch aborted by a kill and re-executed is counted exactly once.
    fn correct_responses(&self, outcomes: &[RequestOutcome]) -> u64 {
        let samples = self.workload.samples;
        self.predictions
            .iter()
            .enumerate()
            .filter(|&(id, &pred)| {
                matches!(
                    outcomes[id],
                    RequestOutcome::Served | RequestOutcome::Degraded
                ) && pred == samples[id % samples.len()].label
            })
            .count() as u64
    }
}

/// Scheduler events.
enum Ev {
    /// A request enters the queue.
    Arrive,
    /// The batching window of epoch `.0` expired.
    Flush(u64),
    /// Instance `inst` finished the batch it dispatched in boot epoch
    /// `epoch`; stale if the instance was killed since (its epoch moved
    /// on).
    BatchDone { inst: usize, epoch: u64 },
    /// Fault `.0` of the normalized plan fires.
    Fault(usize),
    /// Instance `.0`'s stall window may be over (superseded if the stall
    /// was extended meanwhile).
    StallEnd(usize),
    /// Instance `inst` finishes its weight reload, begun in boot epoch
    /// `epoch`; stale if the instance was killed mid-reload.
    ReloadDone { inst: usize, epoch: u64 },
    /// The supervisor's backoff for instance `inst` expired: begin the
    /// supervised reload. Stale if the boot epoch moved on or something
    /// else (a scripted restart) already began healing the instance.
    SupRestart { inst: usize, epoch: u64 },
    /// Instance `inst` stayed up [`Supervisor::reset_after`] since its
    /// supervised reload finished: its backoff ladder resets. Stale if
    /// the boot epoch moved on (killed again first).
    BackoffReset { inst: usize, epoch: u64 },
    /// The batch dispatched as sequence number `seq` on instance `inst`
    /// has been in flight [`RetryPolicy::hedge_after`](super::RetryPolicy):
    /// issue a hedged duplicate if the batch is still running, unhedged,
    /// no traffic is waiting and an idle instance exists. Stale if the
    /// batch completed (the sequence number no longer matches).
    HedgeTimer { inst: usize, seq: u64 },
    /// The autoscale controller's periodic decision point: measure
    /// demand since the last tick and retarget the active pool. Only
    /// scheduled when the config carries an
    /// [`AutoscalePolicy`](super::AutoscalePolicy); reschedules itself
    /// while the run can still make progress.
    ScaleTick,
}

/// One waiting request.
struct PendingReq {
    id: u64,
    arrived: SimTime,
    /// Admitted onto the degraded (fallback-model) tier.
    degraded: bool,
}

/// A batch occupying an instance.
struct InFlight {
    /// Fallback-tier batch.
    degraded: bool,
    /// Dispatch time (busy time accrues `completion - started`, or
    /// `kill - started` for an aborted batch).
    started: SimTime,
    /// `(request id, arrival time)` in queue order. A hedge holds a
    /// *copy* of its primary's requests (authoritative only after
    /// promotion); fleet-level in-flight accounting counts primaries
    /// only.
    reqs: Vec<(u64, SimTime)>,
    /// Dispatch sequence number, the [`Ev::HedgeTimer`] staleness guard:
    /// unlike the boot epoch it changes on every dispatch, so a timer
    /// armed for one batch can never fire against a later batch on the
    /// same instance.
    seq: u64,
    /// Instance running this batch's hedged duplicate, if any.
    hedge: Option<usize>,
    /// This batch *is* the hedged duplicate of the primary running on
    /// the named instance. Cleared on promotion (primary killed).
    hedge_of: Option<usize>,
}

/// Per-instance supervision state (only allocated when the config has a
/// [`Supervisor`]).
struct SupState {
    /// Restart attempts on the current backoff ladder (reset by
    /// [`Ev::BackoffReset`] after sustained uptime).
    ladder_attempt: u32,
    /// Lifetime supervised restarts of this instance — the jitter key,
    /// so delays stay decorrelated even after ladder resets.
    ordinal: u64,
    /// Kill timestamps inside the sliding crash-loop window.
    recent_kills: VecDeque<SimTime>,
    /// Permanently benched by crash-loop detection; only a scripted
    /// [`FaultEvent::Restart`] (the operator override) revives it.
    benched: bool,
}

impl SupState {
    fn fresh() -> Self {
        Self {
            ladder_attempt: 0,
            ordinal: 0,
            recent_kills: VecDeque::new(),
            benched: false,
        }
    }
}

/// Supervisor control block: the policy plus the run-wide mutable state.
struct SupCtl {
    policy: Supervisor,
    /// What a supervised reload costs: [`model_reload_time`] for
    /// [`RestartMode::Cold`], [`model_warm_reload_time`] for
    /// [`RestartMode::Warm`] (zero on SCONNA).
    reload: SimTime,
    /// Remaining restart budget (`None` = unlimited).
    budget_left: Option<u64>,
    states: Vec<SupState>,
}

/// One fleet instance's liveness state.
struct Instance {
    /// Alive and (eventually) dispatchable.
    up: bool,
    /// Mid-reload after a restart (`up` is still false).
    reloading: bool,
    /// Boot epoch: bumped by every kill, stamped into `BatchDone` /
    /// `ReloadDone` events so completions of a previous life are ignored.
    epoch: u64,
    /// No new dispatches before this instant ([`FaultEvent::Stall`]).
    stall_until: SimTime,
    /// Parked by the autoscaler: admin-down (`up` is false), holding no
    /// loaded weights, outside the active pool until a scale-up wakes it.
    standby: bool,
    /// Retiring on scale-down: still up and finishing its in-flight
    /// batch, but taking no new dispatches; parks into standby at batch
    /// completion. A scale-up before then reprieves it in place.
    draining: bool,
    /// The batch this instance is serving, if any.
    in_flight: Option<InFlight>,
}

impl Instance {
    fn fresh() -> Self {
        Self {
            up: true,
            reloading: false,
            epoch: 0,
            stall_until: SimTime::ZERO,
            standby: false,
            draining: false,
            in_flight: None,
        }
    }

    fn dispatchable(&self, now: SimTime) -> bool {
        self.up && !self.draining && self.in_flight.is_none() && self.stall_until <= now
    }
}

/// Per-batch-size analysis cache: the batched layer walk is identical for
/// every batch of the same size, so it is computed once per size.
struct BatchProfiles<'a> {
    cfg: AcceleratorConfig,
    model: &'a CnnModel,
    by_size: Vec<Option<(SimTime, Vec<LayerPerf>)>>,
}

impl<'a> BatchProfiles<'a> {
    fn new(cfg: AcceleratorConfig, model: &'a CnnModel, max_batch: usize) -> Self {
        Self {
            cfg,
            model,
            by_size: vec![None; max_batch + 1],
        }
    }

    fn get(&mut self, batch: usize) -> &(SimTime, Vec<LayerPerf>) {
        let slot = &mut self.by_size[batch];
        if slot.is_none() {
            let layers: Vec<LayerPerf> = self
                .model
                .workloads
                .iter()
                .map(|w| analyze_layer_batched(&self.cfg, w, batch))
                .collect();
            let makespan = layers.iter().fold(SimTime::ZERO, |acc, l| acc + l.total);
            *slot = Some((makespan, layers));
        }
        slot.as_ref()
            .expect("invariant: slot was filled by the branch above")
    }
}

/// Instances per rack word in the [`RackRouter`].
const RACK_SIZE: usize = 64;

/// Two-level dispatch routing: per-rack occupancy bitmaps under a
/// cluster summary.
///
/// Instances are grouped into racks of [`RACK_SIZE`]; bit `i` of rack
/// word `r` is set when instance `r·64 + i` is a dispatch *candidate* —
/// up, not draining, nothing in flight. Bit `r` of summary word `w` is
/// set when rack `w·64 + r` has any candidate, so the lowest-numbered
/// candidate is found with two `trailing_zeros` scans instead of a
/// linear walk over the fleet — O(1) per dispatch at datacenter scale
/// instead of O(instances).
///
/// Stall windows are time-dependent and rare, so they are *not*
/// tracked in the bitmaps: the router over-approximates dispatchability
/// and the caller filters candidates lazily at scan time. Every
/// actually-dispatchable instance always has its bit set (maintained by
/// [`Scheduler::sync_router`] at every liveness/occupancy transition),
/// so the first accepted candidate equals the linear-scan answer.
struct RackRouter {
    racks: Vec<u64>,
    summary: Vec<u64>,
}

impl RackRouter {
    fn new(instances: usize) -> Self {
        let racks = vec![0u64; instances.div_ceil(RACK_SIZE)];
        let summary = vec![0u64; racks.len().div_ceil(64)];
        Self { racks, summary }
    }

    /// Records whether `inst` is a dispatch candidate.
    fn set(&mut self, inst: usize, candidate: bool) {
        let (r, b) = (inst / RACK_SIZE, inst % RACK_SIZE);
        if candidate {
            self.racks[r] |= 1u64 << b;
        } else {
            self.racks[r] &= !(1u64 << b);
        }
        let (w, s) = (r / 64, r % 64);
        if self.racks[r] != 0 {
            self.summary[w] |= 1u64 << s;
        } else {
            self.summary[w] &= !(1u64 << s);
        }
    }

    /// Lowest-numbered candidate accepted by `admit` (the lazy stall
    /// filter), scanning summary words, then racks, then instances in
    /// index order.
    fn first(&self, mut admit: impl FnMut(usize) -> bool) -> Option<usize> {
        for (w, &word) in self.summary.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let r = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let mut bits = self.racks[r];
                while bits != 0 {
                    let inst = r * RACK_SIZE + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if admit(inst) {
                        return Some(inst);
                    }
                }
            }
        }
        None
    }
}

/// Mutable scheduler state threaded through the event handlers.
struct Scheduler<'a> {
    cfg: ServingConfig,
    model: &'a CnnModel,
    profiles: BatchProfiles<'a>,
    /// Fallback-tier profiles ([`AdmissionPolicy::Degrade`] only), on the
    /// reduced-precision accelerator operating point.
    degraded_profiles: Option<BatchProfiles<'a>>,
    /// The reduced-precision operating point degraded batches record
    /// their energy against.
    degraded_accel: Option<AcceleratorConfig>,
    /// Functional execution state; `None` runs the analytic-only model.
    functional: Option<FunctionalExec<'a>>,
    ledger: EnergyLedger,
    /// Requests waiting to be batched, arrival order. Ids are assigned in
    /// arrival order, so id `r` always denotes the `r`-th request to
    /// enter the system regardless of the arrival process.
    pending: VecDeque<PendingReq>,
    /// Next request id to assign.
    next_id: u64,
    /// Terminal state per request id (`None` while in flight).
    outcomes: Vec<Option<RequestOutcome>>,
    /// Per-instance liveness + in-flight state.
    nodes: Vec<Instance>,
    /// Two-level dispatch bitmaps over `nodes` (racks of 64 under a
    /// cluster summary), kept in sync by [`Self::sync_router`].
    router: RackRouter,
    /// Autoscale controller; `None` without a configured policy.
    auto: Option<AutoscaleCtl>,
    /// The normalized fault schedule ([`Ev::Fault`] indexes into it).
    faults: Vec<FaultEvent>,
    /// Weight-reload latency a restarted instance pays
    /// ([`model_reload_time`] of this config and model).
    reload_time: SimTime,
    util: Vec<Utilization>,
    latency: LatencySamples,
    queue_depth: QueueDepthSamples,
    issued: usize,
    offered: u64,
    completed: u64,
    dropped: u64,
    degraded_done: u64,
    shed: ShedCounts,
    batches: u64,
    batched_requests: u64,
    last_completion: SimTime,
    /// Monotonic epoch invalidating stale flush timers.
    flush_epoch: u64,
    /// A flush timer for the current epoch is in flight.
    flush_armed: bool,
    /// The window expired with requests still queued: dispatch partial
    /// batches at the next opportunity.
    force_flush: bool,
    rng: StdRng,
    /// Supervision state; `None` without a configured [`Supervisor`].
    sup: Option<SupCtl>,
    /// Dispatch attempts per request id (bumped at dispatch; hedged
    /// duplicates do not count).
    attempts: Vec<u32>,
    /// Monotonic dispatch sequence (stamps [`InFlight::seq`]).
    next_seq: u64,
    /// Self-healing counters, accumulated as events fire; the
    /// per-instance downtime and MTTR summary are finalized in
    /// `into_parts`.
    avail: AvailabilityStats,
    /// When each currently-down instance went down (first kill of the
    /// outage, surviving kills-while-reloading).
    down_since: Vec<Option<SimTime>>,
    /// Accrued downtime per instance over completed outages.
    downtime: Vec<SimTime>,
    /// Sum of completed outage durations (mean MTTR numerator).
    mttr_total: SimTime,
    /// Windowed response series; `None` unless the config enables it.
    goodput: Option<GoodputSamples>,
}

impl Scheduler<'_> {
    /// Lowest-numbered dispatchable instance, if any: up, idle, not
    /// draining, and not inside a stall window. Answered by the rack
    /// router's bitmap scan; the linear walk it replaced survives as a
    /// debug-build parity oracle.
    fn idle_instance(&self, now: SimTime) -> Option<usize> {
        let found = self.router.first(|inst| self.nodes[inst].dispatchable(now));
        debug_assert_eq!(
            found,
            self.nodes.iter().position(|n| n.dispatchable(now)),
            "rack router diverged from the linear dispatch scan"
        );
        found
    }

    /// Recomputes instance `inst`'s candidate bit after a liveness or
    /// occupancy transition (dispatch, completion, kill, reload, hedge,
    /// scale). Stall windows are deliberately not tracked — the router
    /// over-approximates and [`Self::idle_instance`] filters lazily.
    fn sync_router(&mut self, inst: usize) {
        let n = &self.nodes[inst];
        self.router
            .set(inst, n.up && !n.draining && n.in_flight.is_none());
    }

    /// Shared-queue bound implied by the per-instance `queue_cap`.
    fn queue_bound(&self) -> Option<usize> {
        self.cfg
            .queue_cap
            .map(|c| c.saturating_mul(self.cfg.instances))
    }

    /// Records the queue depth if it changed.
    fn note_depth(&mut self, now: SimTime) {
        let depth = self.pending.len();
        if self.queue_depth.last_depth() != Some(depth) {
            self.queue_depth.record(now, depth);
        }
    }

    /// Unconditionally samples the queue depth — and extends the goodput
    /// series — at fault *and supervisor* boundaries (kill, restart,
    /// stall, reload-done, supervised restart, settle): healing
    /// transients must be visible in the time series even when the depth
    /// itself did not move, and an outage tail must show as empty
    /// goodput windows rather than a truncated series.
    fn note_fault_boundary(&mut self, now: SimTime) {
        self.queue_depth.record(now, self.pending.len());
        if let Some(g) = &mut self.goodput {
            g.note(now);
        }
    }

    fn schedule_poisson_arrival(&mut self, q: &mut EventQueue<Ev>) {
        if self.issued >= self.cfg.requests {
            return;
        }
        let ArrivalProcess::Poisson { rate_fps } = self.cfg.arrivals else {
            return;
        };
        assert!(rate_fps > 0.0, "Poisson rate must be positive");
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let dt = -u.ln() / rate_fps;
        self.issued += 1;
        q.schedule_in(SimTime::from_secs_f64(dt), Ev::Arrive);
    }

    /// Marks request `id` shed for `cause` (a drop, not a response).
    fn record_drop(&mut self, id: u64, cause: RequestOutcome) {
        match cause {
            RequestOutcome::ShedNewest => self.shed.newest += 1,
            RequestOutcome::ShedOldest => self.shed.oldest += 1,
            RequestOutcome::ShedDeadline => self.shed.deadline += 1,
            RequestOutcome::ShedStranded => self.shed.stranded += 1,
            RequestOutcome::ShedRetryBudget => self.shed.retry += 1,
            _ => unreachable!("record_drop takes shed causes only"),
        }
        self.dropped += 1;
        self.outcomes[id as usize] = Some(cause);
    }

    /// Admits one fresh arrival at `now` under the admission policy.
    /// Returns how many requests were shed in the process (0 or 1): the
    /// newcomer (`DropNewest`/`Deadline` at a full queue) or an evicted
    /// older waiter (`DropOldest`).
    fn admit(&mut self, now: SimTime) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.offered += 1;
        self.outcomes.push(None);
        self.attempts.push(0);
        let full = self
            .queue_bound()
            .is_some_and(|bound| self.pending.len() >= bound);
        let shed = if !full {
            self.pending.push_back(PendingReq {
                id,
                arrived: now,
                degraded: false,
            });
            0
        } else {
            match self.cfg.admission {
                AdmissionPolicy::DropNewest | AdmissionPolicy::Deadline { .. } => {
                    self.record_drop(id, RequestOutcome::ShedNewest);
                    1
                }
                AdmissionPolicy::DropOldest => {
                    let old = self
                        .pending
                        .pop_front()
                        .expect("invariant: the queue is full here, so it has a head");
                    self.record_drop(old.id, RequestOutcome::ShedOldest);
                    self.pending.push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: false,
                    });
                    1
                }
                AdmissionPolicy::Degrade { .. } => {
                    // Admit anyway, but onto the fallback tier: the
                    // request keeps its place in line and its client gets
                    // a (coarser) answer.
                    self.shed.degraded += 1;
                    self.pending.push_back(PendingReq {
                        id,
                        arrived: now,
                        degraded: true,
                    });
                    0
                }
            }
        };
        self.note_depth(now);
        shed
    }

    /// Admits `n` fresh arrivals at `now`. In the closed loop every shed
    /// frees a client, which immediately fires its next request — so
    /// admission keeps going until nothing was shed or the request
    /// budget is exhausted.
    fn admit_arrivals(&mut self, now: SimTime, mut n: usize) {
        let closed = matches!(self.cfg.arrivals, ArrivalProcess::ClosedLoop { .. });
        while n > 0 {
            n -= 1;
            let shed = self.admit(now);
            if closed && shed > 0 && self.issued < self.cfg.requests {
                self.issued += 1;
                n += 1;
            }
        }
    }

    /// Closed-loop client replacement: `freed` clients got a terminal
    /// answer (completion or shed), so each fires its next request —
    /// capped by the remaining request budget. No-op for open-loop and
    /// trace arrivals.
    fn respawn_clients(&mut self, now: SimTime, freed: usize) {
        if !matches!(self.cfg.arrivals, ArrivalProcess::ClosedLoop { .. }) {
            return;
        }
        let replacements = freed.min(self.cfg.requests.saturating_sub(self.issued));
        self.issued += replacements;
        self.admit_arrivals(now, replacements);
    }

    /// Dispatches as many batches as idle instances and pending requests
    /// allow. Full batches always go; partial batches when the window
    /// expired (`force_flush`) or when a tier boundary caps the head run
    /// (it can never grow — later arrivals queue behind the other tier).
    /// Under [`AdmissionPolicy::Deadline`] requests whose wait already
    /// exceeds the SLO are shed first — FIFO order means only a queue
    /// prefix can have expired.
    fn try_dispatch(&mut self, q: &mut EventQueue<Ev>, now: SimTime) {
        if let AdmissionPolicy::Deadline { slo } = self.cfg.admission {
            let mut expired = 0usize;
            while let Some(front) = self.pending.front() {
                if now - front.arrived > slo {
                    let r = self
                        .pending
                        .pop_front()
                        .expect("invariant: front() returned Some above");
                    self.record_drop(r.id, RequestOutcome::ShedDeadline);
                    expired += 1;
                } else {
                    break;
                }
            }
            if expired > 0 {
                self.note_depth(now);
                // Each shed frees a client for its next request.
                self.respawn_clients(now, expired);
            }
        }
        while let Some(front) = self.pending.front() {
            let tier_degraded = front.degraded;
            // The head run of same-tier requests, scanned only as far as
            // the batch limit needs.
            let scan = self
                .pending
                .iter()
                .take(self.cfg.max_batch + 1)
                .take_while(|r| r.degraded == tier_degraded)
                .count();
            let take = scan.min(self.cfg.max_batch);
            let dispatchable =
                take == self.cfg.max_batch || scan < self.pending.len() || self.force_flush;
            if !dispatchable {
                break;
            }
            let Some(inst) = self.idle_instance(now) else {
                break;
            };
            let reqs: Vec<(u64, SimTime)> = self
                .pending
                .drain(..take)
                .map(|r| (r.id, r.arrived))
                .collect();
            let (makespan, layers) = if tier_degraded {
                self.degraded_profiles
                    .as_mut()
                    .expect("invariant: the degraded tier is only entered after fallback profiles were built")
                    .get(take)
            } else {
                self.profiles.get(take)
            };
            let makespan = *makespan;
            let accel = if tier_degraded {
                self.degraded_accel.expect(
                    "invariant: the degraded tier is only entered after fallback config was set",
                )
            } else {
                self.cfg.accelerator
            };
            record_inference_ops(&mut self.ledger, &accel, layers, self.model, take);
            if let Some(func) = &mut self.functional {
                // Run the real inference the analytic model is timing:
                // the whole batch through one stack of prepared tiles on
                // this instance's model copy (primary or fallback).
                let ids: Vec<u64> = reqs.iter().map(|&(id, _)| id).collect();
                func.execute_batch(inst, &ids, tier_degraded);
            }
            for &(id, _) in &reqs {
                let a = &mut self.attempts[id as usize];
                *a += 1;
                self.avail.max_attempts_seen = self.avail.max_attempts_seen.max(*a);
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let node = &mut self.nodes[inst];
            node.in_flight = Some(InFlight {
                degraded: tier_degraded,
                started: now,
                reqs,
                seq,
                hedge: None,
                hedge_of: None,
            });
            self.batches += 1;
            self.batched_requests += take as u64;
            q.schedule_in(
                makespan,
                Ev::BatchDone {
                    inst,
                    epoch: node.epoch,
                },
            );
            if let Some(h) = self.cfg.retry.hedge_after {
                // Armed per dispatch; a timer outliving its batch finds
                // a different sequence number and lapses.
                q.schedule_in(h, Ev::HedgeTimer { inst, seq });
            }
            self.sync_router(inst);
            self.note_depth(now);
        }
        if self.pending.is_empty() {
            // Window satisfied; stale timers are invalidated by the epoch.
            self.force_flush = false;
            self.flush_armed = false;
            self.flush_epoch += 1;
        } else if !self.flush_armed && !self.force_flush {
            self.flush_armed = true;
            q.schedule_in(self.cfg.batch_window, Ev::Flush(self.flush_epoch));
        }
    }

    /// Kills instance `inst`: bump its boot epoch (in-flight completions
    /// and reloads of the old life become stale), truncate its busy time
    /// at the kill instant, and re-admit the aborted batch's requests at
    /// the **front** of the pending queue in their original order
    /// through the [`RetryPolicy`](super::RetryPolicy) — then let the
    /// admission policy settle any overflow. A batch with a live hedge
    /// skips the requeue entirely: the hedge is promoted to primary and
    /// carries the requests to completion. A kill against a dead idle
    /// instance is a no-op; a kill mid-reload cancels the reload. When a
    /// supervisor is configured, the kill feeds crash-loop detection and
    /// (unless the instance is benched or the budget is spent) schedules
    /// a backed-off supervised restart.
    fn apply_kill(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        let node = &mut self.nodes[inst];
        if node.up || node.reloading {
            node.epoch += 1;
            node.up = false;
            node.reloading = false;
            node.stall_until = SimTime::ZERO;
            self.avail.incidents += 1;
            // The outage clock starts at the first kill and survives
            // kills-while-reloading: MTTR measures down-at → back-up.
            if self.down_since[inst].is_none() {
                self.down_since[inst] = Some(now);
            }
            if let Some(fl) = self.nodes[inst].in_flight.take() {
                // Wasted work is real work: the dispatch energy stays on
                // the ledger, but only the busy time actually accrued
                // counts toward utilization.
                self.util[inst].add_busy(now - fl.started);
                if let Some(primary) = fl.hedge_of {
                    // A dying *hedge* costs nothing but its energy: the
                    // primary still owns the requests — just unlink it.
                    if let Some(pfl) = self.nodes[primary].in_flight.as_mut() {
                        pfl.hedge = None;
                    }
                } else if let Some(twin) = fl.hedge {
                    // The hedge pays off: promote the duplicate to
                    // primary — its request copy becomes authoritative,
                    // nothing is requeued and the (request-id-keyed)
                    // predictions recorded at dispatch stay valid.
                    self.avail.hedges_promoted += 1;
                    let tfl = self.nodes[twin].in_flight.as_mut().expect(
                        "invariant: a live hedge pointer names an instance running the duplicate",
                    );
                    debug_assert_eq!(tfl.hedge_of, Some(inst));
                    tfl.hedge_of = None;
                } else {
                    if let Some(func) = &mut self.functional {
                        // The aborted requests never produced a response;
                        // their (deterministic) predictions are
                        // re-computed identically if re-dispatched.
                        for &(id, _) in &fl.reqs {
                            func.predictions[id as usize] = usize::MAX;
                        }
                    }
                    let tier_degraded = fl.degraded;
                    let mut refused = 0usize;
                    for (id, arrived) in fl.reqs.into_iter().rev() {
                        let over_attempts = self
                            .cfg
                            .retry
                            .max_attempts
                            .is_some_and(|m| self.attempts[id as usize] >= m);
                        let budget_spent = self
                            .cfg
                            .retry
                            .retry_budget
                            .is_some_and(|b| self.avail.retries >= b);
                        if over_attempts || budget_spent {
                            // Retry-storm protection: the request is shed
                            // instead of amplifying the overload.
                            self.record_drop(id, RequestOutcome::ShedRetryBudget);
                            refused += 1;
                        } else {
                            self.avail.retries += 1;
                            self.pending.push_front(PendingReq {
                                id,
                                arrived,
                                degraded: tier_degraded,
                            });
                        }
                    }
                    self.enforce_bound_after_requeue(now);
                    if refused > 0 {
                        self.note_depth(now);
                        self.respawn_clients(now, refused);
                    }
                }
            }
            if self.nodes[inst].draining {
                // The kill beat the drain: the instance was retiring
                // anyway, so it parks into standby instead of entering
                // the supervised-restart path.
                let n = &mut self.nodes[inst];
                n.draining = false;
                n.standby = true;
            }
            if !self.nodes[inst].standby {
                self.supervise_kill(q, now, inst);
            }
            self.sync_router(inst);
        }
        self.note_fault_boundary(now);
        self.try_dispatch(q, now);
    }

    /// The supervisor's kill hook: slide the crash-loop window, bench
    /// the instance if it flapped past the limit, otherwise schedule a
    /// restart after the backoff (consuming restart budget). No-op
    /// without a supervisor or on a benched instance.
    fn supervise_kill(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        let Some(sup) = &mut self.sup else {
            return;
        };
        let st = &mut sup.states[inst];
        if st.benched {
            // Revived by operator override, killed again: stays benched.
            return;
        }
        let cutoff = now.saturating_sub(sup.policy.crash_loop_window);
        while st.recent_kills.front().is_some_and(|&t| t < cutoff) {
            st.recent_kills.pop_front();
        }
        st.recent_kills.push_back(now);
        if st.recent_kills.len() as u32 >= sup.policy.crash_loop_limit {
            st.benched = true;
            self.avail.benched += 1;
            return;
        }
        if let Some(budget) = sup.budget_left {
            if budget == 0 {
                return; // ops capacity exhausted: the instance stays down
            }
            sup.budget_left = Some(budget - 1);
        }
        let delay = sup.policy.backoff_for(inst, st.ordinal, st.ladder_attempt);
        st.ordinal += 1;
        st.ladder_attempt = st.ladder_attempt.saturating_add(1);
        self.avail.restarts_issued += 1;
        q.schedule_at(
            now + delay,
            Ev::SupRestart {
                inst,
                epoch: self.nodes[inst].epoch,
            },
        );
    }

    /// Re-applies the queue bound after a kill pushed an aborted batch
    /// back onto the queue: the overflow passes through the same
    /// admission policy as arriving traffic — the tail is shed under
    /// `DropNewest`/`Deadline`, the head under `DropOldest`, and under
    /// `Degrade` everything beyond the bound is (re)marked for the
    /// fallback tier instead of shed.
    fn enforce_bound_after_requeue(&mut self, now: SimTime) {
        let Some(bound) = self.queue_bound() else {
            return;
        };
        let mut freed = 0usize;
        match self.cfg.admission {
            AdmissionPolicy::DropNewest | AdmissionPolicy::Deadline { .. } => {
                while self.pending.len() > bound {
                    let r = self
                        .pending
                        .pop_back()
                        .expect("invariant: over-bound queue is non-empty");
                    self.record_drop(r.id, RequestOutcome::ShedNewest);
                    freed += 1;
                }
            }
            AdmissionPolicy::DropOldest => {
                while self.pending.len() > bound {
                    let r = self
                        .pending
                        .pop_front()
                        .expect("invariant: over-bound queue is non-empty");
                    self.record_drop(r.id, RequestOutcome::ShedOldest);
                    freed += 1;
                }
            }
            AdmissionPolicy::Degrade { .. } => {
                for r in self.pending.iter_mut().skip(bound) {
                    if !r.degraded {
                        r.degraded = true;
                        self.shed.degraded += 1;
                    }
                }
            }
        }
        if freed > 0 {
            self.note_depth(now);
            self.respawn_clients(now, freed);
        }
    }

    /// Begins rebooting instance `inst`: the reload completes — and the
    /// instance becomes dispatchable — after `reload`.
    fn begin_reload(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize, reload: SimTime) {
        let node = &mut self.nodes[inst];
        node.reloading = true;
        q.schedule_at(
            now + reload,
            Ev::ReloadDone {
                inst,
                epoch: node.epoch,
            },
        );
    }

    /// A scripted [`FaultEvent::Restart`]: reboots a down instance at
    /// the full cold [`Self::reload_time`]. A restart against a live or
    /// already-reloading instance is a no-op. This is also the operator
    /// override for crash-loop benching: a benched instance is given a
    /// fresh ladder and revived.
    fn apply_restart(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize) {
        if self.nodes[inst].standby {
            // The autoscaler owns standby capacity: a scripted restart
            // targets failures, not deliberately-parked instances.
            self.note_fault_boundary(now);
            return;
        }
        let node = &mut self.nodes[inst];
        if !node.up && !node.reloading {
            if let Some(sup) = &mut self.sup {
                let st = &mut sup.states[inst];
                if st.benched {
                    st.benched = false;
                    st.recent_kills.clear();
                    st.ladder_attempt = 0;
                    self.avail.benched -= 1;
                }
            }
            let reload = self.reload_time;
            self.begin_reload(q, now, inst, reload);
        }
        self.note_fault_boundary(now);
    }

    /// Stalls instance `inst` until `now + duration`: its in-flight batch
    /// (if any) completes normally, but no new batch is dispatched to it
    /// inside the window. Overlapping stalls extend each other; stalling
    /// a dead instance is a no-op.
    fn apply_stall(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize, dur: SimTime) {
        let node = &mut self.nodes[inst];
        if node.up {
            let until = now + dur;
            if until > node.stall_until {
                node.stall_until = until;
                q.schedule_at(until, Ev::StallEnd(inst));
            }
        }
        self.note_fault_boundary(now);
    }

    fn handle(&mut self, q: &mut EventQueue<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive => {
                self.admit_arrivals(now, 1);
                self.schedule_poisson_arrival(q);
                self.try_dispatch(q, now);
            }
            Ev::Flush(epoch) => {
                if epoch != self.flush_epoch {
                    return; // stale timer from an already-drained queue
                }
                self.flush_armed = false;
                self.force_flush = true;
                self.try_dispatch(q, now);
            }
            Ev::BatchDone { inst, epoch } => {
                if self.nodes[inst].epoch != epoch {
                    return; // the instance died mid-batch; already requeued
                }
                let fl = self.nodes[inst].in_flight.take().expect(
                    "invariant: a current-epoch BatchDone matches a stored in-flight batch",
                );
                // An unpromoted hedge can never get here: it started
                // strictly after its primary with the same makespan, so
                // the primary's completion cancelled it (epoch bump)
                // first.
                debug_assert!(fl.hedge_of.is_none());
                if let Some(twin) = fl.hedge {
                    // The primary won: cancel the duplicate. The epoch
                    // bump invalidates its scheduled BatchDone; its busy
                    // time (and its dispatch energy, long since on the
                    // ledger) was genuinely spent.
                    if let Some(tfl) = self.nodes[twin].in_flight.take() {
                        debug_assert_eq!(tfl.hedge_of, Some(inst));
                        self.util[twin].add_busy(now - tfl.started);
                        self.nodes[twin].epoch += 1;
                        self.avail.hedges_cancelled += 1;
                        if self.nodes[twin].draining {
                            // The twin was marked for retirement while
                            // running the duplicate: with the hedge
                            // cancelled (epoch already bumped) it parks.
                            let t = &mut self.nodes[twin];
                            t.draining = false;
                            t.up = false;
                            t.standby = true;
                        }
                        self.sync_router(twin);
                    }
                }
                self.util[inst].add_busy(now - fl.started);
                if self.nodes[inst].draining {
                    // Drain complete: the batch it was finishing is done,
                    // so the instance parks into standby; the epoch bump
                    // lapses any timers of its retired life.
                    let n = &mut self.nodes[inst];
                    n.draining = false;
                    n.up = false;
                    n.epoch += 1;
                    n.standby = true;
                }
                self.sync_router(inst);
                self.last_completion = now;
                let n_done = fl.reqs.len();
                if let Some(g) = &mut self.goodput {
                    g.record(now, n_done as u64);
                }
                for (id, arrival) in fl.reqs {
                    self.latency.record(now - arrival);
                    if fl.degraded {
                        self.degraded_done += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Degraded);
                    } else {
                        self.completed += 1;
                        self.outcomes[id as usize] = Some(RequestOutcome::Served);
                    }
                }
                // Each completed client immediately re-requests.
                self.respawn_clients(now, n_done);
                self.try_dispatch(q, now);
            }
            Ev::Fault(idx) => match self.faults[idx] {
                FaultEvent::Kill { instance, .. } => self.apply_kill(q, now, instance),
                FaultEvent::Restart { instance, .. } => self.apply_restart(q, now, instance),
                FaultEvent::Stall {
                    instance, duration, ..
                } => self.apply_stall(q, now, instance, duration),
            },
            Ev::StallEnd(inst) => {
                let node = &self.nodes[inst];
                if node.up && node.stall_until <= now {
                    // The window really is over (not extended meanwhile,
                    // not cut short by a kill): the instance is
                    // dispatchable again.
                    self.note_fault_boundary(now);
                    self.try_dispatch(q, now);
                }
            }
            Ev::ReloadDone { inst, epoch } => {
                let node = &mut self.nodes[inst];
                if !node.reloading || node.epoch != epoch {
                    return; // killed mid-reload; this boot was cancelled
                }
                node.reloading = false;
                node.up = true;
                let boot_epoch = node.epoch;
                self.avail.recoveries += 1;
                if let Some(down_at) = self.down_since[inst].take() {
                    let outage = now - down_at;
                    self.downtime[inst] += outage;
                    self.mttr_total += outage;
                }
                self.sync_router(inst);
                if let Some(sup) = &self.sup {
                    // Sustained uptime earns the backoff ladder back.
                    q.schedule_at(
                        now + sup.policy.reset_after,
                        Ev::BackoffReset {
                            inst,
                            epoch: boot_epoch,
                        },
                    );
                }
                self.note_fault_boundary(now);
                self.try_dispatch(q, now);
            }
            Ev::SupRestart { inst, epoch } => {
                let node = &self.nodes[inst];
                if node.epoch != epoch || node.up || node.reloading {
                    return; // killed again, or a scripted restart beat us
                }
                let reload = self
                    .sup
                    .as_ref()
                    .expect("invariant: SupRestart events are only scheduled with a supervisor")
                    .reload;
                self.begin_reload(q, now, inst, reload);
                // Supervisor restart boundaries are sampled into the
                // time series like every fault boundary.
                self.note_fault_boundary(now);
            }
            Ev::BackoffReset { inst, epoch } => {
                let node = &self.nodes[inst];
                if node.epoch != epoch || !node.up {
                    return; // killed again before earning the reset
                }
                if let Some(sup) = &mut self.sup {
                    sup.states[inst].ladder_attempt = 0;
                }
            }
            Ev::HedgeTimer { inst, seq } => self.maybe_hedge(q, now, inst, seq),
            Ev::ScaleTick => self.handle_scale_tick(q, now),
        }
    }

    /// Instances currently committed to traffic: up or mid-reload, not
    /// standby and not draining. This is what the autoscaler compares
    /// its target against — capacity lost to kills is *not* counted, so
    /// the controller replaces it from standby at the next tick instead
    /// of believing it still exists.
    fn live_pool(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| (n.up || n.reloading) && !n.standby && !n.draining)
            .count()
    }

    /// One autoscale decision ([`Ev::ScaleTick`]): measure demand since
    /// the last tick, retarget the live pool by waking standby (or
    /// reprieving draining) instances or parking surplus ones, and
    /// reschedule the next tick while the run can still make progress —
    /// the tick chain ends once every request is terminal, or once the
    /// whole fleet is dead with nothing left to wake.
    fn handle_scale_tick(&mut self, q: &mut EventQueue<Ev>, now: SimTime) {
        let current = self.live_pool();
        let offered = self.offered;
        let queued = self.pending.len();
        let (interval, decision, cooled) = {
            let auto = self
                .auto
                .as_mut()
                .expect("invariant: ScaleTick events are only scheduled with an autoscaler");
            (
                auto.policy.check_interval,
                auto.measure(now, offered, queued),
                auto.cooled_down(now),
            )
        };
        if let Some((desired, demand_fps)) = decision {
            if desired != current && cooled {
                let achieved = if desired > current {
                    current + self.wake(q, now, desired - current)
                } else {
                    current - self.park(current - desired)
                };
                if achieved != current {
                    self.auto
                        .as_mut()
                        .expect("invariant: presence was checked above")
                        .commit(ScaleEvent {
                            at: now,
                            from: current,
                            to: achieved,
                            demand_fps,
                        });
                    // Scale transitions are fault-boundary-like: the
                    // time series samples the instant the pool moves.
                    self.note_fault_boundary(now);
                }
            }
        }
        let all_terminal =
            self.completed + self.dropped + self.degraded_done >= self.cfg.requests as u64;
        let fleet_dead = self
            .nodes
            .iter()
            .all(|n| !n.up && !n.reloading && !n.standby);
        if !all_terminal && !fleet_dead {
            q.schedule_in(interval, Ev::ScaleTick);
        }
    }

    /// Scales up by `delta`: draining instances are reprieved first —
    /// they still hold loaded weights and rejoin without a reload —
    /// then standby instances boot lowest-numbered first, each paying
    /// the full cold weight reload (epoch-guarded [`Ev::ReloadDone`],
    /// exactly like a fault restart) before taking work. Returns how
    /// many instances actually joined (bounded by what is parked).
    fn wake(&mut self, q: &mut EventQueue<Ev>, now: SimTime, mut delta: usize) -> usize {
        let mut woken = 0usize;
        for i in 0..self.nodes.len() {
            if delta == 0 {
                break;
            }
            if self.nodes[i].draining {
                self.nodes[i].draining = false;
                self.sync_router(i);
                delta -= 1;
                woken += 1;
            }
        }
        for i in 0..self.nodes.len() {
            if delta == 0 {
                break;
            }
            if self.nodes[i].standby {
                self.nodes[i].standby = false;
                let reload = self.reload_time;
                self.begin_reload(q, now, i, reload);
                delta -= 1;
                woken += 1;
            }
        }
        woken
    }

    /// Scales down by `delta`, highest-numbered live instance first: an
    /// idle (or still-reloading) instance parks into standby immediately
    /// — the epoch bump lapses its pending timers — while a busy one
    /// drains: it finishes its in-flight batch and parks at completion.
    /// Requests are never aborted by scaling. Returns how many instances
    /// left the live pool.
    fn park(&mut self, mut delta: usize) -> usize {
        let mut parked = 0usize;
        for i in (0..self.nodes.len()).rev() {
            if delta == 0 {
                break;
            }
            let n = &mut self.nodes[i];
            if n.standby || n.draining || !(n.up || n.reloading) {
                continue;
            }
            if n.in_flight.is_some() {
                n.draining = true;
            } else {
                n.epoch += 1;
                n.up = false;
                n.reloading = false;
                n.stall_until = SimTime::ZERO;
                n.standby = true;
            }
            self.sync_router(i);
            delta -= 1;
            parked += 1;
        }
        parked
    }

    /// Issues a hedged duplicate of the batch dispatched as `seq` on
    /// `inst`, if it is still in flight, unhedged, not itself a hedge,
    /// nothing is waiting in the queue (spare capacity goes to real
    /// traffic first), and an idle instance exists. The duplicate pays
    /// real dispatch energy but is *not* re-executed functionally —
    /// predictions are keyed per request id and already recorded — nor
    /// counted in `batches`/attempts: it is insurance, not traffic.
    fn maybe_hedge(&mut self, q: &mut EventQueue<Ev>, now: SimTime, inst: usize, seq: u64) {
        if !self.pending.is_empty() {
            return;
        }
        let Some(fl) = self.nodes[inst].in_flight.as_ref() else {
            return;
        };
        if fl.seq != seq || fl.hedge.is_some() || fl.hedge_of.is_some() {
            return;
        }
        let Some(twin) = self.idle_instance(now) else {
            return;
        };
        let degraded = fl.degraded;
        let reqs = fl.reqs.clone();
        let (makespan, layers) = if degraded {
            self.degraded_profiles
                .as_mut()
                .expect("invariant: degraded batches only exist with fallback profiles")
                .get(reqs.len())
        } else {
            self.profiles.get(reqs.len())
        };
        let makespan = *makespan;
        let accel = if degraded {
            self.degraded_accel
                .expect("invariant: degraded batches only exist with a fallback config")
        } else {
            self.cfg.accelerator
        };
        record_inference_ops(&mut self.ledger, &accel, layers, self.model, reqs.len());
        let hedge_seq = self.next_seq;
        self.next_seq += 1;
        let twin_epoch = self.nodes[twin].epoch;
        self.nodes[twin].in_flight = Some(InFlight {
            degraded,
            started: now,
            reqs,
            seq: hedge_seq,
            hedge: None,
            hedge_of: Some(inst),
        });
        self.nodes[inst]
            .in_flight
            .as_mut()
            .expect("invariant: checked in flight above")
            .hedge = Some(twin);
        self.avail.hedges_dispatched += 1;
        self.sync_router(twin);
        q.schedule_in(
            makespan,
            Ev::BatchDone {
                inst: twin,
                epoch: twin_epoch,
            },
        );
    }
}

/// Liveness of one instance at a step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceHealth {
    /// Up and idle (dispatchable).
    Idle,
    /// Up with a batch in flight.
    Busy,
    /// Up but inside a stall window: no new dispatches.
    Stalled,
    /// Killed; no restart in progress.
    Down,
    /// Rebooting: paying the weight-reload latency.
    Reloading,
    /// Permanently benched by the supervisor's crash-loop detection;
    /// only a scripted [`FaultEvent::Restart`] (operator override)
    /// revives it.
    Benched,
    /// Parked by the autoscaler: admin-down, holding no loaded weights,
    /// outside the active pool until a scale-up wakes it.
    Standby,
    /// Retiring on scale-down: up and finishing its in-flight batch, but
    /// taking no new dispatches; parks into standby at completion.
    Draining,
}

/// One instance's state in a [`FleetSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceSnapshot {
    /// Liveness at the snapshot instant.
    pub health: InstanceHealth,
    /// Requests in this instance's in-flight batch (0 when idle — and 0
    /// for a hedged duplicate: its requests are accounted to the
    /// primary).
    pub in_flight: usize,
    /// The in-flight batch is on the degraded (fallback-model) tier.
    pub degraded_batch: bool,
    /// The in-flight batch is a hedged duplicate of a batch running on
    /// another instance.
    pub hedge_batch: bool,
}

/// A consistent view of the fleet at a step boundary.
///
/// The conservation invariant the scenario harness asserts at every step:
/// [`FleetSnapshot::accounted`] `== offered` — every request that entered
/// the system is in exactly one of completed / dropped / degraded /
/// queued / in-flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Simulated time of the last processed event.
    pub now: SimTime,
    /// Events processed so far.
    pub events_processed: u64,
    /// The simulation has settled: no events remain and every request
    /// reached a terminal state.
    pub is_complete: bool,
    /// Requests that entered the system so far.
    pub offered: u64,
    /// Full-fidelity responses so far.
    pub completed: u64,
    /// Drops so far.
    pub dropped: u64,
    /// Degraded (fallback-tier) responses so far.
    pub degraded: u64,
    /// Per-cause shed counters so far.
    pub shed: ShedCounts,
    /// Requests waiting in the shared pending queue.
    pub queued: u64,
    /// Requests inside dispatched, unfinished batches.
    pub in_flight: u64,
    /// Batches dispatched so far (re-dispatches after a kill recount).
    pub batches: u64,
    /// Per-instance liveness and in-flight state, instance order.
    pub instances: Vec<InstanceSnapshot>,
}

impl FleetSnapshot {
    /// Requests in *some* accounted state:
    /// `completed + dropped + degraded + queued + in_flight`. Equals
    /// [`FleetSnapshot::offered`] at every step boundary — requests are
    /// never silently lost, faults or not.
    pub fn accounted(&self) -> u64 {
        self.completed + self.dropped + self.degraded + self.queued + self.in_flight
    }
}

/// The serving simulation as an incrementally-steppable state machine.
///
/// ```
/// use sconna_accel::serve::{Fleet, FaultPlan, ServingConfig};
/// use sconna_accel::AcceleratorConfig;
/// use sconna_sim::time::SimTime;
/// use sconna_tensor::models::shufflenet_v2;
///
/// let model = shufflenet_v2();
/// let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 16);
/// let plan = FaultPlan::new()
///     .kill(SimTime::from_ns(200_000), 0)
///     .restart(SimTime::from_ns(400_000), 0);
/// let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
/// while fleet.step() {
///     let snap = fleet.snapshot();
///     assert_eq!(snap.accounted(), snap.offered); // conservation
/// }
/// let report = fleet.into_report();
/// assert_eq!(report.offered, 16);
/// ```
pub struct Fleet<'a> {
    sched: Scheduler<'a>,
    q: EventQueue<Ev>,
    done: bool,
}

impl<'a> Fleet<'a> {
    /// Builds a steppable analytic-timing fleet. Equivalent to
    /// [`simulate_serving`](super::simulate_serving) when driven to
    /// completion (bit-identical reports, pinned in
    /// `tests/scenarios.rs`).
    ///
    /// # Panics
    /// Panics on degenerate configurations: zero instances, zero batch
    /// limit, zero requests, a zero queue cap, a non-positive Poisson
    /// rate, or a trace whose length disagrees with `requests`.
    pub fn new(config: &ServingConfig, model: &'a CnnModel) -> Self {
        Self::new_inner(config, model, None)
    }

    /// Builds a steppable **functional** fleet: every instance owns a
    /// prepared model copy and executes its dequeued batches for real.
    /// Equivalent to
    /// [`simulate_serving_functional`](super::simulate_serving_functional)
    /// when driven to completion.
    ///
    /// # Panics
    /// Panics on degenerate configurations, an empty sample set, or a
    /// [`AdmissionPolicy::Degrade`] policy without `workload.fallback`.
    pub fn new_functional(
        config: &ServingConfig,
        model: &'a CnnModel,
        workload: &'a FunctionalWorkload<'a>,
    ) -> Self {
        Self::new_inner(config, model, Some(workload))
    }

    fn new_inner(
        config: &ServingConfig,
        model: &'a CnnModel,
        workload: Option<&'a FunctionalWorkload<'a>>,
    ) -> Self {
        assert!(config.instances > 0, "need at least one instance");
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.requests > 0, "need at least one request");
        if let Some(cap) = config.queue_cap {
            assert!(
                cap > 0,
                "queue_cap must be positive (use None for unbounded)"
            );
        }

        let degrading = matches!(config.admission, AdmissionPolicy::Degrade { .. });
        let degraded_accel = if let AdmissionPolicy::Degrade { fallback_bits } = config.admission {
            Some(config.accelerator.with_native_bits(fallback_bits))
        } else {
            None
        };

        let mut ledger = EnergyLedger::new();
        for _ in 0..config.instances {
            register_components(&mut ledger, &config.accelerator);
        }

        let auto = config.autoscale.map(|policy| {
            policy.validate();
            assert_eq!(
                policy.max, config.instances,
                "autoscale max ({}) must equal the provisioned instance pool ({})",
                policy.max, config.instances
            );
            let per_instance = config.estimated_capacity_fps(model) / config.instances as f64;
            AutoscaleCtl::new(policy, per_instance)
        });

        let sup = config.supervisor.map(|policy| {
            policy.validate();
            SupCtl {
                policy,
                reload: match policy.restart_mode {
                    RestartMode::Cold => model_reload_time(&config.accelerator, model),
                    RestartMode::Warm => model_warm_reload_time(&config.accelerator, model),
                },
                budget_left: policy.restart_budget,
                states: (0..config.instances).map(|_| SupState::fresh()).collect(),
            }
        });

        let mut sched = Scheduler {
            model,
            profiles: BatchProfiles::new(config.accelerator, model, config.max_batch),
            degraded_profiles: degraded_accel
                .map(|cfg| BatchProfiles::new(cfg, model, config.max_batch)),
            degraded_accel,
            functional: workload
                .map(|w| FunctionalExec::new(w, config.instances, config.requests, degrading)),
            ledger,
            pending: VecDeque::new(),
            next_id: 0,
            outcomes: Vec::with_capacity(config.requests),
            attempts: Vec::with_capacity(config.requests),
            nodes: (0..config.instances).map(|_| Instance::fresh()).collect(),
            router: RackRouter::new(config.instances),
            auto,
            faults: Vec::new(),
            reload_time: model_reload_time(&config.accelerator, model),
            sup,
            next_seq: 0,
            avail: AvailabilityStats::default(),
            down_since: vec![None; config.instances],
            downtime: vec![SimTime::ZERO; config.instances],
            mttr_total: SimTime::ZERO,
            goodput: config.goodput_window.map(GoodputSamples::new),
            util: vec![Utilization::new(); config.instances],
            latency: LatencySamples::new(),
            queue_depth: QueueDepthSamples::new(),
            issued: 0,
            offered: 0,
            completed: 0,
            dropped: 0,
            degraded_done: 0,
            shed: ShedCounts::default(),
            batches: 0,
            batched_requests: 0,
            last_completion: SimTime::ZERO,
            flush_epoch: 0,
            flush_armed: false,
            force_flush: false,
            rng: StdRng::seed_from_u64(config.seed),
            cfg: config.clone(),
        };

        if let Some(auto) = &sched.auto {
            // Instances beyond the bring-up pool start parked in standby.
            for node in sched.nodes.iter_mut().skip(auto.policy.initial) {
                node.up = false;
                node.standby = true;
            }
        }
        for i in 0..config.instances {
            sched.sync_router(i);
        }

        let mut q = EventQueue::new();
        match &config.arrivals {
            ArrivalProcess::Poisson { .. } => {
                // Seed the first arrival; each arrival schedules the next.
                sched.schedule_poisson_arrival(&mut q);
            }
            ArrivalProcess::ClosedLoop { clients } => {
                assert!(*clients > 0, "closed loop needs at least one client");
                let initial = (*clients).min(config.requests);
                for _ in 0..initial {
                    sched.issued += 1;
                    q.schedule_at(SimTime::ZERO, Ev::Arrive);
                }
            }
            ArrivalProcess::Trace { times } => {
                assert_eq!(
                    times.len(),
                    config.requests,
                    "trace length must equal the request count"
                );
                sched.issued = times.len();
                for &t in times {
                    q.schedule_at(t, Ev::Arrive);
                }
            }
        }
        if let Some(auto) = &sched.auto {
            q.schedule_at(auto.policy.check_interval, Ev::ScaleTick);
        }

        Self {
            sched,
            q,
            done: false,
        }
    }

    /// Installs a fault plan: schedules every event of the plan's
    /// canonical order ([`FaultPlan::normalized`]) on the fleet's event
    /// queue. Faults scheduled at the same instant as already-seeded
    /// arrivals fire after those arrivals and before any arrival seeded
    /// later (event-queue insertion order) — a deterministic, documented
    /// tie-break. An empty plan schedules nothing: bit-identical to no
    /// plan at all.
    ///
    /// # Panics
    /// Panics if any step was already taken or if a fault targets an
    /// instance outside the fleet.
    #[must_use]
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        assert_eq!(
            self.q.processed(),
            0,
            "install fault plans before the first step"
        );
        let events = plan.normalized();
        for e in &events {
            assert!(
                e.instance() < self.sched.cfg.instances,
                "fault targets instance {} of a {}-instance fleet",
                e.instance(),
                self.sched.cfg.instances
            );
        }
        let base = self.sched.faults.len();
        for (i, e) in events.iter().enumerate() {
            self.q.schedule_at(e.at(), Ev::Fault(base + i));
        }
        self.sched.faults.extend(events);
        self
    }

    /// Processes exactly one event. Returns `true` if an event was
    /// processed; when the queue is empty it settles the simulation
    /// (stranded requests drain, terminal accounting closes) and returns
    /// `false` — after which [`Fleet::is_complete`] holds.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        match self.q.pop() {
            Some((now, ev)) => {
                self.sched.handle(&mut self.q, now, ev);
                true
            }
            None => {
                self.settle();
                self.done = true;
                false
            }
        }
    }

    /// Processes every event scheduled at or before `t` (settling if the
    /// queue empties first). Returns the number of events processed.
    pub fn step_until(&mut self, t: SimTime) -> usize {
        let mut n = 0usize;
        while !self.done {
            match self.q.peek_time() {
                Some(next) if next <= t => {
                    self.step();
                    n += 1;
                }
                Some(_) => break,
                None => {
                    self.step(); // settles; not an event
                    break;
                }
            }
        }
        n
    }

    /// Drives the simulation until it settles.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Simulated time of the last processed event.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Time of the next scheduled event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    /// The simulation has settled: every request reached a terminal
    /// state and no events remain.
    pub fn is_complete(&self) -> bool {
        self.done
    }

    /// The autoscale controller's decision trace so far, in decision
    /// order (empty when the config carries no policy).
    pub fn scale_events(&self) -> &[ScaleEvent] {
        self.sched
            .auto
            .as_ref()
            .map_or(&[], |a| a.events.as_slice())
    }

    /// A consistent view of the fleet at the current step boundary.
    pub fn snapshot(&self) -> FleetSnapshot {
        let now = self.q.now();
        let s = &self.sched;
        // Hedged duplicates hold a *copy* of their primary's requests;
        // counting primaries only keeps the conservation invariant exact.
        let in_flight: u64 = s
            .nodes
            .iter()
            .map(|n| {
                n.in_flight
                    .as_ref()
                    .filter(|f| f.hedge_of.is_none())
                    .map_or(0, |f| f.reqs.len() as u64)
            })
            .sum();
        FleetSnapshot {
            now,
            events_processed: self.q.processed(),
            is_complete: self.done,
            offered: s.offered,
            completed: s.completed,
            dropped: s.dropped,
            degraded: s.degraded_done,
            shed: s.shed,
            queued: s.pending.len() as u64,
            in_flight,
            batches: s.batches,
            instances: s
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    let benched = s.sup.as_ref().is_some_and(|sup| sup.states[i].benched);
                    InstanceSnapshot {
                        health: if n.standby {
                            InstanceHealth::Standby
                        } else if n.reloading {
                            InstanceHealth::Reloading
                        } else if !n.up {
                            if benched {
                                InstanceHealth::Benched
                            } else {
                                InstanceHealth::Down
                            }
                        } else if n.in_flight.is_some() {
                            if n.draining {
                                InstanceHealth::Draining
                            } else {
                                InstanceHealth::Busy
                            }
                        } else if n.stall_until > now {
                            InstanceHealth::Stalled
                        } else {
                            InstanceHealth::Idle
                        },
                        in_flight: n
                            .in_flight
                            .as_ref()
                            .filter(|f| f.hedge_of.is_none())
                            .map_or(0, |f| f.reqs.len()),
                        degraded_batch: n.in_flight.as_ref().is_some_and(|f| f.degraded),
                        hedge_batch: n.in_flight.as_ref().is_some_and(|f| f.hedge_of.is_some()),
                    }
                })
                .collect(),
        }
    }

    /// Terminal drain once the event queue is empty. In a fault-free run
    /// this is a no-op: every request already reached a terminal state.
    /// Under a fault plan the queue can drain with requests still pending
    /// — only possible when every instance is dead with no restart
    /// scheduled — and those provably-unservable requests are accounted
    /// as [`RequestOutcome::ShedStranded`] (in the closed loop, the
    /// freed clients' remaining request budget strands the same way).
    fn settle(&mut self) {
        if self.sched.pending.is_empty() && self.sched.offered as usize == self.sched.cfg.requests {
            return;
        }
        assert!(
            self.sched.nodes.iter().all(|n| !n.up && !n.reloading),
            "invariant: the queue only drains with work outstanding when the whole fleet is dead"
        );
        let now = self.q.now();
        while !self.sched.pending.is_empty() {
            let mut freed = 0usize;
            while let Some(r) = self.sched.pending.pop_front() {
                self.sched.record_drop(r.id, RequestOutcome::ShedStranded);
                freed += 1;
            }
            // Closed-loop clients freed by the strand fire their next
            // requests — into the same dead fleet, stranding in turn,
            // until the request budget is spent.
            self.sched.respawn_clients(now, freed);
        }
        self.sched.note_fault_boundary(now);
    }

    /// Runs to completion (if not already settled) and builds the
    /// [`ServingReport`].
    pub fn into_report(mut self) -> ServingReport {
        self.run_to_completion();
        self.into_parts().0
    }

    /// Runs to completion and builds the [`FunctionalServingReport`].
    ///
    /// # Panics
    /// Panics if the fleet was not built with [`Fleet::new_functional`].
    pub fn into_functional_report(mut self) -> FunctionalServingReport {
        self.run_to_completion();
        let (serving, outcomes, attempts, func) = self.into_parts();
        let func = func.expect(
            "invariant: into_functional_report is only called on Fleet::new_functional fleets",
        );
        debug_assert!(
            outcomes
                .iter()
                .zip(&func.predictions)
                .all(
                    |(o, &p)| matches!(o, RequestOutcome::Served | RequestOutcome::Degraded)
                        == (p != usize::MAX)
                ),
            "exactly the responses must have been executed"
        );
        let correct = func.correct_responses(&outcomes);
        let responses = serving.completed + serving.degraded;
        FunctionalServingReport {
            accuracy_under_load: if responses == 0 {
                0.0
            } else {
                correct as f64 / responses as f64
            },
            accuracy_offered: correct as f64 / serving.offered as f64,
            predictions: func.predictions,
            outcomes,
            attempts,
            correct,
            serving,
        }
    }

    /// Final accounting: terminal asserts plus report construction.
    fn into_parts(
        self,
    ) -> (
        ServingReport,
        Vec<RequestOutcome>,
        Vec<u32>,
        Option<FunctionalExec<'a>>,
    ) {
        assert!(self.done, "into_parts only after the simulation settled");
        let final_now = self.q.now();
        let mut sched = self.sched;
        // Close the availability books: an instance still down at the
        // end accrues downtime up to the final event time (but not MTTR
        // — it never recovered), and capacity is re-estimated over the
        // instances still serving.
        for (i, since) in sched.down_since.iter_mut().enumerate() {
            if let Some(at) = since.take() {
                sched.downtime[i] += final_now.saturating_sub(at);
            }
        }
        sched.avail.downtime = std::mem::take(&mut sched.downtime);
        sched.avail.active_instances = sched.nodes.iter().filter(|n| n.up || n.reloading).count();
        sched.avail.mean_mttr = sched
            .mttr_total
            .as_ps()
            .checked_div(sched.avail.recoveries)
            .map_or(SimTime::ZERO, SimTime::from_ps);
        let config = &sched.cfg;
        assert_eq!(
            sched.offered as usize, config.requests,
            "every request must enter the system"
        );
        assert_eq!(
            sched.completed + sched.dropped + sched.degraded_done,
            sched.offered,
            "served + dropped + degraded must account every offered request"
        );
        let outcomes: Vec<RequestOutcome> = sched
            .outcomes
            .iter()
            .map(|o| {
                o.expect(
                    "invariant: every request reaches a terminal state before the queue drains",
                )
            })
            .collect();
        let responses = sched.completed + sched.degraded_done;
        // Stale flush timers may fire after the last completion, so the
        // serving makespan is the last completion time, not the queue's
        // final clock. ZERO (degenerate all-shed runs) zeroes the rate
        // metrics.
        let makespan = sched.last_completion;
        let secs = makespan.as_secs_f64();
        let energy_j = sched.ledger.total_energy_j(makespan);
        let report = ServingReport {
            accelerator: config.accelerator.name,
            model: sched.model.name.clone(),
            instances: config.instances,
            max_batch: config.max_batch,
            offered: sched.offered,
            completed: sched.completed,
            dropped: sched.dropped,
            degraded: sched.degraded_done,
            shed: sched.shed,
            drop_rate: sched.dropped as f64 / sched.offered as f64,
            batches: sched.batches,
            mean_batch_fill: if sched.batches == 0 {
                0.0
            } else {
                sched.batched_requests as f64 / sched.batches as f64
            },
            makespan,
            fps: if secs > 0.0 {
                sched.completed as f64 / secs
            } else {
                0.0
            },
            goodput_fps: if secs > 0.0 {
                responses as f64 / secs
            } else {
                0.0
            },
            latency: if sched.latency.is_empty() {
                LatencySummary {
                    count: 0,
                    p50: SimTime::ZERO,
                    p95: SimTime::ZERO,
                    p99: SimTime::ZERO,
                    mean: SimTime::ZERO,
                    max: SimTime::ZERO,
                }
            } else {
                sched.latency.summary()
            },
            queue_depth: sched.queue_depth,
            utilization: if makespan > SimTime::ZERO {
                sched.util.iter().map(|u| u.ratio(makespan)).collect()
            } else {
                vec![0.0; config.instances]
            },
            energy_j,
            energy_per_inference_j: if responses > 0 {
                energy_j / responses as f64
            } else {
                0.0
            },
            avg_power_w: if secs > 0.0 {
                sched.ledger.average_power_w(makespan)
            } else {
                0.0
            },
            availability: sched.avail,
            goodput_series: sched.goodput,
        };
        (report, outcomes, sched.attempts, sched.functional)
    }
}
