//! Supervised restarts: the policy half of the self-healing loop.
//!
//! A [`Supervisor`] is a pure, `Copy` restart policy attached to a
//! [`Fleet`](super::Fleet) via
//! [`ServingConfig::with_supervisor`](super::ServingConfig::with_supervisor).
//! The fleet owns the mutable bookkeeping (per-instance attempt ladders,
//! recent-kill windows, the restart budget); this module owns the
//! schedule arithmetic so it can be unit-pinned in isolation:
//!
//! * **Exponential backoff with deterministic jitter.** Restart attempt
//!   `a` on the current ladder waits
//!   `initial_backoff · backoff_factor^a`, capped at `max_backoff`, then
//!   scaled by a jitter factor in `[1 − jitter, 1 + jitter]` drawn from
//!   a counter-keyed SplitMix64 stream over `(seed, instance, ordinal)`
//!   — order/thread-independent like every other random stream in the
//!   repo, and decorrelated across instances so a correlated fleet-wide
//!   kill does not produce a synchronized thundering-herd reload.
//! * **Ladder reset.** An instance that stays up `reset_after` after a
//!   supervised restart earns its ladder back (attempt count returns to
//!   zero) — transient faults stay cheap, persistent ones escalate.
//! * **Crash-loop detection.** `crash_loop_limit` kills inside a
//!   sliding `crash_loop_window` bench the instance permanently: the
//!   supervisor stops restarting it and the fleet re-estimates its
//!   capacity over the survivors. A scripted
//!   [`FaultEvent::Restart`](super::FaultEvent::Restart) still revives
//!   a benched instance — that is the operator override path.
//! * **Restart budget.** A global cap on supervised restarts across the
//!   run; exhaustion turns the supervisor off (instances that die stay
//!   down), modelling a finite ops capacity.
//!
//! What a restart *costs* is the accelerator's to answer:
//! [`RestartMode::Cold`] pays the full
//! [`model_reload_time`](crate::perf::model_reload_time) (DKV/LUT
//! programming plus weight traffic), [`RestartMode::Warm`] only
//! [`model_warm_reload_time`](crate::perf::model_warm_reload_time) —
//! which is *zero* for SCONNA (no DKV reprogramming, the paper's claim)
//! and reprogram-bound for the analog baselines. The availability gap
//! between the two is the paper's reload advantage expressed as MTTR.

use sconna_sim::time::SimTime;
use sconna_tensor::engine::{combine_keys, mix_key};
use serde::{Deserialize, Serialize};

use super::failure::unit_uniform;

/// What a supervised restart costs the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartMode {
    /// Full weight reload from scratch:
    /// [`model_reload_time`](crate::perf::model_reload_time).
    Cold,
    /// Operand scratchpads survived the process restart; only device
    /// (re)programming is replayed:
    /// [`model_warm_reload_time`](crate::perf::model_warm_reload_time).
    /// Zero for SCONNA.
    Warm,
}

/// A restart policy: exponential backoff + deterministic jitter, ladder
/// reset on sustained uptime, crash-loop benching, and a global restart
/// budget. Pure data — all mutable supervision state lives in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Supervisor {
    /// Root of the jitter draw stream.
    pub seed: u64,
    /// Backoff before the first restart on a fresh ladder.
    pub initial_backoff: SimTime,
    /// Multiplier between consecutive attempts on one ladder.
    pub backoff_factor: u32,
    /// Ceiling on the un-jittered backoff.
    pub max_backoff: SimTime,
    /// Jitter half-width as a fraction of the backoff, in `[0, 1)`:
    /// the drawn factor lies in `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Uptime after a supervised restart that resets the attempt ladder.
    pub reset_after: SimTime,
    /// Sliding window for crash-loop detection.
    pub crash_loop_window: SimTime,
    /// Kills within the window that bench the instance permanently.
    pub crash_loop_limit: u32,
    /// Global cap on supervised restarts (`None` = unlimited).
    pub restart_budget: Option<u64>,
    /// Whether restarts pay the cold or the warm reload cost.
    pub restart_mode: RestartMode,
}

impl Supervisor {
    /// A supervisor with production-shaped defaults: 10 µs initial
    /// backoff doubling to a 1 ms cap with ±20 % jitter, ladder reset
    /// after 1 ms of uptime, benching after 5 kills inside 2 ms, no
    /// restart budget, warm restarts.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            initial_backoff: SimTime::from_ns(10_000),
            backoff_factor: 2,
            max_backoff: SimTime::from_ns(1_000_000),
            jitter: 0.2,
            reset_after: SimTime::from_ns(1_000_000),
            crash_loop_window: SimTime::from_ns(2_000_000),
            crash_loop_limit: 5,
            restart_budget: None,
            restart_mode: RestartMode::Warm,
        }
    }

    /// Caps the total number of supervised restarts across the run.
    #[must_use]
    pub fn with_restart_budget(mut self, budget: u64) -> Self {
        self.restart_budget = Some(budget);
        self
    }

    /// Selects cold or warm restart cost.
    #[must_use]
    pub fn with_restart_mode(mut self, mode: RestartMode) -> Self {
        self.restart_mode = mode;
        self
    }

    /// Panics on degenerate policies; called once at fleet bring-up.
    pub(crate) fn validate(&self) {
        assert!(
            self.initial_backoff > SimTime::ZERO,
            "initial backoff must be positive"
        );
        assert!(self.backoff_factor >= 1, "backoff factor must be >= 1");
        assert!(
            self.max_backoff >= self.initial_backoff,
            "max backoff must be >= initial backoff"
        );
        assert!(
            (0.0..1.0).contains(&self.jitter),
            "jitter must be in [0, 1), got {}",
            self.jitter
        );
        assert!(
            self.reset_after > SimTime::ZERO,
            "ladder reset uptime must be positive"
        );
        assert!(
            self.crash_loop_window > SimTime::ZERO,
            "crash-loop window must be positive"
        );
        assert!(
            self.crash_loop_limit >= 1,
            "crash-loop limit must be >= 1 kill"
        );
    }

    /// The delay before restart number `ordinal` of `instance`, which is
    /// attempt `attempt` on the instance's current ladder: exponential in
    /// `attempt`, capped, then jittered by a factor drawn from
    /// `(seed, instance, ordinal)`. Keying the jitter by the *ordinal*
    /// (lifetime restart count) rather than the ladder attempt keeps
    /// every delay distinct even after ladder resets; keying by instance
    /// decorrelates instances killed at the same instant.
    pub fn backoff_for(&self, instance: usize, ordinal: u64, attempt: u32) -> SimTime {
        // u128 intermediate: 2^attempt overflows u64 ps fast, the cap
        // does not.
        let cap = self.max_backoff.as_ps() as u128;
        let mut base = self.initial_backoff.as_ps() as u128;
        for _ in 0..attempt {
            base = (base * self.backoff_factor as u128).min(cap);
            if base == cap {
                break;
            }
        }
        let base = base.min(cap) as u64;
        let draw = mix_key(combine_keys(
            self.seed,
            combine_keys(instance as u64, ordinal),
        ));
        let factor = 1.0 + self.jitter * (2.0 * unit_uniform(draw) - 1.0);
        SimTime::from_secs_f64(SimTime::from_ps(base).as_secs_f64() * factor)
            .max(SimTime::from_ps(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter(seed: u64) -> Supervisor {
        Supervisor {
            jitter: 0.0,
            ..Supervisor::new(seed)
        }
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let sup = no_jitter(1);
        let b: Vec<u64> = (0..12u32)
            .map(|a| sup.backoff_for(0, a as u64, a).as_ps())
            .collect();
        assert_eq!(b[0], 10_000_000); // 10 µs
        assert_eq!(b[1], 20_000_000);
        assert_eq!(b[2], 40_000_000);
        // Caps at max_backoff = 1 ms and stays there.
        assert_eq!(b[7], 1_000_000_000);
        assert_eq!(b[11], 1_000_000_000);
        // Monotone non-decreasing along one ladder without jitter.
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let sup = no_jitter(1);
        assert_eq!(sup.backoff_for(3, 500, 500), sup.max_backoff);
    }

    #[test]
    fn jitter_stays_inside_its_band_and_is_deterministic() {
        let sup = Supervisor::new(42);
        for inst in 0..4usize {
            for ordinal in 0..16u64 {
                let d = sup.backoff_for(inst, ordinal, 0);
                let base = sup.initial_backoff.as_secs_f64();
                let f = d.as_secs_f64() / base;
                assert!(
                    (1.0 - sup.jitter - 1e-9..=1.0 + sup.jitter + 1e-9).contains(&f),
                    "jitter factor {f} outside band"
                );
                assert_eq!(d, sup.backoff_for(inst, ordinal, 0), "pure function");
            }
        }
        // Distinct ordinals draw distinct jitter — no synchronized herd.
        let a = sup.backoff_for(0, 0, 0);
        let b = sup.backoff_for(0, 1, 0);
        let c = sup.backoff_for(1, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn builders_set_budget_and_mode() {
        let sup = Supervisor::new(0)
            .with_restart_budget(7)
            .with_restart_mode(RestartMode::Cold);
        assert_eq!(sup.restart_budget, Some(7));
        assert_eq!(sup.restart_mode, RestartMode::Cold);
        sup.validate();
    }

    #[test]
    #[should_panic(expected = "initial backoff must be positive")]
    fn zero_backoff_rejected() {
        Supervisor {
            initial_backoff: SimTime::ZERO,
            ..Supervisor::new(0)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max backoff must be >= initial backoff")]
    fn inverted_cap_rejected() {
        Supervisor {
            max_backoff: SimTime::from_ps(1),
            ..Supervisor::new(0)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0, 1)")]
    fn full_jitter_rejected() {
        Supervisor {
            jitter: 1.0,
            ..Supervisor::new(0)
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "crash-loop limit must be >= 1")]
    fn zero_crash_loop_limit_rejected() {
        Supervisor {
            crash_loop_limit: 0,
            ..Supervisor::new(0)
        }
        .validate();
    }
}
