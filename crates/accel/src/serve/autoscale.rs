//! Reactive fleet autoscaling: a feedback controller that sizes the
//! active instance pool against observed demand.
//!
//! The fleet is provisioned at [`AutoscalePolicy::max`] instances
//! (`ServingConfig::instances`), but only `active` of them take traffic;
//! the rest sit **standby** — admin-down, holding no weights
//! ([`InstanceHealth::Standby`](super::InstanceHealth::Standby)). Every
//! [`AutoscalePolicy::check_interval`] of simulated time the controller
//! compares the demand observed since the last check — arrivals per
//! second plus the backlog it would take one interval to drain — against
//! the per-instance service capacity derived from
//! [`ServingConfig::estimated_capacity_fps`](super::ServingConfig::estimated_capacity_fps),
//! and retargets the pool:
//!
//! * **Scale-up** activates the lowest-numbered standby instances. A
//!   waking instance pays the accelerator's full weight-reload latency
//!   (`model_reload_time`) through the same epoch-guarded
//!   `ReloadDone` machinery as a fault restart, so it only takes work
//!   once its weights are loaded — and a kill mid-wake cancels the boot
//!   exactly like a kill mid-reload.
//! * **Scale-down** retires the highest-numbered active instances. An
//!   idle instance parks immediately; a busy one **drains** — it finishes
//!   its in-flight batch (requests are never aborted by scaling), then
//!   parks. The boot epoch bumps on park, so stale completions and
//!   supervisor timers of the retired life lapse, exactly as after a
//!   kill.
//!
//! Decisions are pure functions of simulated time and the counters the
//! scheduler already maintains, so autoscaled runs replay bit-identically
//! across processes, worker counts and trace permutations — the same
//! determinism contract as everything else on the event queue
//! (property-tested in `tests/autoscale.rs`).

use sconna_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Reactive scaling policy: pool bounds, sampling cadence and the
/// headroom factor that decides how aggressively capacity tracks demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Smallest active pool; the controller never parks below this.
    pub min: usize,
    /// Largest active pool. Must equal the fleet's provisioned
    /// `ServingConfig::instances` (the standby instances are the
    /// `max - active` tail).
    pub max: usize,
    /// Active instances at bring-up (clamped into `[min, max]`).
    pub initial: usize,
    /// Simulated time between controller decisions.
    pub check_interval: SimTime,
    /// Minimum simulated time between two scale *actions* — hysteresis
    /// against flapping on bursty arrivals.
    pub cooldown: SimTime,
    /// Capacity over-provisioning factor: the controller targets
    /// `headroom × demand` worth of instances, so `1.25` keeps 25 %
    /// spare for bursts inside a check interval.
    pub headroom: f64,
}

impl AutoscalePolicy {
    /// A policy scaling between `min` and `max` active instances with
    /// the defaults the serving benches use: 1 ms checks, 2 ms cooldown,
    /// 25 % headroom, starting at `min`.
    pub fn new(min: usize, max: usize) -> Self {
        Self {
            min,
            max,
            initial: min,
            check_interval: SimTime::from_ns(1_000_000),
            cooldown: SimTime::from_ns(2_000_000),
            headroom: 1.25,
        }
    }

    /// Replaces the bring-up pool size.
    #[must_use]
    pub fn with_initial(mut self, initial: usize) -> Self {
        self.initial = initial;
        self
    }

    /// Replaces the controller cadence.
    #[must_use]
    pub fn with_check_interval(mut self, interval: SimTime) -> Self {
        self.check_interval = interval;
        self
    }

    /// Replaces the scale-action cooldown.
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: SimTime) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Replaces the headroom factor.
    #[must_use]
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom;
        self
    }

    /// Checks the policy is well-formed.
    ///
    /// # Panics
    /// Panics on an empty pool range, an `initial` outside `[min, max]`,
    /// a zero check interval, or a non-positive/non-finite headroom.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }

    /// Non-panicking form of [`validate`](Self::validate): returns the
    /// diagnostic instead of aborting, so `ServingConfig::validate` can
    /// surface it as a [`ServingConfigError`](super::ServingConfigError).
    pub fn try_validate(&self) -> Result<(), String> {
        if self.min < 1 {
            return Err("autoscale min must be at least 1".into());
        }
        if self.min > self.max {
            return Err(format!(
                "autoscale min {} exceeds max {}",
                self.min, self.max
            ));
        }
        if !(self.min..=self.max).contains(&self.initial) {
            return Err(format!(
                "autoscale initial {} outside [{}, {}]",
                self.initial, self.min, self.max
            ));
        }
        if self.check_interval <= SimTime::ZERO {
            return Err("autoscale check interval must be positive".into());
        }
        if !(self.headroom.is_finite() && self.headroom > 0.0) {
            return Err("autoscale headroom must be positive and finite".into());
        }
        Ok(())
    }
}

/// One controller action: the pool retargeted from `from` to `to` active
/// instances at simulated time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Simulated time of the decision.
    pub at: SimTime,
    /// Active pool before.
    pub from: usize,
    /// Active pool after.
    pub to: usize,
    /// The demand estimate (requests/s, arrivals + backlog drain) the
    /// decision was based on.
    pub demand_fps: f64,
}

/// Run-wide controller state: the policy plus the demand window and the
/// decision trace. The fleet owns one when its config carries an
/// [`AutoscalePolicy`]; the fleet measures demand here, compares the
/// desired pool against the *live* pool it actually has (so capacity
/// lost to kills is replaced from standby, not double-counted), applies
/// the wake/park transitions itself, and commits the achieved action
/// back for cooldown tracking and the decision trace.
pub(crate) struct AutoscaleCtl {
    pub policy: AutoscalePolicy,
    /// Requests/s one active instance sustains at the configured batch
    /// size (`estimated_capacity_fps / instances`).
    pub per_instance_fps: f64,
    /// Last committed scale action, for cooldown.
    last_scale: Option<SimTime>,
    /// `offered` counter at the previous tick (arrival-rate window).
    offered_at_tick: u64,
    /// Previous tick time.
    last_tick: SimTime,
    /// Every scale action taken, decision order.
    pub events: Vec<ScaleEvent>,
}

impl AutoscaleCtl {
    pub fn new(policy: AutoscalePolicy, per_instance_fps: f64) -> Self {
        policy.validate();
        assert!(
            per_instance_fps.is_finite() && per_instance_fps > 0.0,
            "per-instance capacity must be positive"
        );
        Self {
            policy,
            per_instance_fps,
            last_scale: None,
            offered_at_tick: 0,
            last_tick: SimTime::ZERO,
            events: Vec::new(),
        }
    }

    /// One demand measurement at `now`: slides the arrival window
    /// (`offered` is the fleet's lifetime arrival counter, `queued` the
    /// current backlog) and returns the desired pool size with the
    /// demand estimate it came from — `None` when no time has passed.
    ///
    /// Demand is the arrival rate over the window plus the rate it would
    /// take to drain the current backlog within one window; the desired
    /// pool is `ceil(headroom × demand / per_instance_fps)` clamped into
    /// `[min, max]`.
    pub fn measure(&mut self, now: SimTime, offered: u64, queued: usize) -> Option<(usize, f64)> {
        let window = now.saturating_sub(self.last_tick);
        let arrived = offered - self.offered_at_tick;
        self.offered_at_tick = offered;
        self.last_tick = now;
        if window == SimTime::ZERO {
            return None;
        }
        let secs = window.as_secs_f64();
        let demand_fps = (arrived as usize + queued) as f64 / secs;
        let desired = ((self.policy.headroom * demand_fps / self.per_instance_fps).ceil() as usize)
            .clamp(self.policy.min, self.policy.max);
        Some((desired, demand_fps))
    }

    /// Whether enough time has passed since the last committed action.
    pub fn cooled_down(&self, now: SimTime) -> bool {
        self.last_scale
            .is_none_or(|last| now.saturating_sub(last) >= self.policy.cooldown)
    }

    /// Records an applied scale action (starts the cooldown clock).
    pub fn commit(&mut self, ev: ScaleEvent) {
        self.last_scale = Some(ev.at);
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> AutoscaleCtl {
        // 1000 fps per instance, 1..=8 pool, 1 ms ticks, 2 ms cooldown.
        AutoscaleCtl::new(AutoscalePolicy::new(1, 8), 1000.0)
    }

    #[test]
    fn policy_defaults_are_valid_and_builders_override() {
        let p = AutoscalePolicy::new(2, 16)
            .with_initial(4)
            .with_check_interval(SimTime::from_ns(500_000))
            .with_cooldown(SimTime::from_ns(1_000_000))
            .with_headroom(1.5);
        p.validate();
        assert_eq!(p.initial, 4);
        assert_eq!(p.check_interval, SimTime::from_ns(500_000));
        assert_eq!(p.cooldown, SimTime::from_ns(1_000_000));
        assert_eq!(p.headroom, 1.5);
    }

    #[test]
    fn try_validate_reports_the_first_defect_without_panicking() {
        assert!(AutoscalePolicy::new(1, 8).try_validate().is_ok());
        let err = AutoscalePolicy::new(4, 2).try_validate().unwrap_err();
        assert!(err.contains("min 4 exceeds max 2"), "{err}");
        let err = AutoscalePolicy::new(2, 4)
            .with_headroom(f64::NAN)
            .try_validate()
            .unwrap_err();
        assert!(err.contains("headroom"), "{err}");
    }

    #[test]
    #[should_panic(expected = "min")]
    fn inverted_bounds_panic() {
        AutoscalePolicy::new(4, 2).validate();
    }

    #[test]
    #[should_panic(expected = "initial")]
    fn out_of_range_initial_panics() {
        AutoscalePolicy::new(2, 4).with_initial(8).validate();
    }

    #[test]
    fn high_demand_clamps_desired_pool_at_max() {
        let mut c = ctl();
        // 4000 arrivals in 1 ms = 4 Mfps demand: clamps at max.
        let t = SimTime::from_ns(1_000_000);
        let (desired, demand) = c.measure(t, 4000, 0).unwrap();
        assert_eq!(desired, 8);
        assert_eq!(demand, 4_000_000.0);
    }

    #[test]
    fn backlog_counts_as_demand() {
        let mut c = ctl();
        // No fresh arrivals, but a 3-request backlog at 1000 fps/inst
        // over 1 ms demands 3000 fps: headroom 1.25 → ceil(3.75) = 4.
        let t = SimTime::from_ns(1_000_000);
        assert_eq!(c.measure(t, 0, 3).unwrap().0, 4);
    }

    #[test]
    fn idle_demand_clamps_desired_pool_at_min() {
        let mut c = ctl();
        // A quiet 10 ms window still wants the min pool, never zero.
        assert_eq!(c.measure(SimTime::from_ns(10_000_000), 0, 0).unwrap().0, 1);
    }

    #[test]
    fn cooldown_gates_after_a_commit_then_releases() {
        let mut c = ctl();
        let ms = |n: u64| SimTime::from_ns(n * 1_000_000);
        assert!(c.cooled_down(ms(1)));
        c.commit(ScaleEvent {
            at: ms(1),
            from: 1,
            to: 8,
            demand_fps: 10_000.0,
        });
        // 1 ms later the 2 ms cooldown still holds; at 3 ms it releases.
        assert!(!c.cooled_down(ms(2)));
        assert!(c.cooled_down(ms(3)));
        assert_eq!(c.events.len(), 1);
        assert_eq!((c.events[0].from, c.events[0].to), (1, 8));
    }

    #[test]
    fn measure_windows_are_deltas_not_lifetimes() {
        let mut c = ctl();
        let ms = |n: u64| SimTime::from_ns(n * 1_000_000);
        // 8 arrivals over 10 ms = 800 fps × 1.25 headroom = exactly one
        // instance's capacity.
        assert_eq!(c.measure(ms(10), 8, 0).unwrap().0, 1);
        // Next window sees only the 4 *new* arrivals over the 1 ms since:
        // 4000 fps × 1.25 = 5 instances.
        assert_eq!(c.measure(ms(11), 12, 0).unwrap().0, 5);
    }

    #[test]
    fn zero_width_window_is_a_no_op() {
        let mut c = ctl();
        assert_eq!(c.measure(SimTime::ZERO, 100, 100), None);
        assert!(c.events.is_empty());
    }
}
