//! Multi-instance serving simulation: the traffic dimension the paper's
//! headline throughput claim implies but never models.
//!
//! A *fleet* of R identical accelerator instances serves a stream of
//! inference requests. Requests arrive by an open-loop Poisson process
//! (independent users at a target rate), a closed loop (a fixed
//! population of clients, each firing its next request the moment the
//! previous one completes), or a replayed trace. A batching scheduler
//! packs pending requests into batches of up to `max_batch`, dispatching
//! a full batch as soon as an instance is idle and flushing partial
//! batches once the oldest pending request has waited `batch_window` —
//! the standard dynamic-batching policy of production inference servers.
//!
//! Each dispatched batch occupies one instance for the weight-stationary
//! batched makespan from [`crate::perf`], so the per-batch service time
//! and per-batch dynamic energy are exactly the single-accelerator
//! model's; what this module adds is queueing, packing and fleet-level
//! accounting: throughput, latency percentiles, per-instance utilization
//! and energy per inference.
//!
//! **Overload & admission control.** The pending queue can be bounded
//! (`queue_cap` requests per instance) and an [`AdmissionPolicy`] decides
//! what happens to traffic the fleet cannot absorb: reject the newcomer
//! ([`AdmissionPolicy::DropNewest`]), evict the oldest waiter
//! ([`AdmissionPolicy::DropOldest`]), shed requests whose queue wait has
//! already blown their latency SLO ([`AdmissionPolicy::Deadline`]), or
//! route overflow to a cheaper low-precision fallback model so shedding
//! trades accuracy instead of availability
//! ([`AdmissionPolicy::Degrade`]). Reports account every offered request
//! into exactly one of *served*, *dropped* or *degraded*, quote goodput
//! and drop rate, and carry the queue-depth time series
//! ([`sconna_sim::stats::QueueDepthSamples`]). [`overload_sweep`] walks
//! the offered load across the saturation knee and returns the
//! accuracy-vs-load / tail-latency-vs-load curve.
//!
//! **Functional serving** ([`simulate_serving_functional`]) goes one step
//! further: besides *timing* each batch, every instance owns an
//! engine-backed prepared model
//! ([`sconna_tensor::network::PreparedNetwork`] — weights DKV/LUT
//! converted once at fleet bring-up, the weight-stationary load the
//! hardware mapping assumes) and **executes** each dequeued batch through
//! real `vdp_batch` tiles, the im2col patches of the whole batch stacked
//! per layer. The fleet then reports per-request predictions and top-1
//! **accuracy-under-load** alongside FPS/latency/energy. Request `r`
//! runs under noise key `r`, so its prediction is a pure function of
//! `(model, engine, sample, r)` — independent of batch packing, instance
//! assignment, arrival ordering and worker count. Under
//! [`AdmissionPolicy::Degrade`] the instances additionally hold a
//! prepared copy of the low-precision fallback network and run degraded
//! batches through it.
//!
//! **Steppable fleet & fault injection.** The simulation itself is the
//! [`Fleet`] state machine: the entry points here are thin
//! run-to-completion wrappers over `Fleet::new(...)` + step-until-done.
//! Driving a [`Fleet`] manually ([`Fleet::step`] / [`Fleet::step_until`])
//! exposes a [`FleetSnapshot`] at every step boundary, and a
//! [`FaultPlan`] schedules kill / restart / stall events against
//! individual instances on the same deterministic event queue as the
//! traffic — the scenario-test harness in `tests/scenarios.rs` drives
//! exactly this surface, asserting request conservation at every step of
//! seeded chaos runs.
//!
//! **Self-healing.** Scripted chaos generalizes to *statistical* chaos:
//! a [`FailureProcess`] materializes seeded exponential MTBF/MTTR
//! failure streams into an ordinary [`FaultPlan`], a [`Supervisor`]
//! restarts killed instances with exponentially backed-off, jittered
//! delays (benching crash-looping instances permanently), and a
//! [`RetryPolicy`] re-admits kill-aborted requests under per-request
//! attempt ceilings and a global retry budget, optionally hedging slow
//! batches onto idle instances. What a restart costs is the
//! accelerator's to answer — SCONNA's zero-reprogram warm reload
//! ([`RestartMode::Warm`]) heals faster than the analog baselines, and
//! the gap is measured as MTTR in [`AvailabilityStats`]. [`chaos_sweep`]
//! walks availability and goodput across fault rates.
//!
//! **Multi-tenant serving.** A fleet can host several *tenants* —
//! [`TenantSpec`] names a model (by index into the co-resident model
//! slice), a fair-share weight, a [`LatencyClass`] and its own arrival
//! process — built via [`Fleet::new_multi`] /
//! [`Fleet::new_multi_functional`]. Each tenant owns a bounded FIFO of
//! its own; a pluggable [`TenantScheduler`] picks which tenant's head
//! batch dispatches next: weighted-fair queueing on a virtual clock
//! (default), strict latency-class priority, or a naive shared FIFO
//! baseline with no isolation at all. Every instance holds prepared
//! copies of *all* models co-resident, so switching tenants costs
//! [`model_swap_time`](crate::perf::model_swap_time) — near-zero for
//! SCONNA (repointing OSM LUT banks), reprogram-dominated for the analog
//! baselines — not a cold reload. [`ServingReport::tenants`] carries a
//! [`TenantUsage`] per tenant (offered/served/degraded, per-cause sheds,
//! latency percentiles, joules, swap counts), functional runs add
//! per-tenant accuracy-under-load, and [`FleetSnapshot::tenants`]
//! extends the conservation invariant per tenant. A config with an empty
//! roster is exactly a one-tenant fleet: the single-tenant entry points
//! are thin wrappers and stay bit-identical to their pre-tenant reports.
//!
//! Everything runs on one deterministic [`EventQueue`] per simulation, so
//! a [`ServingReport`] is a pure function of its [`ServingConfig`] (and
//! fault plan) — bit-identical across runs and across sweep
//! worker-thread counts.
//!
//! [`EventQueue`]: sconna_sim::event::EventQueue

mod autoscale;
mod config;
mod failure;
mod fault;
mod fleet;
mod report;
mod supervisor;

pub use autoscale::{AutoscalePolicy, ScaleEvent};
pub use config::{
    AdmissionPolicy, ArrivalProcess, LatencyClass, RetryPolicy, ServingConfig, ServingConfigError,
    TenantScheduler, TenantSpec,
};
pub use failure::FailureProcess;
pub use fault::{FaultEvent, FaultPlan};
pub use fleet::{
    Fleet, FleetSnapshot, FunctionalWorkload, InstanceHealth, InstanceSnapshot, TenantSnapshot,
};
pub use report::{
    AvailabilityStats, FunctionalServingReport, OverloadPoint, RequestOutcome, ServingReport,
    ShedCounts, TenantAccuracy, TenantUsage,
};
pub use supervisor::{RestartMode, Supervisor};

use sconna_sim::parallel::parallel_map_with;
use sconna_tensor::models::CnnModel;

/// Runs one serving simulation to completion, analytic timing only.
/// Equivalent to `Fleet::new(config, model).into_report()`.
///
/// # Panics
/// Panics on degenerate configurations: zero instances, zero batch limit,
/// zero requests, a zero queue cap, a non-positive Poisson rate, or a
/// trace whose length disagrees with `requests`.
pub fn simulate_serving(config: &ServingConfig, model: &CnnModel) -> ServingReport {
    Fleet::new(config, model).into_report()
}

/// Runs one **functional** serving simulation: the same queueing, timing
/// and energy model as [`simulate_serving`] (the `serving` field is
/// bit-identical to the analytic-only run of the same config), with every
/// instance additionally executing its dequeued batches through real
/// stacked `vdp_batch` tiles on a prepared model copy — the fallback copy
/// for degraded batches. Equivalent to
/// `Fleet::new_functional(config, model, workload).into_functional_report()`.
///
/// Request `r` serves `workload.samples[r % samples.len()]` under noise
/// key `r`, so every *response's* prediction is a pure function of the
/// workload and the request's tier — independent of fleet size, batch
/// packing, arrival ordering and `workers` (property-tested in
/// `tests/functional_serving.rs`). Which requests get shed or degraded
/// is decided by the deterministic event simulation, so the whole report
/// is bit-identical across runs and worker counts for a fixed config.
///
/// # Panics
/// Panics on degenerate configurations, an empty sample set, or a
/// [`AdmissionPolicy::Degrade`] policy without `workload.fallback`.
pub fn simulate_serving_functional(
    config: &ServingConfig,
    model: &CnnModel,
    workload: &FunctionalWorkload<'_>,
) -> FunctionalServingReport {
    Fleet::new_functional(config, model, workload).into_functional_report()
}

/// Runs a sweep of serving configurations in parallel on `workers`
/// threads. Each sweep point is an independent simulation with its own
/// event queue and seed, so the result vector is bit-identical for every
/// worker count (property-tested in `tests/determinism.rs`).
pub fn sweep(configs: Vec<ServingConfig>, model: &CnnModel, workers: usize) -> Vec<ServingReport> {
    parallel_map_with(configs, workers, |c| simulate_serving(&c, model))
}

/// Sweeps the offered (open-loop Poisson) load across the saturation
/// knee under `base`'s fleet shape and admission policy, running the
/// **functional** fleet at every point so the curve carries accuracy as
/// well as goodput, drop rate and tail latency. Points are independent
/// simulations parallelized over `workers` threads; the result is
/// bit-identical for every worker count.
///
/// `base.arrivals` and `base.seed` are kept except that the arrival rate
/// is overridden per point ([`ServingConfig::with_poisson`]), so pass the
/// Poisson seed in `base.seed`.
pub fn overload_sweep(
    base: &ServingConfig,
    model: &CnnModel,
    workload: &FunctionalWorkload<'_>,
    offered_fps: &[f64],
    workers: usize,
) -> Vec<OverloadPoint> {
    parallel_map_with(offered_fps.to_vec(), workers, |rate| OverloadPoint {
        offered_fps: rate,
        report: simulate_serving_functional(&base.clone().with_poisson(rate), model, workload),
    })
}

/// One point of a chaos sweep: a stochastic fault rate and what the
/// fleet made of it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ChaosPoint {
    /// Mean time between failures per instance at this point.
    pub mtbf: sconna_sim::time::SimTime,
    /// The serving report under that failure stream, with
    /// [`ServingReport::availability`] carrying incidents, recoveries,
    /// measured MTTR and retry/hedge counters.
    pub report: ServingReport,
}

/// Sweeps the per-instance fault rate (MTBF) under `base`'s fleet shape,
/// admission, supervision and retry policies: each point materializes
/// `process` at that MTBF over `horizon` ([`FailureProcess::materialize`])
/// and runs one fleet simulation against the resulting plan. Points are
/// independent simulations parallelized over `workers` threads; every
/// point is a pure function of `(base, model, process, mtbf, horizon)`,
/// so the curve is bit-identical for every worker count
/// (asserted in the `chaos` bench and property-tested in
/// `tests/scenarios.rs`).
///
/// Run it twice — with and without
/// [`ServingConfig::with_supervisor`] — to measure what supervised
/// restarts buy: the unsupervised fleet loses instances permanently
/// (when `process.mttr` is `None`) and strands its tail, while the
/// supervised fleet heals at the cost of backoff plus the accelerator's
/// reload time.
pub fn chaos_sweep(
    base: &ServingConfig,
    model: &CnnModel,
    process: &FailureProcess,
    mtbfs: &[sconna_sim::time::SimTime],
    horizon: sconna_sim::time::SimTime,
    workers: usize,
) -> Vec<ChaosPoint> {
    parallel_map_with(mtbfs.to_vec(), workers, |mtbf| {
        let mut p = *process;
        p.mtbf = mtbf;
        let plan = p.materialize(base.instances, horizon);
        ChaosPoint {
            mtbf,
            report: Fleet::new(base, model).with_faults(&plan).into_report(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SconnaEngine;
    use crate::organization::AcceleratorConfig;
    use crate::perf::analyze_layer_batched;
    use sconna_sim::time::SimTime;
    use sconna_tensor::dataset::Sample;
    use sconna_tensor::layers::{MaxPool2d, QConv2d, QFc};
    use sconna_tensor::models::{googlenet, shufflenet_v2};
    use sconna_tensor::network::{QLayer, QuantizedNetwork};
    use sconna_tensor::quant::{ActivationQuant, Requant, WeightQuant};
    use sconna_tensor::Tensor;

    fn small_closed(instances: usize, max_batch: usize, requests: usize) -> ServingConfig {
        ServingConfig::saturation(AcceleratorConfig::sconna(), instances, max_batch, requests)
    }

    /// A hand-built quantized CNN (no training) plus a labelled request
    /// population for functional-serving tests.
    fn tiny_workload() -> (QuantizedNetwork, Vec<Sample>) {
        let aq = ActivationQuant {
            scale: 1.0 / 255.0,
            bits: 8,
        };
        let wq = WeightQuant {
            scale: 1.0 / 127.0,
            bits: 8,
        };
        let net = QuantizedNetwork {
            input_quant: aq,
            layers: vec![
                QLayer::Conv(QConv2d {
                    name: "c1".into(),
                    weights: Tensor::from_fn(&[4, 1, 3, 3], |i| ((i * 29) % 255) as i32 - 127),
                    bias: vec![0.0; 4],
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    requant: Requant::new(aq, wq, aq),
                }),
                QLayer::MaxPool(MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                }),
                QLayer::GlobalAvgPool,
                QLayer::Fc(QFc {
                    name: "fc".into(),
                    weights: Tensor::from_fn(&[3, 4], |i| ((i * 67) % 255) as i32 - 127),
                    bias: vec![0.0; 3],
                    dequant: aq.scale * wq.scale,
                }),
            ],
        };
        let samples: Vec<Sample> = (0..6)
            .map(|s| Sample {
                image: Tensor::from_fn(&[1, 8, 8], |i| ((s * 37 + i) % 256) as f32 / 255.0),
                label: s % 3,
            })
            .collect();
        (net, samples)
    }

    #[test]
    fn functional_report_matches_offline_per_request_inference() {
        // Every prediction must equal the offline forward of the same
        // sample under the same request-id key — the fleet adds queueing,
        // never computation.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(5);
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 1,
        };
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 13);
        let r = simulate_serving_functional(&cfg, &model, &workload);
        assert_eq!(r.predictions.len(), 13);
        assert!(r.outcomes.iter().all(|&o| o == RequestOutcome::Served));
        for (id, &pred) in r.predictions.iter().enumerate() {
            let s = &samples[id % samples.len()];
            let offline =
                sconna_tensor::layers::argmax(&net.forward_keyed(&s.image, &engine, id as u64));
            assert_eq!(pred, offline, "request {id}");
        }
        let correct = r
            .predictions
            .iter()
            .enumerate()
            .filter(|&(id, &p)| p == samples[id % samples.len()].label)
            .count() as u64;
        assert_eq!(r.correct, correct);
        assert_eq!(r.accuracy_under_load, correct as f64 / 13.0);
        assert_eq!(r.accuracy_offered, r.accuracy_under_load);
    }

    #[test]
    fn functional_timing_is_identical_to_analytic_run() {
        // Executing real inference must not perturb the queueing model:
        // the serving half of the functional report is bit-identical to
        // the analytic-only simulation of the same config.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(5);
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 2,
        };
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 16);
        let functional = simulate_serving_functional(&cfg, &model, &workload);
        let analytic = simulate_serving(&cfg, &model);
        assert_eq!(format!("{:?}", functional.serving), format!("{analytic:?}"));
    }

    #[test]
    fn accuracy_under_load_is_fleet_and_schedule_invariant() {
        // Predictions are keyed per request id, so fleet size, batch
        // limit, arrival process and instance workers must not move a
        // single prediction bit.
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(9);
        let model = shufflenet_v2();
        let requests = 17;
        let baseline = {
            let workload = FunctionalWorkload {
                net: &net,
                fallback: None,
                fallback_engine: None,
                samples: &samples,
                engine: &engine,
                workers: 1,
            };
            simulate_serving_functional(&small_closed(1, 1, requests), &model, &workload)
        };
        for (instances, max_batch, workers) in [(1usize, 4usize, 2usize), (2, 4, 1), (4, 2, 8)] {
            let workload = FunctionalWorkload {
                net: &net,
                fallback: None,
                fallback_engine: None,
                samples: &samples,
                engine: &engine,
                workers,
            };
            let r = simulate_serving_functional(
                &small_closed(instances, max_batch, requests),
                &model,
                &workload,
            );
            assert_eq!(
                r.predictions, baseline.predictions,
                "{instances}x{max_batch} w{workers}"
            );
            assert_eq!(r.accuracy_under_load, baseline.accuracy_under_load);
        }
        // Open-loop arrivals reorder timing but not request identity.
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 2,
        };
        let poisson = simulate_serving_functional(
            &ServingConfig {
                arrivals: ArrivalProcess::Poisson { rate_fps: 800.0 },
                seed: 3,
                ..small_closed(2, 4, requests)
            },
            &model,
            &workload,
        );
        assert_eq!(poisson.predictions, baseline.predictions);
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 37), &model);
        assert_eq!(r.completed, 37);
        assert_eq!(r.offered, 37);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.degraded, 0);
        assert_eq!(r.latency.count, 37);
        assert!(r.batches >= 37u64.div_ceil(4));
        assert!(r.mean_batch_fill >= 1.0 && r.mean_batch_fill <= 4.0);
    }

    #[test]
    fn unbounded_drop_newest_is_bit_identical_to_pr2_scheduler() {
        // Regression pin: the overload machinery must not move a bit of
        // the unbounded scheduler's behavior. Expected values captured
        // from the pre-overload implementation (PR 4) on these exact
        // configs.
        let model = shufflenet_v2();
        let closed = simulate_serving(&small_closed(2, 4, 37), &model);
        assert_eq!(closed.completed, 37);
        assert_eq!(closed.batches, 10);
        assert!((closed.mean_batch_fill - 3.7).abs() < 1e-12);
        assert_eq!(closed.makespan, SimTime::from_ps(385_286_830));
        assert!((closed.fps - 96_032.350_755_409_95).abs() < 1e-6);
        assert_eq!(closed.latency.p50, SimTime::from_ps(154_114_732));
        assert_eq!(closed.latency.p99, SimTime::from_ps(154_114_732));
        assert_eq!(closed.latency.mean, SimTime::from_ps(135_982_316));
        assert_eq!(closed.utilization[0], 1.0);
        assert!((closed.utilization[1] - 0.858_701_422_522_020_9).abs() < 1e-12);
        assert!((closed.energy_j - 0.236_006_470_388_707_2).abs() < 1e-12);

        let poisson = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess::Poisson { rate_fps: 2_000.0 },
                seed: 17,
                ..small_closed(2, 4, 24)
            },
            &model,
        );
        assert_eq!(poisson.completed, 24);
        assert_eq!(poisson.batches, 22);
        assert_eq!(poisson.makespan, SimTime::from_ps(12_234_353_686));
        assert_eq!(poisson.latency.p50, SimTime::from_ps(122_616_885));
        assert_eq!(poisson.latency.max, SimTime::from_ps(140_701_453));
        assert!((poisson.energy_j - 2.696_219_434_090_293).abs() < 1e-12);

        // A huge finite cap behaves exactly like the unbounded queue.
        let capped = simulate_serving(
            &ServingConfig {
                queue_cap: Some(1_000_000),
                ..small_closed(2, 4, 37)
            },
            &model,
        );
        assert_eq!(format!("{capped:?}"), format!("{closed:?}"));
    }

    #[test]
    fn drop_newest_bounds_the_queue_and_sheds_overflow() {
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 64);
        let capacity = base.estimated_capacity_fps(&model);
        let cfg = ServingConfig {
            queue_cap: Some(2),
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 3.0 * capacity,
            },
            seed: 5,
            ..base
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.offered, 64);
        assert_eq!(r.completed + r.dropped, 64);
        assert!(
            r.dropped > 0,
            "3x overload against a 2-deep queue must shed"
        );
        assert_eq!(r.shed.newest, r.dropped);
        assert_eq!(r.shed.oldest + r.shed.deadline + r.shed.degraded, 0);
        assert!((r.drop_rate - r.dropped as f64 / 64.0).abs() < 1e-12);
        // The queue bound holds over the whole series.
        assert!(
            r.queue_depth.max_depth() <= 2,
            "depth {}",
            r.queue_depth.max_depth()
        );
        let end = r
            .makespan
            .max(r.queue_depth.last_time().expect("series non-empty"));
        assert!(r.queue_depth.mean_depth(end) <= 2.0);
        // Bounded queue => bounded wait: every response saw at most a
        // full queue ahead of it plus its own batch (+ window flushes).
        assert!(r.goodput_fps >= r.fps);
    }

    #[test]
    fn drop_oldest_sheds_the_head_of_the_queue() {
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 48);
        let capacity = base.estimated_capacity_fps(&model);
        let cfg = ServingConfig {
            queue_cap: Some(1),
            admission: AdmissionPolicy::DropOldest,
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 4.0 * capacity,
            },
            seed: 9,
            ..base
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed + r.dropped, 48);
        assert!(
            r.shed.oldest > 0,
            "4x overload against a 1-deep queue must evict"
        );
        assert_eq!(r.shed.oldest, r.dropped);
        assert_eq!(r.shed.newest, 0);
        // Eviction keeps the freshest traffic: the newest request always
        // survives admission, so the very last request is always served.
        assert!(r.queue_depth.max_depth() <= 1);
    }

    #[test]
    fn deadline_policy_sheds_stale_requests_and_bounds_tail_latency() {
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 64);
        let capacity = base.estimated_capacity_fps(&model);
        // SLO: two batch services of queue wait.
        let service = SimTime::from_secs_f64(2.0 * base.max_batch as f64 / capacity);
        let over = ServingConfig {
            admission: AdmissionPolicy::Deadline { slo: service },
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 3.0 * capacity,
            },
            seed: 3,
            ..base.clone()
        };
        let r = simulate_serving(&over, &model);
        assert_eq!(r.completed + r.dropped, 64);
        assert!(r.shed.deadline > 0, "3x overload must blow the SLO");
        // Served requests waited at most `slo` in queue, so their
        // end-to-end latency is bounded by slo + one batch service + one
        // flush window.
        let bound =
            service + SimTime::from_secs_f64(base.max_batch as f64 / capacity) + base.batch_window;
        assert!(
            r.latency.max <= bound,
            "deadline shedding must bound the tail: {} > {}",
            r.latency.max,
            bound
        );
    }

    #[test]
    fn degrade_policy_trades_accuracy_for_availability() {
        let (net, samples) = tiny_workload();
        let fallback = net.with_weight_bits(2);
        let engine = SconnaEngine::paper_default(11);
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 48);
        let capacity = base.estimated_capacity_fps(&model);
        let cfg = ServingConfig {
            queue_cap: Some(1),
            admission: AdmissionPolicy::Degrade { fallback_bits: 4 },
            arrivals: ArrivalProcess::Poisson {
                rate_fps: 3.0 * capacity,
            },
            seed: 7,
            ..base
        };
        let workload = FunctionalWorkload {
            net: &net,
            fallback: Some(&fallback),
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 1,
        };
        let r = simulate_serving_functional(&cfg, &model, &workload);
        // Availability: nobody is dropped.
        assert_eq!(r.serving.dropped, 0);
        assert_eq!(r.serving.completed + r.serving.degraded, 48);
        assert!(r.serving.degraded > 0, "3x overload must degrade");
        assert_eq!(r.serving.shed.degraded, r.serving.degraded);
        assert!(r.serving.goodput_fps > r.serving.fps);
        // Every degraded response matches the offline fallback forward;
        // every full response the offline primary forward.
        for (id, (&pred, &outcome)) in r.predictions.iter().zip(&r.outcomes).enumerate() {
            let s = &samples[id % samples.len()];
            let reference = match outcome {
                RequestOutcome::Served => &net,
                RequestOutcome::Degraded => &fallback,
                _ => panic!("no drops under Degrade"),
            };
            let offline = sconna_tensor::layers::argmax(
                &reference.forward_keyed(&s.image, &engine, id as u64),
            );
            assert_eq!(pred, offline, "request {id} ({outcome:?})");
        }
        // Accuracy accounting: offered == admitted here (no drops).
        assert_eq!(r.accuracy_under_load, r.accuracy_offered);
    }

    #[test]
    fn degraded_batches_run_faster_than_full_fidelity_ones() {
        // The whole point of degrading: a 4-bit stream is 16x shorter, so
        // under identical overload the Degrade fleet finishes far sooner
        // than a fleet that must serve everyone at full fidelity.
        let model = shufflenet_v2();
        let base = small_closed(1, 2, 48);
        let capacity = base.estimated_capacity_fps(&model);
        let over = ArrivalProcess::Poisson {
            rate_fps: 4.0 * capacity,
        };
        let full = simulate_serving(
            &ServingConfig {
                arrivals: over.clone(),
                seed: 2,
                ..base.clone()
            },
            &model,
        );
        let degrade = simulate_serving(
            &ServingConfig {
                queue_cap: Some(1),
                admission: AdmissionPolicy::Degrade { fallback_bits: 4 },
                arrivals: over,
                seed: 2,
                ..base
            },
            &model,
        );
        assert!(degrade.degraded > 0);
        assert!(
            degrade.makespan < full.makespan,
            "degraded fleet {} vs full-fidelity {}",
            degrade.makespan,
            full.makespan
        );
    }

    #[test]
    fn trace_arrivals_are_insertion_order_invariant() {
        // A tie-free trace assigns request ids in time order, so any
        // permutation of the times vector simulates identically.
        let model = shufflenet_v2();
        let times: Vec<SimTime> = (0..24u64)
            .map(|i| SimTime::from_ps((i * 37 + 11) * 1_000_000 % 300_000_000 + i))
            .collect();
        let mut shuffled = times.clone();
        shuffled.reverse();
        shuffled.rotate_left(7);
        let run = |ts: Vec<SimTime>| {
            simulate_serving(
                &ServingConfig {
                    queue_cap: Some(1),
                    admission: AdmissionPolicy::DropOldest,
                    arrivals: ArrivalProcess::Trace { times: ts },
                    ..small_closed(1, 2, 24)
                },
                &model,
            )
        };
        assert_eq!(format!("{:?}", run(times)), format!("{:?}", run(shuffled)));
    }

    #[test]
    #[should_panic(expected = "trace length must equal")]
    fn trace_length_mismatch_panics() {
        let model = shufflenet_v2();
        let _ = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess::Trace {
                    times: vec![SimTime::ZERO; 3],
                },
                ..small_closed(1, 2, 4)
            },
            &model,
        );
    }

    #[test]
    fn saturation_measures_the_closed_form_capacity_estimate() {
        // The knee pin, closed-loop half: the saturation workload's
        // measured FPS converges on `estimated_capacity_fps` (short runs
        // sit slightly below it — window flushes and the final partial
        // batch waste slots). The open-loop half lives in
        // tests/overload.rs next to the sweep itself.
        let model = shufflenet_v2();
        for (instances, max_batch) in [(1usize, 4usize), (2, 8)] {
            let cfg = small_closed(instances, max_batch, 96);
            let estimate = cfg.estimated_capacity_fps(&model);
            let measured = simulate_serving(&cfg, &model).fps;
            let ratio = measured / estimate;
            assert!(
                (0.85..=1.02).contains(&ratio),
                "{instances}x{max_batch}: measured {measured:.0} vs estimate {estimate:.0} (ratio {ratio:.3})"
            );
        }
    }

    #[test]
    fn fps_scales_with_instance_count() {
        // The acceptance bar: ≥ 1.8× served FPS from 1 → 2 instances on
        // GoogleNet under saturation.
        let model = googlenet();
        let one = simulate_serving(&small_closed(1, 8, 64), &model);
        let two = simulate_serving(&small_closed(2, 8, 64), &model);
        let scaling = two.fps / one.fps;
        assert!(
            scaling >= 1.8,
            "1→2 instance scaling {scaling} (fps {} → {})",
            one.fps,
            two.fps
        );
    }

    #[test]
    fn batching_lowers_energy_per_inference() {
        // Pipeline fill and weight traffic amortize across a batch while
        // static power integrates over a shorter makespan. 64 requests
        // pack both sweeps tail-free (64 = 2·32·1 = 2·2·16), so the
        // comparison isolates amortization from batch-quantization idle.
        let model = googlenet();
        let b1 = simulate_serving(&small_closed(2, 1, 64), &model);
        let b16 = simulate_serving(&small_closed(2, 16, 64), &model);
        assert!(
            b16.energy_per_inference_j < b1.energy_per_inference_j,
            "batch-16 {} J vs batch-1 {} J",
            b16.energy_per_inference_j,
            b1.energy_per_inference_j
        );
        assert!(b16.fps >= b1.fps, "batching must not lose throughput");
    }

    #[test]
    fn saturated_fleet_is_highly_utilized() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 64), &model);
        assert_eq!(r.utilization.len(), 2);
        for (i, u) in r.utilization.iter().enumerate() {
            assert!(*u > 0.8, "instance {i} utilization {u}");
        }
    }

    #[test]
    fn latency_percentiles_are_ordered_and_cover_service_time() {
        let model = shufflenet_v2();
        let cfg = small_closed(2, 4, 64);
        let r = simulate_serving(&cfg, &model);
        assert!(r.latency.p50 <= r.latency.p95);
        assert!(r.latency.p95 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.max);
        // Every request at least pays one batch service time.
        let service = model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
            acc + analyze_layer_batched(&cfg.accelerator, w, 1).total
        });
        assert!(r.latency.p50 >= service);
    }

    #[test]
    fn poisson_below_capacity_keeps_queue_short() {
        let model = shufflenet_v2();
        // Closed-loop saturation first, to find capacity.
        let sat = simulate_serving(&small_closed(1, 4, 48), &model);
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson {
                rate_fps: sat.fps * 0.3,
            },
            seed: 7,
            ..small_closed(1, 4, 48)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 48);
        // At 30 % load the p50 wait is bounded by the batch window plus
        // a couple of service times.
        let bound = cfg.batch_window + SimTime::from_ps(3 * sat.latency.p50.as_ps());
        assert!(
            r.latency.p50 <= bound,
            "p50 {} vs bound {}",
            r.latency.p50,
            bound
        );
        // Mean utilization is moderate.
        let mean_util: f64 = r.utilization.iter().sum::<f64>() / r.utilization.len() as f64;
        assert!(mean_util < 0.9, "utilization {mean_util} at 30% load");
    }

    #[test]
    fn poisson_is_seed_deterministic_and_seed_sensitive() {
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson { rate_fps: 500.0 },
            seed: 11,
            ..small_closed(1, 4, 32)
        };
        let a = simulate_serving(&cfg, &model);
        let b = simulate_serving(&cfg, &model);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = simulate_serving(
            &ServingConfig {
                seed: 12,
                ..cfg.clone()
            },
            &model,
        );
        assert_ne!(
            a.makespan, c.makespan,
            "different seeds must shift the arrival process"
        );
    }

    #[test]
    fn partial_batches_flush_after_window() {
        // 3 requests, max_batch 8: the only way they complete is a
        // window flush; fill must reflect the partial batch.
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 3 },
            ..small_closed(1, 8, 3)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 3);
        assert_eq!(r.batches, 1);
        assert!((r.mean_batch_fill - 3.0).abs() < 1e-12);
        // Latency includes the flush wait.
        assert!(r.latency.p50 >= cfg.batch_window);
    }

    #[test]
    fn single_request_single_instance() {
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 1 },
            ..small_closed(1, 1, 1)
        };
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 1);
        assert_eq!(r.batches, 1);
        // A lone request with max_batch 1 dispatches immediately: its
        // latency is exactly the batch-1 service time, which equals the
        // single-inference makespan.
        let single = crate::perf::simulate_inference(&cfg.accelerator, &model);
        assert_eq!(r.latency.max, single.makespan);
    }

    #[test]
    fn queue_depth_series_tracks_the_backlog() {
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 37), &model);
        // Saturation backlog: 2·instances·max_batch clients against
        // 2·max_batch in-flight slots leaves 8 waiting at peak.
        assert!(!r.queue_depth.is_empty());
        assert!(
            r.queue_depth.max_depth() >= 4,
            "depth {}",
            r.queue_depth.max_depth()
        );
        // The queue drains by the end.
        assert_eq!(r.queue_depth.last_depth(), Some(0));
        // The series is time-ordered by construction; mean is finite.
        let mean = r.queue_depth.mean_depth(r.makespan);
        assert!(mean > 0.0 && mean <= r.queue_depth.max_depth() as f64);
    }

    #[test]
    fn sweep_covers_every_config_in_order() {
        let model = shufflenet_v2();
        let configs: Vec<ServingConfig> = [1usize, 2, 3]
            .into_iter()
            .map(|i| small_closed(i, 2, 12))
            .collect();
        let reports = sweep(configs, &model, 2);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.instances, i + 1);
            assert_eq!(r.completed, 12);
        }
    }

    /// A zero-jitter warm supervisor whose restart timing is exactly
    /// predictable in tests: kill at `t` ⇒ back up at `t + 10 µs`.
    fn exact_supervisor(seed: u64) -> Supervisor {
        Supervisor {
            jitter: 0.0,
            ..Supervisor::new(seed)
        }
    }

    #[test]
    fn redundant_faults_do_not_move_the_accounting() {
        // The pinned edge-case contract: a kill of an already-dead
        // instance, a restart of a live instance and a stall of a dead
        // instance are semantic no-ops — every terminal accounting field
        // is unchanged. (The observability series still *note* the
        // boundary, so queue-depth sample counts may differ; that is the
        // documented exception.)
        let model = shufflenet_v2();
        let t = SimTime::from_ns;
        let base_plan = FaultPlan::new().kill(t(50_000), 0).restart(t(150_000), 0);
        let noisy_plan = base_plan
            .clone()
            .kill(t(80_000), 0) // kill of dead: no-op
            .stall(t(90_000), 0, t(5_000)) // stall of dead: no-op
            .restart(t(60_000), 1); // restart of live: no-op
        let run = |plan: &FaultPlan| {
            Fleet::new(&small_closed(2, 4, 24), &model)
                .with_faults(plan)
                .into_report()
        };
        let a = run(&base_plan);
        let b = run(&noisy_plan);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.availability, b.availability);
        // One real kill, one real recovery in both runs.
        assert_eq!(a.availability.incidents, 1);
        assert_eq!(a.availability.recoveries, 1);
    }

    #[test]
    fn supervisor_heals_a_killed_instance() {
        let model = shufflenet_v2();
        let plan = FaultPlan::new().kill(SimTime::from_ns(50_000), 0);
        let cfg = small_closed(2, 4, 37).with_supervisor(exact_supervisor(3));
        let r = Fleet::new(&cfg, &model).with_faults(&plan).into_report();
        // Nothing is lost: the aborted batch retried, the instance healed.
        assert_eq!(r.completed, 37);
        assert_eq!(r.dropped, 0);
        let a = &r.availability;
        assert_eq!(a.incidents, 1);
        assert_eq!(a.restarts_issued, 1);
        assert_eq!(a.recoveries, 1);
        assert_eq!(a.benched, 0);
        assert_eq!(a.active_instances, 2);
        // Warm SCONNA restart: MTTR is exactly the 10 µs backoff (the
        // reload itself is free — zero DKV reprogramming).
        assert_eq!(a.mean_mttr, SimTime::from_ns(10_000));
        assert!(a.retries > 0, "the aborted batch must re-admit");
        assert_eq!(a.max_attempts_seen, 2);
        assert!(a.downtime[0] >= a.mean_mttr);
        assert_eq!(a.downtime[1], SimTime::ZERO);
        // Without the supervisor the same kill is permanent: the fleet
        // limps on one instance and the report says so.
        let unsup = Fleet::new(&cfg.clone().without_supervisor(), &model)
            .with_faults(&plan)
            .into_report();
        assert_eq!(unsup.availability.recoveries, 0);
        assert_eq!(unsup.availability.active_instances, 1);
        assert!(unsup.makespan > r.makespan, "healing must help the tail");
    }

    #[test]
    fn sconna_warm_restart_recovers_faster_than_analog() {
        // The paper's reload advantage as availability: with identical
        // warm-restart supervision, SCONNA's measured MTTR is the bare
        // backoff while the analog MAM baseline pays DKV reprogramming
        // on top.
        let model = shufflenet_v2();
        let plan = FaultPlan::new().kill(SimTime::from_ns(50_000), 0);
        let sup = exact_supervisor(3);
        let run = |accel| {
            let cfg = ServingConfig::saturation(accel, 2, 4, 37).with_supervisor(sup);
            Fleet::new(&cfg, &model).with_faults(&plan).into_report()
        };
        let sconna = run(AcceleratorConfig::sconna());
        let mam = run(AcceleratorConfig::mam());
        assert_eq!(sconna.availability.recoveries, 1);
        assert_eq!(mam.availability.recoveries, 1);
        assert!(
            sconna.availability.mean_mttr < mam.availability.mean_mttr,
            "SCONNA MTTR {} must beat MAM {}",
            sconna.availability.mean_mttr,
            mam.availability.mean_mttr
        );
    }

    #[test]
    fn retry_ceiling_sheds_aborted_requests() {
        // max_attempts = 1 means no second chances: every request aborted
        // by the kill is shed as ShedRetryBudget instead of re-admitted.
        let model = shufflenet_v2();
        let plan = FaultPlan::new()
            .kill(SimTime::from_ns(50_000), 0)
            .restart(SimTime::from_ns(150_000), 0);
        let cfg = small_closed(2, 4, 37).with_retry(RetryPolicy::default().with_max_attempts(1));
        let r = Fleet::new(&cfg, &model).with_faults(&plan).into_report();
        assert!(r.shed.retry > 0, "the aborted batch must shed");
        assert!(r.shed.retry <= 4, "at most one batch was in flight");
        assert_eq!(r.dropped, r.shed.retry);
        assert_eq!(r.completed + r.dropped, 37);
        assert_eq!(r.availability.retries, 0);
        // Same chaos under an exhausted global budget sheds identically.
        let budget = small_closed(2, 4, 37).with_retry(RetryPolicy::default().with_retry_budget(0));
        let b = Fleet::new(&budget, &model).with_faults(&plan).into_report();
        assert_eq!(b.shed.retry, r.shed.retry);
        // The default policy re-admits everyone.
        let free = Fleet::new(&small_closed(2, 4, 37), &model)
            .with_faults(&plan)
            .into_report();
        assert_eq!(free.dropped, 0);
        assert!(free.availability.retries > 0);
    }

    #[test]
    fn hedged_batch_is_cancelled_when_the_primary_wins() {
        // 3 requests flush as one batch onto instance 0 while instance 1
        // idles; the hedge duplicates it 5 µs later, loses the race, and
        // is cancelled. Nothing is double-counted.
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 3 },
            ..small_closed(2, 8, 3)
        }
        .with_retry(RetryPolicy::default().with_hedge_after(SimTime::from_ns(5_000)));
        let r = simulate_serving(&cfg, &model);
        assert_eq!(r.completed, 3);
        assert_eq!(r.batches, 1, "hedges are duplicates, not batches");
        let a = &r.availability;
        assert_eq!(a.hedges_dispatched, 1);
        assert_eq!(a.hedges_cancelled, 1);
        assert_eq!(a.hedges_promoted, 0);
        assert_eq!(a.retries, 0);
        // The duplicate dispatch costs real energy.
        let base = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess::ClosedLoop { clients: 3 },
                ..small_closed(2, 8, 3)
            },
            &model,
        );
        assert_eq!(base.availability.hedges_dispatched, 0);
        assert!(r.energy_j > base.energy_j, "hedging must cost energy");
        assert_eq!(r.completed, base.completed);
        assert_eq!(r.makespan, base.makespan, "losing hedge changes nothing");
    }

    #[test]
    fn kill_of_hedged_primary_promotes_the_hedge() {
        // The insurance pays out: the primary dies mid-flight, but its
        // hedge is already running on the other instance — the requests
        // complete there with no re-queue and no retry.
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::ClosedLoop { clients: 3 },
            ..small_closed(2, 8, 3)
        }
        .with_retry(RetryPolicy::default().with_hedge_after(SimTime::from_ns(5_000)));
        // Batch flushes at the 100 µs window onto instance 0; hedge at
        // 105 µs on instance 1; kill the primary at 110 µs.
        let plan = FaultPlan::new().kill(SimTime::from_ns(110_000), 0);
        let r = Fleet::new(&cfg, &model).with_faults(&plan).into_report();
        assert_eq!(r.completed, 3);
        assert_eq!(r.dropped, 0);
        let a = &r.availability;
        assert_eq!(a.hedges_dispatched, 1);
        assert_eq!(a.hedges_promoted, 1);
        assert_eq!(a.hedges_cancelled, 0);
        assert_eq!(a.retries, 0, "promotion is not a retry");
        assert_eq!(a.incidents, 1);
    }

    #[test]
    fn crash_loop_benches_a_flapping_instance() {
        // Two kills inside the window bench instance 0 permanently; the
        // survivor drains the queue and the report re-estimates capacity.
        let model = shufflenet_v2();
        let sup = Supervisor {
            crash_loop_limit: 2,
            crash_loop_window: SimTime::from_ns(10_000_000),
            ..exact_supervisor(7)
        };
        let plan = FaultPlan::new()
            .kill(SimTime::from_ns(50_000), 0)
            .kill(SimTime::from_ns(150_000), 0);
        let cfg = small_closed(2, 4, 37).with_supervisor(sup);
        let r = Fleet::new(&cfg, &model).with_faults(&plan).into_report();
        assert_eq!(r.completed, 37, "the survivor serves everyone");
        let a = &r.availability;
        assert_eq!(a.incidents, 2);
        assert_eq!(a.restarts_issued, 1, "the second kill benches instead");
        assert_eq!(a.recoveries, 1);
        assert_eq!(a.benched, 1);
        assert_eq!(a.active_instances, 1);
        // Benched downtime accrues to the end of the run.
        assert!(a.downtime[0] > SimTime::from_ns(100_000));
        // A scripted restart is the operator override: it revives even a
        // benched instance.
        let revived = Fleet::new(&cfg, &model)
            .with_faults(&plan.clone().restart(SimTime::from_ns(250_000), 0))
            .into_report();
        assert_eq!(revived.availability.benched, 0);
        assert_eq!(revived.availability.active_instances, 2);
        assert_eq!(revived.availability.recoveries, 2);
    }

    #[test]
    fn supervisor_restart_boundaries_are_sampled() {
        // The observability satellite: queue depth and the goodput series
        // both take a sample at the supervised-restart boundary (60 µs =
        // kill at 50 µs + exactly 10 µs zero-jitter backoff), so healing
        // discontinuities are visible even when the depth did not move.
        let model = shufflenet_v2();
        let plan = FaultPlan::new().kill(SimTime::from_ns(50_000), 0);
        let window = SimTime::from_ns(20_000);
        let cfg = small_closed(2, 4, 37)
            .with_supervisor(exact_supervisor(3))
            .with_goodput_window(window);
        let r = Fleet::new(&cfg, &model).with_faults(&plan).into_report();
        let boundary = SimTime::from_ns(60_000);
        assert!(
            r.queue_depth.samples().iter().any(|&(t, _)| t == boundary),
            "queue depth must sample the restart boundary"
        );
        let g = r.goodput_series.as_ref().expect("series enabled");
        assert_eq!(g.window(), window);
        assert!(
            g.len() > (boundary.as_ps() / window.as_ps()) as usize,
            "goodput series must extend past the restart boundary"
        );
        assert_eq!(g.total(), r.completed + r.degraded);
        // Off by default: no series unless the config asks.
        let off = Fleet::new(&small_closed(2, 4, 37), &model).into_report();
        assert!(off.goodput_series.is_none());
    }

    #[test]
    fn chaos_sweep_is_worker_count_invariant() {
        let model = shufflenet_v2();
        let base = small_closed(2, 4, 24).with_supervisor(exact_supervisor(5));
        let process = FailureProcess::new(11, SimTime::from_ns(200_000));
        let mtbfs = [SimTime::from_ns(200_000), SimTime::from_ns(800_000)];
        let horizon = SimTime::from_ns(2_000_000);
        let baseline = chaos_sweep(&base, &model, &process, &mtbfs, horizon, 1);
        assert_eq!(baseline.len(), 2);
        for workers in [2usize, 8] {
            let run = chaos_sweep(&base, &model, &process, &mtbfs, horizon, workers);
            assert_eq!(
                format!("{run:?}"),
                format!("{baseline:?}"),
                "{workers} workers"
            );
        }
        // Every point conserves requests.
        for p in &baseline {
            assert_eq!(
                p.report.completed + p.report.dropped + p.report.degraded,
                24
            );
        }
        // The faster fault rate hurts at least as much.
        assert!(
            baseline[0].report.availability.incidents >= baseline[1].report.availability.incidents
        );
    }

    #[test]
    fn overload_sweep_is_worker_count_invariant() {
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(3);
        let model = shufflenet_v2();
        let base = ServingConfig {
            queue_cap: Some(2),
            seed: 1,
            ..small_closed(1, 2, 24)
        };
        let capacity = base.estimated_capacity_fps(&model);
        let rates = [0.5 * capacity, 1.5 * capacity];
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 1,
        };
        let baseline = overload_sweep(&base, &model, &workload, &rates, 1);
        assert_eq!(baseline.len(), 2);
        for workers in [2usize, 8] {
            let run = overload_sweep(&base, &model, &workload, &rates, workers);
            assert_eq!(
                format!("{run:?}"),
                format!("{baseline:?}"),
                "{workers} workers"
            );
        }
        // Past the knee the bounded queue sheds; below it nothing does.
        assert_eq!(baseline[0].report.serving.dropped, 0);
        assert!(baseline[1].report.serving.dropped > 0);
    }

    #[test]
    fn single_tenant_report_carries_one_default_row_matching_fleet_totals() {
        // The legacy path *is* a one-tenant roster: its report grows
        // exactly one TenantUsage row that restates the fleet totals,
        // with zero model swaps (every instance is resident from
        // bring-up).
        let model = shufflenet_v2();
        let r = simulate_serving(&small_closed(2, 4, 37), &model);
        assert_eq!(r.tenants.len(), 1);
        let t = &r.tenants[0];
        assert_eq!(t.name, "default");
        assert_eq!(t.model, r.model);
        assert_eq!(t.offered, r.offered);
        assert_eq!(t.completed, r.completed);
        assert_eq!(t.dropped, r.dropped);
        assert_eq!(t.degraded, r.degraded);
        assert_eq!(t.latency, r.latency);
        assert_eq!(t.batches, r.batches);
        assert_eq!(t.mean_batch_fill, r.mean_batch_fill);
        assert_eq!(t.served_fps, r.fps);
        assert_eq!(t.goodput_fps, r.goodput_fps);
        assert_eq!(t.model_swaps, 0);
        assert_eq!(t.swap_time, SimTime::ZERO);
    }

    #[test]
    fn explicit_one_tenant_roster_is_bit_identical_to_the_single_tenant_path() {
        // Spelling the default tenant out by hand must not move a bit:
        // same name, model, arrivals and budget → the same report.
        let model = shufflenet_v2();
        let base = small_closed(2, 4, 29);
        let implicit = simulate_serving(&base, &model);
        let spec = TenantSpec::new("default", 0, base.arrivals.clone(), base.requests);
        let explicit = Fleet::new_multi(&base.clone().with_tenants(vec![spec]), &[&model]);
        let explicit = explicit.into_report();
        assert_eq!(format!("{explicit:?}"), format!("{implicit:?}"));
    }

    #[test]
    fn multi_tenant_conservation_holds_per_tenant_at_every_step() {
        // Two co-located tenants on different models under pressure:
        // each tenant's offered == accounted at every step boundary, and
        // the per-tenant snapshot columns sum to the fleet totals.
        let shuffle = shufflenet_v2();
        let goog = googlenet();
        let cfg = ServingConfig {
            queue_cap: Some(2),
            ..small_closed(2, 2, 40)
        }
        .with_tenants(vec![
            TenantSpec::new("a", 0, ArrivalProcess::ClosedLoop { clients: 6 }, 24).with_weight(3.0),
            TenantSpec::new("b", 1, ArrivalProcess::ClosedLoop { clients: 4 }, 16),
        ]);
        let mut fleet = Fleet::new_multi(&cfg, &[&shuffle, &goog]);
        loop {
            let more = fleet.step();
            let snap = fleet.snapshot();
            assert_eq!(snap.accounted(), snap.offered);
            assert_eq!(snap.tenants.len(), 2);
            for ts in &snap.tenants {
                assert_eq!(ts.accounted(), ts.offered);
            }
            let sum = |f: fn(&TenantSnapshot) -> u64| snap.tenants.iter().map(f).sum::<u64>();
            assert_eq!(sum(|t| t.offered), snap.offered);
            assert_eq!(sum(|t| t.completed), snap.completed);
            assert_eq!(sum(|t| t.dropped), snap.dropped);
            assert_eq!(sum(|t| t.degraded), snap.degraded);
            assert_eq!(sum(|t| t.queued), snap.queued);
            assert_eq!(sum(|t| t.in_flight), snap.in_flight);
            if !more {
                break;
            }
        }
        let r = fleet.into_report();
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.model, "ShuffleNet_V2+GoogleNet");
        assert_eq!(r.tenants.iter().map(|t| t.offered).sum::<u64>(), r.offered);
        assert_eq!(
            r.tenants.iter().map(|t| t.completed).sum::<u64>(),
            r.completed
        );
        assert_eq!(r.tenants.iter().map(|t| t.batches).sum::<u64>(), r.batches);
        assert_eq!(
            r.tenants[0].latency.count + r.tenants[1].latency.count,
            r.latency.count
        );
        // Both tenants ran on both instances at some point, so model
        // swaps happened and each cost the swapped-in model's swap time.
        let swaps: u64 = r.tenants.iter().map(|t| t.model_swaps).sum();
        assert!(swaps > 0, "co-located tenants must swap at least once");
        let accel = AcceleratorConfig::sconna();
        for (t, m) in r.tenants.iter().zip([&shuffle, &goog]) {
            let per_swap = crate::perf::model_swap_time(&accel, m);
            assert_eq!(t.swap_time.as_ps(), per_swap.as_ps() * t.model_swaps);
        }
        // Per-tenant energy splits the dynamic ledger: the sum stays
        // below the fleet total (which adds static power over makespan).
        let dyn_sum: f64 = r.tenants.iter().map(|t| t.energy_j).sum();
        assert!(dyn_sum > 0.0 && dyn_sum < r.energy_j);
    }

    #[test]
    fn strict_priority_serves_interactive_ahead_of_batch() {
        // Same model, same load, opposite latency classes: under
        // StrictPriority the Interactive tenant's p99 must beat the
        // Batch tenant's; under SharedFifo the two are symmetric.
        let model = shufflenet_v2();
        let mk = |sched: TenantScheduler| {
            let cfg = ServingConfig {
                queue_cap: Some(4),
                ..small_closed(1, 2, 48)
            }
            .with_tenants(vec![
                TenantSpec::new("fg", 0, ArrivalProcess::ClosedLoop { clients: 4 }, 24)
                    .with_latency_class(LatencyClass::Interactive),
                TenantSpec::new("bg", 0, ArrivalProcess::ClosedLoop { clients: 4 }, 24)
                    .with_latency_class(LatencyClass::Batch),
            ])
            .with_tenant_scheduler(sched);
            Fleet::new_multi(&cfg, &[&model]).into_report()
        };
        let strict = mk(TenantScheduler::StrictPriority);
        assert!(
            strict.tenants[0].latency.p99 < strict.tenants[1].latency.p99,
            "interactive p99 {:?} must beat batch p99 {:?}",
            strict.tenants[0].latency.p99,
            strict.tenants[1].latency.p99
        );
        // One model, both tenants resident everywhere: never a swap.
        assert_eq!(strict.tenants[0].model_swaps, 0);
        assert_eq!(strict.tenants[1].model_swaps, 0);
    }

    #[test]
    fn multi_tenant_functional_reports_per_tenant_accuracy() {
        let (net, samples) = tiny_workload();
        let engine = SconnaEngine::paper_default(5);
        let w = |workers| FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers,
        };
        let (wa, wb) = (w(1), w(2));
        let shuffle = shufflenet_v2();
        let goog = googlenet();
        let cfg = small_closed(2, 2, 20).with_tenants(vec![
            TenantSpec::new("a", 0, ArrivalProcess::ClosedLoop { clients: 3 }, 12),
            TenantSpec::new("b", 1, ArrivalProcess::ClosedLoop { clients: 2 }, 8),
        ]);
        let r = Fleet::new_multi_functional(&cfg, &[&shuffle, &goog], &[&wa, &wb])
            .into_functional_report();
        assert_eq!(r.tenant_accuracy.len(), 2);
        assert_eq!(
            r.tenant_accuracy.iter().map(|t| t.correct).sum::<u64>(),
            r.correct
        );
        for (ta, tu) in r.tenant_accuracy.iter().zip(&r.serving.tenants) {
            assert_eq!(ta.name, tu.name);
            let responses = tu.completed + tu.degraded;
            assert_eq!(
                ta.accuracy_under_load,
                if responses == 0 {
                    0.0
                } else {
                    ta.correct as f64 / responses as f64
                }
            );
        }
        // Predictions stay keyed per request id regardless of tenancy.
        for (id, &pred) in r.predictions.iter().enumerate() {
            if r.outcomes[id] == RequestOutcome::Served {
                let s = &samples[id % samples.len()];
                let offline =
                    sconna_tensor::layers::argmax(&net.forward_keyed(&s.image, &engine, id as u64));
                assert_eq!(pred, offline, "request {id}");
            }
        }
    }

    #[test]
    fn all_shed_run_reports_finite_zero_rates() {
        // Satellite pin: a run whose every request strands (fleet killed
        // at t=0, nothing ever completes) has makespan ZERO and zero
        // responses — every rate metric must come out a finite 0.0, not
        // NaN or infinity.
        let model = shufflenet_v2();
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Trace {
                times: vec![SimTime::from_ns(10); 8],
            },
            ..small_closed(1, 4, 8)
        };
        let plan = FaultPlan::new().kill(SimTime::ZERO, 0);
        let mut fleet = Fleet::new(&cfg, &model).with_faults(&plan);
        fleet.run_to_completion();
        let r = fleet.into_report();
        assert_eq!(r.completed, 0);
        assert_eq!(r.dropped, 8);
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.fps, 0.0);
        assert_eq!(r.goodput_fps, 0.0);
        assert_eq!(r.drop_rate, 1.0);
        assert_eq!(r.energy_per_inference_j, 0.0);
        assert_eq!(r.avg_power_w, 0.0);
        assert_eq!(r.mean_batch_fill, 0.0);
        assert!(r.utilization.iter().all(|&u| u == 0.0));
        assert_eq!(r.latency.count, 0);
        assert_eq!(r.latency.p99, SimTime::ZERO);
        let t = &r.tenants[0];
        assert_eq!(t.drop_rate, 1.0);
        assert_eq!(t.served_fps, 0.0);
        assert_eq!(t.goodput_fps, 0.0);
        assert_eq!(t.mean_batch_fill, 0.0);
        assert_eq!(t.energy_per_inference_j, 0.0);
        assert!([r.fps, r.goodput_fps, t.served_fps, t.goodput_fps]
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn degenerate_configs_surface_as_descriptive_errors() {
        // Satellite pin: construction-time validation returns
        // ServingConfigError (with the legacy panic substrings) instead
        // of panicking deep inside the scheduler.
        let model = shufflenet_v2();
        let cases = [
            (
                ServingConfig {
                    instances: 0,
                    ..small_closed(1, 4, 8)
                },
                "need at least one instance",
            ),
            (
                ServingConfig {
                    max_batch: 0,
                    ..small_closed(1, 4, 8)
                },
                "max_batch must be positive",
            ),
            (
                ServingConfig {
                    queue_cap: Some(0),
                    ..small_closed(1, 4, 8)
                },
                "queue_cap must be positive",
            ),
            (
                ServingConfig {
                    arrivals: ArrivalProcess::Poisson { rate_fps: 0.0 },
                    ..small_closed(1, 4, 8)
                },
                "Poisson rate must be positive",
            ),
        ];
        for (cfg, want) in cases {
            let err = Fleet::try_new(&cfg, &model).err().expect(want).to_string();
            assert!(err.contains(want), "{err:?} should contain {want:?}");
        }
        // A tenant naming a model outside the slice is only checkable at
        // fleet construction, where the slice is known.
        let cfg = small_closed(1, 4, 8).with_tenants(vec![TenantSpec::new(
            "t",
            3,
            ArrivalProcess::ClosedLoop { clients: 1 },
            8,
        )]);
        let err = Fleet::try_new_multi(&cfg, &[&model])
            .err()
            .expect("out-of-range model index")
            .to_string();
        assert!(err.contains("names model 3 of a 1-model slice"), "{err:?}");
    }
}
