//! Report types for the serving simulations: per-request terminal
//! states, shed accounting, the fleet-level [`ServingReport`], the
//! functional extension carrying predictions and accuracy-under-load,
//! and the overload-sweep point.

use sconna_sim::stats::{GoodputSamples, LatencySummary, QueueDepthSamples};
use sconna_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use super::config::LatencyClass;

/// The terminal state of one offered request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Served at full fidelity.
    Served,
    /// Served on the low-precision fallback model
    /// ([`AdmissionPolicy::Degrade`](super::AdmissionPolicy::Degrade)).
    Degraded,
    /// Rejected on arrival at a full queue
    /// ([`AdmissionPolicy::DropNewest`](super::AdmissionPolicy::DropNewest)
    /// or the arrival-side bound of
    /// [`AdmissionPolicy::Deadline`](super::AdmissionPolicy::Deadline)).
    ShedNewest,
    /// Evicted from the queue head by a newer arrival
    /// ([`AdmissionPolicy::DropOldest`](super::AdmissionPolicy::DropOldest)).
    ShedOldest,
    /// Shed at dispatch with its queue wait past the SLO
    /// ([`AdmissionPolicy::Deadline`](super::AdmissionPolicy::Deadline)).
    ShedDeadline,
    /// Still queued when the last instance died with no restart coming:
    /// the fleet could provably never serve it, so it is accounted as a
    /// drop rather than silently lost. Only a [`FaultPlan`](super::FaultPlan)
    /// that kills every instance without restarting any can produce this.
    ShedStranded,
    /// Aborted by a kill and refused re-admission by the
    /// [`RetryPolicy`](super::RetryPolicy): either the request burned
    /// its per-request attempt ceiling or the global retry budget was
    /// exhausted (retry-storm protection). Always 0 with the default
    /// policy, which re-admits unconditionally.
    ShedRetryBudget,
}

/// Per-cause shed counters. `newest + oldest + deadline + stranded +
/// retry` is the dropped total; `degraded` counts requests routed to the
/// fallback model (they are *served*, not dropped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedCounts {
    /// Arrivals rejected at a full queue.
    pub newest: u64,
    /// Oldest waiters evicted by newer arrivals.
    pub oldest: u64,
    /// Requests shed at dispatch with their SLO already blown.
    pub deadline: u64,
    /// Requests admitted onto the degraded (fallback-model) tier.
    pub degraded: u64,
    /// Requests stranded in queue when the whole fleet died
    /// ([`RequestOutcome::ShedStranded`]); always 0 without fault
    /// injection.
    pub stranded: u64,
    /// Kill-aborted requests refused re-admission by the retry policy
    /// ([`RequestOutcome::ShedRetryBudget`]); always 0 under the default
    /// [`RetryPolicy`](super::RetryPolicy).
    pub retry: u64,
}

/// Self-healing / availability accounting of one serving run: what the
/// stochastic failures did, what the supervisor and retry layer did
/// about it. For a fault-free run every counter is zero and
/// [`active_instances`](Self::active_instances) equals the fleet size.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Kills that landed on a live instance (kills of already-dead
    /// instances are no-ops and not counted).
    pub incidents: u64,
    /// Reloads completed — instances that came back up, whether healed
    /// by the supervisor or by a scripted
    /// [`FaultEvent::Restart`](super::FaultEvent::Restart).
    pub recoveries: u64,
    /// Supervised restarts scheduled (each consumes one unit of the
    /// supervisor's restart budget, when it has one).
    pub restarts_issued: u64,
    /// Instances permanently benched by crash-loop detection.
    pub benched: u64,
    /// Instances still serving (up or recovering) at the end of the
    /// run; the fleet's re-estimated capacity is
    /// `estimated_capacity_fps × active_instances / instances`.
    pub active_instances: usize,
    /// Mean measured time-to-recovery over [`Self::recoveries`]
    /// (down-at to back-up, including backoff *and* reload); ZERO when
    /// nothing recovered. This is where SCONNA's near-zero warm reload
    /// shows up against the analog baselines.
    pub mean_mttr: SimTime,
    /// Total downtime per instance, instance order. An instance still
    /// down at the end accrues downtime up to the final event time.
    pub downtime: Vec<SimTime>,
    /// Kill-aborted requests re-admitted to the queue.
    pub retries: u64,
    /// Highest per-request dispatch-attempt count observed.
    pub max_attempts_seen: u32,
    /// Hedged duplicate batches dispatched.
    pub hedges_dispatched: u64,
    /// Hedges promoted to primary after their primary was killed.
    pub hedges_promoted: u64,
    /// Hedges cancelled because their primary completed first.
    pub hedges_cancelled: u64,
}

/// Per-tenant usage record of one serving run — the accounting a
/// multi-tenant operator bills and SLO-audits from. One entry per
/// [`TenantSpec`](super::TenantSpec), roster order (the order is part of
/// the deterministic-replay contract: reports must be bit-identical
/// across worker counts and trace shuffles, so the tenant list is a
/// `Vec`, never a hash map).
///
/// Per-tenant accuracy lives on
/// [`FunctionalServingReport::tenant_accuracy`] — the analytic-only run
/// computes no predictions, and its report must stay bit-identical to
/// the functional run's embedded [`ServingReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Tenant display name from the [`TenantSpec`](super::TenantSpec).
    pub name: String,
    /// Model served for this tenant.
    pub model: String,
    /// Weighted-fair share weight.
    pub weight: f64,
    /// SLO tier used by the strict-priority scheduler.
    pub latency_class: LatencyClass,
    /// Requests this tenant offered (`= completed + dropped + degraded`).
    pub offered: u64,
    /// Requests served to completion at full fidelity.
    pub completed: u64,
    /// Requests shed with no response.
    pub dropped: u64,
    /// Requests served on the low-precision fallback model.
    pub degraded: u64,
    /// Per-cause shed breakdown for this tenant alone.
    pub shed: ShedCounts,
    /// `dropped / offered`; 0 when the tenant offered nothing.
    pub drop_rate: f64,
    /// End-to-end latency distribution of this tenant's responses.
    pub latency: LatencySummary,
    /// Full-fidelity served throughput over the fleet makespan.
    pub served_fps: f64,
    /// Responses per second (full-fidelity + degraded) over the
    /// makespan; 0 for a zero-length run.
    pub goodput_fps: f64,
    /// Batches dispatched carrying this tenant's requests. Batches are
    /// single-tenant (the scheduler never mixes tenants in one batch,
    /// because a batch runs one resident model), so these sum to the
    /// fleet total.
    pub batches: u64,
    /// Mean requests per dispatched batch for this tenant.
    pub mean_batch_fill: f64,
    /// Times an instance had to swap its resident model *to* this
    /// tenant's model before dispatching for it. This is where the
    /// paper's reprogramming asymmetry lands: near-zero cost per swap
    /// for SCONNA's LUT repointing, cell-programming-dominated for the
    /// analog baselines.
    pub model_swaps: u64,
    /// Total simulated time spent in model swaps charged to this
    /// tenant's dispatches.
    pub swap_time: SimTime,
    /// Dynamic energy attributed to this tenant's batches, joules.
    pub energy_j: f64,
    /// `energy_j` per response; 0 when the tenant got no responses.
    pub energy_per_inference_j: f64,
}

/// Per-tenant functional accuracy, parallel to
/// [`ServingReport::tenants`]. Lives on the functional report only: the
/// analytic run computes no predictions, and the two reports' embedded
/// [`ServingReport`]s must stay bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantAccuracy {
    /// Tenant display name.
    pub name: String,
    /// Responses whose prediction matched the sample label.
    pub correct: u64,
    /// `correct / (completed + degraded)`; 0 when nothing was served.
    pub accuracy_under_load: f64,
    /// `correct / offered`; 0 when the tenant offered nothing.
    pub accuracy_offered: f64,
}

/// Fleet-level result of one serving simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingReport {
    /// Accelerator display name.
    pub accelerator: &'static str,
    /// Model name.
    pub model: String,
    /// Fleet size.
    pub instances: usize,
    /// Scheduler batch limit.
    pub max_batch: usize,
    /// Requests that entered the system
    /// (`= completed + dropped + degraded`).
    pub offered: u64,
    /// Requests served to completion at full fidelity.
    pub completed: u64,
    /// Requests shed with no response.
    pub dropped: u64,
    /// Requests served on the low-precision fallback model.
    pub degraded: u64,
    /// Per-cause shed breakdown.
    pub shed: ShedCounts,
    /// `dropped / offered`.
    pub drop_rate: f64,
    /// Batches dispatched (both tiers). A batch aborted by a
    /// [`KillInstance`](super::FaultEvent::Kill) fault and re-dispatched
    /// counts once per dispatch.
    pub batches: u64,
    /// Mean requests per dispatched batch (batch-slot fill).
    pub mean_batch_fill: f64,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Full-fidelity served throughput: completed / makespan.
    pub fps: f64,
    /// Responses per second — full-fidelity *and* degraded
    /// (`(completed + degraded) / makespan`): the availability a client
    /// population observes. Excludes drops; under
    /// [`AdmissionPolicy::Degrade`](super::AdmissionPolicy::Degrade) it
    /// holds past the knee while `fps` (and accuracy) give way.
    pub goodput_fps: f64,
    /// End-to-end latency distribution of the responses (queueing +
    /// service; dropped requests contribute no sample). All-zero when
    /// nothing was served.
    pub latency: LatencySummary,
    /// Pending-queue depth over time, sampled at every change and at
    /// every fault boundary (kill / restart / stall / reload), so
    /// fault-induced discontinuities are visible in the series even when
    /// the depth itself did not move.
    pub queue_depth: QueueDepthSamples,
    /// Per-instance utilization over the makespan, instance order. A
    /// killed instance's truncated batch contributes only the busy time
    /// it actually accrued before the kill.
    pub utilization: Vec<f64>,
    /// Total fleet energy over the makespan, joules. Batches aborted by
    /// a kill still paid their dispatch energy (wasted work is real
    /// work).
    pub energy_j: f64,
    /// Energy per response, joules.
    pub energy_per_inference_j: f64,
    /// Average fleet power, watts.
    pub avg_power_w: f64,
    /// Self-healing accounting: incidents, recoveries, measured MTTR,
    /// per-instance downtime, retry and hedge counters. All-default for
    /// a fault-free run.
    pub availability: AvailabilityStats,
    /// Responses binned into fixed windows
    /// ([`ServingConfig::with_goodput_window`](super::ServingConfig::with_goodput_window));
    /// `None` unless the config enables it. Collapse and healing
    /// transients that the scalar `goodput_fps` averages away are
    /// visible here.
    pub goodput_series: Option<GoodputSamples>,
    /// Per-tenant usage records, roster order. A single-tenant run (every
    /// legacy entry point) carries exactly one record whose counters
    /// mirror the fleet totals.
    pub tenants: Vec<TenantUsage>,
}

/// [`ServingReport`] plus the functional outputs: what the fleet actually
/// computed while the queueing model timed it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionalServingReport {
    /// The queueing/energy report (identical to the analytic-only
    /// simulation of the same config).
    pub serving: ServingReport,
    /// Predicted class per request, indexed by request id; `usize::MAX`
    /// marks a dropped request (it never got a response).
    pub predictions: Vec<usize>,
    /// Terminal state per request, indexed by request id — the **shed
    /// set** of the run.
    pub outcomes: Vec<RequestOutcome>,
    /// Dispatch attempts per request, indexed by request id: 1 for a
    /// request served (or shed) on its first dispatch, `1 + retries`
    /// after kill-aborts, 0 for a request shed before ever dispatching.
    pub attempts: Vec<u32>,
    /// Responses (full-fidelity or degraded) whose prediction matched the
    /// sample label.
    pub correct: u64,
    /// Top-1 accuracy over **admitted** traffic: `correct / responses`
    /// where `responses = completed + degraded` (0 when nothing was
    /// served).
    pub accuracy_under_load: f64,
    /// Top-1 accuracy over **offered** traffic: `correct / offered` — a
    /// dropped request is an answer nobody got, so it scores as wrong
    /// (0 when nothing was offered).
    pub accuracy_offered: f64,
    /// Per-tenant accuracy, parallel to
    /// [`ServingReport::tenants`](ServingReport::tenants).
    pub tenant_accuracy: Vec<TenantAccuracy>,
}

/// One point of an overload sweep: an offered load and what the fleet
/// made of it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadPoint {
    /// Offered Poisson arrival rate, requests per second.
    pub offered_fps: f64,
    /// The functional serving report at that load.
    pub report: FunctionalServingReport,
}
