//! Fault injection for the steppable fleet: a [`FaultPlan`] is a set of
//! timed [`FaultEvent`]s — kill, restart, stall — scheduled on the same
//! deterministic [`EventQueue`](sconna_sim::event::EventQueue) as the
//! traffic, so every chaos run is exactly replayable.
//!
//! Plans are **canonically ordered** before scheduling: events are
//! sorted by `(time, instance, kind, duration)`, so two plans holding
//! the same fault multiset in any construction order simulate
//! bit-identically (property-tested in `tests/scenarios.rs`), and an
//! empty plan schedules nothing at all — bit-identical to running
//! without a plan.

use sconna_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One timed fault against one fleet instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Instance `instance` dies at `at`: its in-flight batch is aborted
    /// (truncated busy time; the dispatch energy is already spent) and
    /// the batch's requests rejoin the **front** of the pending queue in
    /// their original arrival order, then the admission policy settles
    /// any overflow — requests are never silently lost. A kill against
    /// an already-dead instance is a no-op; a kill during a reload
    /// cancels the reload.
    Kill {
        /// Fault time.
        at: SimTime,
        /// Target instance index.
        instance: usize,
    },
    /// Instance `instance` begins rebooting at `at`: it pays the
    /// [`PreparedNetwork`](sconna_tensor::network::PreparedNetwork)
    /// rebuild latency — the DKV/LUT weight reload of
    /// [`model_reload_time`](crate::perf::model_reload_time) — before
    /// taking work again. A restart against a live or already-reloading
    /// instance is a no-op.
    Restart {
        /// Fault time.
        at: SimTime,
        /// Target instance index.
        instance: usize,
    },
    /// Instance `instance` stops accepting *new* batches for `duration`
    /// starting at `at` (its in-flight batch, if any, completes
    /// normally) — a GC pause / thermal-throttle stand-in. Overlapping
    /// stalls extend each other; stalling a dead instance is a no-op.
    Stall {
        /// Fault time.
        at: SimTime,
        /// Target instance index.
        instance: usize,
        /// How long the instance refuses new dispatches.
        duration: SimTime,
    },
}

impl FaultEvent {
    /// Fault time.
    pub fn at(&self) -> SimTime {
        match *self {
            FaultEvent::Kill { at, .. }
            | FaultEvent::Restart { at, .. }
            | FaultEvent::Stall { at, .. } => at,
        }
    }

    /// Target instance index.
    pub fn instance(&self) -> usize {
        match *self {
            FaultEvent::Kill { instance, .. }
            | FaultEvent::Restart { instance, .. }
            | FaultEvent::Stall { instance, .. } => instance,
        }
    }

    /// Same-timestamp tie-break rank: kills before restarts before
    /// stalls. Part of the canonical order, so it is semantics, not
    /// cosmetics: a kill and a restart of one instance at one instant
    /// resolve as kill-then-restart under every construction order.
    fn kind_rank(&self) -> u8 {
        match self {
            FaultEvent::Kill { .. } => 0,
            FaultEvent::Restart { .. } => 1,
            FaultEvent::Stall { .. } => 2,
        }
    }

    /// Stall duration (ZERO for kill/restart), for the canonical order.
    fn duration(&self) -> SimTime {
        match *self {
            FaultEvent::Stall { duration, .. } => duration,
            _ => SimTime::ZERO,
        }
    }
}

/// A replayable chaos schedule: timed faults against fleet instances,
/// applied by [`Fleet::with_faults`](super::Fleet::with_faults).
///
/// ```
/// use sconna_accel::serve::FaultPlan;
/// use sconna_sim::time::SimTime;
///
/// let plan = FaultPlan::new()
///     .kill(SimTime::from_ns(500_000), 0)
///     .restart(SimTime::from_ns(900_000), 0)
///     .stall(SimTime::from_ns(200_000), 1, SimTime::from_ns(300_000));
/// assert_eq!(plan.len(), 3);
/// // Construction order is irrelevant: plans are canonically sorted.
/// let permuted = FaultPlan::new()
///     .stall(SimTime::from_ns(200_000), 1, SimTime::from_ns(300_000))
///     .restart(SimTime::from_ns(900_000), 0)
///     .kill(SimTime::from_ns(500_000), 0);
/// assert_eq!(plan.normalized(), permuted.normalized());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan — simulates bit-identically to no plan at all.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a [`FaultEvent::Kill`] of `instance` at `at`.
    #[must_use]
    pub fn kill(mut self, at: SimTime, instance: usize) -> Self {
        self.events.push(FaultEvent::Kill { at, instance });
        self
    }

    /// Adds a [`FaultEvent::Restart`] of `instance` at `at`.
    #[must_use]
    pub fn restart(mut self, at: SimTime, instance: usize) -> Self {
        self.events.push(FaultEvent::Restart { at, instance });
        self
    }

    /// Adds a [`FaultEvent::Stall`] of `instance` at `at` for `duration`.
    ///
    /// A zero-length stall is a **validated no-op**: it is dropped here
    /// rather than scheduled, so the resulting plan is bit-identical to
    /// one that never mentioned it (an instant stall cannot refuse any
    /// dispatch — `stall_until == now` — so scheduling it would only
    /// perturb event counts). Stochastic stalls from
    /// [`FailureProcess`](super::FailureProcess) are floored at 1 ps and
    /// never take this path.
    #[must_use]
    pub fn stall(mut self, at: SimTime, instance: usize, duration: SimTime) -> Self {
        if duration == SimTime::ZERO {
            return self;
        }
        self.events.push(FaultEvent::Stall {
            at,
            instance,
            duration,
        });
        self
    }

    /// Adds an already-built event.
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The events as constructed (not yet canonically ordered).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True for the empty plan.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical schedule: events sorted by
    /// `(time, instance, kind, duration)` — the order they are placed on
    /// the event queue, making the simulation a pure function of the
    /// fault *multiset* rather than of construction order.
    pub fn normalized(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| (e.at(), e.instance(), e.kind_rank(), e.duration()));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_construction_order_invariant() {
        let t = SimTime::from_ns;
        let a = FaultPlan::new()
            .kill(t(5), 1)
            .stall(t(5), 0, t(9))
            .restart(t(2), 0)
            .kill(t(5), 0);
        let b = FaultPlan::new()
            .restart(t(2), 0)
            .kill(t(5), 0)
            .kill(t(5), 1)
            .stall(t(5), 0, t(9));
        assert_eq!(a.normalized(), b.normalized());
        // Canonical order: time first, then instance, then kill < restart
        // < stall.
        assert_eq!(
            a.normalized(),
            vec![
                FaultEvent::Restart {
                    at: t(2),
                    instance: 0
                },
                FaultEvent::Kill {
                    at: t(5),
                    instance: 0
                },
                FaultEvent::Stall {
                    at: t(5),
                    instance: 0,
                    duration: t(9)
                },
                FaultEvent::Kill {
                    at: t(5),
                    instance: 1
                },
            ]
        );
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert!(plan.normalized().is_empty());
    }

    #[test]
    fn zero_duration_stall_is_dropped_at_construction() {
        let plan = FaultPlan::new().stall(SimTime::from_ns(5), 0, SimTime::ZERO);
        assert!(plan.is_empty(), "instant stall must not schedule");
        assert_eq!(plan, FaultPlan::new());
        // Mixed with real events it vanishes without a trace.
        let with = FaultPlan::new().kill(SimTime::from_ns(1), 0).stall(
            SimTime::from_ns(5),
            0,
            SimTime::ZERO,
        );
        let without = FaultPlan::new().kill(SimTime::from_ns(1), 0);
        assert_eq!(with.normalized(), without.normalized());
    }

    #[test]
    fn accessors_cover_every_variant() {
        let t = SimTime::from_ns;
        let stall = FaultEvent::Stall {
            at: t(3),
            instance: 2,
            duration: t(7),
        };
        assert_eq!(stall.at(), t(3));
        assert_eq!(stall.instance(), 2);
        assert_eq!(stall.duration(), t(7));
        let kill = FaultEvent::Kill {
            at: t(1),
            instance: 0,
        };
        assert_eq!(kill.at(), t(1));
        assert_eq!(kill.duration(), SimTime::ZERO);
    }
}
