//! Stochastic failure processes: statistical chaos on top of the
//! scripted [`FaultPlan`] machinery.
//!
//! A [`FailureProcess`] turns "instances fail with MTBF *m*" into a
//! concrete, replayable [`FaultPlan`]: per-instance exponential
//! inter-failure gaps (and optional self-repair and stall mixing) drawn
//! from a **counter-keyed SplitMix64 stream** — the same determinism
//! discipline as the PR 3 ADC noise
//! ([`KeyedAdcStream`](crate::engine::KeyedAdcStream)). Draw `k` for
//! instance `i` is `mix_key(combine_keys(combine_keys(seed, i), k))`: a
//! pure function of `(seed, instance, counter)`, independent of thread
//! count, call order, and of every *other* instance's stream — growing
//! the fleet never perturbs the fault history of existing instances.
//!
//! The output is an ordinary plan, so everything pinned about scripted
//! chaos holds for statistical chaos too: canonical event ordering,
//! kill-of-dead / restart-of-live no-op semantics (a stochastic kill may
//! land on an instance a supervisor already benched — documented no-op),
//! and bit-identical replay across sweep worker counts.

use crate::serve::fault::FaultPlan;
use sconna_sim::time::SimTime;
use sconna_tensor::engine::{combine_keys, mix_key};
use serde::{Deserialize, Serialize};

/// Maps a raw SplitMix64 draw onto the open unit interval `(0, 1)`,
/// never returning 0 or 1 exactly so `ln` stays finite on either
/// orientation of an exponential transform. 52-bit precision: with 53
/// bits, `(2^53 − 1) + 0.5` is not representable and rounds up to
/// `2^53`, making the top draw collapse to exactly 1.0.
pub(crate) fn unit_uniform(draw: u64) -> f64 {
    ((draw >> 12) as f64 + 0.5) / 4_503_599_627_370_496.0
}

/// One exponential draw with the given mean, floored at 1 ps so every
/// event strictly advances time (a zero-length gap would let a single
/// instance fail infinitely often at one instant).
fn exp_draw(draw: u64, mean: SimTime) -> SimTime {
    let dt = -mean.as_secs_f64() * (1.0 - unit_uniform(draw)).ln();
    SimTime::from_secs_f64(dt).max(SimTime::from_ps(1))
}

/// A seeded per-instance stochastic failure model, materialized into a
/// [`FaultPlan`] over a finite horizon.
///
/// Each instance independently draws exponential inter-failure gaps with
/// mean [`mtbf`](Self::mtbf). Each failure is a stall with probability
/// [`stall_probability`](Self::stall_probability) (duration exponential
/// with mean [`mean_stall`](Self::mean_stall)) and a kill otherwise.
/// When [`mttr`](Self::mttr) is set, every kill is followed by a
/// self-repair [`Restart`](super::FaultEvent::Restart) an exponential
/// `Exp(mttr)` later — the "ops team reimages the box" model. Leave it
/// `None` when a [`Supervisor`](super::Supervisor) owns healing, so
/// measured recovery times are the supervisor's alone.
///
/// ```
/// use sconna_accel::serve::FailureProcess;
/// use sconna_sim::time::SimTime;
///
/// let fp = FailureProcess::new(42, SimTime::from_ns(400_000));
/// let plan = fp.materialize(2, SimTime::from_ns(4_000_000));
/// // Same seed, same plan — and instance 0's history is unchanged by
/// // growing the fleet.
/// assert_eq!(plan, fp.materialize(2, SimTime::from_ns(4_000_000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureProcess {
    /// Root of every per-instance draw stream.
    pub seed: u64,
    /// Mean time between failures per instance (exponential gaps).
    pub mtbf: SimTime,
    /// Mean time to self-repair. `Some` schedules a stochastic
    /// [`Restart`](super::FaultEvent::Restart) after every kill; `None`
    /// leaves healing to the supervisor (or to nobody).
    pub mttr: Option<SimTime>,
    /// Fraction of failures that are stalls rather than kills, in
    /// `[0, 1]`.
    pub stall_probability: f64,
    /// Mean stall duration (exponential), required positive when
    /// `stall_probability > 0`.
    pub mean_stall: SimTime,
}

impl FailureProcess {
    /// A kill-only process: exponential failures with mean `mtbf`, no
    /// self-repair, no stalls.
    ///
    /// # Panics
    /// Panics if `mtbf` is zero.
    pub fn new(seed: u64, mtbf: SimTime) -> Self {
        assert!(mtbf > SimTime::ZERO, "MTBF must be positive");
        Self {
            seed,
            mtbf,
            mttr: None,
            stall_probability: 0.0,
            mean_stall: SimTime::ZERO,
        }
    }

    /// Adds stochastic self-repair: each kill is followed by a restart
    /// an `Exp(mttr)` later.
    ///
    /// # Panics
    /// Panics if `mttr` is zero.
    #[must_use]
    pub fn with_self_repair(mut self, mttr: SimTime) -> Self {
        assert!(mttr > SimTime::ZERO, "MTTR must be positive");
        self.mttr = Some(mttr);
        self
    }

    /// Mixes stalls into the failure stream: each failure is a stall
    /// with probability `probability`, of exponential duration with mean
    /// `mean_stall`.
    ///
    /// # Panics
    /// Panics if `probability` is outside `[0, 1]` or if it is positive
    /// with a zero `mean_stall`.
    #[must_use]
    pub fn with_stalls(mut self, probability: f64, mean_stall: SimTime) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "stall probability must be in [0, 1], got {probability}"
        );
        assert!(
            probability == 0.0 || mean_stall > SimTime::ZERO,
            "mean stall duration must be positive when stalls are enabled"
        );
        self.stall_probability = probability;
        self.mean_stall = mean_stall;
        self
    }

    /// Materializes the process into a concrete [`FaultPlan`] for
    /// `instances` instances over `[0, horizon)`.
    ///
    /// Failure *times* always fall inside the horizon; a self-repair
    /// restart (or a stall's tail) may extend past it — the fleet keeps
    /// simulating until its queues drain, so late repairs still land.
    /// The plan is a pure function of `(self, instances, horizon)`.
    ///
    /// # Panics
    /// Panics if `instances` is zero or `horizon` is zero.
    pub fn materialize(&self, instances: usize, horizon: SimTime) -> FaultPlan {
        assert!(instances > 0, "fleet must have at least one instance");
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        // Fields are public; revalidate what the builders promised.
        assert!(self.mtbf > SimTime::ZERO, "MTBF must be positive");
        let mut plan = FaultPlan::new();
        for inst in 0..instances {
            let key = combine_keys(self.seed, inst as u64);
            let draw = |counter: &mut u64| {
                let d = mix_key(combine_keys(key, *counter));
                *counter += 1;
                d
            };
            let mut counter = 0u64;
            let mut t = SimTime::ZERO;
            loop {
                t += exp_draw(draw(&mut counter), self.mtbf);
                if t >= horizon {
                    break;
                }
                let is_stall = unit_uniform(draw(&mut counter)) < self.stall_probability;
                if is_stall {
                    let duration = exp_draw(draw(&mut counter), self.mean_stall);
                    plan = plan.stall(t, inst, duration);
                } else {
                    plan = plan.kill(t, inst);
                    if let Some(mttr) = self.mttr {
                        let back_at = t + exp_draw(draw(&mut counter), mttr);
                        plan = plan.restart(back_at, inst);
                    }
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::fault::FaultEvent;

    const US: u64 = 1_000_000; // ps per microsecond

    #[test]
    fn same_seed_same_plan() {
        let fp = FailureProcess::new(7, SimTime::from_ps(50 * US))
            .with_self_repair(SimTime::from_ps(10 * US))
            .with_stalls(0.3, SimTime::from_ps(5 * US));
        let h = SimTime::from_ps(2_000 * US);
        assert_eq!(fp.materialize(3, h), fp.materialize(3, h));
        // Different seed, different plan.
        let other = FailureProcess { seed: 8, ..fp };
        assert_ne!(fp.materialize(3, h), other.materialize(3, h));
    }

    #[test]
    fn per_instance_streams_are_independent_of_fleet_size() {
        // Growing the fleet must not move a single event of the existing
        // instances' histories: each stream is keyed by (seed, instance)
        // alone.
        let fp = FailureProcess::new(11, SimTime::from_ps(40 * US))
            .with_self_repair(SimTime::from_ps(8 * US));
        let h = SimTime::from_ps(1_000 * US);
        let small = fp.materialize(2, h);
        let large = fp.materialize(5, h);
        for inst in 0..2 {
            let pick = |p: &FaultPlan| -> Vec<FaultEvent> {
                p.normalized()
                    .into_iter()
                    .filter(|e| e.instance() == inst)
                    .collect()
            };
            assert_eq!(pick(&small), pick(&large), "instance {inst}");
        }
    }

    #[test]
    fn failure_times_respect_the_horizon_and_repairs_may_overhang() {
        let fp = FailureProcess::new(3, SimTime::from_ps(30 * US))
            .with_self_repair(SimTime::from_ps(US));
        let h = SimTime::from_ps(500 * US);
        let plan = fp.materialize(2, h);
        assert!(!plan.is_empty(), "~16 expected failures per instance");
        for e in plan.events() {
            match e {
                FaultEvent::Kill { at, .. } | FaultEvent::Stall { at, .. } => {
                    assert!(*at < h, "failure at {at} past horizon {h}");
                }
                // Self-repair restarts trail their kill and may pass the
                // horizon; the fleet drains past it anyway.
                FaultEvent::Restart { .. } => {}
            }
        }
        // Every kill has exactly one trailing restart under self-repair.
        let kills = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Kill { .. }))
            .count();
        let restarts = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Restart { .. }))
            .count();
        assert_eq!(kills, restarts);
    }

    #[test]
    fn empirical_failure_rate_tracks_mtbf() {
        // Statistical sanity, not a distribution test: with MTBF m over
        // horizon H, expect about H/m failures per instance. 200
        // expected events keeps ±25% loose enough to never flake.
        let mtbf = SimTime::from_ps(10 * US);
        let h = SimTime::from_ps(2_000 * US);
        let plan = FailureProcess::new(99, mtbf).materialize(10, h);
        let expected = 10.0 * (h.as_secs_f64() / mtbf.as_secs_f64());
        let got = plan.len() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "got {got} events, expected ~{expected}"
        );
    }

    #[test]
    fn stall_mix_fraction_is_respected() {
        let plan = FailureProcess::new(5, SimTime::from_ps(10 * US))
            .with_stalls(0.5, SimTime::from_ps(2 * US))
            .materialize(8, SimTime::from_ps(1_000 * US));
        let stalls = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Stall { .. }))
            .count() as f64;
        let frac = stalls / plan.len() as f64;
        assert!((frac - 0.5).abs() < 0.15, "stall fraction {frac}");
        // Stochastic stall durations are positive by construction.
        for e in plan.events() {
            if let FaultEvent::Stall { duration, .. } = e {
                assert!(*duration >= SimTime::from_ps(1));
            }
        }
    }

    #[test]
    fn unit_uniform_stays_inside_the_open_interval() {
        for draw in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            let u = unit_uniform(draw);
            assert!(u > 0.0 && u < 1.0, "draw {draw} -> {u}");
        }
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn zero_mtbf_panics() {
        let _ = FailureProcess::new(1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "stall probability must be in [0, 1]")]
    fn bad_stall_probability_panics() {
        let _ = FailureProcess::new(1, SimTime::from_ps(US)).with_stalls(1.5, SimTime::from_ps(US));
    }

    #[test]
    #[should_panic(expected = "mean stall duration must be positive")]
    fn zero_mean_stall_panics() {
        let _ = FailureProcess::new(1, SimTime::from_ps(US)).with_stalls(0.5, SimTime::ZERO);
    }
}
