//! Serving-experiment configuration: arrival processes, admission
//! policies, and the [`ServingConfig`] that binds a fleet shape to a
//! workload — plus the cheap `Clone`-based builder path sweep call
//! sites use instead of re-constructing configs by hand.

use crate::organization::AcceleratorConfig;
use crate::perf::analyze_layer_batched;
use crate::serve::autoscale::AutoscalePolicy;
use crate::serve::supervisor::Supervisor;
use sconna_sim::time::SimTime;
use sconna_tensor::models::CnnModel;
use serde::{Deserialize, Serialize};

/// How requests enter the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open loop: exponential inter-arrival times at `rate_fps`
    /// requests per second, independent of service progress.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_fps: f64,
    },
    /// Closed loop: `clients` concurrent users; each fires its next
    /// request the instant its previous one completes — or is shed (a
    /// rejected client immediately retries with a fresh request). This
    /// is the saturation workload that measures peak throughput.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
    },
    /// Replay: request `i` of the trace arrives at `times[i]`. The trace
    /// length must equal `ServingConfig::requests`. Request ids are
    /// assigned in *time* order (ties by schedule order), so any
    /// permutation of a tie-free trace simulates identically —
    /// the reordering invariance the overload determinism tests pin.
    Trace {
        /// Absolute arrival times (need not be sorted).
        times: Vec<SimTime>,
    },
}

impl ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate_fps` requests per second.
    pub fn poisson(rate_fps: f64) -> Self {
        ArrivalProcess::Poisson { rate_fps }
    }

    /// A closed loop of `clients` zero-think-time users.
    pub fn closed_loop(clients: usize) -> Self {
        ArrivalProcess::ClosedLoop { clients }
    }

    /// Replay of an absolute-arrival-time trace.
    pub fn trace(times: Vec<SimTime>) -> Self {
        ArrivalProcess::Trace { times }
    }
}

/// What the scheduler does with traffic the bounded queue cannot absorb.
///
/// Shedding triggers when a request arrives while the pending queue
/// holds at least `queue_cap × instances` requests (and, for
/// [`AdmissionPolicy::Deadline`], additionally at dispatch time). With
/// `queue_cap: None` only `Deadline` ever sheds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject the arriving request (classic tail drop). The default; with
    /// an unbounded queue this is exactly the pre-overload scheduler.
    #[default]
    DropNewest,
    /// Evict the oldest waiting request and admit the newcomer (the
    /// freshest traffic is the most likely to still meet its deadline).
    DropOldest,
    /// Tail drop at the queue cap, plus SLO-aware shedding at dispatch:
    /// any request whose queue wait already exceeds `slo` when an
    /// instance would pick it up is shed instead of served — it could
    /// only have become a late answer nobody is waiting for.
    Deadline {
        /// Queue-wait budget per request.
        slo: SimTime,
    },
    /// Never drop: requests arriving over the cap are admitted onto the
    /// same queue but marked **degraded** — they execute on a cheaper
    /// `fallback_bits`-weight-precision copy of the model
    /// ([`sconna_tensor::network::QuantizedNetwork::with_weight_bits`])
    /// whose shorter stochastic streams make their batches
    /// `2^native / 2^fallback` times faster
    /// ([`AcceleratorConfig::with_native_bits`]). Shedding trades
    /// accuracy instead of availability.
    Degrade {
        /// Weight precision of the fallback model, bits.
        fallback_bits: u8,
    },
}

/// The cluster retry layer: what happens to requests whose batch was
/// aborted by a kill. The default (`all None`) is PR 7 behavior
/// bit-exactly: aborted requests rejoin the queue with no attempt
/// ceiling, no global budget, and no hedging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum *dispatch* attempts per request (so `Some(1)` means no
    /// retries at all: the first abort sheds the request). `None` is
    /// unlimited — every abort re-admits.
    pub max_attempts: Option<u32>,
    /// Global cap on re-admissions across the whole run — retry-storm
    /// protection: once a chaos burst has burned the budget, further
    /// aborted requests are shed
    /// ([`RequestOutcome::ShedRetryBudget`](super::RequestOutcome::ShedRetryBudget))
    /// instead of amplifying the overload. `None` is unlimited.
    pub retry_budget: Option<u64>,
    /// Hedged dispatch for tail latency: if a batch is still in flight
    /// this long after dispatch, a duplicate is issued on an idle
    /// instance (when one exists and no traffic is waiting); first
    /// completion wins, the loser is cancelled. Costs duplicate energy,
    /// insures against a kill or stall of the primary. `None` disables.
    pub hedge_after: Option<SimTime>,
}

impl RetryPolicy {
    /// Limits each request to `n` dispatch attempts.
    ///
    /// # Panics
    /// Panics if `n` is zero — a request needs one attempt to exist.
    #[must_use]
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1, "a request needs at least one dispatch attempt");
        self.max_attempts = Some(n);
        self
    }

    /// Caps total re-admissions across the run.
    #[must_use]
    pub fn with_retry_budget(mut self, budget: u64) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Enables hedged dispatch after `delay` of in-flight time.
    ///
    /// # Panics
    /// Panics if `delay` is zero (hedging at dispatch time would always
    /// double every batch).
    #[must_use]
    pub fn with_hedge_after(mut self, delay: SimTime) -> Self {
        assert!(delay > SimTime::ZERO, "hedge delay must be positive");
        self.hedge_after = Some(delay);
        self
    }
}

/// One serving experiment: a fleet, a scheduler policy, a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Accelerator configuration every instance runs.
    pub accelerator: AcceleratorConfig,
    /// Number of accelerator instances in the fleet.
    pub instances: usize,
    /// Largest batch the scheduler packs onto one instance.
    pub max_batch: usize,
    /// How long the oldest pending request may wait before a partial
    /// batch is flushed to an idle instance.
    pub batch_window: SimTime,
    /// Pending-queue bound, requests **per instance** (the shared queue
    /// holds at most `queue_cap × instances`); `None` is unbounded.
    pub queue_cap: Option<usize>,
    /// What happens to traffic over the bound.
    pub admission: AdmissionPolicy,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Total requests to serve; the simulation ends when every one has
    /// been served, degraded or shed.
    pub requests: usize,
    /// Seed for the arrival process (unused by `ClosedLoop`/`Trace`).
    pub seed: u64,
    /// Supervised-restart policy; `None` means faults are permanent
    /// unless a scripted [`FaultEvent::Restart`](super::FaultEvent::Restart)
    /// revives the instance (PR 7 behavior).
    pub supervisor: Option<Supervisor>,
    /// Cluster retry/hedging policy for kill-aborted requests.
    pub retry: RetryPolicy,
    /// Window of the availability goodput series
    /// ([`ServingReport::goodput_series`](super::ServingReport::goodput_series));
    /// `None` disables the series.
    pub goodput_window: Option<SimTime>,
    /// Reactive autoscaling policy; `None` keeps every provisioned
    /// instance active (the pre-autoscale behavior, bit-exactly). When
    /// set, `instances` is the *provisioned* pool and the policy's
    /// `max` must equal it — only `active` instances take traffic, the
    /// rest stand by.
    pub autoscale: Option<AutoscalePolicy>,
}

impl ServingConfig {
    /// A closed-loop saturation test: `2 × instances × max_batch`
    /// zero-think-time clients — enough that whenever an instance goes
    /// idle a full batch is already waiting, so every batch slot stays
    /// occupied and the measured FPS is the fleet's service **capacity**.
    /// That capacity is the knee of the open-loop overload sweep: offered
    /// load below it is served at the offered rate, load above it can
    /// only be absorbed by queueing and shedding (see
    /// [`overload_sweep`](crate::serve::overload_sweep) and the
    /// closed-form [`ServingConfig::estimated_capacity_fps`], which this
    /// measured knee is unit-pinned against).
    ///
    /// Unbounded queue, [`AdmissionPolicy::DropNewest`] — i.e. no
    /// shedding: the closed loop self-limits at `clients` outstanding
    /// requests.
    pub fn saturation(
        accelerator: AcceleratorConfig,
        instances: usize,
        max_batch: usize,
        requests: usize,
    ) -> Self {
        Self {
            accelerator,
            instances,
            max_batch,
            batch_window: SimTime::from_ns(100_000), // 100 µs
            queue_cap: None,
            admission: AdmissionPolicy::DropNewest,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 2 * instances * max_batch,
            },
            requests,
            seed: 0,
            supervisor: None,
            retry: RetryPolicy::default(),
            goodput_window: None,
            autoscale: None,
        }
    }

    /// Closed-form service-capacity estimate: `instances × max_batch`
    /// requests complete every full-batch makespan, so
    /// `capacity = instances · max_batch / makespan(max_batch)`. This is
    /// the saturation throughput the closed-loop measurement converges to
    /// (it ignores window flushes and the final partial batch, so short
    /// runs measure slightly below it) and the knee of the open-loop
    /// overload sweep — pinned against both in this module's tests so
    /// the estimate and the simulator cannot silently diverge.
    pub fn estimated_capacity_fps(&self, model: &CnnModel) -> f64 {
        let makespan = model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
            acc + analyze_layer_batched(&self.accelerator, w, self.max_batch).total
        });
        (self.instances * self.max_batch) as f64 / makespan.as_secs_f64()
    }

    // ---- Builder path ------------------------------------------------
    //
    // `ArrivalProcess` lost `Copy` when `Trace` arrived (a `Vec` of
    // times), so sweep call sites that used to copy a base config now
    // clone-and-override instead of re-constructing every field by hand.
    // Each method is a cheap move-through: `base.clone().with_seed(7)`.

    /// Replaces the arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Replaces the arrival process with open-loop Poisson arrivals at
    /// `rate_fps` — the per-point override [`overload_sweep`] applies.
    ///
    /// [`overload_sweep`]: crate::serve::overload_sweep
    #[must_use]
    pub fn with_poisson(self, rate_fps: f64) -> Self {
        self.with_arrivals(ArrivalProcess::Poisson { rate_fps })
    }

    /// Bounds the pending queue at `cap` requests per instance.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Removes the pending-queue bound.
    #[must_use]
    pub fn with_unbounded_queue(mut self) -> Self {
        self.queue_cap = None;
        self
    }

    /// Replaces the admission policy.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the arrival-process seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the request budget.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Attaches a supervised-restart policy.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// Detaches the supervisor — kills become permanent again.
    #[must_use]
    pub fn without_supervisor(mut self) -> Self {
        self.supervisor = None;
        self
    }

    /// Replaces the cluster retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables the windowed-goodput availability series.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_goodput_window(mut self, window: SimTime) -> Self {
        assert!(window > SimTime::ZERO, "goodput window must be positive");
        self.goodput_window = Some(window);
        self
    }

    /// Attaches a reactive autoscaling policy. The policy's `max` must
    /// equal this config's `instances` (checked at fleet construction).
    #[must_use]
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Detaches the autoscaler — every provisioned instance serves.
    #[must_use]
    pub fn without_autoscale(mut self) -> Self {
        self.autoscale = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_override_exactly_one_field() {
        let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 32);
        let built = base
            .clone()
            .with_poisson(500.0)
            .with_queue_cap(3)
            .with_admission(AdmissionPolicy::DropOldest)
            .with_seed(9)
            .with_requests(48);
        assert_eq!(built.arrivals, ArrivalProcess::Poisson { rate_fps: 500.0 });
        assert_eq!(built.queue_cap, Some(3));
        assert_eq!(built.admission, AdmissionPolicy::DropOldest);
        assert_eq!(built.seed, 9);
        assert_eq!(built.requests, 48);
        // Untouched fields survive the chain.
        assert_eq!(built.instances, base.instances);
        assert_eq!(built.max_batch, base.max_batch);
        assert_eq!(built.batch_window, base.batch_window);
        // And the chain is equivalent to struct-update syntax.
        let by_hand = ServingConfig {
            arrivals: ArrivalProcess::poisson(500.0),
            queue_cap: Some(3),
            admission: AdmissionPolicy::DropOldest,
            seed: 9,
            requests: 48,
            ..base
        };
        assert_eq!(format!("{built:?}"), format!("{by_hand:?}"));
    }

    #[test]
    fn arrival_constructors_match_variants() {
        assert_eq!(
            ArrivalProcess::poisson(10.0),
            ArrivalProcess::Poisson { rate_fps: 10.0 }
        );
        assert_eq!(
            ArrivalProcess::closed_loop(4),
            ArrivalProcess::ClosedLoop { clients: 4 }
        );
        let times = vec![SimTime::from_ns(1), SimTime::from_ns(2)];
        assert_eq!(
            ArrivalProcess::trace(times.clone()),
            ArrivalProcess::Trace { times }
        );
    }

    #[test]
    fn with_unbounded_queue_clears_the_cap() {
        let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 1, 1, 1)
            .with_queue_cap(5)
            .with_unbounded_queue();
        assert_eq!(cfg.queue_cap, None);
    }
}
