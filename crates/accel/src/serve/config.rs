//! Serving-experiment configuration: arrival processes, admission
//! policies, and the [`ServingConfig`] that binds a fleet shape to a
//! workload — plus the cheap `Clone`-based builder path sweep call
//! sites use instead of re-constructing configs by hand.

use crate::organization::AcceleratorConfig;
use crate::perf::analyze_layer_batched;
use crate::serve::autoscale::AutoscalePolicy;
use crate::serve::supervisor::Supervisor;
use sconna_sim::time::SimTime;
use sconna_tensor::models::CnnModel;
use serde::{Deserialize, Serialize};

/// How requests enter the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Open loop: exponential inter-arrival times at `rate_fps`
    /// requests per second, independent of service progress.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_fps: f64,
    },
    /// Closed loop: `clients` concurrent users; each fires its next
    /// request the instant its previous one completes — or is shed (a
    /// rejected client immediately retries with a fresh request). This
    /// is the saturation workload that measures peak throughput.
    ClosedLoop {
        /// Number of concurrent clients.
        clients: usize,
    },
    /// Replay: request `i` of the trace arrives at `times[i]`. The trace
    /// length must equal `ServingConfig::requests`. Request ids are
    /// assigned in *time* order (ties by schedule order), so any
    /// permutation of a tie-free trace simulates identically —
    /// the reordering invariance the overload determinism tests pin.
    Trace {
        /// Absolute arrival times (need not be sorted).
        times: Vec<SimTime>,
    },
}

impl ArrivalProcess {
    /// Open-loop Poisson arrivals at `rate_fps` requests per second.
    pub fn poisson(rate_fps: f64) -> Self {
        ArrivalProcess::Poisson { rate_fps }
    }

    /// A closed loop of `clients` zero-think-time users.
    pub fn closed_loop(clients: usize) -> Self {
        ArrivalProcess::ClosedLoop { clients }
    }

    /// Replay of an absolute-arrival-time trace.
    pub fn trace(times: Vec<SimTime>) -> Self {
        ArrivalProcess::Trace { times }
    }
}

/// What the scheduler does with traffic the bounded queue cannot absorb.
///
/// Shedding triggers when a request arrives while the pending queue
/// holds at least `queue_cap × instances` requests (and, for
/// [`AdmissionPolicy::Deadline`], additionally at dispatch time). With
/// `queue_cap: None` only `Deadline` ever sheds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Reject the arriving request (classic tail drop). The default; with
    /// an unbounded queue this is exactly the pre-overload scheduler.
    #[default]
    DropNewest,
    /// Evict the oldest waiting request and admit the newcomer (the
    /// freshest traffic is the most likely to still meet its deadline).
    DropOldest,
    /// Tail drop at the queue cap, plus SLO-aware shedding at dispatch:
    /// any request whose queue wait already exceeds `slo` when an
    /// instance would pick it up is shed instead of served — it could
    /// only have become a late answer nobody is waiting for.
    Deadline {
        /// Queue-wait budget per request.
        slo: SimTime,
    },
    /// Never drop: requests arriving over the cap are admitted onto the
    /// same queue but marked **degraded** — they execute on a cheaper
    /// `fallback_bits`-weight-precision copy of the model
    /// ([`sconna_tensor::network::QuantizedNetwork::with_weight_bits`])
    /// whose shorter stochastic streams make their batches
    /// `2^native / 2^fallback` times faster
    /// ([`AcceleratorConfig::with_native_bits`]). Shedding trades
    /// accuracy instead of availability.
    Degrade {
        /// Weight precision of the fallback model, bits.
        fallback_bits: u8,
    },
}

/// The cluster retry layer: what happens to requests whose batch was
/// aborted by a kill. The default (`all None`) is PR 7 behavior
/// bit-exactly: aborted requests rejoin the queue with no attempt
/// ceiling, no global budget, and no hedging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum *dispatch* attempts per request (so `Some(1)` means no
    /// retries at all: the first abort sheds the request). `None` is
    /// unlimited — every abort re-admits.
    pub max_attempts: Option<u32>,
    /// Global cap on re-admissions across the whole run — retry-storm
    /// protection: once a chaos burst has burned the budget, further
    /// aborted requests are shed
    /// ([`RequestOutcome::ShedRetryBudget`](super::RequestOutcome::ShedRetryBudget))
    /// instead of amplifying the overload. `None` is unlimited.
    pub retry_budget: Option<u64>,
    /// Hedged dispatch for tail latency: if a batch is still in flight
    /// this long after dispatch, a duplicate is issued on an idle
    /// instance (when one exists and no traffic is waiting); first
    /// completion wins, the loser is cancelled. Costs duplicate energy,
    /// insures against a kill or stall of the primary. `None` disables.
    pub hedge_after: Option<SimTime>,
}

impl RetryPolicy {
    /// Limits each request to `n` dispatch attempts.
    ///
    /// # Panics
    /// Panics if `n` is zero — a request needs one attempt to exist.
    #[must_use]
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1, "a request needs at least one dispatch attempt");
        self.max_attempts = Some(n);
        self
    }

    /// Caps total re-admissions across the run.
    #[must_use]
    pub fn with_retry_budget(mut self, budget: u64) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Enables hedged dispatch after `delay` of in-flight time.
    ///
    /// # Panics
    /// Panics if `delay` is zero (hedging at dispatch time would always
    /// double every batch).
    #[must_use]
    pub fn with_hedge_after(mut self, delay: SimTime) -> Self {
        assert!(delay > SimTime::ZERO, "hedge delay must be positive");
        self.hedge_after = Some(delay);
        self
    }
}

/// Latency class of a tenant: how urgently its traffic must turn
/// around. Under [`TenantScheduler::StrictPriority`] a more urgent
/// class overtakes a less urgent one at every batch-formation decision;
/// under the other schedulers the class is recorded in the usage
/// report but does not move scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LatencyClass {
    /// User-facing traffic: overtakes everything else under
    /// strict-priority scheduling.
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput-oriented background traffic: yields to both other
    /// classes under strict-priority scheduling.
    Batch,
}

impl LatencyClass {
    /// Scheduling rank: lower overtakes higher.
    pub(crate) fn rank(self) -> u8 {
        match self {
            LatencyClass::Interactive => 0,
            LatencyClass::Standard => 1,
            LatencyClass::Batch => 2,
        }
    }
}

/// How batch-formation slots are shared between tenants. Scheduling is
/// work-conserving at *batch* granularity: a decision is taken whenever
/// an instance is idle and at least one tenant has a formable batch,
/// and batches are never preempted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantScheduler {
    /// Start-time weighted-fair queueing over per-tenant virtual time:
    /// tenant `t` carries a virtual clock advanced by
    /// `batch_size / weight` at every dispatch, a newly-backlogged
    /// tenant rejoins at the fleet's current virtual time (no hoarded
    /// credit), and the backlogged tenant with the smallest clock
    /// dispatches next. Long-run service converges on the weight
    /// shares; one tenant's overload cannot starve another. The
    /// default.
    #[default]
    WeightedFair,
    /// Strict priority by [`LatencyClass`] rank, weighted-fair within a
    /// class: an interactive tenant's formable batch overtakes standard
    /// and batch-class traffic at every batch-formation decision.
    StrictPriority,
    /// The naive shared-queue baseline: tenants' queues are drained in
    /// global arrival order (earliest waiting head request dispatches
    /// first), exactly as if everyone shared one FIFO. No isolation —
    /// an overloaded tenant inflates every other tenant's tail latency.
    /// The `tenant_sweep` bench quantifies the blowup.
    SharedFifo,
}

/// One tenant of a multi-tenant serving fleet: a model, a fair-share
/// weight, a latency class and a private arrival process. Registered on
/// [`ServingConfig::with_tenants`]; requests of different tenants wait
/// in per-tenant bounded queues and are batched per tenant (a batch
/// never mixes models).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name, carried into the per-tenant usage report.
    pub name: String,
    /// Index of this tenant's model in the model slice passed to
    /// [`Fleet::new_multi`](crate::serve::Fleet::new_multi). Tenants may
    /// share a model index (and then share prepared weights and never
    /// pay a swap between each other).
    pub model: usize,
    /// Weighted-fair share. Service under contention converges on
    /// `weight / Σ weights`; must be positive and finite.
    pub weight: f64,
    /// Latency class ([`TenantScheduler::StrictPriority`] overtake
    /// order).
    pub latency_class: LatencyClass,
    /// This tenant's private arrival process.
    pub arrivals: ArrivalProcess,
    /// Requests this tenant offers over the run. The config-level
    /// `requests` must equal the sum over tenants
    /// ([`ServingConfig::with_tenants`] maintains this).
    pub requests: usize,
    /// Per-instance bound of this tenant's private queue; `None`
    /// inherits the config-level `queue_cap`.
    pub queue_cap: Option<usize>,
}

impl TenantSpec {
    /// A standard-class, weight-1 tenant of `model` offering `requests`
    /// requests through `arrivals`.
    pub fn new(
        name: impl Into<String>,
        model: usize,
        arrivals: ArrivalProcess,
        requests: usize,
    ) -> Self {
        Self {
            name: name.into(),
            model,
            weight: 1.0,
            latency_class: LatencyClass::Standard,
            arrivals,
            requests,
            queue_cap: None,
        }
    }

    /// Replaces the fair-share weight.
    #[must_use]
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Replaces the latency class.
    #[must_use]
    pub fn with_latency_class(mut self, class: LatencyClass) -> Self {
        self.latency_class = class;
        self
    }

    /// Bounds this tenant's private queue at `cap` requests per
    /// instance, overriding the config-level cap.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }
}

/// Why a [`ServingConfig`] cannot be simulated. Returned by
/// [`ServingConfig::validate`] and the `Fleet::try_*` constructors;
/// the panicking constructors panic with this error's message, so the
/// legacy panic texts are preserved verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingConfigError {
    /// `instances == 0`.
    NoInstances,
    /// `max_batch == 0`.
    ZeroBatchLimit,
    /// `requests == 0`.
    NoRequests,
    /// `queue_cap == Some(0)` (config-level or on the named tenant).
    ZeroQueueCap {
        /// Offending tenant name; `None` for the config-level cap.
        tenant: Option<String>,
    },
    /// A closed loop with zero clients (config-level or tenant).
    NoClients,
    /// A trace whose length disagrees with its request budget.
    TraceLengthMismatch {
        /// Trace length.
        trace: usize,
        /// Request budget it must equal.
        requests: usize,
    },
    /// A Poisson arrival process with a non-positive (or non-finite)
    /// rate.
    NonPositiveRate {
        /// The offending rate.
        rate_fps: f64,
    },
    /// The autoscale policy is internally inconsistent (bounds,
    /// interval or headroom).
    Autoscale(String),
    /// Autoscale `max` disagrees with the provisioned pool.
    AutoscalePoolMismatch {
        /// The policy's `max`.
        max: usize,
        /// The config's `instances`.
        instances: usize,
    },
    /// A zero goodput window.
    ZeroGoodputWindow,
    /// A tenant with a non-positive or non-finite weight.
    TenantWeight {
        /// Offending tenant name.
        tenant: String,
        /// The offending weight.
        weight: f64,
    },
    /// A tenant offering zero requests.
    TenantNoRequests {
        /// Offending tenant name.
        tenant: String,
    },
    /// The config-level request budget disagrees with the sum over
    /// tenants.
    TenantRequestSum {
        /// Sum of tenant request budgets.
        sum: usize,
        /// Config-level `requests`.
        requests: usize,
    },
    /// A tenant naming a model index outside the model slice (checked
    /// at fleet construction, when the slice is known).
    TenantModelOutOfRange {
        /// Offending tenant name.
        tenant: String,
        /// The out-of-range model index.
        model: usize,
        /// Number of models provided.
        models: usize,
    },
}

impl std::fmt::Display for ServingConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoInstances => write!(f, "need at least one instance"),
            Self::ZeroBatchLimit => write!(f, "max_batch must be positive"),
            Self::NoRequests => write!(f, "need at least one request"),
            Self::ZeroQueueCap { tenant: None } => {
                write!(f, "queue_cap must be positive (use None for unbounded)")
            }
            Self::ZeroQueueCap { tenant: Some(t) } => write!(
                f,
                "tenant {t:?}: queue_cap must be positive (use None to inherit)"
            ),
            Self::NoClients => write!(f, "closed loop needs at least one client"),
            Self::TraceLengthMismatch { trace, requests } => write!(
                f,
                "trace length must equal the request count ({trace} vs {requests})"
            ),
            Self::NonPositiveRate { rate_fps } => {
                write!(f, "Poisson rate must be positive (got {rate_fps})")
            }
            Self::Autoscale(msg) => write!(f, "{msg}"),
            Self::AutoscalePoolMismatch { max, instances } => write!(
                f,
                "autoscale max ({max}) must equal the provisioned instance pool ({instances})"
            ),
            Self::ZeroGoodputWindow => write!(f, "goodput window must be positive"),
            Self::TenantWeight { tenant, weight } => write!(
                f,
                "tenant {tenant:?}: weight must be positive and finite (got {weight})"
            ),
            Self::TenantNoRequests { tenant } => {
                write!(f, "tenant {tenant:?}: need at least one request")
            }
            Self::TenantRequestSum { sum, requests } => write!(
                f,
                "requests ({requests}) must equal the sum over tenants ({sum}); \
                 use with_tenants to keep them in sync"
            ),
            Self::TenantModelOutOfRange {
                tenant,
                model,
                models,
            } => write!(
                f,
                "tenant {tenant:?} names model {model} of a {models}-model slice"
            ),
        }
    }
}

impl std::error::Error for ServingConfigError {}

fn validate_arrivals(arrivals: &ArrivalProcess, requests: usize) -> Result<(), ServingConfigError> {
    match arrivals {
        ArrivalProcess::Poisson { rate_fps } => {
            if !(*rate_fps > 0.0 && rate_fps.is_finite()) {
                return Err(ServingConfigError::NonPositiveRate {
                    rate_fps: *rate_fps,
                });
            }
        }
        ArrivalProcess::ClosedLoop { clients } => {
            if *clients == 0 {
                return Err(ServingConfigError::NoClients);
            }
        }
        ArrivalProcess::Trace { times } => {
            if times.len() != requests {
                return Err(ServingConfigError::TraceLengthMismatch {
                    trace: times.len(),
                    requests,
                });
            }
        }
    }
    Ok(())
}

/// One serving experiment: a fleet, a scheduler policy, a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Accelerator configuration every instance runs.
    pub accelerator: AcceleratorConfig,
    /// Number of accelerator instances in the fleet.
    pub instances: usize,
    /// Largest batch the scheduler packs onto one instance.
    pub max_batch: usize,
    /// How long the oldest pending request may wait before a partial
    /// batch is flushed to an idle instance.
    pub batch_window: SimTime,
    /// Pending-queue bound, requests **per instance** (the shared queue
    /// holds at most `queue_cap × instances`); `None` is unbounded.
    pub queue_cap: Option<usize>,
    /// What happens to traffic over the bound.
    pub admission: AdmissionPolicy,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Total requests to serve; the simulation ends when every one has
    /// been served, degraded or shed.
    pub requests: usize,
    /// Seed for the arrival process (unused by `ClosedLoop`/`Trace`).
    pub seed: u64,
    /// Supervised-restart policy; `None` means faults are permanent
    /// unless a scripted [`FaultEvent::Restart`](super::FaultEvent::Restart)
    /// revives the instance (PR 7 behavior).
    pub supervisor: Option<Supervisor>,
    /// Cluster retry/hedging policy for kill-aborted requests.
    pub retry: RetryPolicy,
    /// Window of the availability goodput series
    /// ([`ServingReport::goodput_series`](super::ServingReport::goodput_series));
    /// `None` disables the series.
    pub goodput_window: Option<SimTime>,
    /// Reactive autoscaling policy; `None` keeps every provisioned
    /// instance active (the pre-autoscale behavior, bit-exactly). When
    /// set, `instances` is the *provisioned* pool and the policy's
    /// `max` must equal it — only `active` instances take traffic, the
    /// rest stand by.
    pub autoscale: Option<AutoscalePolicy>,
    /// The tenant roster. Empty (the default and every legacy config)
    /// means single-tenant: the fleet synthesizes one weight-1 tenant
    /// from the config-level `arrivals`/`requests`/`queue_cap` fields
    /// and behaves bit-identically to the pre-tenant scheduler. When
    /// non-empty, the config-level `arrivals` is ignored and `requests`
    /// must equal the sum of tenant budgets
    /// ([`ServingConfig::with_tenants`] keeps them in sync).
    pub tenants: Vec<TenantSpec>,
    /// How batch-formation slots are shared between tenants. Irrelevant
    /// (but harmless) with fewer than two tenants.
    pub tenant_scheduler: TenantScheduler,
}

impl ServingConfig {
    /// A closed-loop saturation test: `2 × instances × max_batch`
    /// zero-think-time clients — enough that whenever an instance goes
    /// idle a full batch is already waiting, so every batch slot stays
    /// occupied and the measured FPS is the fleet's service **capacity**.
    /// That capacity is the knee of the open-loop overload sweep: offered
    /// load below it is served at the offered rate, load above it can
    /// only be absorbed by queueing and shedding (see
    /// [`overload_sweep`](crate::serve::overload_sweep) and the
    /// closed-form [`ServingConfig::estimated_capacity_fps`], which this
    /// measured knee is unit-pinned against).
    ///
    /// Unbounded queue, [`AdmissionPolicy::DropNewest`] — i.e. no
    /// shedding: the closed loop self-limits at `clients` outstanding
    /// requests.
    pub fn saturation(
        accelerator: AcceleratorConfig,
        instances: usize,
        max_batch: usize,
        requests: usize,
    ) -> Self {
        Self {
            accelerator,
            instances,
            max_batch,
            batch_window: SimTime::from_ns(100_000), // 100 µs
            queue_cap: None,
            admission: AdmissionPolicy::DropNewest,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 2 * instances * max_batch,
            },
            requests,
            seed: 0,
            supervisor: None,
            retry: RetryPolicy::default(),
            goodput_window: None,
            autoscale: None,
            tenants: Vec::new(),
            tenant_scheduler: TenantScheduler::WeightedFair,
        }
    }

    /// Checks every model-independent invariant a fleet construction
    /// relies on, returning the first violation instead of the
    /// downstream panic or mid-run hang it used to cause (a zero queue
    /// cap, a zero batch limit, a non-positive Poisson rate, an
    /// autoscale `max` that disagrees with the pool, ...). Tenant model
    /// indices are checked at fleet construction, where the model slice
    /// is known.
    pub fn validate(&self) -> Result<(), ServingConfigError> {
        if self.instances == 0 {
            return Err(ServingConfigError::NoInstances);
        }
        if self.max_batch == 0 {
            return Err(ServingConfigError::ZeroBatchLimit);
        }
        if self.requests == 0 {
            return Err(ServingConfigError::NoRequests);
        }
        if self.queue_cap == Some(0) {
            return Err(ServingConfigError::ZeroQueueCap { tenant: None });
        }
        if self.goodput_window == Some(SimTime::ZERO) {
            return Err(ServingConfigError::ZeroGoodputWindow);
        }
        if let Some(policy) = self.autoscale {
            policy
                .try_validate()
                .map_err(ServingConfigError::Autoscale)?;
            if policy.max != self.instances {
                return Err(ServingConfigError::AutoscalePoolMismatch {
                    max: policy.max,
                    instances: self.instances,
                });
            }
        }
        if self.tenants.is_empty() {
            validate_arrivals(&self.arrivals, self.requests)?;
        } else {
            let mut sum = 0usize;
            for t in &self.tenants {
                if !(t.weight > 0.0 && t.weight.is_finite()) {
                    return Err(ServingConfigError::TenantWeight {
                        tenant: t.name.clone(),
                        weight: t.weight,
                    });
                }
                if t.requests == 0 {
                    return Err(ServingConfigError::TenantNoRequests {
                        tenant: t.name.clone(),
                    });
                }
                if t.queue_cap == Some(0) {
                    return Err(ServingConfigError::ZeroQueueCap {
                        tenant: Some(t.name.clone()),
                    });
                }
                validate_arrivals(&t.arrivals, t.requests)?;
                sum += t.requests;
            }
            if sum != self.requests {
                return Err(ServingConfigError::TenantRequestSum {
                    sum,
                    requests: self.requests,
                });
            }
        }
        Ok(())
    }

    /// Closed-form service-capacity estimate: `instances × max_batch`
    /// requests complete every full-batch makespan, so
    /// `capacity = instances · max_batch / makespan(max_batch)`. This is
    /// the saturation throughput the closed-loop measurement converges to
    /// (it ignores window flushes and the final partial batch, so short
    /// runs measure slightly below it) and the knee of the open-loop
    /// overload sweep — pinned against both in this module's tests so
    /// the estimate and the simulator cannot silently diverge.
    ///
    /// The estimate reflects the tier mix the config actually runs:
    /// under [`AdmissionPolicy::Degrade`] sustained overload keeps the
    /// queue pinned at its cap, so admitted traffic lands on the faster
    /// `fallback_bits` tier and the absorbable rate is the *fallback*
    /// operating point's ([`AcceleratorConfig::with_native_bits`]) —
    /// estimating from the full-fidelity timing alone under-states
    /// capacity and made the autoscaler over-scale a degraded fleet.
    /// Every other policy serves full-fidelity only and uses the native
    /// timing, bit-identically to the pre-fix estimate.
    pub fn estimated_capacity_fps(&self, model: &CnnModel) -> f64 {
        let accel = match self.admission {
            AdmissionPolicy::Degrade { fallback_bits } => {
                self.accelerator.with_native_bits(fallback_bits)
            }
            _ => self.accelerator,
        };
        let makespan = model.workloads.iter().fold(SimTime::ZERO, |acc, w| {
            acc + analyze_layer_batched(&accel, w, self.max_batch).total
        });
        (self.instances * self.max_batch) as f64 / makespan.as_secs_f64()
    }

    // ---- Builder path ------------------------------------------------
    //
    // `ArrivalProcess` lost `Copy` when `Trace` arrived (a `Vec` of
    // times), so sweep call sites that used to copy a base config now
    // clone-and-override instead of re-constructing every field by hand.
    // Each method is a cheap move-through: `base.clone().with_seed(7)`.

    /// Replaces the arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Replaces the arrival process with open-loop Poisson arrivals at
    /// `rate_fps` — the per-point override [`overload_sweep`] applies.
    ///
    /// [`overload_sweep`]: crate::serve::overload_sweep
    #[must_use]
    pub fn with_poisson(self, rate_fps: f64) -> Self {
        self.with_arrivals(ArrivalProcess::Poisson { rate_fps })
    }

    /// Bounds the pending queue at `cap` requests per instance.
    #[must_use]
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Removes the pending-queue bound.
    #[must_use]
    pub fn with_unbounded_queue(mut self) -> Self {
        self.queue_cap = None;
        self
    }

    /// Replaces the admission policy.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the arrival-process seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the request budget.
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Attaches a supervised-restart policy.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// Detaches the supervisor — kills become permanent again.
    #[must_use]
    pub fn without_supervisor(mut self) -> Self {
        self.supervisor = None;
        self
    }

    /// Replaces the cluster retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables the windowed-goodput availability series.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_goodput_window(mut self, window: SimTime) -> Self {
        assert!(window > SimTime::ZERO, "goodput window must be positive");
        self.goodput_window = Some(window);
        self
    }

    /// Attaches a reactive autoscaling policy. The policy's `max` must
    /// equal this config's `instances` (checked at fleet construction).
    #[must_use]
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Detaches the autoscaler — every provisioned instance serves.
    #[must_use]
    pub fn without_autoscale(mut self) -> Self {
        self.autoscale = None;
        self
    }

    /// Registers the tenant roster and syncs the config-level request
    /// budget to the sum over tenants (the invariant
    /// [`ServingConfig::validate`] checks). The config-level `arrivals`
    /// becomes irrelevant; per-tenant arrivals drive the run.
    #[must_use]
    pub fn with_tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.requests = tenants.iter().map(|t| t.requests).sum();
        self.tenants = tenants;
        self
    }

    /// Replaces the inter-tenant scheduler.
    #[must_use]
    pub fn with_tenant_scheduler(mut self, scheduler: TenantScheduler) -> Self {
        self.tenant_scheduler = scheduler;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_override_exactly_one_field() {
        let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 32);
        let built = base
            .clone()
            .with_poisson(500.0)
            .with_queue_cap(3)
            .with_admission(AdmissionPolicy::DropOldest)
            .with_seed(9)
            .with_requests(48);
        assert_eq!(built.arrivals, ArrivalProcess::Poisson { rate_fps: 500.0 });
        assert_eq!(built.queue_cap, Some(3));
        assert_eq!(built.admission, AdmissionPolicy::DropOldest);
        assert_eq!(built.seed, 9);
        assert_eq!(built.requests, 48);
        // Untouched fields survive the chain.
        assert_eq!(built.instances, base.instances);
        assert_eq!(built.max_batch, base.max_batch);
        assert_eq!(built.batch_window, base.batch_window);
        // And the chain is equivalent to struct-update syntax.
        let by_hand = ServingConfig {
            arrivals: ArrivalProcess::poisson(500.0),
            queue_cap: Some(3),
            admission: AdmissionPolicy::DropOldest,
            seed: 9,
            requests: 48,
            ..base
        };
        assert_eq!(format!("{built:?}"), format!("{by_hand:?}"));
    }

    #[test]
    fn arrival_constructors_match_variants() {
        assert_eq!(
            ArrivalProcess::poisson(10.0),
            ArrivalProcess::Poisson { rate_fps: 10.0 }
        );
        assert_eq!(
            ArrivalProcess::closed_loop(4),
            ArrivalProcess::ClosedLoop { clients: 4 }
        );
        let times = vec![SimTime::from_ns(1), SimTime::from_ns(2)];
        assert_eq!(
            ArrivalProcess::trace(times.clone()),
            ArrivalProcess::Trace { times }
        );
    }

    #[test]
    fn with_unbounded_queue_clears_the_cap() {
        let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 1, 1, 1)
            .with_queue_cap(5)
            .with_unbounded_queue();
        assert_eq!(cfg.queue_cap, None);
    }

    fn base() -> ServingConfig {
        ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 4, 32)
    }

    #[test]
    fn validate_accepts_every_saturation_shape() {
        assert_eq!(base().validate(), Ok(()));
        assert_eq!(base().with_poisson(100.0).validate(), Ok(()));
        assert_eq!(
            base()
                .with_requests(3)
                .with_arrivals(ArrivalProcess::trace(vec![SimTime::ZERO; 3]))
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_degenerate_shapes_with_the_legacy_messages() {
        // Each rejection used to be a downstream panic (or, for the
        // Poisson rate, a mid-run assert); the error Display carries
        // the exact legacy message so panicking callers see no change.
        let cases: Vec<(ServingConfig, &str)> = vec![
            (
                ServingConfig {
                    instances: 0,
                    ..base()
                },
                "need at least one instance",
            ),
            (
                ServingConfig {
                    max_batch: 0,
                    ..base()
                },
                "max_batch must be positive",
            ),
            (base().with_requests(0), "need at least one request"),
            (
                base().with_queue_cap(0),
                "queue_cap must be positive (use None for unbounded)",
            ),
            (
                base().with_arrivals(ArrivalProcess::closed_loop(0)),
                "closed loop needs at least one client",
            ),
            (
                base().with_arrivals(ArrivalProcess::trace(vec![SimTime::ZERO; 3])),
                "trace length must equal the request count",
            ),
            (base().with_poisson(0.0), "Poisson rate must be positive"),
            (
                base().with_poisson(f64::NAN),
                "Poisson rate must be positive",
            ),
            (
                base().with_autoscale(AutoscalePolicy::new(1, 8)),
                "must equal the provisioned instance pool",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().expect_err(needle);
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn validate_rejects_inconsistent_tenant_rosters() {
        let t = |w: f64, requests: usize| TenantSpec {
            weight: w,
            ..TenantSpec::new("a", 0, ArrivalProcess::closed_loop(2), requests)
        };
        let bad_weight = base().with_tenants(vec![t(0.0, 8)]);
        assert!(bad_weight
            .validate()
            .unwrap_err()
            .to_string()
            .contains("weight"));
        let no_requests = ServingConfig {
            requests: 8,
            tenants: vec![t(1.0, 0)],
            ..base()
        };
        assert!(matches!(
            no_requests.validate(),
            Err(ServingConfigError::TenantNoRequests { .. })
        ));
        let bad_sum = ServingConfig {
            requests: 99,
            tenants: vec![t(1.0, 8)],
            ..base()
        };
        assert!(matches!(
            bad_sum.validate(),
            Err(ServingConfigError::TenantRequestSum {
                sum: 8,
                requests: 99
            })
        ));
        let zero_cap = base().with_tenants(vec![t(1.0, 8).with_queue_cap(0)]);
        assert!(matches!(
            zero_cap.validate(),
            Err(ServingConfigError::ZeroQueueCap { tenant: Some(_) })
        ));
    }

    #[test]
    fn with_tenants_syncs_the_request_budget() {
        let cfg = base().with_tenants(vec![
            TenantSpec::new("a", 0, ArrivalProcess::closed_loop(2), 10),
            TenantSpec::new("b", 1, ArrivalProcess::poisson(50.0), 22),
        ]);
        assert_eq!(cfg.requests, 32);
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(cfg.tenant_scheduler, TenantScheduler::WeightedFair);
        let strict = cfg.with_tenant_scheduler(TenantScheduler::StrictPriority);
        assert_eq!(strict.tenant_scheduler, TenantScheduler::StrictPriority);
    }

    #[test]
    fn degrade_capacity_reflects_the_fallback_tier() {
        // The satellite bugfix pin: under Degrade the absorbable rate in
        // the shedding regime is the fallback operating point's — faster
        // streams, higher capacity. Every other policy keeps the native
        // estimate bit-identically.
        let model = sconna_tensor::models::shufflenet_v2();
        let native = base().estimated_capacity_fps(&model);
        let degrade = base()
            .with_admission(AdmissionPolicy::Degrade { fallback_bits: 4 })
            .estimated_capacity_fps(&model);
        assert!(
            degrade > 2.0 * native,
            "4-bit fallback capacity {degrade} must dwarf native {native}"
        );
        // The fix is exactly "estimate at the fallback operating point".
        let repointed = ServingConfig {
            accelerator: AcceleratorConfig::sconna().with_native_bits(4),
            ..base()
        }
        .estimated_capacity_fps(&model);
        assert_eq!(degrade.to_bits(), repointed.to_bits());
        // Non-Degrade policies are untouched by the fix.
        let drop_oldest = base()
            .with_admission(AdmissionPolicy::DropOldest)
            .estimated_capacity_fps(&model);
        assert_eq!(native.to_bits(), drop_oldest.to_bits());
    }

    #[test]
    fn latency_classes_rank_interactive_first() {
        assert!(LatencyClass::Interactive.rank() < LatencyClass::Standard.rank());
        assert!(LatencyClass::Standard.rank() < LatencyClass::Batch.rank());
        assert_eq!(LatencyClass::default(), LatencyClass::Standard);
    }
}
