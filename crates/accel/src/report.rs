//! Report formatting for the benchmark harness: the Fig. 9 comparison
//! table, gmean speedup summaries, and the serving-sweep table.

use crate::organization::AcceleratorConfig;
use crate::perf::{simulate_inference, InferencePerf};
use crate::serve::{OverloadPoint, ServingReport};
use sconna_sim::stats::gmean;
use sconna_tensor::models::CnnModel;
use std::fmt::Write as _;

/// Boxed metric selector used by the speedup table.
type MetricFn = Box<dyn Fn(&InferencePerf) -> f64>;

/// The full Fig. 9 result grid: one [`InferencePerf`] per
/// (accelerator, model) pair, accelerators outermost.
pub struct Fig9Results {
    /// Accelerators in evaluation order.
    pub accelerators: Vec<AcceleratorConfig>,
    /// Model names in evaluation order.
    pub models: Vec<String>,
    /// Results, `[accelerator][model]`.
    pub results: Vec<Vec<InferencePerf>>,
}

/// Runs the full Fig. 9 grid.
pub fn run_fig9(models: &[CnnModel]) -> Fig9Results {
    let accelerators = AcceleratorConfig::all().to_vec();
    let results = accelerators
        .iter()
        .map(|cfg| models.iter().map(|m| simulate_inference(cfg, m)).collect())
        .collect();
    Fig9Results {
        accelerators,
        models: models.iter().map(|m| m.name.clone()).collect(),
        results,
    }
}

impl Fig9Results {
    /// Gmean ratio of a metric between accelerator rows `a` and `b`.
    pub fn gmean_ratio(&self, a: usize, b: usize, metric: impl Fn(&InferencePerf) -> f64) -> f64 {
        let ratios: Vec<f64> = self.results[a]
            .iter()
            .zip(&self.results[b])
            .map(|(ra, rb)| metric(ra) / metric(rb))
            .collect();
        gmean(&ratios)
    }

    /// Formats one metric as a table with per-model columns.
    pub fn format_metric(
        &self,
        title: &str,
        unit: &str,
        metric: impl Fn(&InferencePerf) -> f64,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title} ({unit})");
        let _ = write!(out, "{:<18}", "accelerator");
        for m in &self.models {
            let _ = write!(out, "{m:>16}");
        }
        let _ = writeln!(out, "{:>12}", "gmean");
        for (ai, cfg) in self.accelerators.iter().enumerate() {
            let _ = write!(out, "{:<18}", cfg.name);
            let values: Vec<f64> = self.results[ai].iter().map(&metric).collect();
            for v in &values {
                let _ = write!(out, "{v:>16.3}");
            }
            let _ = writeln!(out, "{:>12.3}", gmean(&values));
        }
        out
    }

    /// Formats the headline gmean speedups of accelerator 0 (SCONNA)
    /// over the others, against the paper's published factors.
    pub fn format_speedups(&self) -> String {
        let paper = [
            ("FPS", [66.5, 146.4]),
            ("FPS/W", [90.0, 183.0]),
            ("FPS/W/mm2", [91.0, 184.0]),
        ];
        let metrics: [MetricFn; 3] = [
            Box::new(|p| p.fps),
            Box::new(|p| p.fps_per_w),
            Box::new(|p| p.fps_per_w_per_mm2),
        ];
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12}{:>24}{:>14}{:>24}{:>14}",
            "metric", "SCONNA/MAM (measured)", "(paper)", "SCONNA/AMM (measured)", "(paper)"
        );
        for ((name, paper_vals), metric) in paper.iter().zip(metrics.iter()) {
            let m = self.gmean_ratio(0, 1, metric);
            let a = self.gmean_ratio(0, 2, metric);
            let _ = writeln!(
                out,
                "{:<12}{:>23.1}x{:>13.1}x{:>23.1}x{:>13.1}x",
                name, m, paper_vals[0], a, paper_vals[1]
            );
        }
        out
    }
}

/// Formats a serving sweep as a table: one row per report, columns for
/// fleet shape, throughput, latency percentiles, utilization and energy.
pub fn format_serving_sweep(reports: &[ServingReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6}{:>7}{:>12}{:>12}{:>12}{:>12}{:>8}{:>8}{:>14}",
        "inst", "batch", "FPS", "p50", "p95", "p99", "fill", "util", "J/inference"
    );
    for r in reports {
        let mean_util: f64 = if r.utilization.is_empty() {
            0.0
        } else {
            r.utilization.iter().sum::<f64>() / r.utilization.len() as f64
        };
        let _ = writeln!(
            out,
            "{:<6}{:>7}{:>12.1}{:>12}{:>12}{:>12}{:>8.2}{:>8.2}{:>14.3e}",
            r.instances,
            r.max_batch,
            r.fps,
            r.latency.p50.to_string(),
            r.latency.p95.to_string(),
            r.latency.p99.to_string(),
            r.mean_batch_fill,
            mean_util,
            r.energy_per_inference_j,
        );
    }
    out
}

/// Formats an overload sweep as a table: one row per offered-load point
/// with goodput, shed accounting, tail latency, queue depth and the
/// accuracy-under-shedding columns.
pub fn format_overload_sweep(points: &[OverloadPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12}{:>12}{:>8}{:>10}{:>12}{:>12}{:>8}{:>10}{:>10}",
        "offered", "goodput", "drop%", "degraded", "p50", "p99", "maxQ", "acc-adm", "acc-off"
    );
    for p in points {
        let s = &p.report.serving;
        let _ = writeln!(
            out,
            "{:<12.0}{:>12.0}{:>8.1}{:>10}{:>12}{:>12}{:>8}{:>9.1}%{:>9.1}%",
            p.offered_fps,
            s.goodput_fps,
            100.0 * s.drop_rate,
            s.degraded,
            s.latency.p50.to_string(),
            s.latency.p99.to_string(),
            s.queue_depth.max_depth(),
            100.0 * p.report.accuracy_under_load,
            100.0 * p.report.accuracy_offered,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sconna_tensor::models::shufflenet_v2;

    #[test]
    fn fig9_grid_dimensions() {
        let models = vec![shufflenet_v2()];
        let grid = run_fig9(&models);
        assert_eq!(grid.accelerators.len(), 3);
        assert_eq!(grid.results.len(), 3);
        assert_eq!(grid.results[0].len(), 1);
    }

    #[test]
    fn format_contains_all_accelerators() {
        let models = vec![shufflenet_v2()];
        let grid = run_fig9(&models);
        let table = grid.format_metric("FPS", "frames/s", |p| p.fps);
        assert!(table.contains("SCONNA"));
        assert!(table.contains("MAM (HOLYLIGHT)"));
        assert!(table.contains("AMM (DEAPCNN)"));
        assert!(table.contains("gmean"));
        let speedups = grid.format_speedups();
        assert!(speedups.contains("FPS/W/mm2"));
    }

    #[test]
    fn serving_table_has_one_row_per_report() {
        use crate::serve::{simulate_serving, ServingConfig};
        let model = shufflenet_v2();
        let reports: Vec<ServingReport> = [1usize, 2]
            .into_iter()
            .map(|i| {
                simulate_serving(
                    &ServingConfig::saturation(AcceleratorConfig::sconna(), i, 2, 8),
                    &model,
                )
            })
            .collect();
        let table = format_serving_sweep(&reports);
        assert_eq!(table.lines().count(), 3, "header + 2 rows");
        assert!(table.contains("J/inference"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn overload_table_has_one_row_per_point() {
        use crate::engine::SconnaEngine;
        use crate::serve::{overload_sweep, FunctionalWorkload, ServingConfig};
        use sconna_tensor::dataset::Sample;
        use sconna_tensor::layers::QFc;
        use sconna_tensor::network::{QLayer, QuantizedNetwork};
        use sconna_tensor::quant::ActivationQuant;
        use sconna_tensor::Tensor;
        let net = QuantizedNetwork {
            input_quant: ActivationQuant {
                scale: 1.0 / 255.0,
                bits: 8,
            },
            layers: vec![
                QLayer::GlobalAvgPool,
                QLayer::Fc(QFc {
                    name: "fc".into(),
                    weights: Tensor::from_vec(&[2, 1], vec![127, -127]),
                    bias: vec![0.0, 0.0],
                    dequant: 1.0,
                }),
            ],
        };
        let samples = vec![Sample {
            image: Tensor::from_fn(&[1, 4, 4], |_| 0.5),
            label: 0,
        }];
        let engine = SconnaEngine::paper_default(1);
        let model = shufflenet_v2();
        let base = ServingConfig {
            queue_cap: Some(2),
            ..ServingConfig::saturation(AcceleratorConfig::sconna(), 1, 2, 8)
        };
        let cap = base.estimated_capacity_fps(&model);
        let workload = FunctionalWorkload {
            net: &net,
            fallback: None,
            fallback_engine: None,
            samples: &samples,
            engine: &engine,
            workers: 1,
        };
        let points = overload_sweep(&base, &model, &workload, &[0.5 * cap, 2.0 * cap], 1);
        let table = format_overload_sweep(&points);
        assert_eq!(table.lines().count(), 3, "header + 2 rows");
        assert!(table.contains("acc-adm"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn gmean_ratio_of_self_is_one() {
        let models = vec![shufflenet_v2()];
        let grid = run_fig9(&models);
        let r = grid.gmean_ratio(1, 1, |p| p.fps);
        assert!((r - 1.0).abs() < 1e-12);
    }
}
