//! # sconna-accel — system-level accelerator models
//!
//! The top of the SCONNA reproduction stack: the SCONNA accelerator
//! (Fig. 8 — 1024 VDPEs of 176 OSMs each), the two analog photonic
//! baselines it is compared against (MAM / HOLYLIGHT and AMM / DEAP-CNN,
//! area-proportionately scaled), the weight-stationary transaction-level
//! performance simulation behind Fig. 9, and the accuracy-under-error
//! pipeline behind Table V.
//!
//! ```
//! use sconna_accel::organization::AcceleratorConfig;
//! use sconna_accel::perf::simulate_inference;
//! use sconna_tensor::models::shufflenet_v2;
//!
//! let perf = simulate_inference(&AcceleratorConfig::sconna(), &shufflenet_v2());
//! assert!(perf.fps > 0.0);
//! ```

pub mod accuracy;
pub mod engine;
pub mod mapper;
pub mod organization;
pub mod perf;
pub mod peripherals;
pub mod report;
pub mod serve;

pub use engine::SconnaEngine;
pub use organization::{AcceleratorConfig, AcceleratorKind};
pub use perf::{simulate_inference, InferencePerf};
pub use serve::{
    simulate_serving, simulate_serving_functional, ArrivalProcess, FaultEvent, FaultPlan, Fleet,
    FleetSnapshot, FunctionalServingReport, FunctionalWorkload, ServingConfig, ServingReport,
};
