//! Table IV peripheral parameters.
//!
//! Power in watts, area in mm², latency as [`SimTime`]. The serializer and
//! LUT areas in the published table are clearly in different units than
//! the rest (5.9 mm² *per OSM* would dwarf the die); we interpret them as
//! 10⁻³ mm² class figures, which matches the cited sources (a 45 nm SerDes
//! lane and a gain-cell eDRAM macro), and document the reinterpretation in
//! EXPERIMENTS.md.

use sconna_sim::time::SimTime;

/// One Table IV row.
#[derive(Debug, Clone, Copy)]
pub struct PeripheralSpec {
    /// Active power, W.
    pub power_w: f64,
    /// Area, mm².
    pub area_mm2: f64,
    /// Operation latency.
    pub latency: SimTime,
}

/// Tile-level psum reduction network (per reduction lane).
pub const REDUCTION_NETWORK: PeripheralSpec = PeripheralSpec {
    power_w: 0.05e-3,
    area_mm2: 3.0e-5,
    latency: SimTime::from_ps(3_125),
};

/// Activation unit.
pub const ACTIVATION_UNIT: PeripheralSpec = PeripheralSpec {
    power_w: 0.52e-3,
    area_mm2: 6.0e-4,
    latency: SimTime::from_ps(780),
};

/// IO interface (per tile).
pub const IO_INTERFACE: PeripheralSpec = PeripheralSpec {
    power_w: 140.18e-3,
    area_mm2: 2.44e-2,
    latency: SimTime::from_ps(780),
};

/// Pooling unit.
pub const POOLING_UNIT: PeripheralSpec = PeripheralSpec {
    power_w: 0.4e-3,
    area_mm2: 2.4e-4,
    latency: SimTime::from_ps(3_125),
};

/// eDRAM scratchpad (per tile).
pub const EDRAM: PeripheralSpec = PeripheralSpec {
    power_w: 41.1e-3,
    area_mm2: 1.66e-1,
    latency: SimTime::from_ps(1_560),
};

/// Shared bus (per tile); latency is 5 cycles at the 1.25 GHz tile clock.
pub const BUS: PeripheralSpec = PeripheralSpec {
    power_w: 7e-3,
    area_mm2: 9.0e-3,
    latency: SimTime::from_ps(4_000),
};

/// Mesh router (per tile); latency is 2 cycles.
pub const ROUTER: PeripheralSpec = PeripheralSpec {
    power_w: 42e-3,
    area_mm2: 0.151,
    latency: SimTime::from_ps(1_600),
};

/// 4-bit 10 GS/s DAC used by the analog baselines (per modulator MRR).
pub const ANALOG_DAC: PeripheralSpec = PeripheralSpec {
    power_w: 30e-3,
    area_mm2: 0.034,
    latency: SimTime::from_ps(780),
};

/// 5 GS/s SAR ADC used by the analog baselines (per summation element).
pub const ANALOG_ADC: PeripheralSpec = PeripheralSpec {
    power_w: 29e-3,
    area_mm2: 0.103,
    latency: SimTime::from_ps(780),
};

/// 8-bit 1 GS/s SAR-flash ADC used by SCONNA's PCA (per VDPE rail pair).
pub const SCONNA_ADC: PeripheralSpec = PeripheralSpec {
    power_w: 2.55e-3,
    area_mm2: 0.002,
    latency: SimTime::from_ps(780),
};

/// High-speed serializer, one per OSM operand stream (area reinterpreted
/// as 5.9·10⁻³ mm², see module docs).
pub const SERIALIZER: PeripheralSpec = PeripheralSpec {
    power_w: 5e-3,
    area_mm2: 5.9e-3,
    latency: SimTime::from_ps(30),
};

/// eDRAM bit-vector LUT, one per OSM (area reinterpreted as
/// 0.09·10⁻¹ mm² = 9·10⁻³ mm² class, see module docs).
pub const OSM_LUT: PeripheralSpec = PeripheralSpec {
    power_w: 0.06e-3,
    area_mm2: 9.0e-3,
    latency: SimTime::from_ps(2_000),
};

/// PCA analog front-end (photodetector + dual TIR + amplifier), per rail.
pub const PCA: PeripheralSpec = PeripheralSpec {
    power_w: 0.02e-3,
    area_mm2: 0.28e-1,
    latency: SimTime::ZERO,
};

/// Laser diode electrical wall-plug power: 10 dBm optical at 10 % WPE.
pub const LASER_WALL_PLUG_W: f64 = 0.1;

/// Single MRR footprint (OAG, filter or modulator ring), mm² — 20 µm pitch
/// square.
pub const MRR_AREA_MM2: f64 = 4.0e-4;

/// Scratchpad operand buffer access latency (Section V-A: 2 ns).
pub const BUFFER_LATENCY: SimTime = SimTime::from_ps(2_000);

/// Per-tile eDRAM sustained bandwidth, bytes/s (CACTI-class 64 GB/s).
pub const EDRAM_BANDWIDTH_BPS: f64 = 64e9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table_iv() {
        assert_eq!(REDUCTION_NETWORK.latency, SimTime::from_ps(3_125));
        assert_eq!(ACTIVATION_UNIT.latency, SimTime::from_ps(780));
        assert_eq!(OSM_LUT.latency, SimTime::from_ns(2));
    }

    #[test]
    fn sconna_adc_is_an_order_cheaper_than_analog_adc() {
        // The 1-bit detection payoff: SCONNA's 8b 1 GS/s ADC draws
        // ~11x less power than the analog baselines' 5 GS/s ADC.
        let power_ratio = ANALOG_ADC.power_w / SCONNA_ADC.power_w;
        let area_ratio = ANALOG_ADC.area_mm2 / SCONNA_ADC.area_mm2;
        assert!(power_ratio > 10.0, "power ratio {power_ratio}");
        assert!(area_ratio > 50.0, "area ratio {area_ratio}");
    }

    #[test]
    fn laser_wall_plug_consistent_with_table_iii() {
        let optical_w = 10e-3; // 10 dBm
        let wpe = 0.1;
        assert!((LASER_WALL_PLUG_W - optical_w / wpe).abs() < 1e-12);
    }
}
