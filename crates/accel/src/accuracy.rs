//! Inference-accuracy experiments (Table V of the paper).
//!
//! Two complementary experiments replace the paper's PyTorch + ImageNet
//! pipeline (substitution documented in DESIGN.md §2.3):
//!
//! 1. **End-to-end accuracy** — train the small CNN on the synthetic
//!    dataset, post-training-quantize to int8, and compare Top-1/Top-k
//!    accuracy between the exact integer engine and the SCONNA stochastic
//!    engine (SC rounding + ADC noise). The *drop* is the Table V
//!    quantity.
//! 2. **Layer-error propagation** — for each evaluated CNN architecture,
//!    sample its real layer geometries (S, L), run random-weight VDP
//!    batches through both engines, and report the relative output error.
//!    Deeper/wider vectors average away more SC error, which is exactly
//!    why the paper sees smaller drops on ResNet50/GoogleNet than on
//!    MobileNet_V2.

use crate::engine::SconnaEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sconna_sc::error::rmse;
use sconna_tensor::dataset::SyntheticDataset;
use sconna_tensor::engine::{ExactEngine, VdpEngine};
use sconna_tensor::models::CnnModel;
use sconna_tensor::smallcnn::{SmallCnn, SmallCnnConfig};
use serde::{Deserialize, Serialize};

/// End-to-end accuracy comparison result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyResult {
    /// Float-precision Top-1 accuracy.
    pub fp_top1: f64,
    /// Exact int8 Top-1 accuracy.
    pub exact_top1: f64,
    /// Exact int8 Top-k accuracy.
    pub exact_topk: f64,
    /// SCONNA Top-1 accuracy.
    pub sconna_top1: f64,
    /// SCONNA Top-k accuracy.
    pub sconna_topk: f64,
    /// `k` used for the Top-k rows.
    pub k: usize,
    /// Top-1 drop, percentage points (exact − SCONNA).
    pub top1_drop_pct: f64,
    /// Top-k drop, percentage points.
    pub topk_drop_pct: f64,
}

/// Configuration of the end-to-end experiment.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyExperiment {
    /// Classes in the synthetic task.
    pub classes: usize,
    /// Image side.
    pub image_size: usize,
    /// Pixel noise of the dataset.
    pub noise: f32,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Top-k to report alongside Top-1.
    pub k: usize,
    /// Seed for data/model/engine.
    pub seed: u64,
    /// Worker threads for the test-set evaluation. Evaluation is
    /// worker-count invariant (per-image noise keys), so this only
    /// changes wall time, never the result.
    pub workers: usize,
}

impl Default for AccuracyExperiment {
    fn default() -> Self {
        Self {
            classes: 10,
            image_size: 16,
            noise: 0.25,
            train_per_class: 40,
            test_per_class: 40,
            epochs: 20,
            k: 5,
            seed: 7,
            workers: sconna_sim::parallel::default_workers(),
        }
    }
}

impl AccuracyExperiment {
    /// Runs the experiment: train → quantize → evaluate on both engines.
    /// Evaluation parallelizes over test images (one forward pass per
    /// sample yields both Top-1 and Top-k). Each engine's model is
    /// prepared once (weight-stationary — DKV/LUT stream conversion and
    /// narrow GEMM forms at load, not per image), which by the
    /// `vdp_batch_prepared` contract cannot change a single logit.
    pub fn run(&self) -> AccuracyResult {
        let data = SyntheticDataset::new(self.classes, self.image_size, self.noise, self.seed);
        let train = data.batch(self.train_per_class, self.seed.wrapping_add(1));
        let test = data.batch(self.test_per_class, self.seed.wrapping_add(2));

        let cfg = SmallCnnConfig {
            input_size: self.image_size,
            channels1: 8,
            channels2: 16,
            classes: self.classes,
        };
        let mut net = SmallCnn::new(cfg, self.seed);
        net.train(&train, self.epochs, 0.05);
        let fp_top1 = net.accuracy(&test);

        let qnet = net.quantize(&train, 8);
        let exact = ExactEngine;
        let sconna = SconnaEngine::paper_default(self.seed);

        let (exact_top1, exact_topk) = qnet.prepare(&exact).evaluate(&test, self.k, self.workers);
        let (sconna_top1, sconna_topk) =
            qnet.prepare(&sconna).evaluate(&test, self.k, self.workers);

        AccuracyResult {
            fp_top1,
            exact_top1,
            exact_topk,
            sconna_top1,
            sconna_topk,
            k: self.k,
            top1_drop_pct: 100.0 * (exact_top1 - sconna_top1),
            topk_drop_pct: 100.0 * (exact_topk - sconna_topk),
        }
    }
}

/// Per-architecture layer-error propagation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerErrorResult {
    /// Model name.
    pub model: String,
    /// SCONNA VDP output error against the exact engine, as RMSE
    /// normalized by the RMS of the exact outputs, in percent. (MAPE is
    /// the wrong metric here: raw dot products are zero-mean, so
    /// per-sample relative error diverges near zero. The paper's 1.3 %
    /// MAPE applies to the strictly positive PCA rail counts.)
    pub vdp_error_pct: f64,
    /// Mean vector length of the sampled layers (context for the error).
    pub mean_vector_len: f64,
}

/// Runs the layer-error experiment on one architecture: samples up to
/// `max_layers` of its layer geometries, draws `vdps_per_layer` random
/// operand vectors per layer, and measures the SCONNA-vs-exact MAPE.
pub fn layer_error_experiment(
    model: &CnnModel,
    max_layers: usize,
    vdps_per_layer: usize,
    seed: u64,
) -> LayerErrorResult {
    assert!(
        max_layers > 0 && vdps_per_layer > 0,
        "degenerate experiment"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let engine = SconnaEngine::paper_default(seed);
    let mut measured = Vec::new();
    let mut reference = Vec::new();
    let mut len_sum = 0usize;
    let mut layer_count = 0usize;

    let stride = (model.workloads.len() / max_layers).max(1);
    for w in model.workloads.iter().step_by(stride).take(max_layers) {
        layer_count += 1;
        len_sum += w.vector_len;
        for _ in 0..vdps_per_layer {
            let inputs: Vec<u32> = (0..w.vector_len).map(|_| rng.gen_range(0..=255)).collect();
            let weights: Vec<i32> = (0..w.vector_len)
                .map(|_| rng.gen_range(-127..=127))
                .collect();
            reference.push(ExactEngine.vdp(&inputs, &weights));
            // Distinct key per draw: each VDP sees an independent ADC
            // noise realization, as the sequential shared-RNG stream did.
            measured.push(engine.vdp_keyed(&inputs, &weights, measured.len() as u64));
        }
    }

    let rms_ref = (reference.iter().map(|r| r * r).sum::<f64>() / reference.len() as f64).sqrt();
    LayerErrorResult {
        model: model.name.clone(),
        vdp_error_pct: 100.0 * rmse(&measured, &reference) / rms_ref.max(1e-12),
        mean_vector_len: len_sum as f64 / layer_count as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sconna_tensor::models::{mobilenet_v2, resnet50};

    #[test]
    fn table5_shape_small_drop() {
        // The Table V reproduction bar: the SCONNA engine costs only a
        // small Top-1 drop against exact int8 (paper: ≤ 1.5 % for small
        // CNNs — ours is a small CNN, so we allow up to 5 points on the
        // small synthetic test set).
        let result = AccuracyExperiment {
            train_per_class: 15,
            test_per_class: 10,
            epochs: 10,
            ..Default::default()
        }
        .run();
        assert!(result.exact_top1 > 0.8, "exact int8 accuracy {result:?}");
        assert!(
            result.top1_drop_pct <= 8.0,
            "Top-1 drop {} too large",
            result.top1_drop_pct
        );
        assert!(result.sconna_topk >= result.sconna_top1);
    }

    #[test]
    fn accuracy_experiment_is_worker_count_invariant() {
        let base = AccuracyExperiment {
            train_per_class: 8,
            test_per_class: 6,
            epochs: 4,
            workers: 1,
            ..Default::default()
        };
        let serial = base.run();
        for workers in [2usize, 8] {
            let parallel = AccuracyExperiment { workers, ..base }.run();
            assert_eq!(
                serial.sconna_top1, parallel.sconna_top1,
                "{workers} workers"
            );
            assert_eq!(
                serial.sconna_topk, parallel.sconna_topk,
                "{workers} workers"
            );
            assert_eq!(serial.exact_top1, parallel.exact_top1, "{workers} workers");
        }
    }

    #[test]
    fn layer_error_is_small_and_seed_stable() {
        let r1 = layer_error_experiment(&resnet50(), 6, 20, 3);
        let r2 = layer_error_experiment(&resnet50(), 6, 20, 3);
        assert_eq!(r1.vdp_error_pct, r2.vdp_error_pct);
        assert!(
            r1.vdp_error_pct < 30.0,
            "VDP error {} % unexpectedly large",
            r1.vdp_error_pct
        );
    }

    #[test]
    fn longer_vectors_do_not_explode_error() {
        // ResNet50's long vectors should not show categorically worse
        // relative error than MobileNet's short ones (psum accumulation
        // averages SC noise).
        let big = layer_error_experiment(&resnet50(), 6, 10, 5);
        let small = layer_error_experiment(&mobilenet_v2(), 6, 10, 5);
        assert!(big.mean_vector_len > small.mean_vector_len);
        assert!(big.vdp_error_pct < 3.0 * small.vdp_error_pct + 5.0);
    }
}

/// Comparison of the plain small CNN vs the residual small CNN under the
/// same data, training budget and error injection — the capacity/
/// robustness trend of the paper's Table V (large CNNs drop less).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityTrend {
    /// Plain-CNN Top-1 drop, percentage points.
    pub plain_drop_pct: f64,
    /// Residual-CNN Top-1 drop, percentage points.
    pub residual_drop_pct: f64,
    /// Exact int8 accuracies (plain, residual) for context.
    pub exact_top1: (f64, f64),
}

/// Trains both small models on the same synthetic task and measures
/// their Top-1 drops under the SCONNA engine.
pub fn capacity_trend(exp: &AccuracyExperiment) -> CapacityTrend {
    use sconna_tensor::resnet_small::{SmallResNet, SmallResNetConfig};

    let data = SyntheticDataset::new(exp.classes, exp.image_size, exp.noise, exp.seed);
    let train = data.batch(exp.train_per_class, exp.seed.wrapping_add(1));
    let test = data.batch(exp.test_per_class, exp.seed.wrapping_add(2));

    // Plain CNN.
    let mut plain = SmallCnn::new(
        SmallCnnConfig {
            input_size: exp.image_size,
            channels1: 8,
            channels2: 16,
            classes: exp.classes,
        },
        exp.seed,
    );
    plain.train(&train, exp.epochs, 0.05);
    let plain_q = plain.quantize(&train, 8);
    let plain_exact = plain_q.accuracy(&test, &ExactEngine);
    let plain_sc = plain_q.accuracy(&test, &SconnaEngine::paper_default(exp.seed));

    // Residual CNN (same channel budget class).
    let mut residual = SmallResNet::new(
        SmallResNetConfig {
            input_size: exp.image_size,
            channels: 12,
            classes: exp.classes,
        },
        exp.seed,
    );
    residual.train(&train, exp.epochs, 0.04);
    let res_q = residual.quantize(&train, 8);
    let res_exact = res_q.accuracy(&test, &ExactEngine);
    let res_sc = res_q.accuracy(&test, &SconnaEngine::paper_default(exp.seed));

    CapacityTrend {
        plain_drop_pct: 100.0 * (plain_exact - plain_sc),
        residual_drop_pct: 100.0 * (res_exact - res_sc),
        exact_top1: (plain_exact, res_exact),
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    #[ignore = "trains 6 small CNNs (~minutes in debug); run with: cargo test -p sconna-accel --release -- --ignored"]
    fn residual_model_is_not_categorically_worse() {
        // The Table V trend: the deeper residual model should hold up at
        // least comparably under SCONNA's error injection. Averaged over
        // seeds to tame small-task variance; lenient slack.
        let mut plain = 0.0;
        let mut residual = 0.0;
        for seed in [7u64, 21, 42] {
            let t = capacity_trend(&AccuracyExperiment {
                seed,
                train_per_class: 20,
                test_per_class: 15,
                epochs: 12,
                ..Default::default()
            });
            assert!(t.exact_top1.0 > 0.7 && t.exact_top1.1 > 0.7, "{t:?}");
            plain += t.plain_drop_pct;
            residual += t.residual_drop_pct;
        }
        assert!(
            residual / 3.0 <= plain / 3.0 + 6.0,
            "residual mean drop {residual} vs plain {plain} (pp x3)"
        );
    }
}
