//! Criterion micro-benchmarks over the CNN substrate: quantized
//! convolution on the exact and stochastic engines, and model-zoo
//! construction/census.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sconna_accel::engine::SconnaEngine;
use sconna_tensor::engine::ExactEngine;
use sconna_tensor::layers::{MaxPool2d, QConv2d};
use sconna_tensor::models::{all_models, resnet50};
use sconna_tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna_tensor::Tensor;

fn test_conv(channels: usize, kernels: usize) -> (QConv2d, Tensor<u32>) {
    let aq = ActivationQuant {
        scale: 1.0,
        bits: 8,
    };
    let wq = WeightQuant {
        scale: 1.0,
        bits: 8,
    };
    let conv = QConv2d {
        name: "bench".into(),
        weights: Tensor::from_fn(&[kernels, channels, 3, 3], |i| (i % 255) as i32 - 127),
        bias: vec![0.0; kernels],
        stride: 1,
        padding: 1,
        groups: 1,
        requant: Requant::new(aq, wq, aq),
    };
    let input = Tensor::from_fn(&[channels, 14, 14], |i| (i % 256) as u32);
    (conv, input)
}

fn bench_qconv(c: &mut Criterion) {
    let (conv, input) = test_conv(16, 16);
    let mut g = c.benchmark_group("qconv_16x16x14x14");
    g.sample_size(20);
    g.bench_function("exact_engine", |b| {
        b.iter(|| conv.forward(black_box(&input), &ExactEngine));
    });
    let sconna = SconnaEngine::noiseless();
    g.bench_function("sconna_engine", |b| {
        b.iter(|| conv.forward(black_box(&input), &sconna));
    });
    g.finish();
}

fn bench_pooling(c: &mut Criterion) {
    let input = Tensor::from_fn(&[64, 56, 56], |i| (i % 256) as u32);
    let pool = MaxPool2d {
        kernel: 3,
        stride: 2,
        padding: 1,
    };
    c.bench_function("maxpool_3x3s2_64x56x56", |b| {
        b.iter(|| pool.forward(black_box(&input)));
    });
}

fn bench_model_zoo(c: &mut Criterion) {
    c.bench_function("build_all_models", |b| b.iter(all_models));
    let model = resnet50();
    c.bench_function("resnet50_census", |b| {
        b.iter(|| black_box(&model).kernel_census(44));
    });
}

criterion_group!(benches, bench_qconv, bench_pooling, bench_model_zoo);
criterion_main!(benches);
