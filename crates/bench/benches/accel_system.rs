//! Criterion macro-benchmarks: the end-to-end system simulations behind
//! Fig. 9 (one full CNN inference on each accelerator model) and the
//! stochastic engine on a real layer geometry.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sconna_accel::engine::SconnaEngine;
use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::perf::simulate_inference;
use sconna_tensor::engine::VdpEngine;
use sconna_tensor::models::{resnet50, shufflenet_v2};

fn bench_inference_sim(c: &mut Criterion) {
    let resnet = resnet50();
    let shuffle = shufflenet_v2();
    let mut g = c.benchmark_group("inference_simulation");
    g.sample_size(30);
    for cfg in AcceleratorConfig::all() {
        g.bench_function(format!("resnet50_{:?}", cfg.kind), |b| {
            b.iter(|| simulate_inference(black_box(&cfg), black_box(&resnet)));
        });
    }
    g.bench_function("shufflenet_sconna", |b| {
        b.iter(|| simulate_inference(black_box(&AcceleratorConfig::sconna()), black_box(&shuffle)));
    });
    g.finish();
}

fn bench_engine_vdp(c: &mut Criterion) {
    // A ResNet50 stage-4 geometry: S = 4608 (27 SCONNA chunks).
    let inputs: Vec<u32> = (0..4608).map(|k| ((k * 37) % 256) as u32).collect();
    let weights: Vec<i32> = (0..4608).map(|k| ((k * 53) % 255) - 127).collect();
    let noiseless = SconnaEngine::noiseless();
    let noisy = SconnaEngine::paper_default(1);
    let mut g = c.benchmark_group("engine_vdp_s4608");
    g.bench_function("noiseless", |b| {
        b.iter(|| noiseless.vdp(black_box(&inputs), black_box(&weights)));
    });
    g.bench_function("with_adc_noise", |b| {
        b.iter(|| noisy.vdp(black_box(&inputs), black_box(&weights)));
    });
    g.finish();
}

criterion_group!(benches, bench_inference_sim, bench_engine_vdp);
criterion_main!(benches);
