//! Criterion micro-benchmarks over the event-driven simulator core:
//! event-queue throughput, energy-ledger accounting and NoC routing.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sconna_sim::energy::{ComponentSpec, EnergyLedger};
use sconna_sim::event::EventQueue;
use sconna_sim::noc::MeshNoc;
use sconna_sim::time::SimTime;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule_at(SimTime::from_ps((i * 7919) % 1_000_000), i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            });
        });
    }
    g.bench_function("cascading_run_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            q.schedule_at(SimTime::from_ps(1), 10_000u32);
            q.run(|q, _, remaining| {
                if remaining > 0 {
                    q.schedule_in(SimTime::from_ps(3), remaining - 1);
                }
            })
        });
    });
    g.finish();
}

fn bench_energy_ledger(c: &mut Criterion) {
    c.bench_function("ledger_register_and_total", |b| {
        b.iter(|| {
            let mut l = EnergyLedger::new();
            for i in 0..32 {
                l.register(
                    &format!("component-{i}"),
                    ComponentSpec::static_only(0.01, 0.1),
                    16,
                );
                l.record_ops(&format!("component-{i}"), 1000);
            }
            black_box(l.total_energy_j(SimTime::from_ns(1_000_000)))
        });
    });
}

fn bench_noc(c: &mut Criterion) {
    let mesh = MeshNoc::new(8, 8, SimTime::from_ns(2), 32e9);
    c.bench_function("noc_all_pairs_latency_8x8", |b| {
        b.iter(|| {
            let mut total = SimTime::ZERO;
            for from in 0..mesh.tiles() {
                for to in 0..mesh.tiles() {
                    total += mesh.transfer_latency(mesh.coord(from), mesh.coord(to), 64);
                }
            }
            black_box(total)
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_energy_ledger, bench_noc);
criterion_main!(benches);
