//! Criterion micro-benchmarks over the stochastic-computing substrate:
//! bit-stream generation, AND-multiplication and the closed-form fast
//! path, and full VDP accumulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sconna_sc::accumulate::stochastic_vdp;
use sconna_sc::lut::PairLut;
use sconna_sc::multiply::{lds_product, osm_product_stream};
use sconna_sc::sng::{LdsSng, LfsrSng, StochasticNumberGenerator, ThermometerSng};
use sconna_sc::Precision;

fn bench_sng(c: &mut Criterion) {
    let p = Precision::B8;
    let mut g = c.benchmark_group("sng");
    g.bench_function("lds_generate_256b", |b| {
        b.iter(|| LdsSng.generate(black_box(173), p));
    });
    g.bench_function("thermometer_generate_256b", |b| {
        b.iter(|| ThermometerSng.generate(black_box(173), p));
    });
    g.bench_function("lfsr_generate_256b", |b| {
        b.iter(|| LfsrSng::default().generate(black_box(173), p));
    });
    g.finish();
}

fn bench_multiply(c: &mut Criterion) {
    let p = Precision::B8;
    let lut = PairLut::generate(p);
    let mut g = c.benchmark_group("multiply");
    g.bench_function("stream_multiply", |b| {
        b.iter(|| osm_product_stream(black_box(173), black_box(88), p).count_ones());
    });
    g.bench_function("closed_form_multiply", |b| {
        b.iter(|| lds_product(black_box(173), black_box(88), p));
    });
    g.bench_function("lut_fetch_multiply", |b| {
        b.iter(|| lut.multiply(black_box(173), black_box(88)));
    });
    g.finish();
}

fn bench_vdp(c: &mut Criterion) {
    let p = Precision::B8;
    let mut g = c.benchmark_group("vdp");
    for &len in &[176usize, 1024, 4608] {
        let inputs: Vec<u32> = (0..len).map(|k| ((k * 37) % 256) as u32).collect();
        let weights: Vec<i32> = (0..len).map(|k| ((k * 53) % 255) as i32 - 127).collect();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_function(format!("stochastic_vdp_s{len}"), |b| {
            b.iter(|| stochastic_vdp(black_box(&inputs), black_box(&weights), p));
        });
    }
    g.finish();
}

fn bench_lut_generation(c: &mut Criterion) {
    c.bench_function("pair_lut_generate_b8", |b| {
        b.iter(|| PairLut::generate(Precision::B8));
    });
}

criterion_group!(
    benches,
    bench_sng,
    bench_multiply,
    bench_vdp,
    bench_lut_generation
);
criterion_main!(benches);
