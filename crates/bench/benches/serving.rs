//! Criterion micro-benchmarks over the serving simulator: scheduler
//! throughput (events per wall-second) under closed-loop saturation and
//! Poisson arrivals.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::serve::{simulate_serving, ArrivalProcess, ServingConfig};
use sconna_tensor::models::shufflenet_v2;

fn bench_serving(c: &mut Criterion) {
    let model = shufflenet_v2();
    let mut g = c.benchmark_group("serving");
    for &requests in &[64usize, 512] {
        g.throughput(Throughput::Elements(requests as u64));
        g.bench_function(format!("closed_loop_{requests}"), |b| {
            let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), 4, 8, requests);
            b.iter(|| black_box(simulate_serving(&cfg, &model)));
        });
    }
    g.bench_function("poisson_256", |b| {
        let cfg = ServingConfig {
            arrivals: ArrivalProcess::Poisson { rate_fps: 5_000.0 },
            seed: 3,
            ..ServingConfig::saturation(AcceleratorConfig::sconna(), 2, 8, 256)
        };
        b.iter(|| black_box(simulate_serving(&cfg, &model)));
    });
    g.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
