//! Criterion micro-benchmarks over the photonic models: OAG transients
//! (the Fig. 6(c) kernel), scalability solves (Table I / Section V-B),
//! and PCA conversion.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sconna_photonics::oag::{transient, OpticalAndGate};
use sconna_photonics::pca::AdcModel;
use sconna_photonics::scalability::{max_analog_n, sconna_scalability_default, AnalogOrganization};
use sconna_photonics::units::dbm_to_watts;
use sconna_sc::sng::{LfsrSng, StochasticNumberGenerator};
use sconna_sc::Precision;

fn bench_transient(c: &mut Criterion) {
    let gate = OpticalAndGate::new(0.8e-9, 50e-9, 1e-3);
    let p = Precision::B8;
    let i = LfsrSng::new(0xACE1).generate(128, p);
    let w = LfsrSng::new(0x1DEA).generate(128, p);
    c.bench_function("oag_transient_256b_16spb", |b| {
        b.iter(|| transient(black_box(&gate), &i, &w, 10e9, 2e-12, 16));
    });
}

fn bench_scalability(c: &mut Criterion) {
    c.bench_function("sconna_scalability_solve", |b| {
        b.iter(sconna_scalability_default);
    });
    c.bench_function("analog_max_n_solve", |b| {
        b.iter(|| max_analog_n(AnalogOrganization::Mam, black_box(4), black_box(5e9)));
    });
    let gate = OpticalAndGate::new(0.8e-9, 50e-9, 1e-3);
    let floor = dbm_to_watts(-28.0);
    c.bench_function("oag_supported_bitrate_bisect", |b| {
        b.iter(|| gate.supported_bitrate_hz(black_box(floor)));
    });
}

fn bench_pca(c: &mut Criterion) {
    let adc = AdcModel::sconna_default();
    c.bench_function("pca_adc_convert", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| adc.convert(black_box(20_000.0), &mut rng));
    });
}

criterion_group!(benches, bench_transient, bench_scalability, bench_pca);
criterion_main!(benches);
