//! # sconna-bench — benchmark harness
//!
//! One binary per paper table/figure (see DESIGN.md §3 for the experiment
//! index) plus ablation studies, and Criterion micro-benchmarks over the
//! substrate crates. Shared table-formatting helpers live here.

/// Prints a rule line sized to a header.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Formats a `(label, value)` listing with aligned columns.
pub fn format_kv(pairs: &[(&str, String)]) -> String {
    let width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(&format!("{k:<width$}  {v}\n"));
    }
    out
}

/// Standard banner for experiment binaries.
pub fn banner(experiment: &str, paper_ref: &str) -> String {
    format!(
        "=== {experiment} ===\nreproduces: {paper_ref}\n{}\n",
        rule(60)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_contains_experiment_and_reference() {
        let b = banner("Table I", "VDPE size vs precision/data-rate");
        assert!(b.contains("Table I"));
        assert!(b.contains("VDPE size"));
    }

    #[test]
    fn kv_alignment() {
        let s = format_kv(&[("a", "1".into()), ("long-key", "2".into())]);
        assert!(s.contains("a         1"));
        assert!(s.contains("long-key  2"));
    }
}
