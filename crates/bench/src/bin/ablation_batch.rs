//! Ablation A5: batch-size sensitivity. The paper evaluates at batch 1
//! (Section VI-B); batching lets the analog baselines amortize their
//! thermal DKV reprogramming — but not their psum traffic, so SCONNA's
//! advantage is structural, not a batch-1 artifact.

use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::perf::simulate_inference_batched;
use sconna_bench::banner;
use sconna_tensor::models::resnet50;

fn main() {
    print!(
        "{}",
        banner(
            "Ablation A5 — FPS vs batch size (ResNet50)",
            "robustness of the Fig. 9 comparison beyond batch 1"
        )
    );
    let model = resnet50();
    println!(
        "{:<8}{:>14}{:>16}{:>14}{:>18}",
        "batch", "SCONNA FPS", "MAM FPS", "AMM FPS", "SCONNA/MAM"
    );
    for batch in [1usize, 4, 16, 64, 256] {
        let s = simulate_inference_batched(&AcceleratorConfig::sconna(), &model, batch);
        let m = simulate_inference_batched(&AcceleratorConfig::mam(), &model, batch);
        let a = simulate_inference_batched(&AcceleratorConfig::amm(), &model, batch);
        println!(
            "{:<8}{:>14.1}{:>16.2}{:>14.2}{:>17.1}x",
            batch,
            s.fps,
            m.fps,
            a.fps,
            s.fps / m.fps
        );
    }
    println!();
    println!("analog FPS rises with batch as thermal reprogramming amortizes,");
    println!("then flattens at the psum-reduction bound; SCONNA stays");
    println!("compute-bound and ahead at every batch size.");
}
