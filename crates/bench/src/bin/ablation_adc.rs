//! Ablation A4: sensitivity of end-to-end accuracy to the PCA ADC error
//! (the paper's single injected error source, 1.3 % MAPE).

use sconna_accel::accuracy::AccuracyExperiment;
use sconna_accel::engine::SconnaEngine;
use sconna_bench::banner;
use sconna_photonics::pca::AdcModel;
use sconna_sc::Precision;
use sconna_tensor::dataset::SyntheticDataset;
use sconna_tensor::engine::ExactEngine;
use sconna_tensor::smallcnn::{SmallCnn, SmallCnnConfig};

fn main() {
    print!(
        "{}",
        banner(
            "Ablation A4 — accuracy vs ADC noise level",
            "SCONNA paper, Section V-C / VI-D error model"
        )
    );

    // Train once, evaluate under different ADC noise settings.
    let exp = AccuracyExperiment::default();
    let data = SyntheticDataset::new(exp.classes, exp.image_size, exp.noise, exp.seed);
    let train = data.batch(exp.train_per_class, exp.seed + 1);
    let test = data.batch(exp.test_per_class, exp.seed + 2);
    let mut net = SmallCnn::new(
        SmallCnnConfig {
            input_size: exp.image_size,
            channels1: 8,
            channels2: 16,
            classes: exp.classes,
        },
        exp.seed,
    );
    net.train(&train, exp.epochs, 0.05);
    let qnet = net.quantize(&train, 8);
    let exact_acc = qnet.accuracy(&test, &ExactEngine);
    println!("exact int8 Top-1: {:.1}%", 100.0 * exact_acc);
    println!();
    println!("{:>18}{:>14}{:>12}", "ADC sigma", "SC Top-1", "drop(pp)");

    for &(label, sigma) in &[
        ("none (SC only)", -1.0f64),
        ("0.5x (0.73%)", 0.00725),
        ("1.0x (1.45%)", 0.0145),
        ("2.0x (2.9%)", 0.029),
        ("4.0x (5.8%)", 0.058),
    ] {
        let adc = (sigma >= 0.0).then(|| AdcModel {
            relative_noise_sigma: sigma,
            ..AdcModel::sconna_default()
        });
        let engine = SconnaEngine::new(Precision::B8, 176, adc, exp.seed);
        let acc = qnet.accuracy(&test, &engine);
        println!(
            "{:>18}{:>13.1}%{:>12.2}",
            label,
            100.0 * acc,
            100.0 * (exact_acc - acc)
        );
    }
    println!();
    println!("paper: 1.3% ADC MAPE costs <=0.4 pp Top-1 on large CNNs and");
    println!("<=1.5 pp on small CNNs; the drop grows smoothly with sigma.");
}
