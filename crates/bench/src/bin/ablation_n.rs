//! Ablation A1: sweep the SCONNA VDPE size N and watch throughput and
//! psum pressure move — the design-space argument behind choosing the
//! largest N the link budget allows.

use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::perf::simulate_inference;
use sconna_bench::banner;
use sconna_sim::stats::gmean;
use sconna_tensor::models::all_models;

fn main() {
    print!(
        "{}",
        banner(
            "Ablation A1 — SCONNA FPS vs VDPE size N",
            "design choice behind Section V-B's N = 176"
        )
    );
    let models = all_models();
    println!(
        "{:<8}{:>14}{:>14}{:>14}{:>14}{:>12}",
        "N", "GoogleNet", "ResNet50", "MobileNet_V2", "ShuffleNet_V2", "gmean"
    );
    let baseline_n176: Vec<f64> = models
        .iter()
        .map(|m| simulate_inference(&AcceleratorConfig::sconna(), m).fps)
        .collect();
    for n in [16usize, 32, 44, 64, 96, 128, 176, 200, 256] {
        let cfg = AcceleratorConfig {
            vdpe_size_n: n,
            ..AcceleratorConfig::sconna()
        };
        let fps: Vec<f64> = models
            .iter()
            .map(|m| simulate_inference(&cfg, m).fps)
            .collect();
        println!(
            "{:<8}{:>14.1}{:>14.1}{:>14.1}{:>14.1}{:>12.1}",
            n,
            fps[0],
            fps[1],
            fps[2],
            fps[3],
            gmean(&fps)
        );
    }
    println!();
    println!(
        "N = 176 (paper) gmean FPS: {:.1}; N = 44 (best analog-achievable)",
        gmean(&baseline_n176)
    );
    let cfg44 = AcceleratorConfig {
        vdpe_size_n: 44,
        ..AcceleratorConfig::sconna()
    };
    let fps44: Vec<f64> = models
        .iter()
        .map(|m| simulate_inference(&cfg44, m).fps)
        .collect();
    println!(
        "gmean FPS: {:.1}  ->  large-N payoff: {:.2}x",
        gmean(&fps44),
        gmean(&baseline_n176) / gmean(&fps44)
    );
}
