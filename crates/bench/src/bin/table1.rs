//! Table I: maximum VDPE size N for the analog AMM/MAM organizations at
//! 4/6-bit precision and 1/3/5/10 GS/s, model vs the paper's published
//! values.

use sconna_bench::banner;
use sconna_photonics::scalability::reproduce_table_one;

fn main() {
    print!(
        "{}",
        banner(
            "Table I — analog VDPE size N vs precision and data rate",
            "SCONNA paper, Section III-A, Table I (values from [21])"
        )
    );
    println!(
        "{:<18}{:>6}{:>10}{:>10}{:>10}{:>10}",
        "organization", "B", "DR", "model N", "paper N", "diff"
    );
    for e in reproduce_table_one() {
        println!(
            "{:<18}{:>6}{:>9.0e}{:>10}{:>10}{:>+10}",
            e.org.label(),
            e.precision_bits,
            e.dr_hz,
            e.model_n,
            e.paper_n,
            e.model_n as i64 - e.paper_n as i64
        );
    }
    println!();
    println!("anchors (4-bit, 1 GS/s) are calibrated exactly; all other");
    println!("entries follow from the balanced-detection noise model.");
}
