//! Mapping report: per-layer VDPE occupancy and load balance of the
//! weight-stationary schedule — where each accelerator's array is
//! underfilled and why.

use sconna_accel::mapper::map_model;
use sconna_accel::organization::AcceleratorConfig;
use sconna_bench::banner;
use sconna_tensor::models::all_models;

fn main() {
    print!(
        "{}",
        banner(
            "Weight-stationary mapping report",
            "Fig. 8 preprocessing-and-mapping unit"
        )
    );
    for cfg in AcceleratorConfig::all() {
        println!(
            "== {} ({} VDPEs of N = {})",
            cfg.name, cfg.total_vdpes, cfg.vdpe_size_n
        );
        for model in all_models() {
            let reports = map_model(&cfg, &model);
            let n = reports.len() as f64;
            let mean_occ: f64 = reports.iter().map(|r| r.occupancy).sum::<f64>() / n;
            let mean_bal: f64 = reports.iter().map(|r| r.balance).sum::<f64>() / n;
            let worst = reports
                .iter()
                .min_by(|a, b| a.occupancy.total_cmp(&b.occupancy))
                .unwrap();
            println!(
                "  {:<16} mean occupancy {:>5.1}%  mean balance {:>5.2}  \
                 worst layer: {} ({:.1}%)",
                model.name,
                100.0 * mean_occ,
                mean_bal,
                worst.layer,
                100.0 * worst.occupancy
            );
        }
    }
    println!();
    println!("small early layers and depthwise layers underfill the wide");
    println!("SCONNA array (few kernels x few chunks); the analog baselines'");
    println!("bit-sliced tasks fill their larger arrays more easily — their");
    println!("problem is never occupancy, it is psums and reprogramming.");
}
