//! Ablation A3: stochastic-number-generation strategy — error of the
//! LUT's LDS×thermometer pairing vs a conventional LFSR SNG vs the
//! paper's XOR-hashed single-fetch LUT, against the ideal rounded
//! product.

use sconna_bench::banner;
use sconna_sc::lut::{PairLut, XorHashedLut};
use sconna_sc::multiply::{multiply_streams, real_product};
use sconna_sc::sng::{LfsrSng, StochasticNumberGenerator};
use sconna_sc::Precision;

fn main() {
    print!(
        "{}",
        banner(
            "Ablation A3 — SNG strategy vs multiplication error",
            "SCONNA paper, Section IV-B LUT design rationale"
        )
    );
    let p = Precision::B8;
    let lut = PairLut::generate(p);
    let hashed = XorHashedLut::generate(p);
    let lfsr_i = LfsrSng::new(0xACE1);
    let lfsr_w = LfsrSng::new(0x1DEA);

    let mut sums = [0f64; 3];
    let mut worst = [0f64; 3];
    let mut count = 0usize;
    for i in (0..=256u32).step_by(8) {
        for w in (0..=256u32).step_by(8) {
            let ideal = real_product(i, w, p);
            let lut_prod = lut.multiply(i, w) as f64;
            let lfsr_prod = multiply_streams(&lfsr_i.generate(i, p), &lfsr_w.generate(w, p)) as f64;
            let hash_prod = hashed.multiply(i, w) as f64;
            for (k, prod) in [lut_prod, lfsr_prod, hash_prod].into_iter().enumerate() {
                let err = (prod - ideal).abs();
                sums[k] += err;
                worst[k] = worst[k].max(err);
            }
            count += 1;
        }
    }
    println!(
        "{:<34}{:>14}{:>14}",
        "strategy", "mean |err|", "worst |err|"
    );
    let names = [
        "LDS x thermometer LUT (ours)",
        "two independent LFSRs",
        "XOR-hashed single-fetch LUT",
    ];
    for k in 0..3 {
        println!(
            "{:<34}{:>14.3}{:>14.1}",
            names[k],
            sums[k] / count as f64,
            worst[k]
        );
    }
    println!();
    println!("(errors in ones-counts of the 256-bit product stream; the");
    println!(" XOR hash aliases operand pairs and is catastrically wrong,");
    println!(" which is why the reproduction models the collision-free");
    println!(" two-fetch LUT as the faithful reading of Section IV-B)");
}
