//! Multi-tenant isolation sweep: weighted-fair scheduling vs the naive
//! shared-FIFO baseline, plus the paper's reprogramming asymmetry
//! measured as a co-located-model swap cost.
//!
//! Two claims are measured and checked in as `BENCH_tenants.json`:
//!
//! * **Weighted-fair isolation.** A victim tenant running comfortably
//!   inside its capacity share keeps its p99 latency within 1.2x of its
//!   solo run even when an aggressor tenant offers >= 4x *its own*
//!   share, because start-time weighted-fair queueing caps the
//!   aggressor's service at its weight. Under the shared-FIFO baseline
//!   the same aggressor inflates the victim's p99 by >= 5x (in practice
//!   orders of magnitude): the victim's requests queue behind the
//!   aggressor's unbounded backlog in global arrival order.
//! * **Swap-cost asymmetry.** Two tenants with *different* models
//!   co-resident on a small pool force cross-model dispatches. SCONNA
//!   swaps by repointing pre-filled OSM LUT banks (one LUT access per
//!   layer); the analog MAM baseline replays cell programming — the
//!   per-tenant `swap_time` column separates by orders of magnitude
//!   while everything else about the two runs is held equal.
//!
//! Run with: `cargo run --release -p sconna-bench --bin tenant_sweep`
//! (`--smoke` runs a reduced grid for CI; smoke mode never writes
//! `BENCH_tenants.json`).

use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::serve::{sweep, ArrivalProcess, Fleet, ServingConfig, ServingReport};
use sconna_accel::serve::{TenantScheduler, TenantSpec};
use sconna_bench::banner;
use sconna_sim::time::SimTime;
use sconna_tensor::models::{googlenet, shufflenet_v2};

const SEED: u64 = 23;

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn us(t: SimTime) -> f64 {
    t.as_secs_f64() * 1e6
}

fn scheduler_name(s: TenantScheduler) -> &'static str {
    match s {
        TenantScheduler::WeightedFair => "WeightedFair",
        TenantScheduler::StrictPriority => "StrictPriority",
        TenantScheduler::SharedFifo => "SharedFifo",
    }
}

/// The aggressor's arithmetic arrival trace: the first `instances`
/// arrivals are staggered evenly across one frame time, then the stream
/// runs at `rate_fps`. The stagger spreads instance completion phases
/// uniformly around the frame cycle — without it every instance goes
/// busy within the initial arrival burst, completions cluster, and the
/// victim's measured wait is an artifact of phase-locking instead of
/// the scheduling policy under test.
fn phased_trace(requests: usize, rate_fps: f64, instances: usize, frame_s: f64) -> Vec<SimTime> {
    (0..requests)
        .map(|i| {
            let t = if i < instances {
                i as f64 * frame_s / instances as f64
            } else {
                frame_s + (i - instances) as f64 / rate_fps
            };
            SimTime::from_secs_f64(t)
        })
        .collect()
}

/// One contended point of the isolation grid: the victim at a quarter
/// of its share, the aggressor at `multiple` times its own share, under
/// `scheduler`. The victim is tenant 0 so its Poisson arrival stream is
/// seeded exactly like the solo run's — identical arrival times, so the
/// p99 ratio isolates pure scheduling interference.
fn contended_config(
    base: &ServingConfig,
    scheduler: TenantScheduler,
    victim_rate: f64,
    victim_requests: usize,
    aggressor_trace: Vec<SimTime>,
) -> ServingConfig {
    let aggressor_requests = aggressor_trace.len();
    base.clone()
        .with_tenant_scheduler(scheduler)
        .with_tenants(vec![
            TenantSpec::new(
                "victim",
                0,
                ArrivalProcess::poisson(victim_rate),
                victim_requests,
            ),
            TenantSpec::new(
                "aggressor",
                0,
                ArrivalProcess::trace(aggressor_trace),
                aggressor_requests,
            ),
        ])
}

fn victim_row(r: &ServingReport) -> &sconna_accel::serve::TenantUsage {
    r.tenants
        .iter()
        .find(|t| t.name == "victim")
        .expect("contended report carries the victim row")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print!(
        "{}",
        banner(
            "Multi-tenant serving — weighted-fair isolation & swap cost",
            "victim p99 vs solo under aggressor overload; SCONNA vs MAM swap"
        )
    );

    let model = shufflenet_v2();
    let accel = AcceleratorConfig::sconna();

    // ---- Isolation grid ----
    //
    // 32 instances, request-granularity dispatch (max_batch 1), equal
    // weights: each tenant's fair share is half the fleet capacity. The
    // victim offers a quarter of *its* share; the aggressor sweeps
    // 1x..4x its own share, crossing from a stable fleet to deep
    // overload (2.125x capacity). Queues are unbounded so every latency
    // lands in the tail instead of a drop column.
    let instances = 32usize;
    let (victim_requests, multiples): (usize, &[f64]) = if smoke {
        (192, &[4.0])
    } else {
        (512, &[1.0, 2.0, 4.0])
    };
    let base = ServingConfig::saturation(accel, instances, 1, victim_requests)
        .with_unbounded_queue()
        .with_seed(SEED);
    let capacity = base.estimated_capacity_fps(&model);
    let share = capacity / 2.0;
    let victim_rate = 0.25 * share;
    let frame_s = instances as f64 / capacity;
    let horizon = victim_requests as f64 / victim_rate;

    let solo_cfg = base
        .clone()
        .with_arrivals(ArrivalProcess::poisson(victim_rate))
        .with_requests(victim_requests);
    let schedulers = [TenantScheduler::WeightedFair, TenantScheduler::SharedFifo];
    let mut grid = vec![solo_cfg];
    for &s in &schedulers {
        for &m in multiples {
            let aggressor_rate = m * share;
            let aggressor_requests = (aggressor_rate * horizon).round() as usize;
            grid.push(contended_config(
                &base,
                s,
                victim_rate,
                victim_requests,
                phased_trace(aggressor_requests, aggressor_rate, instances, frame_s),
            ));
        }
    }

    let reports = sweep(grid.clone(), &model, 1);
    let solo = &reports[0];
    let solo_p99 = solo.latency.p99;
    assert!(
        solo_p99 > SimTime::ZERO,
        "solo run must produce a nonzero p99"
    );
    println!(
        "isolation: {instances} instances | fleet capacity {capacity:.0} fps | victim at {victim_rate:.0} fps (0.25x its share)"
    );
    println!("  solo victim p99: {:.2} us", us(solo_p99));

    let mut sched_json = Vec::new();
    let ratio_at = |sched_i: usize, mult_i: usize| -> f64 {
        let r = &reports[1 + sched_i * multiples.len() + mult_i];
        us(victim_row(r).latency.p99) / us(solo_p99)
    };
    for (si, &s) in schedulers.iter().enumerate() {
        println!("  scheduler: {}", scheduler_name(s));
        let mut points = Vec::new();
        for (mi, &m) in multiples.iter().enumerate() {
            let r = &reports[1 + si * multiples.len() + mi];
            let v = victim_row(r);
            let a = r
                .tenants
                .iter()
                .find(|t| t.name == "aggressor")
                .expect("aggressor row");
            assert_eq!(
                v.offered, victim_requests as u64,
                "victim must offer its full budget"
            );
            assert_eq!(v.dropped, 0, "unbounded queues drop nothing");
            let ratio = us(v.latency.p99) / us(solo_p99);
            println!(
                "    aggressor {m:>3.0}x share: victim p99 {:>12.2} us ({ratio:>8.2}x solo) | aggressor p99 {:>12.2} us",
                us(v.latency.p99),
                us(a.latency.p99),
            );
            points.push(format!(
                concat!(
                    "          {{\"aggressor_share_multiple\": {}, ",
                    "\"victim_p99_us\": {}, \"victim_p99_vs_solo\": {}, ",
                    "\"victim_completed\": {}, \"aggressor_offered\": {}, ",
                    "\"aggressor_p99_us\": {}, \"fleet_makespan_us\": {}}}"
                ),
                json_num(m),
                json_num(us(v.latency.p99)),
                json_num(ratio),
                v.completed,
                a.offered,
                json_num(us(a.latency.p99)),
                json_num(us(r.makespan)),
            ));
        }
        sched_json.push(format!(
            "      {{\"scheduler\": \"{}\",\n        \"points\": [\n{}\n      ]}}",
            scheduler_name(s),
            points.join(",\n"),
        ));
    }
    let wfq_ratio = ratio_at(0, multiples.len() - 1);
    let fifo_ratio = ratio_at(1, multiples.len() - 1);

    // ---- Worker and permutation invariance ----
    //
    // The whole isolation grid, swept at 1/2/8 workers, must reproduce
    // bit-identically: tenants add per-tenant queues and virtual
    // clocks, not nondeterminism.
    let worker_invariant = [2usize, 8].iter().all(|&w| {
        let again = sweep(grid.clone(), &model, w);
        again
            .iter()
            .zip(&reports)
            .all(|(a, b)| format!("{a:?}") == format!("{b:?}"))
    });
    assert!(
        worker_invariant,
        "multi-tenant sweep diverged across worker counts"
    );
    println!("  1/2/8-worker sweeps: bit-identical\n");

    // ---- Swap-cost asymmetry ----
    //
    // Two tenants with different models sharing a *single* instance,
    // both closed-loop, weighted-fair — so the scheduler's batch
    // alternation forces a model swap on nearly every dispatch. Every
    // cross-model dispatch charges `perf::model_swap_time`; the run is
    // otherwise identical between accelerators, so the per-tenant swap
    // columns carry the paper's reprogramming asymmetry directly.
    let swap_requests = if smoke { 96 } else { 320 };
    let shuffle = shufflenet_v2();
    let google = googlenet();
    let swap_accels = [
        ("SCONNA", AcceleratorConfig::sconna()),
        ("MAM", AcceleratorConfig::mam()),
    ];
    println!(
        "swap cost: 1 instance, co-located {} + {}",
        shuffle.name, google.name
    );
    let mut swap_json = Vec::new();
    let mut swap_totals = Vec::new();
    for (name, a) in &swap_accels {
        let cfg = ServingConfig::saturation(*a, 1, 4, swap_requests)
            .with_seed(SEED)
            .with_tenants(vec![
                TenantSpec::new(
                    "shuffle",
                    0,
                    ArrivalProcess::closed_loop(4),
                    swap_requests / 2,
                ),
                TenantSpec::new(
                    "google",
                    1,
                    ArrivalProcess::closed_loop(4),
                    swap_requests / 2,
                ),
            ]);
        let mut fleet = Fleet::new_multi(&cfg, &[&shuffle, &google]);
        fleet.run_to_completion();
        let report = fleet.into_report();
        assert_eq!(report.completed, report.offered, "closed-loop runs drain");
        let swaps: u64 = report.tenants.iter().map(|t| t.model_swaps).sum();
        let swap_time: f64 = report.tenants.iter().map(|t| us(t.swap_time)).sum();
        assert!(swaps > 0, "{name}: co-located models must force swaps");
        let rows: Vec<String> = report
            .tenants
            .iter()
            .map(|t| {
                println!(
                    "  {name:>6} | {:>8}: {:>4} swaps, {:>12.4} us swapping | p99 {:>10.2} us | {:>8.6} J",
                    t.name,
                    t.model_swaps,
                    us(t.swap_time),
                    us(t.latency.p99),
                    t.energy_j,
                );
                format!(
                    concat!(
                        "          {{\"tenant\": \"{}\", \"model\": \"{}\", ",
                        "\"model_swaps\": {}, \"swap_time_us\": {}, ",
                        "\"p99_us\": {}, \"energy_j\": {}}}"
                    ),
                    t.name,
                    t.model,
                    t.model_swaps,
                    json_num(us(t.swap_time)),
                    json_num(us(t.latency.p99)),
                    format!("{:.6}", t.energy_j),
                )
            })
            .collect();
        swap_json.push(format!(
            concat!(
                "      {{\"accelerator\": \"{}\", \"total_model_swaps\": {}, ",
                "\"total_swap_time_us\": {}, \"makespan_us\": {},\n",
                "        \"tenants\": [\n{}\n      ]}}"
            ),
            name,
            swaps,
            json_num(swap_time),
            json_num(us(report.makespan)),
            rows.join(",\n"),
        ));
        swap_totals.push((name, swaps, swap_time));
    }
    let sconna_swap_us = swap_totals[0].2;
    let mam_swap_us = swap_totals[1].2;
    let swap_asymmetry = mam_swap_us / sconna_swap_us;
    println!("  MAM spends {swap_asymmetry:.0}x SCONNA's time swapping models\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"tenants\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"isolation\": {{\n",
            "    \"model\": \"{}\", \"instances\": {}, \"max_batch\": 1,\n",
            "    \"fleet_capacity_fps\": {}, \"victim_rate_fps\": {},\n",
            "    \"victim_weight_share\": 0.5, \"victim_load_of_share\": 0.25,\n",
            "    \"victim_requests\": {},\n",
            "    \"solo_p99_us\": {},\n",
            "    \"schedulers\": [\n{}\n    ],\n",
            "    \"wfq_p99_ratio_at_4x\": {}, \"fifo_p99_ratio_at_4x\": {}\n",
            "  }},\n",
            "  \"swap_cost\": {{\n",
            "    \"instances\": 1, \"max_batch\": 4, \"requests\": {},\n",
            "    \"accelerators\": [\n{}\n    ],\n",
            "    \"swap_time_ratio_mam_over_sconna\": {}\n",
            "  }},\n",
            "  \"worker_invariant_1_2_8\": {}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        model.name,
        instances,
        json_num(capacity),
        json_num(victim_rate),
        victim_requests,
        json_num(us(solo_p99)),
        sched_json.join(",\n"),
        json_num(wfq_ratio),
        json_num(fifo_ratio),
        swap_requests,
        swap_json.join(",\n"),
        json_num(swap_asymmetry),
        worker_invariant,
    );
    if smoke {
        // Smoke numbers (reduced grid) are not a baseline; the
        // checked-in record is always a full-mode run.
        println!("smoke mode: BENCH_tenants.json (full-mode baseline) left untouched");
    } else {
        std::fs::write("BENCH_tenants.json", &json).expect("write BENCH_tenants.json");
        println!("wrote BENCH_tenants.json");
    }

    // ---- Acceptance gates (both modes) ----
    assert!(
        wfq_ratio <= 1.2,
        "weighted-fair must hold the victim's p99 within 1.2x of solo under a 4x-share aggressor, got {wfq_ratio:.3}x"
    );
    assert!(
        fifo_ratio >= 5.0,
        "the shared-FIFO baseline must blow the victim's p99 up >= 5x, got {fifo_ratio:.3}x"
    );
    assert!(
        swap_asymmetry >= 100.0,
        "MAM's cell-programming swaps must dwarf SCONNA's LUT repointing, got {swap_asymmetry:.1}x"
    );
}
