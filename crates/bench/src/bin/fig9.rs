//! Fig. 9(a/b/c): FPS, FPS/W and FPS/W/mm² for SCONNA vs the MAM
//! (HOLYLIGHT) and AMM (DEAP-CNN) analog baselines across the four
//! evaluated CNNs, plus the gmean speedups against the paper's published
//! factors.

use sconna_accel::report::run_fig9;
use sconna_bench::banner;
use sconna_tensor::models::all_models;

fn main() {
    print!(
        "{}",
        banner(
            "Fig. 9 — FPS / FPS/W / FPS/W/mm2 comparison",
            "SCONNA paper, Section VI-C, Fig. 9(a)(b)(c)"
        )
    );
    let models = all_models();
    let grid = run_fig9(&models);

    println!(
        "{}",
        grid.format_metric("Fig. 9(a): throughput", "FPS", |p| p.fps)
    );
    println!(
        "{}",
        grid.format_metric("Fig. 9(b): energy efficiency", "FPS/W", |p| p.fps_per_w)
    );
    println!(
        "{}",
        grid.format_metric("Fig. 9(c): area efficiency", "FPS/W/mm2", |p| p
            .fps_per_w_per_mm2)
    );
    println!("{}", grid.format_speedups());

    // Where the joules go (ResNet50).
    println!("top energy consumers (ResNet50):");
    for (ai, cfg) in grid.accelerators.iter().enumerate() {
        let perf = &grid.results[ai][1];
        let mut bd = perf.energy_breakdown_j.clone();
        bd.sort_by(|a, b| b.1.total_cmp(&a.1));
        let total: f64 = bd.iter().map(|(_, e)| e).sum();
        let tops: Vec<String> = bd
            .iter()
            .take(3)
            .map(|(name, e)| format!("{name} {:.1}%", 100.0 * e / total))
            .collect();
        println!("  {:<18} {}", cfg.name, tops.join(", "));
    }
    println!();

    // Per-layer bottleneck attribution for the largest model on each
    // accelerator — the mechanism behind the speedups.
    println!("bottleneck attribution (ResNet50):");
    for (ai, cfg) in grid.accelerators.iter().enumerate() {
        let perf = &grid.results[ai][1]; // ResNet50
        let mut compute = 0u64;
        let mut psum = 0u64;
        let mut reprogram = 0u64;
        let mut other = 0u64;
        for l in &perf.layers {
            let dominant = l.compute.max(l.psum).max(l.reprogram).max(l.memory);
            if dominant == l.compute {
                compute += l.total.as_ps();
            } else if dominant == l.psum {
                psum += l.total.as_ps();
            } else if dominant == l.reprogram {
                reprogram += l.total.as_ps();
            } else {
                other += l.total.as_ps();
            }
        }
        let tot = (compute + psum + reprogram + other).max(1) as f64;
        println!(
            "  {:<18} compute {:>5.1}%  psum {:>5.1}%  reprogram {:>5.1}%  memory {:>5.1}%",
            cfg.name,
            100.0 * compute as f64 / tot,
            100.0 * psum as f64 / tot,
            100.0 * reprogram as f64 / tot,
            100.0 * other as f64 / tot,
        );
    }
}
