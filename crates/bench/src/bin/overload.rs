//! Overload sweep: offered load × admission policy across the saturation
//! knee of a SCONNA serving fleet — the open-loop regime the closed-loop
//! serving bench cannot reach. Every point runs the **functional** fleet
//! (real `vdp_batch` inference on a trained, quantized small CNN), so the
//! curve carries top-1 accuracy alongside goodput, drop rate, tail
//! latency and queue depth. Emits `BENCH_overload.json`, the checked-in
//! record of the knee:
//!
//! * `drop_newest` — goodput plateaus at capacity, p99 collapses onto the
//!   full-queue wait;
//! * `drop_oldest` — same plateau, freshest-first eviction;
//! * `deadline` — p99 stays bounded by the SLO at the cost of drop rate;
//! * `degrade` — goodput clears the full-fidelity capacity (no drops) at
//!   the cost of accuracy: overflow runs on a 4-bit fallback model
//!   (`QuantizedNetwork::degraded`) bound to a 4-bit engine whose
//!   streams are 16× shorter and whose range-matched ADC keeps the
//!   coarser grid's signal-to-noise.
//!
//! Every sweep is bit-identical across 1/2/8 workers (asserted here).
//!
//! Run with: `cargo run --release -p sconna-bench --bin overload`
//! (`--smoke` runs a tiny configuration for CI; smoke mode never writes
//! `BENCH_overload.json`).

use sconna_accel::engine::SconnaEngine;
use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::report::format_overload_sweep;
use sconna_accel::serve::{
    overload_sweep, simulate_serving, AdmissionPolicy, FunctionalWorkload, OverloadPoint,
    ServingConfig,
};
use sconna_bench::banner;
use sconna_photonics::pca::AdcModel;
use sconna_sc::Precision;
use sconna_sim::time::SimTime;
use sconna_tensor::dataset::SyntheticDataset;
use sconna_tensor::engine::ExactEngine;
use sconna_tensor::models::{googlenet, shufflenet_v2};
use sconna_tensor::smallcnn::{SmallCnn, SmallCnnConfig};

/// Precision of the degrade-policy fallback model and its engine.
const FALLBACK_BITS: u8 = 4;

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn point_json(p: &OverloadPoint, capacity: f64) -> String {
    let s = &p.report.serving;
    // Shed events can outlive the last completion, so integrate the
    // depth series over the longer of the two horizons.
    let depth_end = s
        .makespan
        .max(s.queue_depth.last_time().unwrap_or(SimTime::ZERO))
        .max(SimTime::from_ps(1));
    format!(
        concat!(
            "        {{\"offered_fps\": {}, \"offered_over_capacity\": {}, ",
            "\"goodput_fps\": {}, \"fps_full_fidelity\": {}, ",
            "\"dropped\": {}, \"degraded\": {}, \"drop_rate\": {}, ",
            "\"p50_us\": {}, \"p99_us\": {}, ",
            "\"mean_queue_depth\": {}, \"max_queue_depth\": {}, ",
            "\"accuracy_admitted\": {}, \"accuracy_offered\": {}}}"
        ),
        json_num(p.offered_fps),
        json_num(p.offered_fps / capacity),
        json_num(s.goodput_fps),
        json_num(s.fps),
        s.dropped,
        s.degraded,
        json_num(s.drop_rate),
        json_num(s.latency.p50.as_secs_f64() * 1e6),
        json_num(s.latency.p99.as_secs_f64() * 1e6),
        json_num(s.queue_depth.mean_depth(depth_end)),
        s.queue_depth.max_depth(),
        json_num(p.report.accuracy_under_load),
        json_num(p.report.accuracy_offered),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print!(
        "{}",
        banner(
            "Overload sweep — admission control across the saturation knee",
            "open-loop shedding behavior behind the fleet-capacity claim"
        )
    );

    let (model, requests, max_batch, queue_cap, multipliers): (_, usize, usize, usize, &[f64]) =
        if smoke {
            (shufflenet_v2(), 48, 4, 2, &[0.5, 2.5])
        } else {
            (
                googlenet(),
                192,
                8,
                16,
                &[0.4, 0.7, 0.9, 1.1, 1.4, 2.0, 3.0],
            )
        };

    // The fleet every policy serves: 2 instances behind a bounded queue —
    // in full mode deep enough (16/instance, 4 batches) that queue wait,
    // not the flush window, dominates the overloaded tail; in smoke mode
    // shallow enough (one batch) that the tiny request count still sheds.
    let base = ServingConfig::saturation(AcceleratorConfig::sconna(), 2, max_batch, requests)
        .with_queue_cap(queue_cap)
        .with_seed(23);
    let capacity = base.estimated_capacity_fps(&model);
    let measured = simulate_serving(&base, &model);
    // Deadline SLO: one full-batch service time of queue wait.
    let batch_service =
        SimTime::from_secs_f64(base.instances as f64 * base.max_batch as f64 / capacity);
    println!(
        "timing model: {} | fleet {}x batch {} | capacity {:.0} fps (closed-loop measured {:.0})",
        model.name, base.instances, base.max_batch, capacity, measured.fps
    );

    // Functional workload: a trained, quantized small CNN and its
    // low-precision fallback, each bound to a precision-matched engine.
    let (epochs, train_pc, test_pc) = if smoke {
        (8usize, 12usize, 6usize)
    } else {
        (10, 20, 12)
    };
    let seed = 7u64;
    let data = SyntheticDataset::new(10, 16, 0.25, seed);
    let train = data.batch(train_pc, seed.wrapping_add(1));
    let test = data.batch(test_pc, seed.wrapping_add(2));
    let mut cnn = SmallCnn::new(
        SmallCnnConfig {
            input_size: 16,
            channels1: 8,
            channels2: 16,
            classes: 10,
        },
        seed,
    );
    cnn.train(&train, epochs, 0.05);
    let qnet = cnn.quantize(&train, 8);
    let fallback = qnet.degraded(FALLBACK_BITS);
    let engine = SconnaEngine::paper_default(seed);
    let fb_engine = SconnaEngine::new(
        Precision::new(FALLBACK_BITS),
        176,
        Some(AdcModel::sconna_default()),
        seed,
    );
    // Offline accuracy on the *serving* engines — the coarser grid plus
    // its shorter streams is why degraded responses cost accuracy (on
    // the exact engine both nets classify this set perfectly).
    let (offline_top1, _) = qnet.prepare(&engine).evaluate(&test, 5, 1);
    let (fallback_top1, _) = fallback.prepare(&fb_engine).evaluate(&test, 5, 1);
    let (exact_top1, _) = qnet.prepare(&ExactEngine).evaluate(&test, 5, 1);
    println!(
        "functional model: offline top-1 {:.1}% (primary, B8) vs {:.1}% (B{FALLBACK_BITS} fallback) on stochastic engines ({:.1}% exact)\n",
        100.0 * offline_top1,
        100.0 * fallback_top1,
        100.0 * exact_top1
    );

    let rates: Vec<f64> = multipliers.iter().map(|m| m * capacity).collect();
    let slo = batch_service;
    let policies: &[(&str, AdmissionPolicy)] = &[
        ("drop_newest", AdmissionPolicy::DropNewest),
        ("drop_oldest", AdmissionPolicy::DropOldest),
        ("deadline", AdmissionPolicy::Deadline { slo }),
        (
            "degrade",
            AdmissionPolicy::Degrade {
                fallback_bits: FALLBACK_BITS,
            },
        ),
    ];

    // The whole grid at three worker settings (sweep-level × in-instance
    // parallelism): reports must be bit-identical.
    let run_grid = |sweep_workers: usize, instance_workers: usize| -> Vec<Vec<OverloadPoint>> {
        policies
            .iter()
            .map(|&(_, admission)| {
                let cfg = base.clone().with_admission(admission);
                let workload = FunctionalWorkload {
                    net: &qnet,
                    fallback: Some(&fallback),
                    fallback_engine: Some(&fb_engine),
                    samples: &test,
                    engine: &engine,
                    workers: instance_workers,
                };
                overload_sweep(&cfg, &model, &workload, &rates, sweep_workers)
            })
            .collect()
    };
    let grid = run_grid(1, 1);
    let worker_settings: &[(usize, usize)] = if smoke { &[(2, 2)] } else { &[(2, 2), (8, 8)] };
    let invariant = worker_settings
        .iter()
        .all(|&(sw, iw)| format!("{:?}", run_grid(sw, iw)) == format!("{grid:?}"));
    assert!(invariant, "overload sweep diverged across worker counts");

    let mut policy_json = Vec::new();
    for ((name, admission), points) in policies.iter().zip(&grid) {
        println!("policy: {name} ({admission:?})");
        print!("{}", format_overload_sweep(points));
        println!();
        policy_json.push(format!(
            "    {{\"policy\": \"{}\",\n      \"points\": [\n{}\n      ]}}",
            name,
            points
                .iter()
                .map(|p| point_json(p, capacity))
                .collect::<Vec<_>>()
                .join(",\n"),
        ));
    }

    let under = |points: &[OverloadPoint]| points.first().expect("sweep has points").clone();
    let over = |points: &[OverloadPoint]| points.last().expect("sweep has points").clone();
    let (dn_u, dn_o) = (under(&grid[0]), over(&grid[0]));
    let dl_o = over(&grid[2]);
    let (dg_u, dg_o) = (under(&grid[3]), over(&grid[3]));

    println!(
        "knee summary at {:.1}x capacity:",
        multipliers.last().unwrap()
    );
    println!(
        "  drop_newest: goodput {:.0} fps ({:.2}x capacity), p99 {} (vs {} below knee), drop rate {:.0}%",
        dn_o.report.serving.goodput_fps,
        dn_o.report.serving.goodput_fps / capacity,
        dn_o.report.serving.latency.p99,
        dn_u.report.serving.latency.p99,
        100.0 * dn_o.report.serving.drop_rate
    );
    println!(
        "  deadline:    p99 {} (slo {}), drop rate {:.0}%",
        dl_o.report.serving.latency.p99,
        slo,
        100.0 * dl_o.report.serving.drop_rate
    );
    println!(
        "  degrade:     goodput {:.0} fps ({:.0}% of offered), 0 drops, accuracy {:.1}% (vs {:.1}% below knee)",
        dg_o.report.serving.goodput_fps,
        100.0 * dg_o.report.serving.goodput_fps / dg_o.offered_fps,
        100.0 * dg_o.report.accuracy_under_load,
        100.0 * dg_u.report.accuracy_under_load
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"overload\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"timing_model\": \"{}\",\n",
            "  \"fleet\": {{\"instances\": {}, \"max_batch\": {}, \"queue_cap_per_instance\": {},\n",
            "            \"batch_window_us\": {}, \"deadline_slo_us\": {}, \"fallback_weight_bits\": {}}},\n",
            "  \"requests_per_point\": {},\n",
            "  \"capacity_fps_estimate\": {},\n",
            "  \"capacity_fps_measured_closed_loop\": {},\n",
            "  \"offline_top1_primary\": {},\n",
            "  \"offline_top1_fallback\": {},\n",
            "  \"worker_invariant_1_2_8\": {},\n",
            "  \"policies\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        model.name,
        base.instances,
        base.max_batch,
        base.queue_cap.expect("bounded"),
        json_num(base.batch_window.as_secs_f64() * 1e6),
        json_num(slo.as_secs_f64() * 1e6),
        FALLBACK_BITS,
        requests,
        json_num(capacity),
        json_num(measured.fps),
        json_num(offline_top1),
        json_num(fallback_top1),
        invariant,
        policy_json.join(",\n"),
    );
    if smoke {
        // Smoke numbers (tiny sweep, few requests) are not a baseline;
        // the checked-in record is always a full-mode run.
        println!("\nsmoke mode: BENCH_overload.json (full-mode baseline) left untouched");
    } else {
        std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");
        println!("\nwrote BENCH_overload.json");
    }

    // The shedding gates hold in both modes: past the knee the bounded
    // queue must actually shed, each policy in its own way.
    assert!(
        dn_o.report.serving.dropped > 0,
        "drop_newest must shed past the knee"
    );
    assert!(
        dl_o.report.serving.drop_rate > 0.0,
        "deadline holds its tail by dropping"
    );
    assert_eq!(dg_o.report.serving.dropped, 0, "degrade must not drop");
    assert!(
        dg_o.report.serving.degraded > 0,
        "past the knee the degrade policy must actually degrade"
    );
    // The knee-shape gates need the full sweep's request count — small
    // smoke runs are ramp/drain-dominated.
    if !smoke {
        let dn_knee = dn_o.report.serving.goodput_fps / capacity;
        assert!(
            (0.75..=1.1).contains(&dn_knee),
            "drop_newest goodput must plateau at capacity, got {dn_knee:.2}x"
        );
        assert!(
            dn_o.report.serving.latency.p99.as_ps() >= 2 * dn_u.report.serving.latency.p99.as_ps(),
            "drop_newest p99 must collapse past the knee"
        );
        let deadline_bound = slo + batch_service + base.batch_window;
        assert!(
            dl_o.report.serving.latency.p99 <= deadline_bound,
            "deadline p99 {} must stay under {}",
            dl_o.report.serving.latency.p99,
            deadline_bound
        );
        // Degrade holds goodput where the drop policies plateau: past
        // the knee its responses/second clear the full-fidelity capacity
        // (the overflow tier's 16x-shorter streams absorb the excess) —
        // and the price is accuracy, which must visibly fall.
        assert!(
            dg_o.report.serving.goodput_fps >= 1.3 * capacity,
            "degrade goodput {:.0} must clear the full-fidelity capacity {:.0}",
            dg_o.report.serving.goodput_fps,
            capacity
        );
        assert!(
            dg_o.report.accuracy_under_load < 0.8 * dg_u.report.accuracy_under_load,
            "degrading must cost accuracy: {:.3} vs {:.3} below the knee",
            dg_o.report.accuracy_under_load,
            dg_u.report.accuracy_under_load
        );
    }
}
