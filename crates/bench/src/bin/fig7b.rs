//! Fig. 7(b): PCA analog output voltage vs α, the fraction of `1`s in
//! the incident bit-streams relative to the 176×256 full scale.

use sconna_bench::banner;
use sconna_photonics::pca::PcaCircuit;

fn main() {
    print!(
        "{}",
        banner(
            "Fig. 7(b) — PCA output voltage vs alpha",
            "SCONNA paper, Section V-C, Fig. 7(b)"
        )
    );
    let pca = PcaCircuit::default();
    let full = 176u64 * 256;
    println!(
        "R = {} ohm-class TIR, C = {:.0} pF, gain = {}",
        50,
        pca.capacitance_f * 1e12,
        pca.amplifier_gain
    );
    println!();
    println!("{:>10}{:>14}{:>10}", "alpha(%)", "ones", "V_out");
    for pct in (0..=100).step_by(10) {
        let ones = full * pct as u64 / 100;
        let v = pca.output_voltage(ones);
        let bar = "#".repeat((v * 50.0).round() as usize);
        println!("{pct:>10}{ones:>14}{v:>9.3}V  {bar}");
    }
    println!();
    let v100 = pca.output_voltage(full);
    let v50 = pca.output_voltage(full / 2);
    let linearity = (v100 / v50 - 2.0).abs();
    println!(
        "linearity check: V(100%)/V(50%) = {:.4} (ideal 2.0000)",
        v100 / v50
    );
    println!(
        "saturation margin: capacity = {} ones vs full scale {}",
        pca.capacity_ones(),
        full
    );
    assert!(linearity < 1e-9, "PCA must be linear through alpha = 100%");
}
