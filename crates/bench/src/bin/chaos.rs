//! Chaos sweep: stochastic instance failures × supervision across the
//! fault-rate axis of a serving fleet — the self-healing counterpart of
//! the overload bench. Each point materializes a seeded [`FailureProcess`]
//! (per-instance exponential kill streams) at one MTBF and runs the fleet
//! twice: **unsupervised** (a killed instance stays down; the fleet
//! eventually strands its tail) and **supervised** (exponential-backoff
//! restarts plus the cluster retry layer re-admitting kill-aborted
//! requests). Emits `BENCH_chaos.json`, the checked-in record of the
//! availability story:
//!
//! * the unsupervised fleet collapses at the mid fault rate (both
//!   instances dead long before the workload drains — most of the
//!   offered traffic is stranded);
//! * the supervised fleet serves everything at every swept rate, and on
//!   SCONNA recovers ≥ 90 % of the fault-free goodput at that same mid
//!   rate — restarts are near-free because the warm reload replays no
//!   DKV programming (the paper's no-reprogramming claim as MTTR);
//! * the analog baseline heals too, but every restart pays the thermal
//!   DKV reprogramming bill: its measured MTTR is orders of magnitude
//!   above SCONNA's.
//!
//! Every curve is bit-identical across 1/2/8 sweep workers (asserted
//! here): the failure streams are counter-keyed, never shared-state.
//!
//! Run with: `cargo run --release -p sconna-bench --bin chaos`
//! (`--smoke` runs a tiny configuration for CI; smoke mode never writes
//! `BENCH_chaos.json`).

use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::perf::model_warm_reload_time;
use sconna_accel::serve::{
    chaos_sweep, simulate_serving, ChaosPoint, FailureProcess, ServingConfig, ServingReport,
    Supervisor,
};
use sconna_bench::banner;
use sconna_sim::stats::GoodputSamples;
use sconna_sim::time::SimTime;
use sconna_tensor::models::{googlenet, shufflenet_v2};

/// Root of every per-instance failure stream (kill times are drawn
/// counter-keyed from this, never from shared RNG state).
const PROCESS_SEED: u64 = 2023;
/// Root of the supervisor's backoff-jitter stream.
const SUPERVISOR_SEED: u64 = 31;

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

/// Responses (full-fidelity + degraded) over offered traffic — the
/// served fraction a client population observes.
fn served_fraction(r: &ServingReport) -> f64 {
    (r.completed + r.degraded) as f64 / r.offered as f64
}

fn arm_json(r: &ServingReport, fault_free: &ServingReport) -> String {
    format!(
        concat!(
            "{{\"served_fraction\": {}, \"goodput_fps\": {}, ",
            "\"goodput_over_fault_free\": {}, \"min_window_fps\": {}, ",
            "\"makespan_us\": {}, \"incidents\": {}, \"recoveries\": {}, ",
            "\"restarts_issued\": {}, \"benched\": {}, \"active_instances\": {}, ",
            "\"mean_mttr_us\": {}, \"downtime_us\": {}, ",
            "\"retries\": {}, \"max_attempts_seen\": {}, ",
            "\"stranded\": {}, \"shed_retry\": {}}}"
        ),
        json_num(served_fraction(r)),
        json_num(r.goodput_fps),
        json_num(r.goodput_fps / fault_free.goodput_fps),
        json_num(
            r.goodput_series
                .as_ref()
                .map_or(f64::NAN, GoodputSamples::min_rate_fps)
        ),
        json_num(r.makespan.as_secs_f64() * 1e6),
        r.availability.incidents,
        r.availability.recoveries,
        r.availability.restarts_issued,
        r.availability.benched,
        r.availability.active_instances,
        json_num(r.availability.mean_mttr.as_secs_f64() * 1e6),
        json_num(
            r.availability
                .downtime
                .iter()
                .map(|d| d.as_secs_f64())
                .sum::<f64>()
                * 1e6
        ),
        r.availability.retries,
        r.availability.max_attempts_seen,
        r.shed.stranded,
        r.shed.retry,
    )
}

/// One accelerator's full curve: the fault-free baseline plus, at each
/// MTBF, the unsupervised and supervised arms.
struct AccelCurve {
    name: &'static str,
    fault_free: ServingReport,
    warm_reload: SimTime,
    mtbfs: Vec<SimTime>,
    unsupervised: Vec<ChaosPoint>,
    supervised: Vec<ChaosPoint>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print!(
        "{}",
        banner(
            "Chaos sweep — self-healing under stochastic instance failures",
            "availability & measured MTTR behind the no-reprogramming claim"
        )
    );

    // Small batches on purpose: a kill aborts the in-flight batch and its
    // work is redone on retry, so the batch is the unit of wasted work.
    // Fine-grained batches keep the supervised fleet's redo bill small —
    // the same reasoning that makes checkpoint intervals track MTBF.
    let (model, requests, multipliers): (_, usize, &[f64]) = if smoke {
        (shufflenet_v2(), 96, &[1.0, 0.25])
    } else {
        (googlenet(), 192, &[1.0, 0.25, 0.0625])
    };
    let instances = 2;
    let max_batch = 2;
    // The mid point: where the unsupervised fleet has lost every
    // instance well before the workload drains.
    let mid = 1;

    let accels: &[(&'static str, AcceleratorConfig)] = &[
        ("SCONNA", AcceleratorConfig::sconna()),
        ("MAM", AcceleratorConfig::mam()),
    ];

    let run_accel = |accel: &AcceleratorConfig, workers: usize| -> AccelCurve {
        let base = ServingConfig::saturation(*accel, instances, max_batch, requests).with_seed(17);
        let fault_free = simulate_serving(&base, &model);
        let t = fault_free.makespan;
        // MTBF grid scaled to this accelerator's own fault-free makespan
        // so the fault *pressure* (expected kills per run) matches across
        // accelerators with different service rates.
        let mtbfs: Vec<SimTime> = multipliers
            .iter()
            .map(|m| SimTime::from_secs_f64(t.as_secs_f64() * m))
            .collect();
        // Kills keep arriving over 4x the fault-free run, so a healing
        // fleet whose makespan stretches stays under fire throughout.
        let horizon = SimTime::from_ps(t.as_ps().saturating_mul(4));
        // Crash-loop window and ladder reset scaled well under the mid
        // MTBF: benching is for flapping instances, not this homogeneous
        // kill stream, and an instance that survives a fiftieth of the
        // run has earned its backoff ladder back — with the production
        // defaults (millisecond-scale) every kill in these
        // microsecond-scale runs would look like a crash loop and the
        // ladder would escalate to the cap, swamping the reload cost the
        // sweep is meant to expose.
        let supervisor = Supervisor {
            crash_loop_window: SimTime::from_ps((t.as_ps() / 50).max(1)),
            reset_after: SimTime::from_ps((t.as_ps() / 50).max(1)),
            ..Supervisor::new(SUPERVISOR_SEED)
        };
        let series_window = SimTime::from_ps((t.as_ps() / 16).max(1));
        let process = FailureProcess::new(PROCESS_SEED, mtbfs[0]);
        let unsupervised = chaos_sweep(
            &base.clone().with_goodput_window(series_window),
            &model,
            &process,
            &mtbfs,
            horizon,
            workers,
        );
        let supervised = chaos_sweep(
            &base
                .clone()
                .with_supervisor(supervisor)
                .with_goodput_window(series_window),
            &model,
            &process,
            &mtbfs,
            horizon,
            workers,
        );
        AccelCurve {
            name: "",
            fault_free,
            warm_reload: model_warm_reload_time(accel, &model),
            mtbfs,
            unsupervised,
            supervised,
        }
    };

    let run_grid = |workers: usize| -> Vec<AccelCurve> {
        accels
            .iter()
            .map(|(name, accel)| AccelCurve {
                name,
                ..run_accel(accel, workers)
            })
            .collect()
    };
    let grid_debug = |grid: &[AccelCurve]| -> String {
        grid.iter()
            .map(|c| {
                format!(
                    "{:?}|{:?}|{:?}|{:?}",
                    c.fault_free, c.mtbfs, c.unsupervised, c.supervised
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let grid = run_grid(1);
    let worker_settings: &[usize] = if smoke { &[2] } else { &[2, 8] };
    let invariant = worker_settings
        .iter()
        .all(|&w| grid_debug(&run_grid(w)) == grid_debug(&grid));
    assert!(invariant, "chaos sweep diverged across worker counts");

    let mut accel_json = Vec::new();
    for curve in &grid {
        println!(
            "accelerator: {} | fault-free makespan {} | goodput {:.0} fps | warm reload {}",
            curve.name, curve.fault_free.makespan, curve.fault_free.goodput_fps, curve.warm_reload
        );
        let mut point_json = Vec::new();
        for (i, mtbf) in curve.mtbfs.iter().enumerate() {
            let (u, s) = (&curve.unsupervised[i].report, &curve.supervised[i].report);
            println!(
                "  mtbf {:>12} ({:>4.2}x makespan): unsupervised {:>5.1}% served ({} stranded) | supervised {:>5.1}% served, {:.2}x fault-free goodput, {} incidents, {} recoveries, mttr {}",
                format!("{mtbf}"),
                multipliers[i],
                100.0 * served_fraction(u),
                u.shed.stranded,
                100.0 * served_fraction(s),
                s.goodput_fps / curve.fault_free.goodput_fps,
                s.availability.incidents,
                s.availability.recoveries,
                s.availability.mean_mttr,
            );
            point_json.push(format!(
                concat!(
                    "        {{\"mtbf_us\": {}, \"mtbf_over_makespan\": {}, ",
                    "\"fault_rate_per_s\": {},\n",
                    "         \"unsupervised\": {},\n",
                    "         \"supervised\": {}}}"
                ),
                json_num(mtbf.as_secs_f64() * 1e6),
                json_num(multipliers[i]),
                json_num(1.0 / mtbf.as_secs_f64()),
                arm_json(u, &curve.fault_free),
                arm_json(s, &curve.fault_free),
            ));
        }
        println!();
        accel_json.push(format!(
            concat!(
                "    {{\"accelerator\": \"{}\",\n",
                "      \"fault_free\": {{\"makespan_us\": {}, \"goodput_fps\": {}}},\n",
                "      \"warm_reload_us\": {},\n",
                "      \"points\": [\n{}\n      ]}}"
            ),
            curve.name,
            json_num(curve.fault_free.makespan.as_secs_f64() * 1e6),
            json_num(curve.fault_free.goodput_fps),
            json_num(curve.warm_reload.as_secs_f64() * 1e6),
            point_json.join(",\n"),
        ));
    }

    let sconna = &grid[0];
    let mam = &grid[1];
    let sc_mid = &sconna.supervised[mid].report;
    let mam_mid = &mam.supervised[mid].report;
    println!(
        "mid-rate summary (mtbf = {:.2}x fault-free makespan):",
        multipliers[mid]
    );
    println!(
        "  unsupervised collapse: SCONNA {:.0}% served, MAM {:.0}% served",
        100.0 * served_fraction(&sconna.unsupervised[mid].report),
        100.0 * served_fraction(&mam.unsupervised[mid].report),
    );
    println!(
        "  supervised recovery:   SCONNA {:.0}% served at {:.2}x fault-free goodput, MAM {:.0}% served at {:.2}x",
        100.0 * served_fraction(sc_mid),
        sc_mid.goodput_fps / sconna.fault_free.goodput_fps,
        100.0 * served_fraction(mam_mid),
        mam_mid.goodput_fps / mam.fault_free.goodput_fps,
    );
    println!(
        "  measured MTTR:         SCONNA {} (warm reload zero) vs MAM {} (thermal DKV reprogramming)",
        sc_mid.availability.mean_mttr, mam_mid.availability.mean_mttr,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"chaos\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"timing_model\": \"{}\",\n",
            "  \"fleet\": {{\"instances\": {}, \"max_batch\": {}, \"requests\": {}}},\n",
            "  \"failure_process\": {{\"seed\": {}, \"kind\": \"kill-only, per-instance exponential, counter-keyed\"}},\n",
            "  \"supervisor\": {{\"seed\": {}, \"initial_backoff_us\": {}, \"backoff_factor\": {}, ",
            "\"max_backoff_us\": {}, \"jitter\": {}, \"restart_mode\": \"warm\", ",
            "\"crash_loop_window\": \"makespan/50\", \"crash_loop_limit\": {}}},\n",
            "  \"retry\": \"default: unconditional re-admission of kill-aborted requests\",\n",
            "  \"mtbf_multipliers_of_makespan\": [{}],\n",
            "  \"worker_invariant_1_2_8\": {},\n",
            "  \"accelerators\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        model.name,
        instances,
        max_batch,
        requests,
        PROCESS_SEED,
        SUPERVISOR_SEED,
        json_num(
            Supervisor::new(SUPERVISOR_SEED)
                .initial_backoff
                .as_secs_f64()
                * 1e6
        ),
        Supervisor::new(SUPERVISOR_SEED).backoff_factor,
        json_num(Supervisor::new(SUPERVISOR_SEED).max_backoff.as_secs_f64() * 1e6),
        json_num(Supervisor::new(SUPERVISOR_SEED).jitter),
        Supervisor::new(SUPERVISOR_SEED).crash_loop_limit,
        multipliers
            .iter()
            .map(|m| json_num(*m))
            .collect::<Vec<_>>()
            .join(", "),
        invariant,
        accel_json.join(",\n"),
    );
    if smoke {
        // Smoke numbers (tiny sweep, few requests) are not a baseline;
        // the checked-in record is always a full-mode run.
        println!("\nsmoke mode: BENCH_chaos.json (full-mode baseline) left untouched");
    } else {
        std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
        println!("\nwrote BENCH_chaos.json");
    }

    // The availability gates hold in both modes.
    for curve in &grid {
        let u = &curve.unsupervised[mid].report;
        let s = &curve.supervised[mid].report;
        // Unsupervised collapse: every instance dead, the tail stranded.
        assert_eq!(
            u.availability.active_instances, 0,
            "{}: unsupervised fleet must lose every instance at the mid rate",
            curve.name
        );
        assert!(
            u.shed.stranded > 0 && served_fraction(u) < 0.7,
            "{}: unsupervised fleet must collapse at the mid rate, served {:.2}",
            curve.name,
            served_fraction(u)
        );
        // Supervised recovery: restarts + retries serve (essentially)
        // everything the unsupervised fleet stranded.
        assert!(
            served_fraction(s) >= 0.9,
            "{}: supervised fleet must serve >= 90% at the mid rate, got {:.2}",
            curve.name,
            served_fraction(s)
        );
        assert!(
            s.availability.recoveries > 0 && s.availability.retries > 0,
            "{}: the mid-rate supervised run must exercise restarts and retries",
            curve.name
        );
    }
    // The paper's reload advantage as MTTR: SCONNA's warm restart replays
    // no DKV programming, the analog baseline pays thermal reprogramming
    // on every recovery.
    assert_eq!(sconna.warm_reload, SimTime::ZERO, "SCONNA warm reload");
    assert!(
        sc_mid.availability.mean_mttr < mam_mid.availability.mean_mttr,
        "SCONNA MTTR {} must beat MAM {}",
        sc_mid.availability.mean_mttr,
        mam_mid.availability.mean_mttr
    );
    // The goodput-recovery gates need the full grid's request count —
    // small smoke runs are ramp/drain-dominated.
    if !smoke {
        assert!(
            sc_mid.goodput_fps >= 0.9 * sconna.fault_free.goodput_fps,
            "supervised SCONNA must recover >= 90% of fault-free goodput at the mid rate, got {:.2}x",
            sc_mid.goodput_fps / sconna.fault_free.goodput_fps
        );
        for curve in &grid {
            let served: Vec<f64> = curve
                .unsupervised
                .iter()
                .map(|p| served_fraction(&p.report))
                .collect();
            assert!(
                served.first() >= served.last(),
                "{}: unsupervised served fraction must fall with the fault rate: {served:?}",
                curve.name
            );
        }
    }
}
