//! Section V-B: the SCONNA VDPC scalability solve — photodetector
//! sensitivity, power-limited and channel-limited N, and the link-budget
//! breakdown at the achievable size.

use sconna_bench::{banner, format_kv};
use sconna_photonics::link::{received_power_dbm, sconna_channel_loss, LinkParameters};
use sconna_photonics::scalability::sconna_scalability_default;
use sconna_photonics::spectrum::crosstalk_penalty_db;

fn main() {
    print!(
        "{}",
        banner(
            "SCONNA VDPC scalability (N = M solve)",
            "SCONNA paper, Section V-B"
        )
    );
    let s = sconna_scalability_default();
    print!(
        "{}",
        format_kv(&[
            (
                "P_PD-opt (1-bit sensitivity)",
                format!("{:.2} dBm (paper: -28 dBm)", s.p_pd_opt_dbm)
            ),
            ("power-limited N", format!("{}", s.power_limited_n)),
            (
                "channel-limited N (FSR/gap)",
                format!("{}", s.channel_limited_n)
            ),
            (
                "achievable N = M",
                format!("{} (paper: 176)", s.achievable_n)
            ),
        ])
    );

    println!();
    println!("link-budget breakdown at N = M = {}:", s.achievable_n);
    let params = LinkParameters::default();
    let loss = sconna_channel_loss(&params, s.achievable_n, s.achievable_n);
    print!(
        "{}",
        format_kv(&[
            ("coupling", format!("{:.3} dB", loss.coupling_db)),
            ("1xM split (ideal)", format!("{:.3} dB", loss.split_db)),
            ("splitter excess", format!("{:.3} dB", loss.split_excess_db)),
            ("waveguide", format!("{:.3} dB", loss.waveguide_db)),
            ("OSM insertion", format!("{:.3} dB", loss.osm_insertion_db)),
            (
                "OSM out-of-band",
                format!("{:.3} dB", loss.osm_out_of_band_db)
            ),
            (
                "filter insertion",
                format!("{:.3} dB", loss.filter_insertion_db)
            ),
            (
                "filter out-of-band",
                format!("{:.3} dB", loss.filter_out_of_band_db)
            ),
            ("network penalty", format!("{:.3} dB", loss.penalty_db)),
            ("calibration", format!("{:.3} dB", loss.calibration_db)),
            ("TOTAL", format!("{:.3} dB", loss.total_db())),
            (
                "received power",
                format!(
                    "{:.2} dBm",
                    received_power_dbm(&params, s.achievable_n, s.achievable_n)
                ),
            ),
        ])
    );

    println!();
    println!("filter-bank crosstalk penalty (0.25 nm channel gap):");
    for &(n, fwhm_nm) in &[(44usize, 0.1f64), (176, 0.1), (176, 0.2), (176, 0.8)] {
        let pen = crosstalk_penalty_db(n, 0.25e-9, fwhm_nm * 1e-9);
        if pen.is_finite() {
            println!("  N = {n:>3}, filter FWHM = {fwhm_nm} nm: {pen:.2} dB");
        } else {
            println!(
                "  N = {n:>3}, filter FWHM = {fwhm_nm} nm: unresolvable \
(filters as wide as the OAG cannot demux a 0.25 nm grid — the \
filter MRRs must be narrow; this crosstalk is part of IL_penalty)"
            );
        }
    }
}
