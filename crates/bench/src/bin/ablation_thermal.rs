//! Ablation A6: thermal tuning. Grounds the analog baselines' DKV
//! reprogramming latency in a heater model, Monte-Carlos the
//! fabrication-variation tuning power, and sweeps the reprogramming
//! latency to show how the Fig. 9 gap responds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::perf::simulate_inference;
use sconna_bench::banner;
use sconna_photonics::thermal::{tuning_power_analysis, FabricationVariation, HeaterModel};
use sconna_sim::time::SimTime;
use sconna_tensor::models::resnet50;

fn main() {
    print!(
        "{}",
        banner(
            "Ablation A6 — thermal tuning of the MRR banks",
            "grounding for the analog DKV reprogramming calibration"
        )
    );

    let heater = HeaterModel::default();
    println!(
        "heater: {:.2} nm/mW, tau = {:.1} us, reach = {:.1} nm",
        heater.efficiency_nm_per_mw,
        heater.time_constant_s * 1e6,
        heater.reach_nm()
    );
    for tol in [0.1f64, 0.01, 0.001] {
        println!(
            "  settle to {:>5.1}% of step: {:>6.1} us",
            tol * 100.0,
            heater.settle_time_s(tol) * 1e6
        );
    }
    println!("=> the 20 us DKV reprogramming calibration = settle to ~1%.");

    println!();
    println!("fabrication-variation tuning power (Monte-Carlo, 10k rings):");
    for sigma in [0.2f64, 0.5, 0.8] {
        let a = tuning_power_analysis(
            &heater,
            &FabricationVariation { sigma_nm: sigma },
            10_000,
            50.0,
            &mut StdRng::seed_from_u64(42),
        );
        println!(
            "  sigma = {sigma} nm: mean {:.2} mW/ring, worst {:.2} mW, \
             {:.0}% re-assigned to adjacent channels",
            a.mean_power_mw,
            a.max_power_mw,
            100.0 * a.wrap_fraction
        );
    }

    println!();
    println!("sensitivity of the ResNet50 FPS gap to the reprogramming latency:");
    let model = resnet50();
    let sconna_fps = simulate_inference(&AcceleratorConfig::sconna(), &model).fps;
    println!("{:>14}{:>14}{:>16}", "t_prog (us)", "MAM FPS", "SCONNA/MAM");
    for t_us in [2u64, 10, 20, 50, 100] {
        let cfg = AcceleratorConfig {
            dkv_reprogram: SimTime::from_ps(t_us * 1_000_000),
            ..AcceleratorConfig::mam()
        };
        let fps = simulate_inference(&cfg, &model).fps;
        println!("{:>14}{:>14.2}{:>15.1}x", t_us, fps, sconna_fps / fps);
    }
    println!();
    println!("below ~10 us the analog baseline becomes purely psum-bound and");
    println!("the gap stops depending on the thermal calibration at all.");
}
