//! Fig. 7(a): supported OAG bitrate vs passband FWHM at an OMA floor of
//! −28 dBm (the photodetector sensitivity).

use sconna_bench::banner;
use sconna_photonics::oag::OpticalAndGate;
use sconna_photonics::units::dbm_to_watts;

fn main() {
    print!(
        "{}",
        banner(
            "Fig. 7(a) — OAG bitrate vs FWHM at OMA = -28 dBm",
            "SCONNA paper, Section V-A, Fig. 7(a)"
        )
    );
    let floor = dbm_to_watts(-28.0);
    println!("{:>10}{:>16}{:>26}", "FWHM(nm)", "BR(Gb/s)", "");
    for step in 1..=12 {
        let fwhm_nm = step as f64 * 0.1;
        let gate = OpticalAndGate::new(fwhm_nm * 1e-9, 50e-9, 1e-3);
        let br = gate.supported_bitrate_hz(floor);
        match br {
            Some(br) => {
                let gbps = br / 1e9;
                let bar = "#".repeat((gbps / 2.0).round() as usize);
                println!("{fwhm_nm:>10.1}{gbps:>16.2}  {bar}");
            }
            None => println!("{fwhm_nm:>10.1}{:>16}", "unreachable"),
        }
    }
    println!();
    println!("paper anchor: BR rises with FWHM and saturates at 40 Gb/s");
    println!("around FWHM = 0.8 nm; SCONNA conservatively operates at");
    println!("BR = 30 Gb/s (Section V-B).");
}
