//! Ablation A2: stochastic stream length vs precision — SCONNA trades
//! bits of precision for linear stream time (2^B bits per pass), with no
//! change to the optical power budget. This is the "precision
//! flexibility" claim of Section III-B.

use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::perf::simulate_inference;
use sconna_bench::banner;
use sconna_sc::multiply::{ideal_product, lds_product, real_product};
use sconna_sc::Precision;
use sconna_sim::time::SimTime;
use sconna_tensor::models::resnet50;

fn main() {
    print!(
        "{}",
        banner(
            "Ablation A2 — precision vs stream length vs error",
            "SCONNA paper, Section III-B precision-flexibility claim"
        )
    );
    println!(
        "{:>6}{:>12}{:>16}{:>18}{:>20}",
        "B", "stream", "pass time", "ResNet50 FPS", "worst mult err"
    );
    for bits in [4u8, 6, 8, 10] {
        let p = Precision::new(bits);
        let stream = p.stream_len();
        let pass_ps = (stream as f64 / 30e9 * 1e12).round() as u64;
        let cfg = AcceleratorConfig {
            native_bits: bits,
            symbol_time: SimTime::from_ps(pass_ps),
            ..AcceleratorConfig::sconna()
        };
        let fps = simulate_inference(&cfg, &resnet50()).fps;
        // Worst stochastic multiply error (in value units of 1/2^B)
        // across the operand grid.
        let mut worst = 0f64;
        let max = p.stream_len() as u32;
        let step = (max / 16).max(1);
        for i in (0..=max).step_by(step as usize) {
            for w in (0..=max).step_by(step as usize) {
                worst = worst.max((lds_product(i, w, p) as f64 - real_product(i, w, p)).abs());
            }
        }
        println!(
            "{:>6}{:>12}{:>13} ns{:>18.1}{:>17.2} ulp",
            bits,
            stream,
            pass_ps as f64 / 1000.0,
            fps,
            worst
        );
    }
    println!();
    println!("the analog baselines cannot make this trade: raising B shrinks");
    println!("their achievable N (Table I); SCONNA only lengthens the stream.");
    let p = Precision::B8;
    println!(
        "sanity: 128/256 x 128/256 -> SC {} vs ideal {} (of 256)",
        lds_product(128, 128, p),
        ideal_product(128, 128, p)
    );
}
