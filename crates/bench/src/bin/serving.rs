//! Serving-simulation sweep: batch size × instance count on a saturated
//! fleet, the traffic-serving dimension behind the paper's FPS headline.
//!
//! Run with: `cargo run --release -p sconna-bench --bin serving`
//! (`--smoke` runs a tiny configuration for CI).

use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::report::format_serving_sweep;
use sconna_accel::serve::{sweep, ServingConfig};
use sconna_bench::banner;
use sconna_sim::parallel::default_workers;
use sconna_tensor::models::{googlenet, shufflenet_v2};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print!(
        "{}",
        banner(
            "Serving sweep — batched multi-instance SCONNA fleet",
            "fleet-level throughput/latency behind the Fig. 9 FPS claim"
        )
    );

    let (model, instances, batches, requests): (_, &[usize], &[usize], usize) = if smoke {
        (shufflenet_v2(), &[1, 2], &[1, 4], 16)
    } else {
        (googlenet(), &[1, 2, 4, 8], &[1, 4, 16, 32], 256)
    };
    println!(
        "model: {} | closed-loop saturation | {requests} requests per point\n",
        model.name
    );

    let configs: Vec<ServingConfig> = instances
        .iter()
        .flat_map(|&i| {
            batches.iter().map(move |&b| {
                ServingConfig::saturation(AcceleratorConfig::sconna(), i, b, requests)
            })
        })
        .collect();
    let reports = sweep(configs, &model, default_workers());
    print!("{}", format_serving_sweep(&reports));

    // Headline: scaling from the smallest to the largest fleet at the
    // largest batch.
    let per_point = batches.len();
    let base = &reports[per_point - 1];
    let top = &reports[reports.len() - 1];
    println!(
        "\n{} -> {} instances at batch {}: {:.2}x served FPS",
        base.instances,
        top.instances,
        top.max_batch,
        top.fps / base.fps
    );
}
