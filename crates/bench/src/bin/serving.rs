//! Serving-simulation sweep: batch size × instance count on a saturated
//! fleet, the traffic-serving dimension behind the paper's FPS headline —
//! plus a functional-serving pass where the fleet *executes* a quantized
//! small CNN through real `vdp_batch` tiles and reports top-1
//! accuracy-under-load.
//!
//! Run with: `cargo run --release -p sconna-bench --bin serving`
//! (`--smoke` runs a tiny configuration for CI).

use sconna_accel::engine::SconnaEngine;
use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::report::format_serving_sweep;
use sconna_accel::serve::{simulate_serving_functional, sweep, FunctionalWorkload, ServingConfig};
use sconna_bench::banner;
use sconna_sim::parallel::default_workers;
use sconna_tensor::dataset::SyntheticDataset;
use sconna_tensor::models::{googlenet, shufflenet_v2};
use sconna_tensor::smallcnn::{SmallCnn, SmallCnnConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print!(
        "{}",
        banner(
            "Serving sweep — batched multi-instance SCONNA fleet",
            "fleet-level throughput/latency behind the Fig. 9 FPS claim"
        )
    );

    let (model, instances, batches, requests): (_, &[usize], &[usize], usize) = if smoke {
        (shufflenet_v2(), &[1, 2], &[1, 4], 16)
    } else {
        (googlenet(), &[1, 2, 4, 8], &[1, 4, 16, 32], 256)
    };
    println!(
        "model: {} | closed-loop saturation | {requests} requests per point\n",
        model.name
    );

    let configs: Vec<ServingConfig> = instances
        .iter()
        .flat_map(|&i| {
            batches.iter().map(move |&b| {
                ServingConfig::saturation(AcceleratorConfig::sconna(), i, b, requests)
            })
        })
        .collect();
    let reports = sweep(configs, &model, default_workers());
    print!("{}", format_serving_sweep(&reports));

    // Headline: scaling from the smallest to the largest fleet at the
    // largest batch.
    let per_point = batches.len();
    let base = &reports[per_point - 1];
    let top = &reports[reports.len() - 1];
    println!(
        "\n{} -> {} instances at batch {}: {:.2}x served FPS",
        base.instances,
        top.instances,
        top.max_batch,
        top.fps / base.fps
    );

    // Functional pass: the same scheduler, but every instance owns a
    // prepared quantized model and executes its dequeued batches through
    // real stacked vdp_batch tiles — accuracy under load, keyed per
    // request id (invariant to fleet shape and worker count).
    let (epochs, train_pc, test_pc, fn_requests) = if smoke {
        (8usize, 12usize, 6usize, 12usize)
    } else {
        (10, 20, 12, 128)
    };
    let seed = 7u64;
    let data = SyntheticDataset::new(10, 16, 0.25, seed);
    let train = data.batch(train_pc, seed.wrapping_add(1));
    let test = data.batch(test_pc, seed.wrapping_add(2));
    let mut cnn = SmallCnn::new(
        SmallCnnConfig {
            input_size: 16,
            channels1: 8,
            channels2: 16,
            classes: 10,
        },
        seed,
    );
    cnn.train(&train, epochs, 0.05);
    let qnet = cnn.quantize(&train, 8);
    let engine = SconnaEngine::paper_default(seed);
    let workload = FunctionalWorkload {
        net: &qnet,
        fallback: None,
        fallback_engine: None,
        samples: &test,
        engine: &engine,
        workers: default_workers(),
    };
    println!("\nfunctional serving (stochastic engine, {fn_requests} requests):");
    let mut baseline: Option<Vec<usize>> = None;
    for instances in if smoke {
        vec![1usize, 2]
    } else {
        vec![1usize, 2, 4]
    } {
        let cfg = ServingConfig::saturation(AcceleratorConfig::sconna(), instances, 8, fn_requests);
        let r = simulate_serving_functional(&cfg, &model, &workload);
        println!(
            "  {instances} instance(s): top-1 under load {:.1}%  ({}/{} correct, {:.0} sim FPS)",
            100.0 * r.accuracy_under_load,
            r.correct,
            r.serving.completed,
            r.serving.fps
        );
        match &baseline {
            None => baseline = Some(r.predictions),
            Some(b) => assert_eq!(
                &r.predictions, b,
                "predictions must be invariant to fleet size"
            ),
        }
    }
}
