//! Batched-inference benchmark: wall time of the functional simulator's
//! quantized hot path — the pre-PR single-vector baseline vs the
//! im2col/`vdp_batch` path — on the four evaluated CNN geometries and an
//! end-to-end small CNN, plus the accelerator perf model's simulated
//! FPS. Emits `BENCH_inference.json`, the repo's perf-trajectory
//! baseline.
//!
//! The "before" side is faithful to the seed implementation: per-pixel
//! patch gather with one engine call per (pixel, kernel), and — for the
//! stochastic engine — [`LegacySconnaEngine`], a verbatim reconstruction
//! of the PR 2 hot path (O(B) closed-form products, a `Mutex<StdRng>`
//! serializing every ADC conversion, two full Box-Muller draws per
//! chunk). The "after" side is the shipped path: im2col tiles through
//! `vdp_batch` on the lock-free, LUT-backed engine.
//!
//! Run with: `cargo run --release -p sconna-bench --bin inference`
//! (`--smoke` runs a tiny configuration for CI).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sconna_accel::engine::SconnaEngine;
use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::perf::simulate_inference;
use sconna_bench::banner;
use sconna_photonics::pca::AdcModel;
use sconna_sc::multiply::osm_product_debiased;
use sconna_sc::Precision;
use sconna_tensor::engine::{
    combine_keys, ExactEngine, PatchMatrix, PreparedWeights, VdpEngine, WeightMatrix,
};
use sconna_tensor::layers::{MaxPool2d, QConv2d, QFc};
use sconna_tensor::models::{all_models, CnnModel};
use sconna_tensor::quant::{ActivationQuant, Requant, WeightQuant};
use sconna_tensor::Tensor;
use std::sync::Mutex;
use std::time::Instant;

/// The PR 2 SCONNA engine, reconstructed for the before/after
/// comparison: closed-form OSM products per element and a shared
/// `Mutex<StdRng>` drawing two sequential Box-Muller conversions per
/// chunk — the lock the new keyed scheme eliminated.
struct LegacySconnaEngine {
    precision: Precision,
    vdpe_size: usize,
    adc: AdcModel,
    rng: Mutex<StdRng>,
}

impl LegacySconnaEngine {
    fn paper_default(seed: u64) -> Self {
        Self {
            precision: Precision::B8,
            vdpe_size: 176,
            adc: AdcModel::sconna_default(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl VdpEngine for LegacySconnaEngine {
    fn vdp_keyed(&self, inputs: &[u32], weights: &[i32], _key: u64) -> f64 {
        assert_eq!(inputs.len(), weights.len(), "vector length mismatch");
        let scale = self.precision.stream_len() as f64;
        let qmax = self.precision.max_value();
        let mut total = 0.0f64;
        for (ichunk, wchunk) in inputs
            .chunks(self.vdpe_size)
            .zip(weights.chunks(self.vdpe_size))
        {
            let (mut pos, mut neg) = (0u64, 0u64);
            for (k, (&i, &w)) in ichunk.iter().zip(wchunk).enumerate() {
                let p = osm_product_debiased(
                    i.min(qmax),
                    w.unsigned_abs().min(qmax),
                    self.precision,
                    k,
                ) as u64;
                if w < 0 {
                    neg += p;
                } else {
                    pos += p;
                }
            }
            let ranged = AdcModel {
                full_scale_ones: (ichunk.len() * self.precision.stream_len()) as u64,
                ..self.adc
            };
            let mut rng = self.rng.lock().expect("legacy rng");
            let cp = ranged.convert(pos as f64, &mut *rng);
            let cn = ranged.convert(neg as f64, &mut *rng);
            total += (cp - cn) * scale;
        }
        total
    }

    fn name(&self) -> &'static str {
        "sconna-legacy"
    }
}

struct TileCaps {
    layers: usize,
    patches: usize,
    kernels: usize,
    repeats: usize,
}

/// One engine's tile measurements on one model geometry.
struct TileResult {
    single_s: f64,
    batch_s: f64,
    macs: usize,
}

impl TileResult {
    fn speedup(&self) -> f64 {
        self.single_s / self.batch_s.max(1e-12)
    }
}

/// Times `f` over `repeats` runs and returns the best wall time (seconds).
fn best_time(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Builds a pseudo-random patch × kernel tile with one model layer's
/// geometry.
fn layer_tile(
    s: usize,
    patches: usize,
    kernels: usize,
    salt: usize,
) -> (PatchMatrix, Vec<i32>, Vec<u64>) {
    let pm = PatchMatrix::from_vec(
        patches,
        s,
        (0..patches * s)
            .map(|i| ((i * 37 + salt) % 256) as u32)
            .collect(),
    );
    let wd: Vec<i32> = (0..kernels * s)
        .map(|i| ((i * 53 + salt) % 255) as i32 - 127)
        .collect();
    let keys: Vec<u64> = (0..patches as u64)
        .map(|p| p.wrapping_mul(0x9E37_79B9))
        .collect();
    (pm, wd, keys)
}

/// Runs the single-vector baseline (per-pair calls on `before`) and the
/// batched tile path (`vdp_batch` on `after`) over the sampled layers of
/// one model.
fn tile_bench(
    model: &CnnModel,
    before: &dyn VdpEngine,
    after: &dyn VdpEngine,
    caps: &TileCaps,
) -> TileResult {
    let stride = (model.workloads.len() / caps.layers).max(1);
    let mut single_s = 0.0;
    let mut batch_s = 0.0;
    let mut macs = 0usize;
    for (li, w) in model
        .workloads
        .iter()
        .step_by(stride)
        .take(caps.layers)
        .enumerate()
    {
        let p = w.ops_per_kernel.min(caps.patches);
        let k = w.kernels.min(caps.kernels);
        let (pm, wd, keys) = layer_tile(w.vector_len, p, k, li);
        let wm = WeightMatrix::new(&wd, k, w.vector_len);
        macs += p * k * w.vector_len;

        single_s += best_time(caps.repeats, || {
            let mut sink = 0.0f64;
            for (pi, &pkey) in keys.iter().enumerate() {
                let prow = pm.row(pi);
                for ki in 0..k {
                    sink += before.vdp_keyed(prow, wm.row(ki), combine_keys(pkey, ki as u64));
                }
            }
            std::hint::black_box(sink);
        });
        batch_s += best_time(caps.repeats, || {
            std::hint::black_box(after.vdp_batch(&pm, &wm, &keys));
        });
    }
    TileResult {
        single_s,
        batch_s,
        macs,
    }
}

/// The end-to-end quantized network (small-CNN topology, pseudo-random
/// codes — training is irrelevant to wall time).
struct E2eNet {
    conv1: QConv2d,
    pool: MaxPool2d,
    conv2: QConv2d,
    fc: QFc,
    input_size: usize,
}

fn e2e_net(input_size: usize) -> E2eNet {
    let aq = ActivationQuant {
        scale: 1.0 / 255.0,
        bits: 8,
    };
    let wq = WeightQuant {
        scale: 1.0 / 127.0,
        bits: 8,
    };
    let conv = |name: &str, l: usize, d: usize| QConv2d {
        name: name.into(),
        weights: Tensor::from_fn(&[l, d, 3, 3], |i| (i % 255) as i32 - 127),
        bias: vec![0.0; l],
        stride: 1,
        padding: 1,
        groups: 1,
        requant: Requant::new(aq, wq, aq),
    };
    let fc_in = 16 * (input_size / 4) * (input_size / 4);
    E2eNet {
        conv1: conv("bench-conv1", 8, 1),
        pool: MaxPool2d {
            kernel: 2,
            stride: 2,
            padding: 0,
        },
        conv2: conv("bench-conv2", 16, 8),
        fc: QFc {
            name: "bench-fc".into(),
            weights: Tensor::from_fn(&[10, fc_in], |i| (i % 255) as i32 - 127),
            bias: vec![0.0; 10],
            dequant: 1.0 / (255.0 * 127.0),
        },
        input_size,
    }
}

/// Per-layer prepared handles of the end-to-end net — built once per
/// engine, outside the timed loop, as a serving instance would at model
/// load.
struct PreparedE2e {
    conv1: Vec<PreparedWeights>,
    conv2: Vec<PreparedWeights>,
    fc: PreparedWeights,
}

impl E2eNet {
    fn image(&self, salt: usize) -> Tensor<u32> {
        Tensor::from_fn(&[1, self.input_size, self.input_size], |i| {
            ((i * 31 + salt * 97) % 256) as u32
        })
    }

    /// Batched hot path (what `QuantizedNetwork::forward` runs).
    fn forward_batched(&self, image: &Tensor<u32>, engine: &dyn VdpEngine) -> Vec<f32> {
        let a = self.conv1.forward(image, engine);
        let a = self.pool.forward(&a);
        let a = self.conv2.forward(&a, engine);
        let a = self.pool.forward(&a);
        self.fc.forward_logits(&a, engine)
    }

    fn prepare(&self, engine: &dyn VdpEngine) -> PreparedE2e {
        PreparedE2e {
            conv1: self.conv1.prepare(engine),
            conv2: self.conv2.prepare(engine),
            fc: self.fc.prepare(engine),
        }
    }

    /// Weight-stationary hot path: same tiles, weights prepared once —
    /// the PR 4 shape (what `PreparedNetwork::forward_keyed` runs). Must
    /// be bit-equal to [`E2eNet::forward_batched`].
    fn forward_prepared(
        &self,
        image: &Tensor<u32>,
        engine: &dyn VdpEngine,
        prep: &PreparedE2e,
    ) -> Vec<f32> {
        let a = self.conv1.forward_prepared_keyed(
            image,
            engine,
            &prep.conv1,
            self.conv1.layer_key(),
            1,
        );
        let a = self.pool.forward(&a);
        let a =
            self.conv2
                .forward_prepared_keyed(&a, engine, &prep.conv2, self.conv2.layer_key(), 1);
        let a = self.pool.forward(&a);
        self.fc
            .forward_logits_batch_keyed(&[&a], engine, Some(&prep.fc), &[self.fc.layer_key()])
            .pop()
            .expect("one logit row")
    }

    /// Pre-batching baseline: per-pixel patch gather, one single-vector
    /// engine call per (pixel, kernel) / FC row.
    fn forward_single(&self, image: &Tensor<u32>, engine: &dyn VdpEngine) -> Vec<f32> {
        let a = self.conv1.forward_reference(image, engine);
        let a = self.pool.forward(&a);
        let a = self.conv2.forward_reference(&a, engine);
        let a = self.pool.forward(&a);
        // Reference FC: row-at-a-time single-vector calls.
        let [out_f, in_f] = *self.fc.weights.dims() else {
            panic!("fc rank")
        };
        let base = self.fc.layer_key();
        (0..out_f)
            .map(|o| {
                let wrow = &self.fc.weights.as_slice()[o * in_f..(o + 1) * in_f];
                let acc = engine.vdp_keyed(a.as_slice(), wrow, combine_keys(base, o as u64));
                acc as f32 * self.fc.dequant + self.fc.bias[o]
            })
            .collect()
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print!(
        "{}",
        banner(
            "Batched inference path — single-vector baseline vs im2col/vdp_batch",
            "functional-simulator throughput behind the Fig. 9 sweep capability"
        )
    );

    let caps = if smoke {
        TileCaps {
            layers: 2,
            patches: 8,
            kernels: 8,
            repeats: 1,
        }
    } else {
        TileCaps {
            layers: 8,
            patches: 64,
            kernels: 32,
            repeats: 3,
        }
    };
    let (e2e_images, e2e_repeats) = if smoke { (2usize, 1usize) } else { (8, 3) };

    let exact = ExactEngine;
    let sconna = SconnaEngine::paper_default(42);
    let legacy = LegacySconnaEngine::paper_default(42);
    let sconna_cfg = AcceleratorConfig::sconna();

    // --- Per-model layer tiles ---
    let mut model_rows = Vec::new();
    let mut exact_speedups = Vec::new();
    let mut sconna_speedups = Vec::new();
    println!(
        "{:<14} {:>14} {:>9} {:>14} {:>9} {:>12}",
        "model", "exact MAC/s", "exact ×", "sconna MAC/s", "sconna ×", "sim FPS"
    );
    for model in all_models() {
        let te = tile_bench(&model, &exact, &exact, &caps);
        let ts = tile_bench(&model, &legacy, &sconna, &caps);
        let sim_fps = simulate_inference(&sconna_cfg, &model).fps;
        exact_speedups.push(te.speedup());
        sconna_speedups.push(ts.speedup());
        println!(
            "{:<14} {:>14.3e} {:>8.2}x {:>14.3e} {:>8.2}x {:>12.1}",
            model.name,
            te.macs as f64 / te.batch_s,
            te.speedup(),
            ts.macs as f64 / ts.batch_s,
            ts.speedup(),
            sim_fps
        );
        model_rows.push(format!(
            concat!(
                "    {{\"model\": \"{}\", \"layers_sampled\": {}, \"tile_macs\": {},\n",
                "     \"exact\": {{\"single_s\": {}, \"batch_s\": {}, \"batch_macs_per_s\": {}, \"speedup\": {}}},\n",
                "     \"sconna\": {{\"single_s\": {}, \"batch_s\": {}, \"batch_macs_per_s\": {}, \"speedup\": {}}},\n",
                "     \"simulated_fps_sconna\": {}}}"
            ),
            model.name,
            caps.layers.min(model.workloads.len()),
            te.macs,
            json_num(te.single_s),
            json_num(te.batch_s),
            json_num(te.macs as f64 / te.batch_s),
            json_num(te.speedup()),
            json_num(ts.single_s),
            json_num(ts.batch_s),
            json_num(ts.macs as f64 / ts.batch_s),
            json_num(ts.speedup()),
            json_num(sim_fps),
        ));
    }
    let geo_mean = |v: &[f64]| (v.iter().map(|s| s.ln()).sum::<f64>() / v.len() as f64).exp();
    let geo_mean_exact = geo_mean(&exact_speedups);
    let geo_mean_sconna = geo_mean(&sconna_speedups);

    // --- End-to-end small CNN ---
    let net = e2e_net(16);
    let images: Vec<Tensor<u32>> = (0..e2e_images).map(|i| net.image(i)).collect();
    let run_all = |f: &dyn Fn(&Tensor<u32>) -> Vec<f32>| {
        let mut sink = 0.0f32;
        for img in &images {
            sink += f(img)[0];
        }
        std::hint::black_box(sink);
    };
    let exact_single = best_time(e2e_repeats, || {
        run_all(&|img| net.forward_single(img, &exact));
    });
    let exact_batched = best_time(e2e_repeats, || {
        run_all(&|img| net.forward_batched(img, &exact));
    });
    let sconna_single = best_time(e2e_repeats, || {
        run_all(&|img| net.forward_single(img, &legacy));
    });
    let sconna_batched = best_time(e2e_repeats, || {
        run_all(&|img| net.forward_batched(img, &sconna));
    });
    let exact_speedup = exact_single / exact_batched.max(1e-12);
    let sconna_speedup = sconna_single / sconna_batched.max(1e-12);

    // --- Prepared (weight-stationary) end-to-end paths ---
    // The PR 4 bugfix target: the exact engine used to re-derive its
    // narrow-GEMM i16 weight form every row-block call; PreparedWeights
    // hoists it (and SCONNA's DKV/LUT stream conversion) to model load.
    let exact_prep = net.prepare(&exact);
    let sconna_prep = net.prepare(&sconna);
    // Preparation must not move a single logit bit.
    for img in &images {
        assert_eq!(
            net.forward_prepared(img, &exact, &exact_prep),
            net.forward_batched(img, &exact),
            "exact prepared e2e diverged"
        );
        assert_eq!(
            net.forward_prepared(img, &sconna, &sconna_prep),
            net.forward_batched(img, &sconna),
            "sconna prepared e2e diverged"
        );
    }
    let exact_prepared = best_time(e2e_repeats, || {
        run_all(&|img| net.forward_prepared(img, &exact, &exact_prep));
    });
    let sconna_prepared = best_time(e2e_repeats, || {
        run_all(&|img| net.forward_prepared(img, &sconna, &sconna_prep));
    });
    let exact_prepared_over_batched = exact_batched / exact_prepared.max(1e-12);
    let sconna_prepared_over_batched = sconna_batched / sconna_prepared.max(1e-12);

    // Worker-count invariance of the parallel conv forward on the noisy
    // engine: 1 / 2 / 8 workers must agree bit for bit.
    let probe = net.pool.forward(&net.conv1.forward(&images[0], &sconna));
    let w1 = net
        .conv2
        .forward_keyed(&probe, &sconna, net.conv2.layer_key(), 1);
    let invariant = [2usize, 8].iter().all(|&w| {
        net.conv2
            .forward_keyed(&probe, &sconna, net.conv2.layer_key(), w)
            .as_slice()
            == w1.as_slice()
    });

    println!("\nend-to-end small CNN ({e2e_images} images, 16x16):");
    println!(
        "  exact : single {exact_single:.4}s  batched {exact_batched:.4}s  -> {exact_speedup:.2}x"
    );
    println!(
        "  sconna: legacy single {sconna_single:.4}s  batched {sconna_batched:.4}s  -> {sconna_speedup:.2}x"
    );
    println!(
        "  prepared weights: exact {exact_prepared:.4}s ({exact_prepared_over_batched:.2}x vs batched)  sconna {sconna_prepared:.4}s ({sconna_prepared_over_batched:.2}x vs batched)"
    );
    println!("  conv worker invariance (1/2/8): {invariant}");
    println!("  geo-mean tile speedup: exact {geo_mean_exact:.2}x  sconna {geo_mean_sconna:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"inference\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"tiles\": [\n{}\n  ],\n",
            "  \"geo_mean_tile_speedup_exact\": {},\n",
            "  \"geo_mean_tile_speedup_sconna\": {},\n",
            "  \"e2e_small_cnn\": {{\n",
            "    \"images\": {},\n",
            "    \"exact\": {{\"single_s\": {}, \"batched_s\": {}, \"speedup\": {},\n",
            "              \"prepared_s\": {}, \"prepared_over_batched\": {}}},\n",
            "    \"sconna\": {{\"single_s\": {}, \"batched_s\": {}, \"speedup\": {},\n",
            "               \"prepared_s\": {}, \"prepared_over_batched\": {}}},\n",
            "    \"fps_exact_batched\": {},\n",
            "    \"worker_invariant_1_2_8\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        model_rows.join(",\n"),
        json_num(geo_mean_exact),
        json_num(geo_mean_sconna),
        e2e_images,
        json_num(exact_single),
        json_num(exact_batched),
        json_num(exact_speedup),
        json_num(exact_prepared),
        json_num(exact_prepared_over_batched),
        json_num(sconna_single),
        json_num(sconna_batched),
        json_num(sconna_speedup),
        json_num(sconna_prepared),
        json_num(sconna_prepared_over_batched),
        json_num(e2e_images as f64 / exact_batched),
        invariant,
    );
    if smoke {
        // Smoke numbers (tiny tiles, one repeat) are not a baseline;
        // leave the checked-in full-mode record untouched so a local or
        // CI smoke run can never clobber the perf trajectory.
        println!("\nsmoke mode: BENCH_inference.json (full-mode baseline) left untouched");
    } else {
        std::fs::write("BENCH_inference.json", &json).expect("write BENCH_inference.json");
        println!("\nwrote BENCH_inference.json");
    }

    assert!(invariant, "worker-count invariance violated");
    if !smoke {
        // Perf-trajectory gates: the headline before/after claim (the
        // stochastic-engine hot path that motivated this rebuild) plus
        // regression floors for the end-to-end paths.
        assert!(
            geo_mean_sconna >= 5.0,
            "sconna before/after tile speedup collapsed: {geo_mean_sconna:.2}x < 5x"
        );
        assert!(
            sconna_speedup >= 2.0 && exact_speedup >= 1.2,
            "batched e2e path regressed: sconna {sconna_speedup:.2}x exact {exact_speedup:.2}x"
        );
        // The weight-stationary bugfix gate: hoisting the per-row-block
        // weight derivation must not regress the exact-engine end-to-end
        // path (0.9 floor absorbs single-core run-to-run variance; the
        // recorded delta is the trajectory).
        assert!(
            exact_prepared_over_batched >= 0.9,
            "prepared exact e2e regressed: {exact_prepared_over_batched:.2}x vs batched"
        );
    }
}
