//! Datacenter-scale fleet bench: event-core throughput and serving
//! scalability from 16 to 1024 instances, plus a 1k-instance
//! trace-driven autoscaling run.
//!
//! Two claims are measured and checked in as `BENCH_fleet.json`:
//!
//! * **Scale-invariant event core.** The bucketed (hierarchical
//!   time-wheel) event queue costs O(1) per event regardless of fleet
//!   size, and the rack-router dispatch costs O(1) per dispatch instead
//!   of O(instances) — so wall-clock events/sec holds roughly flat from
//!   16 to 1024 instances while simulated FPS grows **near-linearly**
//!   (≥ 0.8× linear is asserted here), SCONNA and the analog baseline
//!   alike.
//! * **Reactive autoscaling at scale.** A 1024-instance fleet under a
//!   diurnal + bursty arrival trace scales its active pool up and down
//!   through the same epoch-guarded reload/drain machinery as fault
//!   handling, serves every request, keeps the pool inside the policy
//!   bounds at every sampled step boundary, and reports bit-identically
//!   across 1/2/8 sweep workers and shuffled trace orders.
//!
//! Run with: `cargo run --release -p sconna-bench --bin fleet`
//! (`--smoke` runs a reduced grid for CI; smoke mode never writes
//! `BENCH_fleet.json`).

use sconna_accel::organization::AcceleratorConfig;
use sconna_accel::serve::{sweep, AutoscalePolicy, Fleet, ServingConfig};
use sconna_accel::serve::{ArrivalProcess, ServingReport};
use sconna_bench::banner;
use sconna_sim::time::SimTime;
use sconna_tensor::models::{shufflenet_v2, CnnModel};
use std::time::Instant;

const MAX_BATCH: usize = 4;

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

/// One scaling-grid measurement: a closed-loop saturation run at a fixed
/// request-per-instance budget, timed on the wall clock.
struct ScalePoint {
    instances: usize,
    report: ServingReport,
    events: u64,
    wall_s: f64,
}

impl ScalePoint {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

fn run_scale_point(
    accel: &AcceleratorConfig,
    model: &CnnModel,
    n: usize,
    rpi: usize,
) -> ScalePoint {
    let cfg = ServingConfig::saturation(*accel, n, MAX_BATCH, n * rpi).with_seed(17);
    let start = Instant::now();
    let mut fleet = Fleet::new(&cfg, model);
    fleet.run_to_completion();
    let wall_s = start.elapsed().as_secs_f64();
    let events = fleet.snapshot().events_processed;
    ScalePoint {
        instances: n,
        report: fleet.into_report(),
        events,
        wall_s,
    }
}

/// The diurnal + bursty arrival trace, generated arithmetically (no RNG):
/// inter-arrival gaps follow the inverse of a sinusoidal "time-of-day"
/// intensity with short periodic 3x bursts layered on top. Demand swings
/// between ~80 and ~720 instances' worth of capacity, with bursts
/// pushing past the 1024-instance provisioned pool.
fn diurnal_trace(requests: usize, per_instance_fps: f64) -> Vec<SimTime> {
    let avg_rate = 400.0 * per_instance_fps;
    let est_duration = requests as f64 / avg_rate;
    let period = est_duration / 6.0;
    let burst_period = est_duration / 23.0;
    let mut times = Vec::with_capacity(requests);
    let mut t = 0.0f64;
    for _ in 0..requests {
        let diurnal = 400.0 + 320.0 * (std::f64::consts::TAU * t / period).sin();
        let bursting = (t / burst_period).fract() < 0.08;
        let rate = diurnal * per_instance_fps * if bursting { 3.0 } else { 1.0 };
        t += 1.0 / rate;
        times.push(SimTime::from_secs_f64(t));
    }
    times
}

/// Even-indices-then-odd permutation: a deterministic shuffle of the
/// trace's *insertion* order that preserves the arrival-time multiset.
fn interleaved(times: &[SimTime]) -> Vec<SimTime> {
    let mut out: Vec<SimTime> = times.iter().step_by(2).copied().collect();
    out.extend(times.iter().skip(1).step_by(2).copied());
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    print!(
        "{}",
        banner(
            "Fleet scaling — bucketed event core & reactive autoscaling",
            "events/sec and simulated FPS, 16 to 1024 instances"
        )
    );

    let model = shufflenet_v2();
    let (counts, rpi, trace_requests): (&[usize], usize, usize) = if smoke {
        (&[16, 1024], 16, 8_192)
    } else {
        (&[16, 64, 256, 1024], 64, 24_576)
    };

    let accels: &[(&'static str, AcceleratorConfig)] = &[
        ("SCONNA", AcceleratorConfig::sconna()),
        ("MAM", AcceleratorConfig::mam()),
    ];

    // ---- Scaling grid: closed-loop saturation, 16 → 1024 instances ----
    let mut accel_json = Vec::new();
    let mut curves = Vec::new();
    for (name, accel) in accels {
        let points: Vec<ScalePoint> = counts
            .iter()
            .map(|&n| run_scale_point(accel, &model, n, rpi))
            .collect();
        let first = &points[0];
        let last = &points[points.len() - 1];
        let instance_ratio = last.instances as f64 / first.instances as f64;
        let fps_linearity = (last.report.fps / first.report.fps) / instance_ratio;
        let events_rate_retention = last.events_per_sec() / first.events_per_sec();
        println!("accelerator: {name}");
        for p in &points {
            println!(
                "  {:>5} instances: {:>12.0} simulated fps | {:>8} events in {:>7.3}s wall = {:>10.0} events/s",
                p.instances,
                p.report.fps,
                p.events,
                p.wall_s,
                p.events_per_sec(),
            );
        }
        println!(
            "  fps linearity 16→{}: {:.3}x of linear | events/s retention: {:.3}x\n",
            last.instances, fps_linearity, events_rate_retention
        );
        let point_json: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "        {{\"instances\": {}, \"fps\": {}, \"goodput_fps\": {}, ",
                        "\"makespan_us\": {}, \"events\": {}, \"wall_s\": {}, ",
                        "\"events_per_sec\": {}, \"mean_batch_fill\": {}}}"
                    ),
                    p.instances,
                    json_num(p.report.fps),
                    json_num(p.report.goodput_fps),
                    json_num(p.report.makespan.as_secs_f64() * 1e6),
                    p.events,
                    json_num(p.wall_s),
                    json_num(p.events_per_sec()),
                    json_num(p.report.mean_batch_fill),
                )
            })
            .collect();
        accel_json.push(format!(
            concat!(
                "    {{\"accelerator\": \"{}\",\n",
                "      \"fps_linearity_16_to_{}\": {},\n",
                "      \"events_rate_retention_16_to_{}\": {},\n",
                "      \"points\": [\n{}\n      ]}}"
            ),
            name,
            last.instances,
            json_num(fps_linearity),
            last.instances,
            json_num(events_rate_retention),
            point_json.join(",\n"),
        ));
        curves.push((name, fps_linearity, events_rate_retention, points));
    }

    // ---- 1k-instance trace-driven autoscale run ----
    let provisioned = 1024usize;
    let policy = AutoscalePolicy::new(64, provisioned).with_initial(128);
    let capacity_cfg =
        ServingConfig::saturation(accels[0].1, provisioned, MAX_BATCH, trace_requests);
    let per_instance_fps = capacity_cfg.estimated_capacity_fps(&model) / provisioned as f64;
    let times = diurnal_trace(trace_requests, per_instance_fps);
    let est_duration = times.last().expect("trace is non-empty").as_secs_f64();
    let policy = policy
        .with_check_interval(SimTime::from_secs_f64(est_duration / 400.0))
        .with_cooldown(SimTime::from_secs_f64(est_duration / 150.0));
    let auto_cfg = capacity_cfg
        .clone()
        .with_unbounded_queue()
        .with_arrivals(ArrivalProcess::Trace {
            times: times.clone(),
        })
        .with_autoscale(policy);

    // Stepped run: the pool-bounds and conservation invariants are
    // sampled at step boundaries while the wall clock times the whole
    // event loop.
    let start = Instant::now();
    let mut fleet = Fleet::new(&auto_cfg, &model);
    let (mut peak_active, mut min_active) = (0usize, usize::MAX);
    let mut steps = 0u64;
    loop {
        let stepped = fleet.step();
        steps += 1;
        if steps.is_multiple_of(2048) || !stepped {
            let snap = fleet.snapshot();
            assert_eq!(snap.accounted(), snap.offered, "request conservation");
            let active = snap
                .instances
                .iter()
                .filter(|i| i.health != sconna_accel::serve::InstanceHealth::Standby)
                .count();
            assert!(
                (policy.min..=policy.max).contains(&active),
                "active pool {active} escaped [{}, {}]",
                policy.min,
                policy.max
            );
            peak_active = peak_active.max(active);
            min_active = min_active.min(active);
        }
        if !stepped {
            break;
        }
    }
    let auto_wall = start.elapsed().as_secs_f64();
    let auto_events = fleet.snapshot().events_processed;
    let n_scale_events = fleet.scale_events().len();
    let auto_report = fleet.into_report();
    println!(
        "autoscale: {trace_requests} requests over a diurnal+burst trace on a {provisioned}-instance pool"
    );
    println!(
        "  {} scale events | active pool {}..{} | {} of {} served | {:.0} events/s wall",
        n_scale_events,
        min_active,
        peak_active,
        auto_report.completed,
        auto_report.offered,
        auto_events as f64 / auto_wall,
    );

    // Shuffled trace orders and sweep workers must not change a bit:
    // the same arrival-time multiset in any insertion order, swept at
    // 1/2/8 workers, reproduces the stepped run's report exactly.
    let reversed: Vec<SimTime> = times.iter().rev().copied().collect();
    let variants = vec![
        auto_cfg.clone(),
        auto_cfg
            .clone()
            .with_arrivals(ArrivalProcess::Trace { times: reversed }),
        auto_cfg.clone().with_arrivals(ArrivalProcess::Trace {
            times: interleaved(&times),
        }),
    ];
    let baseline = sweep(variants.clone(), &model, 1);
    let shuffle_invariant = baseline
        .iter()
        .all(|r| format!("{r:?}") == format!("{:?}", baseline[0]));
    assert!(shuffle_invariant, "shuffled trace orders diverged");
    assert_eq!(
        format!("{:?}", baseline[0]),
        format!("{auto_report:?}"),
        "stepped run diverged from the sweep wrapper"
    );
    let worker_invariant = [2usize, 8].iter().all(|&w| {
        let grid = sweep(variants.clone(), &model, w);
        grid.iter()
            .zip(&baseline)
            .all(|(a, b)| format!("{a:?}") == format!("{b:?}"))
    });
    assert!(
        worker_invariant,
        "autoscale sweep diverged across worker counts"
    );
    println!("  trace-shuffle and 1/2/8-worker sweeps: bit-identical\n");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"timing_model\": \"{}\",\n",
            "  \"scaling\": {{\n",
            "    \"arrivals\": \"closed-loop saturation\",\n",
            "    \"max_batch\": {}, \"requests_per_instance\": {},\n",
            "    \"accelerators\": [\n{}\n  ]}},\n",
            "  \"autoscale_trace\": {{\n",
            "    \"provisioned_instances\": {}, \"min\": {}, \"initial\": {}, \"requests\": {},\n",
            "    \"profile\": \"diurnal sinusoid (80..720 instances of demand) + periodic 3x bursts, arithmetic trace\",\n",
            "    \"scale_events\": {}, \"min_active\": {}, \"peak_active\": {},\n",
            "    \"offered\": {}, \"completed\": {}, \"makespan_us\": {}, \"fps\": {},\n",
            "    \"events\": {}, \"wall_s\": {}, \"events_per_sec\": {},\n",
            "    \"trace_shuffle_invariant\": {}, \"worker_invariant_1_2_8\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        model.name,
        MAX_BATCH,
        rpi,
        accel_json.join(",\n"),
        provisioned,
        policy.min,
        policy.initial,
        trace_requests,
        n_scale_events,
        min_active,
        peak_active,
        auto_report.offered,
        auto_report.completed,
        json_num(auto_report.makespan.as_secs_f64() * 1e6),
        json_num(auto_report.fps),
        auto_events,
        json_num(auto_wall),
        json_num(auto_events as f64 / auto_wall),
        shuffle_invariant,
        worker_invariant,
    );
    if smoke {
        // Smoke numbers (reduced grid) are not a baseline; the
        // checked-in record is always a full-mode run.
        println!("smoke mode: BENCH_fleet.json (full-mode baseline) left untouched");
    } else {
        std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
        println!("wrote BENCH_fleet.json");
    }

    // ---- Acceptance gates (both modes) ----
    for (name, fps_linearity, events_rate_retention, points) in &curves {
        // Simulated FPS is deterministic: near-linear scaling is a hard
        // gate. 0.8x linear from 16 to 1024 instances.
        assert!(
            *fps_linearity >= 0.8,
            "{name}: simulated FPS must scale >= 0.8x linear 16->1024, got {fps_linearity:.3}"
        );
        // Events/sec is wall-clock: the O(1) event core should hold it
        // roughly flat, but CI machines are noisy, so the in-bin gate is
        // deliberately loose; the measured retention is in the JSON.
        assert!(
            *events_rate_retention >= 0.3,
            "{name}: per-event cost blew up with fleet size, retention {events_rate_retention:.3}"
        );
        // The event count must track the workload within constant
        // factors (no runaway event amplification, no skipped work).
        // Closed-loop respawns admit inline, so the floor is batches,
        // not one event per request.
        let last = &points[points.len() - 1];
        assert!(
            last.events >= last.report.offered / (2 * MAX_BATCH as u64)
                && last.events as f64 <= 16.0 * last.report.offered as f64,
            "{name}: event count {} implausible for {} requests",
            last.events,
            last.report.offered
        );
    }
    assert!(
        n_scale_events >= 8,
        "the diurnal trace must exercise repeated scale-ups and scale-downs, got {n_scale_events}"
    );
    assert!(
        peak_active > policy.initial && min_active < peak_active,
        "the pool must move both ways: active range {min_active}..{peak_active}"
    );
    assert_eq!(
        auto_report.completed, auto_report.offered,
        "the autoscaled fleet must serve every request of the trace"
    );
}
