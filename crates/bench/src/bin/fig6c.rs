//! Fig. 6(c): transient analysis of the Optical AND Gate — two
//! pseudo-random operand streams at 10 Gb/s, drop-port optical power, and
//! the recovered AND decisions.

use sconna_bench::banner;
use sconna_photonics::oag::{transient, OpticalAndGate};
use sconna_photonics::units::watts_to_dbm;
use sconna_sc::format::Precision;
use sconna_sc::sng::{LfsrSng, StochasticNumberGenerator};

fn main() {
    print!(
        "{}",
        banner(
            "Fig. 6(c) — OAG transient analysis at 10 Gb/s",
            "SCONNA paper, Section IV-B, Fig. 6(c)"
        )
    );
    let gate = OpticalAndGate::new(0.8e-9, 50e-9, 1e-3);
    let p = Precision::new(5); // 32-bit PRBS excerpt
    let i = LfsrSng::new(0b10110).generate(20, p);
    let w = LfsrSng::new(0b01101).generate(18, p);
    let result = transient(&gate, &i, &w, 10e9, 2e-12, 16);

    println!("bit   I  W  I&W  out  P_drop(mid-bit)");
    let expected: Vec<bool> = i.iter().zip(w.iter()).map(|(a, b)| a && b).collect();
    let mut errors = 0;
    for (k, (&exp, &got)) in expected.iter().zip(&result.decisions).enumerate() {
        let mid = &result.samples[k * 16 + 8];
        println!(
            "{:>3}   {}  {}   {}    {}   {:>8.2} dBm",
            k,
            u8::from(i.get(k)),
            u8::from(w.get(k)),
            u8::from(exp),
            u8::from(got),
            watts_to_dbm(mid.output_w.max(1e-15))
        );
        if exp != got {
            errors += 1;
        }
    }
    println!();
    println!("decision errors: {errors} / {} bits", expected.len());
    println!(
        "T(lambda_in) = I AND W  =>  {}",
        if errors == 0 { "VALIDATED" } else { "FAILED" }
    );

    // ASCII eye view of the output waveform.
    println!();
    println!("drop-port waveform (one char per sample, 16/bit):");
    let max = result.samples.iter().fold(0f64, |m, s| m.max(s.output_w));
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let line: String = result
        .samples
        .iter()
        .map(|s| glyphs[((s.output_w / max) * 7.0).round() as usize])
        .collect();
    for chunk in line.as_bytes().chunks(96) {
        println!("{}", String::from_utf8_lossy(chunk));
    }
    assert_eq!(errors, 0, "OAG transient must decode as AND");
}
