//! Table V: Top-1/Top-k inference accuracy of SCONNA (stochastic
//! compute + ADC error) vs exact int8, plus the per-architecture
//! layer-error propagation study.
//!
//! Substitution note (DESIGN.md §2.3): the paper measures pretrained
//! ImageNet models through PyTorch; this harness trains a small CNN on
//! the in-repo synthetic dataset and propagates errors through
//! random-weight instances of the four real architectures' layer
//! geometries.

use sconna_accel::accuracy::{capacity_trend, layer_error_experiment, AccuracyExperiment};
use sconna_bench::banner;
use sconna_tensor::models::all_models;

fn main() {
    print!(
        "{}",
        banner(
            "Table V — inference accuracy under SCONNA's error sources",
            "SCONNA paper, Section VI-D, Table V"
        )
    );

    println!("[1/3] end-to-end accuracy (small CNN, synthetic 10-class set)");
    let mut top1_drops = Vec::new();
    let mut topk_drops = Vec::new();
    println!(
        "{:>6}{:>10}{:>12}{:>12}{:>12}{:>12}{:>12}",
        "seed", "fp32", "int8 top1", "SC top1", "drop(pp)", "int8 top5", "SC top5"
    );
    for seed in [7u64, 21, 42, 99, 123] {
        let r = AccuracyExperiment {
            seed,
            ..Default::default()
        }
        .run();
        println!(
            "{:>6}{:>9.1}%{:>11.1}%{:>11.1}%{:>12.2}{:>11.1}%{:>11.1}%",
            seed,
            100.0 * r.fp_top1,
            100.0 * r.exact_top1,
            100.0 * r.sconna_top1,
            r.top1_drop_pct,
            100.0 * r.exact_topk,
            100.0 * r.sconna_topk,
        );
        top1_drops.push(r.top1_drop_pct);
        topk_drops.push(r.topk_drop_pct);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    println!(
        "Top-1 drop: mean {:.2} pp, median {:.2} pp   Top-5 drop: mean {:.2} pp",
        mean(&top1_drops),
        median(&mut top1_drops.clone()),
        mean(&topk_drops)
    );
    println!("paper (gmean over 4 ImageNet CNNs): Top-1 0.4 pp, Top-5 0.3 pp;");
    println!("up to 1.5 pp for small CNNs — ours is a small CNN.");
    println!();

    println!("[2/3] capacity trend: plain vs residual small CNN");
    println!(
        "{:>6}{:>16}{:>18}",
        "seed", "plain drop(pp)", "residual drop(pp)"
    );
    let mut plain_sum = 0.0;
    let mut res_sum = 0.0;
    for seed in [7u64, 21, 42] {
        let t = capacity_trend(&AccuracyExperiment {
            seed,
            ..Default::default()
        });
        println!(
            "{:>6}{:>16.2}{:>18.2}",
            seed, t.plain_drop_pct, t.residual_drop_pct
        );
        plain_sum += t.plain_drop_pct;
        res_sum += t.residual_drop_pct;
    }
    println!(
        "mean: plain {:.2} pp vs residual {:.2} pp  (paper's trend: deeper/",
        plain_sum / 3.0,
        res_sum / 3.0
    );
    println!("residual models tolerate the injected errors better)");
    println!();

    println!("[3/3] layer-error propagation on the real architectures");
    println!("{:>16}{:>18}{:>20}", "model", "mean S", "VDP rel. error");
    for model in all_models() {
        let r = layer_error_experiment(&model, 8, 25, 11);
        println!(
            "{:>16}{:>18.0}{:>19.2}%",
            r.model, r.mean_vector_len, r.vdp_error_pct
        );
    }
    println!();
    println!("(relative RMSE of SCONNA VDP outputs vs exact int8; the ADC");
    println!(" contribution is isolated by the ablation_adc binary)");
}
