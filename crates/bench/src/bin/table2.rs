//! Table II: kernel census by DKV size (S ≤ 44 vs S > 44), from our
//! transcribed architectures vs the paper's Keras-derived counts.
//!
//! The paper's Table II lists ResNet50 / GoogleNet / VGG16 / DenseNet;
//! the evaluation (Fig. 9) runs GoogleNet / ResNet50 / MobileNet_V2 /
//! ShuffleNet_V2. Both sets are censused here.

use sconna_bench::banner;
use sconna_tensor::models::{all_models, census_models, CnnModel};

/// The paper's published (S ≤ 44, S > 44) counts.
const PAPER: [(&str, usize, usize); 4] = [
    ("ResNet50", 1, 26562),
    ("GoogleNet", 13, 7554),
    ("VGG16", 69, 4168),
    ("DenseNet121", 1, 10242),
];

fn print_row(m: &CnnModel) {
    let (small, large) = m.conv_kernel_census(44);
    let frac = large as f64 / (small + large) as f64;
    let paper = PAPER.iter().find(|(name, _, _)| *name == m.name);
    let (ps, pl) = paper.map_or(("-".into(), "-".into()), |(_, s, l)| {
        (s.to_string(), l.to_string())
    });
    println!(
        "{:<16}{:>12}{:>12}{:>11.1}%{:>14}{:>14}",
        m.name,
        small,
        large,
        100.0 * frac,
        ps,
        pl
    );
}

fn main() {
    print!(
        "{}",
        banner(
            "Table II — kernel tensors by DKV size S (threshold 44)",
            "SCONNA paper, Section III-B, Table II"
        )
    );
    println!(
        "{:<16}{:>12}{:>12}{:>12}{:>14}{:>14}",
        "model", "S<=44", "S>44", ">44 frac", "paper S<=44", "paper S>44"
    );
    println!("-- the paper's Table II set:");
    for m in census_models() {
        print_row(&m);
    }
    println!("-- the Fig. 9 evaluation set:");
    for m in all_models() {
        print_row(&m);
    }
    println!();
    println!("(conv kernels only, matching the paper's convention; our");
    println!(" GoogleNet transcription runs inference-mode — no auxiliary");
    println!(" classifiers — hence the ~4% kernel-count gap vs Keras, and");
    println!(" DenseNet lands within 3 kernels of the published total.");
    println!(" MobileNet/ShuffleNet keep their depthwise kernels (S = 9)");
    println!(" in the small bucket — exactly why Fig. 9's gains are");
    println!(" smaller on them.)");
}
