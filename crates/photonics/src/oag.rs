//! Optical AND Gate (OAG) — the heart of the Optical Stochastic Multiplier
//! (Section IV-B, Fig. 6).
//!
//! The OAG is an add-drop MRR with two PN-junction operand terminals. A
//! microheater pre-tunes the operand-independent resonance from its
//! fabrication position γ to the programmed position η; each asserted
//! operand then electro-refractively shifts the resonance by a fixed Δλ.
//! η is chosen two operand-shifts away from the input wavelength, so the
//! passband reaches λ_in only when **both** operands are asserted — the
//! drop port computes `I AND W`.
//!
//! Two views are provided:
//!
//! * a static truth-table / OMA view used by the scalability analysis
//!   (Fig. 7(a): supported bitrate vs FWHM at a fixed OMA floor), and
//! * a time-domain transient simulation regenerating Fig. 6(c).
//!
//! **Calibration note (documented in DESIGN.md §2.2):** the paper derives
//! the bitrate limit from foundry-level Lumerical transients that include
//! driver and junction dynamics. We fold those into one first-order
//! response time `τ = response_time_scale · τ_photon(FWHM)`; the scale is
//! calibrated so the OMA = −28 dBm contour passes through
//! (FWHM = 0.8 nm, BR = 40 Gb/s), the anchor of Fig. 7(a). Because
//! `τ_photon ∝ 1/FWHM`, the supported bitrate then rises linearly with
//! FWHM exactly as the paper observes, and the serializer/driver cap
//! produces the 40 Gb/s saturation.

use crate::mrr::Mrr;
use crate::units::{photon_lifetime_s, REFERENCE_WAVELENGTH_M};
use sconna_sc::PackedBitstream;

/// Static + dynamic model of one OAG.
#[derive(Debug, Clone)]
pub struct OpticalAndGate {
    /// The ring at its heater-programmed position η (two operand shifts
    /// below the input wavelength).
    ring: Mrr,
    /// Input wavelength λ_in, metres.
    pub lambda_in_m: f64,
    /// Electro-refractive resonance shift per asserted operand, metres.
    pub operand_shift_m: f64,
    /// Optical power of the λ_in channel entering the OAG, watts.
    pub input_power_w: f64,
    /// First-order response-time multiplier over the cavity photon
    /// lifetime (see module docs).
    pub response_time_scale: f64,
    /// Electrical driver/serializer bitrate cap, Hz (the 40 Gb/s
    /// saturation of Fig. 7(a)).
    pub driver_cap_hz: f64,
}

/// Calibrated response-time multiplier (see module docs): with a 1 mW
/// input channel and the 2×FWHM operand shift, the modulation depth needed
/// to keep OMA ≥ −28 dBm is ≈ 0.0604, and anchoring the crossing at
/// (0.8 nm, 40 Gb/s) yields τ ≈ 401 ps ≈ 252 · τ_photon(0.8 nm).
pub const DEFAULT_RESPONSE_TIME_SCALE: f64 = 251.9;

/// The paper operates OAGs with the operand shift at twice the linewidth,
/// which keeps single-operand leakage below 6 % of the peak.
pub const OPERAND_SHIFT_FWHM_RATIO: f64 = 2.0;

impl OpticalAndGate {
    /// Builds an OAG for the given linewidth and input power. The heater
    /// position η is derived so that both-operands-asserted is exactly on
    /// resonance.
    ///
    /// # Panics
    /// Panics if `fwhm_m` or `input_power_w` is non-positive.
    pub fn new(fwhm_m: f64, fsr_m: f64, input_power_w: f64) -> Self {
        assert!(input_power_w > 0.0, "input power must be positive");
        let operand_shift_m = OPERAND_SHIFT_FWHM_RATIO * fwhm_m;
        let eta = REFERENCE_WAVELENGTH_M - 2.0 * operand_shift_m;
        Self {
            ring: Mrr::new(eta, fwhm_m, fsr_m, 1.0),
            lambda_in_m: REFERENCE_WAVELENGTH_M,
            operand_shift_m,
            input_power_w,
            response_time_scale: DEFAULT_RESPONSE_TIME_SCALE,
            driver_cap_hz: 40e9,
        }
    }

    /// Ring linewidth, metres.
    pub fn fwhm_m(&self) -> f64 {
        self.ring.fwhm_m
    }

    /// Static drop-port transmission for an operand combination.
    pub fn transmission(&self, i: bool, w: bool) -> f64 {
        let asserted = usize::from(i) + usize::from(w);
        let shifted = self.ring.shifted(asserted as f64 * self.operand_shift_m);
        shifted.drop_transmission(self.lambda_in_m)
    }

    /// Static drop-port output power for an operand combination, watts.
    pub fn output_power_w(&self, i: bool, w: bool) -> f64 {
        self.input_power_w * self.transmission(i, w)
    }

    /// Static optical modulation amplitude: lowest logic-1 power minus
    /// highest logic-0 power, watts.
    pub fn static_oma_w(&self) -> f64 {
        let one = self.output_power_w(true, true);
        let zero = self
            .output_power_w(false, false)
            .max(self.output_power_w(true, false))
            .max(self.output_power_w(false, true));
        one - zero
    }

    /// Effective first-order response time, seconds.
    pub fn response_time_s(&self) -> f64 {
        self.response_time_scale * photon_lifetime_s(self.ring.fwhm_m)
    }

    /// Modulation depth reached within one bit period at `bitrate_hz`
    /// (fraction of the static swing the output completes before the next
    /// bit).
    pub fn modulation_depth(&self, bitrate_hz: f64) -> f64 {
        assert!(bitrate_hz > 0.0, "bitrate must be positive");
        let t_bit = 1.0 / bitrate_hz;
        1.0 - (-t_bit / self.response_time_s()).exp()
    }

    /// OMA at a given bitrate: the eye closes as the response time eats
    /// into the bit period.
    pub fn oma_at_bitrate_w(&self, bitrate_hz: f64) -> f64 {
        let one = self.output_power_w(true, true) * self.modulation_depth(bitrate_hz);
        let zero = self
            .output_power_w(false, false)
            .max(self.output_power_w(true, false))
            .max(self.output_power_w(false, true));
        one - zero
    }

    /// Highest bitrate at which the OMA still meets `oma_floor_w`
    /// (the photodetector sensitivity), clamped to the driver cap.
    /// Returns `None` if even DC operation cannot meet the floor.
    pub fn supported_bitrate_hz(&self, oma_floor_w: f64) -> Option<f64> {
        if self.static_oma_w() < oma_floor_w {
            return None;
        }
        // OMA is strictly decreasing in bitrate: bisect.
        let mut lo = 1e6;
        let mut hi = self.driver_cap_hz;
        if self.oma_at_bitrate_w(hi) >= oma_floor_w {
            return Some(hi);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.oma_at_bitrate_w(mid) >= oma_floor_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

/// One sample of a transient simulation.
#[derive(Debug, Clone, Copy)]
pub struct TransientSample {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Instantaneous electrical drive level of operand I in `[0, 1]`.
    pub drive_i: f64,
    /// Instantaneous electrical drive level of operand W in `[0, 1]`.
    pub drive_w: f64,
    /// Drop-port optical power, watts.
    pub output_w: f64,
}

/// Result of a transient run: the waveform plus the bit decisions sampled
/// at bit centres.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Waveform samples (`steps_per_bit` per bit).
    pub samples: Vec<TransientSample>,
    /// Output bit decisions at bit centres (threshold = mid-OMA).
    pub decisions: Vec<bool>,
}

/// Time-domain simulation of the OAG driven by two NRZ bit-streams
/// (regenerates Fig. 6(c)).
///
/// The electrical drives follow first-order RC edges with time constant
/// `drive_tau_s`; the instantaneous resonance follows the sum of drive
/// levels; the drop-port power is evaluated from the Lorentzian at each
/// step.
///
/// # Panics
/// Panics if the streams differ in length or `steps_per_bit == 0`.
pub fn transient(
    gate: &OpticalAndGate,
    i_bits: &PackedBitstream,
    w_bits: &PackedBitstream,
    bitrate_hz: f64,
    drive_tau_s: f64,
    steps_per_bit: usize,
) -> TransientResult {
    assert_eq!(i_bits.len(), w_bits.len(), "stream length mismatch");
    assert!(steps_per_bit > 0, "steps_per_bit must be positive");
    let t_bit = 1.0 / bitrate_hz;
    let dt = t_bit / steps_per_bit as f64;
    let alpha = 1.0 - (-dt / drive_tau_s).exp();

    let mut drive_i = 0.0f64;
    let mut drive_w = 0.0f64;
    let mut samples = Vec::with_capacity(i_bits.len() * steps_per_bit);
    let mut decisions = Vec::with_capacity(i_bits.len());

    let p_one = gate.output_power_w(true, true);
    let p_zero = gate
        .output_power_w(true, false)
        .max(gate.output_power_w(false, true));
    let threshold = 0.5 * (p_one + p_zero);

    for (bit_idx, (bi, bw)) in i_bits.iter().zip(w_bits.iter()).enumerate() {
        let target_i = f64::from(u8::from(bi));
        let target_w = f64::from(u8::from(bw));
        let mut centre_power = 0.0;
        for step in 0..steps_per_bit {
            drive_i += alpha * (target_i - drive_i);
            drive_w += alpha * (target_w - drive_w);
            let shift = (drive_i + drive_w) * gate.operand_shift_m;
            let ring = gate.ring.shifted(shift);
            let output_w = gate.input_power_w * ring.drop_transmission(gate.lambda_in_m);
            let time_s = bit_idx as f64 * t_bit + (step + 1) as f64 * dt;
            if step == steps_per_bit / 2 {
                centre_power = output_w;
            }
            samples.push(TransientSample {
                time_s,
                drive_i,
                drive_w,
                output_w,
            });
        }
        decisions.push(centre_power > threshold);
    }
    TransientResult { samples, decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::dbm_to_watts;
    use sconna_sc::PackedBitstream;

    fn gate() -> OpticalAndGate {
        // 1 mW input channel, 0.8 nm FWHM, 50 nm FSR — the Section V
        // operating point.
        OpticalAndGate::new(0.8e-9, 50e-9, 1e-3)
    }

    #[test]
    fn truth_table_is_and() {
        let g = gate();
        let t11 = g.transmission(true, true);
        let t10 = g.transmission(true, false);
        let t01 = g.transmission(false, true);
        let t00 = g.transmission(false, false);
        assert!(t11 > 0.99, "on-state transmission {t11}");
        assert!(t10 < 0.06 && t01 < 0.06, "single-operand leak {t10}/{t01}");
        assert!(t00 < t10, "both-off must be the most detuned");
    }

    #[test]
    fn static_oma_positive_and_below_input() {
        let g = gate();
        let oma = g.static_oma_w();
        assert!(oma > 0.0 && oma < g.input_power_w);
    }

    #[test]
    fn oma_decreases_with_bitrate() {
        let g = gate();
        let mut prev = f64::INFINITY;
        for br in [1e9, 5e9, 10e9, 20e9, 40e9] {
            let oma = g.oma_at_bitrate_w(br);
            assert!(oma < prev, "OMA must fall with bitrate");
            prev = oma;
        }
    }

    #[test]
    fn supported_bitrate_anchor_40g_at_08nm() {
        // Fig. 7(a) anchor: FWHM = 0.8 nm supports ~40 Gb/s at
        // OMA = −28 dBm (calibrated; assert within 15 %).
        let g = gate();
        let br = g
            .supported_bitrate_hz(dbm_to_watts(-28.0))
            .expect("floor must be reachable");
        assert!(
            (br - 40e9).abs() / 40e9 < 0.15,
            "supported bitrate {br:.3e} not near 40 Gb/s"
        );
    }

    #[test]
    fn supported_bitrate_scales_with_fwhm() {
        let floor = dbm_to_watts(-28.0);
        let br_04 = OpticalAndGate::new(0.4e-9, 50e-9, 1e-3)
            .supported_bitrate_hz(floor)
            .unwrap();
        let br_08 = OpticalAndGate::new(0.8e-9, 50e-9, 1e-3)
            .supported_bitrate_hz(floor)
            .unwrap();
        // Below the driver cap the supported bitrate rises ~linearly with
        // FWHM (paper Fig. 7(a)).
        let ratio = br_08 / br_04;
        assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
    }

    #[test]
    fn supported_bitrate_saturates_at_driver_cap() {
        let floor = dbm_to_watts(-28.0);
        let br = OpticalAndGate::new(2.0e-9, 50e-9, 1e-3)
            .supported_bitrate_hz(floor)
            .unwrap();
        assert!((br - 40e9).abs() < 1e6, "wide rings hit the 40 Gb/s cap");
    }

    #[test]
    fn unreachable_floor_returns_none() {
        let g = OpticalAndGate::new(0.8e-9, 50e-9, 1e-9); // 1 nW input
        assert!(g.supported_bitrate_hz(dbm_to_watts(-28.0)).is_none());
    }

    #[test]
    fn transient_computes_and_of_prbs() {
        // Fig. 6(c): two pseudo-random streams at 10 Gb/s; the sampled
        // drop-port decisions must equal the bit-wise AND.
        let g = gate();
        let i = PackedBitstream::from_bits([
            true, true, false, true, false, false, true, true, false, true,
        ]);
        let w = PackedBitstream::from_bits([
            true, false, true, true, false, true, true, false, false, true,
        ]);
        let res = transient(&g, &i, &w, 10e9, 2e-12, 32);
        let expected: Vec<bool> = i.iter().zip(w.iter()).map(|(a, b)| a && b).collect();
        assert_eq!(res.decisions, expected);
        assert_eq!(res.samples.len(), 10 * 32);
    }

    #[test]
    fn transient_output_bounded_by_input_power() {
        let g = gate();
        let i = PackedBitstream::from_bits((0..64).map(|t| t % 2 == 0));
        let w = PackedBitstream::from_bits((0..64).map(|t| t % 3 == 0));
        let res = transient(&g, &i, &w, 10e9, 2e-12, 16);
        for s in &res.samples {
            assert!(s.output_w >= 0.0 && s.output_w <= g.input_power_w);
        }
    }
}
