//! Microring resonator (MRR) model.
//!
//! All MRRs in the repo (OAG rings, filter rings, modulator rings of the
//! analog baselines) share this analytic model: a Lorentzian drop-port
//! passband of configurable FWHM, a free spectral range (FSR), and a
//! resonance wavelength that heaters (slow, operand-independent tuning, the
//! paper's γ→η programming) and PN junctions (fast, operand-driven shifts)
//! displace.

use serde::{Deserialize, Serialize};

/// Analytic MRR with a Lorentzian passband.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mrr {
    /// Resonance wavelength, metres.
    pub resonance_m: f64,
    /// Full width at half maximum of the passband, metres.
    pub fwhm_m: f64,
    /// Free spectral range, metres.
    pub fsr_m: f64,
    /// Peak drop-port transmission (≤ 1; captures the ring's insertion
    /// loss at resonance).
    pub peak_transmission: f64,
}

impl Mrr {
    /// Creates an MRR.
    ///
    /// # Panics
    /// Panics if FWHM or FSR is non-positive, or the peak transmission is
    /// outside `(0, 1]`.
    pub fn new(resonance_m: f64, fwhm_m: f64, fsr_m: f64, peak_transmission: f64) -> Self {
        assert!(fwhm_m > 0.0, "FWHM must be positive");
        assert!(fsr_m > 0.0, "FSR must be positive");
        assert!(
            peak_transmission > 0.0 && peak_transmission <= 1.0,
            "peak transmission must be in (0, 1]"
        );
        Self {
            resonance_m,
            fwhm_m,
            fsr_m,
            peak_transmission,
        }
    }

    /// Quality factor `Q = λ_r / FWHM`.
    pub fn quality_factor(&self) -> f64 {
        self.resonance_m / self.fwhm_m
    }

    /// Detuning of `lambda_m` from the nearest resonance order, metres
    /// (folds the comb of resonances spaced by the FSR).
    pub fn detuning_m(&self, lambda_m: f64) -> f64 {
        let d = (lambda_m - self.resonance_m) % self.fsr_m;
        let d = if d > self.fsr_m / 2.0 {
            d - self.fsr_m
        } else {
            d
        };
        if d < -self.fsr_m / 2.0 {
            d + self.fsr_m
        } else {
            d
        }
    }

    /// Drop-port power transmission at `lambda_m`:
    /// `T_peak / (1 + (2·δ/FWHM)²)`.
    pub fn drop_transmission(&self, lambda_m: f64) -> f64 {
        let delta = self.detuning_m(lambda_m);
        let x = 2.0 * delta / self.fwhm_m;
        self.peak_transmission / (1.0 + x * x)
    }

    /// Through-port power transmission (lossless complement of the drop
    /// port; ring loss is carried by `peak_transmission`).
    pub fn through_transmission(&self, lambda_m: f64) -> f64 {
        1.0 - self.drop_transmission(lambda_m)
    }

    /// Returns a copy with the resonance shifted by `delta_m` metres
    /// (positive = red shift). Models both thermal tuning and
    /// electro-refractive operand shifts.
    pub fn shifted(&self, delta_m: f64) -> Self {
        Self {
            resonance_m: self.resonance_m + delta_m,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::REFERENCE_WAVELENGTH_M;

    fn ring() -> Mrr {
        Mrr::new(REFERENCE_WAVELENGTH_M, 0.8e-9, 50e-9, 1.0)
    }

    #[test]
    fn peak_at_resonance() {
        let r = ring();
        assert!((r.drop_transmission(r.resonance_m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_power_at_half_fwhm() {
        let r = ring();
        let t = r.drop_transmission(r.resonance_m + r.fwhm_m / 2.0);
        assert!((t - 0.5).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn transmission_symmetric_in_detuning() {
        let r = ring();
        for k in 1..10 {
            let d = k as f64 * 0.1e-9;
            let up = r.drop_transmission(r.resonance_m + d);
            let down = r.drop_transmission(r.resonance_m - d);
            assert!((up - down).abs() < 1e-12);
        }
    }

    #[test]
    fn fsr_periodicity() {
        let r = ring();
        let t0 = r.drop_transmission(r.resonance_m + 0.3e-9);
        let t1 = r.drop_transmission(r.resonance_m + 0.3e-9 + r.fsr_m);
        assert!((t0 - t1).abs() < 1e-9);
    }

    #[test]
    fn through_complements_drop() {
        let r = ring();
        for k in 0..20 {
            let lam = r.resonance_m + k as f64 * 0.05e-9;
            let sum = r.drop_transmission(lam) + r.through_transmission(lam);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quality_factor_magnitude() {
        // 1550 nm / 0.8 nm ≈ 1940 — a low-Q, high-speed ring.
        let q = ring().quality_factor();
        assert!((q - 1937.5).abs() < 1.0);
    }

    #[test]
    fn shifted_moves_peak() {
        let r = ring().shifted(0.4e-9);
        assert!(r.drop_transmission(REFERENCE_WAVELENGTH_M) < 0.51);
        assert!((r.drop_transmission(REFERENCE_WAVELENGTH_M + 0.4e-9) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "FWHM must be positive")]
    fn zero_fwhm_rejected() {
        let _ = Mrr::new(REFERENCE_WAVELENGTH_M, 0.0, 50e-9, 1.0);
    }
}
