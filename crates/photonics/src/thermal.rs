//! Microring thermal tuning — the microheaters of Fig. 6(a).
//!
//! Every MRR in the system needs its resonance moved from the
//! fabrication-defined position γ to the programmed position η
//! (Section IV-B), and the analog baselines additionally re-tune their
//! DKV rings whenever the weight assignment changes. This module models
//! the heater: tuning power per wavelength shift, first-order thermal
//! settling, and the Monte-Carlo fabrication-variation analysis that
//! sets the expected per-ring tuning power.
//!
//! It also grounds two constants used elsewhere:
//!
//! * `sconna-accel`'s 20 µs analog DKV reprogramming latency ≈ settling a
//!   τ = 4 µs heater to 1 % of its step;
//! * the per-ring tuning power that a power model may optionally add on
//!   top of Table IV (the paper's table omits tuning power, so the
//!   default ledgers do too — see EXPERIMENTS.md).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// First-order thermo-optic heater model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HeaterModel {
    /// Resonance shift per electrical heater power, nm/mW.
    pub efficiency_nm_per_mw: f64,
    /// Thermal time constant, seconds.
    pub time_constant_s: f64,
    /// Maximum heater power, mW.
    pub max_power_mw: f64,
}

impl Default for HeaterModel {
    fn default() -> Self {
        // Representative silicon-photonic TiN heater: ~0.25 nm/mW,
        // τ = 4 µs, 20 mW ceiling (≈ one FSR of 50 nm is unreachable —
        // tuning wraps around the comb instead).
        Self {
            efficiency_nm_per_mw: 0.25,
            time_constant_s: 4e-6,
            max_power_mw: 20.0,
        }
    }
}

impl HeaterModel {
    /// Heater power to hold a resonance shift of `shift_nm` (red shifts
    /// only; blue shifts wrap around the FSR, which the caller handles
    /// via [`HeaterModel::wrapped_shift_nm`]).
    ///
    /// # Panics
    /// Panics if the shift is negative or exceeds the heater's reach.
    pub fn holding_power_mw(&self, shift_nm: f64) -> f64 {
        assert!(shift_nm >= 0.0, "thermal tuning shifts red only");
        let p = shift_nm / self.efficiency_nm_per_mw;
        assert!(
            p <= self.max_power_mw,
            "shift {shift_nm} nm needs {p:.1} mW > ceiling {} mW",
            self.max_power_mw
        );
        p
    }

    /// Largest shift the heater can hold, nm.
    pub fn reach_nm(&self) -> f64 {
        self.max_power_mw * self.efficiency_nm_per_mw
    }

    /// Folds an arbitrary (possibly negative) desired shift into the
    /// red-shift-only range `[0, fsr_nm)` by wrapping around the comb.
    pub fn wrapped_shift_nm(&self, desired_nm: f64, fsr_nm: f64) -> f64 {
        assert!(fsr_nm > 0.0, "FSR must be positive");
        desired_nm.rem_euclid(fsr_nm)
    }

    /// Time for the resonance to settle within `tolerance` (fraction of
    /// the commanded step remaining), seconds: `τ · ln(1/tolerance)`.
    ///
    /// # Panics
    /// Panics unless `0 < tolerance < 1`.
    pub fn settle_time_s(&self, tolerance: f64) -> f64 {
        assert!(tolerance > 0.0 && tolerance < 1.0, "tolerance in (0,1)");
        self.time_constant_s * (1.0 / tolerance).ln()
    }

    /// Instantaneous normalized response `1 − exp(−t/τ)` to a step at
    /// `t = 0`.
    pub fn step_response(&self, t_s: f64) -> f64 {
        assert!(t_s >= 0.0, "time must be non-negative");
        1.0 - (-t_s / self.time_constant_s).exp()
    }
}

/// Fabrication-variation statistics for a bank of rings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FabricationVariation {
    /// Standard deviation of the as-fabricated resonance offset, nm.
    pub sigma_nm: f64,
}

impl Default for FabricationVariation {
    fn default() -> Self {
        // ±0.5 nm class process variation, a typical foundry corner.
        Self { sigma_nm: 0.5 }
    }
}

/// Result of the Monte-Carlo tuning-power analysis.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TuningPowerAnalysis {
    /// Rings sampled.
    pub rings: usize,
    /// Mean per-ring holding power, mW.
    pub mean_power_mw: f64,
    /// Worst sampled ring, mW.
    pub max_power_mw: f64,
    /// Fraction of rings whose correction exceeded the heater reach and
    /// had to wrap to the next comb order.
    pub wrap_fraction: f64,
}

/// Samples `rings` fabrication offsets (Gaussian via Box-Muller) and
/// reports the heater power needed to pull every ring onto its grid
/// position, wrapping around the FSR where the red-only heater cannot
/// reach a blue correction directly.
pub fn tuning_power_analysis<R: Rng + ?Sized>(
    heater: &HeaterModel,
    variation: &FabricationVariation,
    rings: usize,
    fsr_nm: f64,
    rng: &mut R,
) -> TuningPowerAnalysis {
    assert!(rings > 0, "need at least one ring");
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut wraps = 0usize;
    for _ in 0..rings {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let offset_nm =
            variation.sigma_nm * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        // Correction is the negative of the offset, folded red-only.
        let shift = heater.wrapped_shift_nm(-offset_nm, fsr_nm);
        if shift > heater.reach_nm() {
            // Unreachable even after wrapping: re-assign the ring to the
            // adjacent channel (counts as a wrap, holds zero power here).
            wraps += 1;
            continue;
        }
        let p = heater.holding_power_mw(shift);
        sum += p;
        max = max.max(p);
    }
    TuningPowerAnalysis {
        rings,
        mean_power_mw: sum / rings as f64,
        max_power_mw: max,
        wrap_fraction: wraps as f64 / rings as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn holding_power_linear() {
        let h = HeaterModel::default();
        assert!((h.holding_power_mw(0.25) - 1.0).abs() < 1e-12);
        assert!((h.holding_power_mw(2.5) - 10.0).abs() < 1e-12);
        assert_eq!(h.holding_power_mw(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn beyond_reach_panics() {
        let h = HeaterModel::default();
        let _ = h.holding_power_mw(h.reach_nm() + 0.1);
    }

    #[test]
    fn settle_time_grounds_reprogram_latency() {
        // τ = 4 µs settling to 1 % gives ≈ 18.4 µs — the basis of the
        // 20 µs DKV reprogramming calibration in sconna-accel.
        let h = HeaterModel::default();
        let t = h.settle_time_s(0.01);
        assert!((t - 18.4e-6).abs() < 0.5e-6, "settle {t:e}");
        assert!(t < 20e-6);
    }

    #[test]
    fn step_response_saturates() {
        let h = HeaterModel::default();
        assert!(h.step_response(0.0).abs() < 1e-12);
        assert!(h.step_response(h.time_constant_s) > 0.63);
        assert!(h.step_response(10.0 * h.time_constant_s) > 0.9999);
    }

    #[test]
    fn wrapping_folds_blue_shifts() {
        let h = HeaterModel::default();
        assert!((h.wrapped_shift_nm(-0.3, 50.0) - 49.7).abs() < 1e-12);
        assert!((h.wrapped_shift_nm(0.3, 50.0) - 0.3).abs() < 1e-12);
        assert!((h.wrapped_shift_nm(50.3, 50.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_tuning_power_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = tuning_power_analysis(
            &HeaterModel::default(),
            &FabricationVariation::default(),
            10_000,
            50.0,
            &mut rng,
        );
        // σ = 0.5 nm: red corrections average ≈ σ·√(2/π) ≈ 0.4 nm
        // ≈ 1.6 mW; blue-side offsets wrap to ~49+ nm which exceeds the
        // 5 nm heater reach, so about half the rings re-assign channels.
        assert!(a.mean_power_mw > 0.2 && a.mean_power_mw < 3.0, "{a:?}");
        assert!(a.max_power_mw <= 20.0);
        assert!(a.wrap_fraction > 0.3 && a.wrap_fraction < 0.7, "{a:?}");
    }

    #[test]
    fn monte_carlo_deterministic_under_seed() {
        let run = || {
            tuning_power_analysis(
                &HeaterModel::default(),
                &FabricationVariation::default(),
                1000,
                50.0,
                &mut StdRng::seed_from_u64(7),
            )
        };
        assert_eq!(run().mean_power_mw.to_bits(), run().mean_power_mw.to_bits());
    }

    #[test]
    fn tighter_process_needs_less_power() {
        let h = HeaterModel::default();
        let loose = tuning_power_analysis(
            &h,
            &FabricationVariation { sigma_nm: 0.8 },
            5000,
            50.0,
            &mut StdRng::seed_from_u64(1),
        );
        let tight = tuning_power_analysis(
            &h,
            &FabricationVariation { sigma_nm: 0.2 },
            5000,
            50.0,
            &mut StdRng::seed_from_u64(1),
        );
        assert!(tight.mean_power_mw < loose.mean_power_mw);
    }
}
