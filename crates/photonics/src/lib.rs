//! # sconna-photonics — photonic device and link models
//!
//! The device-level half of the SCONNA reproduction (Sections IV–V of the
//! paper): microring resonators, the MRR-based Optical AND Gate that makes
//! an Optical Stochastic Multiplier, photodetector noise and resolution
//! (Eq. 2/3), the DWDM link power budget (Eq. 4, Table III), the VDPC
//! scalability solvers (Table I, the `N = 176` anchor), and the
//! Photo-Charge Accumulator circuit (Fig. 4(b), Fig. 7(b)).
//!
//! Where the paper relied on Lumerical/MultiSim device simulation, this
//! crate substitutes calibrated analytic models; every calibration is
//! listed in `DESIGN.md` §2.2 and asserted by unit tests against the
//! paper's anchor numbers.
//!
//! ```
//! use sconna_photonics::scalability::sconna_scalability_default;
//!
//! // Section V-B: a SCONNA VDPC supports N = M = 176 OSMs per VDPE.
//! assert_eq!(sconna_scalability_default().achievable_n, 176);
//! ```

pub mod link;
pub mod modulator;
pub mod mrr;
pub mod oag;
pub mod pca;
pub mod photodetector;
pub mod scalability;
pub mod spectrum;
pub mod thermal;
pub mod units;

pub use link::LinkParameters;
pub use mrr::Mrr;
pub use oag::OpticalAndGate;
pub use pca::{AdcModel, PcaCircuit};
pub use photodetector::Photodetector;
