//! Photo-Charge Accumulator (PCA) circuit — Section IV-C and Fig. 4(b).
//!
//! The PCA turns the optical product bit-streams of one output waveguide
//! arm into a binary VDP result in two stages:
//!
//! 1. **stochastic-to-analog:** a photodetector emits a current pulse per
//!    optical `1`; the pulse deposits charge on the capacitor of the
//!    active time-integrating-receiver (TIR), so the capacitor voltage is
//!    proportional to the ones count. Two TIRs ping-pong (demux/mux in
//!    Fig. 4(b)) so one can discharge while the other accumulates.
//! 2. **analog-to-binary:** an ADC digitizes the amplified capacitor
//!    voltage. The ADC is the PCA's only error source (Section V-C:
//!    mean absolute percentage error ≈ 1.3 %).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// TIR + amplifier electrical parameters (Section V-C values as defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PcaCircuit {
    /// Photodetector responsivity, A/W.
    pub responsivity_a_per_w: f64,
    /// Optical power of a logic `1` at the photodetector, watts.
    pub one_level_power_w: f64,
    /// Bit period of the incident streams, seconds.
    pub bit_period_s: f64,
    /// Integration capacitor, farads (paper: 250 pF).
    pub capacitance_f: f64,
    /// Voltage amplifier gain (paper: 80).
    pub amplifier_gain: f64,
    /// Amplifier output saturation voltage, volts.
    pub saturation_v: f64,
}

impl Default for PcaCircuit {
    fn default() -> Self {
        Self {
            responsivity_a_per_w: 1.2,
            one_level_power_w: crate::units::dbm_to_watts(-28.0),
            bit_period_s: 1.0 / 30e9,
            capacitance_f: 250e-12,
            amplifier_gain: 80.0,
            saturation_v: 1.2,
        }
    }
}

impl PcaCircuit {
    /// Charge deposited per optical `1`, coulombs.
    pub fn charge_per_one_c(&self) -> f64 {
        self.responsivity_a_per_w * self.one_level_power_w * self.bit_period_s
    }

    /// Amplifier output voltage after accumulating `ones` bits
    /// (saturating).
    pub fn output_voltage(&self, ones: u64) -> f64 {
        let v = self.amplifier_gain * ones as f64 * self.charge_per_one_c() / self.capacitance_f;
        v.min(self.saturation_v)
    }

    /// True if `ones` accumulates without touching saturation.
    pub fn is_linear_at(&self, ones: u64) -> bool {
        self.amplifier_gain * ones as f64 * self.charge_per_one_c() / self.capacitance_f
            < self.saturation_v
    }

    /// Full-scale ones capacity before saturation.
    pub fn capacity_ones(&self) -> u64 {
        (self.saturation_v * self.capacitance_f / (self.amplifier_gain * self.charge_per_one_c()))
            .floor() as u64
    }
}

/// Which TIR capacitor is accumulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveCapacitor {
    /// Capacitor C1 integrates; C2 discharges.
    C1,
    /// Capacitor C2 integrates; C1 discharges.
    C2,
}

/// Dual-TIR ping-pong accumulator: one capacitor integrates the current
/// phase while the other discharges, hiding the discharge latency
/// (Fig. 4(b)).
#[derive(Debug, Clone)]
pub struct DualTir {
    circuit: PcaCircuit,
    active: ActiveCapacitor,
    ones: [u64; 2],
    phases_completed: u64,
}

impl DualTir {
    /// Creates a dual-TIR accumulator with C1 active.
    pub fn new(circuit: PcaCircuit) -> Self {
        Self {
            circuit,
            active: ActiveCapacitor::C1,
            ones: [0, 0],
            phases_completed: 0,
        }
    }

    /// Which capacitor is currently integrating.
    pub fn active(&self) -> ActiveCapacitor {
        self.active
    }

    /// Accumulates `ones` optical `1`s onto the active capacitor.
    pub fn accumulate(&mut self, ones: u64) {
        self.ones[self.idx()] += ones;
    }

    /// Current amplifier output voltage of the active capacitor.
    pub fn voltage(&self) -> f64 {
        self.circuit.output_voltage(self.ones[self.idx()])
    }

    /// Ends the accumulation phase: returns the final ones count, swaps
    /// capacitors (the finished one starts discharging) and immediately
    /// allows the next phase to accumulate — zero stall.
    pub fn end_phase(&mut self) -> u64 {
        let result = self.ones[self.idx()];
        self.ones[self.idx()] = 0; // discharge
        self.active = match self.active {
            ActiveCapacitor::C1 => ActiveCapacitor::C2,
            ActiveCapacitor::C2 => ActiveCapacitor::C1,
        };
        self.phases_completed += 1;
        result
    }

    /// Number of completed accumulation phases.
    pub fn phases_completed(&self) -> u64 {
        self.phases_completed
    }

    fn idx(&self) -> usize {
        match self.active {
            ActiveCapacitor::C1 => 0,
            ActiveCapacitor::C2 => 1,
        }
    }
}

/// ADC model for the PCA's analog-to-binary stage: mid-tread uniform
/// quantization over the full-scale count plus a multiplicative
/// input-referred noise term, calibrated so the end-to-end MAPE over the
/// paper's operating distribution is ≈ 1.3 % (Section V-C).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdcModel {
    /// Resolution, bits (Table IV: 8-bit SAR-flash).
    pub bits: u8,
    /// Full-scale input in ones-count units (`N · 2^B` for a SCONNA
    /// VDPE).
    pub full_scale_ones: u64,
    /// Standard deviation of the multiplicative noise.
    pub relative_noise_sigma: f64,
}

/// Calibrated noise sigma reproducing the paper's 1.3 % MAPE (see
/// `measured MAPE` test below).
pub const DEFAULT_ADC_NOISE_SIGMA: f64 = 0.0145;

/// One Box-Muller draw: two independent standard Gaussians from two
/// uniforms (`r·cos θ`, `r·sin θ`). The single shared sampler behind
/// [`AdcModel::convert`] and [`AdcModel::convert_pair`], so the MAPE
/// calibration and the inference hot path can never drift apart.
/// Box-Muller from uniforms keeps us off `rand_distr` (not in the
/// sanctioned dependency set).
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let (sin_t, cos_t) = (2.0 * std::f64::consts::PI * u2).sin_cos();
    (r * cos_t, r * sin_t)
}

impl AdcModel {
    /// The paper's PCA ADC: 8-bit over a 176×256 full scale.
    pub fn sconna_default() -> Self {
        Self {
            bits: 8,
            full_scale_ones: 176 * 256,
            relative_noise_sigma: DEFAULT_ADC_NOISE_SIGMA,
        }
    }

    /// Quantization step in ones-count units.
    pub fn step_ones(&self) -> f64 {
        self.full_scale_ones as f64 / (1u64 << self.bits) as f64
    }

    /// Noiseless conversion: count → code → reconstructed count.
    pub fn quantize(&self, ones: f64) -> f64 {
        let step = self.step_ones();
        let code = (ones / step)
            .round()
            .clamp(0.0, ((1u64 << self.bits) - 1) as f64);
        code * step
    }

    /// Full conversion with noise: samples a Gaussian multiplicative
    /// error, then quantizes.
    pub fn convert<R: Rng + ?Sized>(&self, ones: f64, rng: &mut R) -> f64 {
        let (gauss, _) = gaussian_pair(rng);
        self.quantize(ones * (1.0 + self.relative_noise_sigma * gauss))
    }

    /// Converts the two rail counts of one VDPE chunk with a single
    /// Box-Muller draw: the `cos` and `sin` projections of one `(r, θ)`
    /// pair are independent standard Gaussians, so the positive and
    /// negative rails get independent noise at half the transcendental
    /// cost of two [`AdcModel::convert`] calls — the dominant cost of a
    /// noisy short-vector VDP.
    pub fn convert_pair<R: Rng + ?Sized>(&self, pos: f64, neg: f64, rng: &mut R) -> (f64, f64) {
        let (g0, g1) = gaussian_pair(rng);
        (
            self.quantize(pos * (1.0 + self.relative_noise_sigma * g0)),
            self.quantize(neg * (1.0 + self.relative_noise_sigma * g1)),
        )
    }

    /// Monte-Carlo estimate of the MAPE over a count distribution drawn
    /// uniformly from `[lo, hi]` — the calibration harness for
    /// [`DEFAULT_ADC_NOISE_SIGMA`].
    pub fn measured_mape<R: Rng + ?Sized>(
        &self,
        lo: u64,
        hi: u64,
        samples: usize,
        rng: &mut R,
    ) -> f64 {
        let mut sum = 0.0;
        for _ in 0..samples {
            let truth = rng.gen_range(lo..=hi) as f64;
            let got = self.convert(truth, rng);
            sum += ((got - truth) / truth).abs();
        }
        100.0 * sum / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn charge_per_one_magnitude() {
        // 1.2 A/W × 1.585 µW × 33.3 ps ≈ 63 aC.
        let q = PcaCircuit::default().charge_per_one_c();
        assert!((q - 6.34e-17).abs() / 6.34e-17 < 0.02, "q = {q:e}");
    }

    #[test]
    fn full_accumulation_stays_linear() {
        // Section V-C / Fig. 7(b): the full 176×256 ones accumulate
        // without saturating (the output is ~0.9 V at gain 80, C 250 pF).
        let c = PcaCircuit::default();
        let full = 176 * 256u64;
        assert!(c.is_linear_at(full));
        let v = c.output_voltage(full);
        assert!(v > 0.8 && v < 1.0, "full-scale voltage {v}");
    }

    #[test]
    fn voltage_linear_in_alpha() {
        // Fig. 7(b): V(α) is linear — check proportionality at quarter
        // points.
        let c = PcaCircuit::default();
        let full = 176 * 256u64;
        let v100 = c.output_voltage(full);
        for &(num, den) in &[(1u64, 4u64), (1, 2), (3, 4)] {
            let v = c.output_voltage(full * num / den);
            let expect = v100 * num as f64 / den as f64;
            assert!((v - expect).abs() < 1e-9, "alpha {num}/{den}");
        }
    }

    #[test]
    fn saturation_clamps() {
        let c = PcaCircuit::default();
        let v = c.output_voltage(u64::MAX / 1024);
        assert!((v - c.saturation_v).abs() < 1e-12);
        assert!(c.capacity_ones() > 176 * 256);
    }

    #[test]
    fn dual_tir_ping_pong() {
        let mut tir = DualTir::new(PcaCircuit::default());
        assert_eq!(tir.active(), ActiveCapacitor::C1);
        tir.accumulate(100);
        tir.accumulate(50);
        assert_eq!(tir.end_phase(), 150);
        assert_eq!(tir.active(), ActiveCapacitor::C2);
        // Next phase starts clean immediately (discharge hidden).
        tir.accumulate(7);
        assert_eq!(tir.end_phase(), 7);
        assert_eq!(tir.active(), ActiveCapacitor::C1);
        assert_eq!(tir.phases_completed(), 2);
        // C1 was discharged while C2 accumulated.
        tir.accumulate(1);
        assert_eq!(tir.end_phase(), 1);
    }

    #[test]
    fn adc_quantize_is_idempotent() {
        let adc = AdcModel::sconna_default();
        for ones in [0.0, 176.0, 1000.0, 20000.0, 45056.0] {
            let q = adc.quantize(ones);
            assert_eq!(adc.quantize(q), q);
        }
    }

    #[test]
    fn adc_quantization_error_bounded_by_half_step() {
        let adc = AdcModel::sconna_default();
        let step = adc.step_ones();
        for ones in (0..45056u64).step_by(997) {
            let err = (adc.quantize(ones as f64) - ones as f64).abs();
            assert!(err <= step / 2.0 + 1e-9, "ones={ones} err={err}");
        }
    }

    #[test]
    fn adc_mape_matches_paper_1_3_percent() {
        // Section V-C: ADC MAPE ≈ 1.3 % over the operating distribution
        // (counts above ~10 % of full scale; below that the VDP result is
        // dominated by psum accumulation anyway).
        let adc = AdcModel::sconna_default();
        let mut rng = StdRng::seed_from_u64(0x5C0 ^ 0x1234);
        let mape = adc.measured_mape(4506, 45056, 20000, &mut rng);
        assert!(
            (mape - 1.3).abs() < 0.25,
            "measured MAPE {mape:.3} % vs paper 1.3 %"
        );
    }

    #[test]
    fn adc_convert_deterministic_under_seed() {
        let adc = AdcModel::sconna_default();
        let a = adc.convert(20000.0, &mut StdRng::seed_from_u64(7));
        let b = adc.convert(20000.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn paired_conversion_matches_single_rail_statistics() {
        // Both projections of the shared Box-Muller draw must carry the
        // calibrated noise magnitude: each rail's MAPE over the operating
        // range has to match the paper's ≈ 1.3 % like the single-rail
        // path does.
        let adc = AdcModel::sconna_default();
        let mut rng = StdRng::seed_from_u64(0xADC);
        let (mut pos_err, mut neg_err) = (0.0f64, 0.0f64);
        let samples = 20_000;
        for _ in 0..samples {
            use rand::Rng;
            let p = rng.gen_range(4506u64..=45056) as f64;
            let n = rng.gen_range(4506u64..=45056) as f64;
            let (cp, cn) = adc.convert_pair(p, n, &mut rng);
            pos_err += ((cp - p) / p).abs();
            neg_err += ((cn - n) / n).abs();
        }
        let pos_mape = 100.0 * pos_err / samples as f64;
        let neg_mape = 100.0 * neg_err / samples as f64;
        assert!(
            (pos_mape - 1.3).abs() < 0.25,
            "pos rail MAPE {pos_mape:.3} %"
        );
        assert!(
            (neg_mape - 1.3).abs() < 0.25,
            "neg rail MAPE {neg_mape:.3} %"
        );
    }

    #[test]
    fn paired_conversion_is_deterministic_and_independent_per_rail() {
        let adc = AdcModel::sconna_default();
        let a = adc.convert_pair(20000.0, 18000.0, &mut StdRng::seed_from_u64(7));
        let b = adc.convert_pair(20000.0, 18000.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        // The two rails must not share one noise value: across a batch of
        // draws the multiplicative errors must differ somewhere.
        let mut rng = StdRng::seed_from_u64(9);
        let diverged = (0..64).any(|_| {
            let (p, n) = adc.convert_pair(30000.0, 30000.0, &mut rng);
            p != n
        });
        assert!(diverged, "rails always drew identical noise");
    }
}
