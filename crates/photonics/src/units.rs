//! Physical units, conversions and constants used across the photonic
//! models.
//!
//! Power is carried either in watts (`W`) or in decibel-milliwatts (`dBm`);
//! losses and gains in decibels. Conversions are kept as free functions so
//! call sites read like the link-budget equations of the paper (Eq. 4).

/// Elementary charge, coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 2.997_924_58e8;

/// C-band reference wavelength used by every MRR model, metres (1550 nm).
pub const REFERENCE_WAVELENGTH_M: f64 = 1550e-9;

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to decibels.
///
/// # Panics
/// Panics if `ratio <= 0`.
#[inline]
pub fn linear_to_db(ratio: f64) -> f64 {
    assert!(ratio > 0.0, "dB of non-positive ratio {ratio}");
    10.0 * ratio.log10()
}

/// Converts dBm to watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * db_to_linear(dbm)
}

/// Converts watts to dBm.
///
/// # Panics
/// Panics if `watts <= 0`.
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    assert!(watts > 0.0, "dBm of non-positive power {watts} W");
    linear_to_db(watts / 1e-3)
}

/// Converts a wavelength bandwidth (metres, around the reference
/// wavelength) to a frequency bandwidth (hertz): `Δf = c·Δλ / λ²`.
#[inline]
pub fn wavelength_bw_to_frequency_bw(delta_lambda_m: f64) -> f64 {
    SPEED_OF_LIGHT * delta_lambda_m / (REFERENCE_WAVELENGTH_M * REFERENCE_WAVELENGTH_M)
}

/// Cavity photon lifetime of a resonator with the given FWHM linewidth
/// (metres): `τ_p = 1 / (2π·Δf_FWHM)`.
#[inline]
pub fn photon_lifetime_s(fwhm_m: f64) -> f64 {
    1.0 / (2.0 * std::f64::consts::PI * wavelength_bw_to_frequency_bw(fwhm_m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 20.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn dbm_anchors() {
        assert!((dbm_to_watts(0.0) - 1e-3).abs() < 1e-12);
        assert!((dbm_to_watts(10.0) - 10e-3).abs() < 1e-12);
        assert!((dbm_to_watts(-28.0) - 1.585e-6).abs() < 1e-8);
        assert!((watts_to_dbm(1e-3)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn dbm_of_zero_panics() {
        let _ = watts_to_dbm(0.0);
    }

    #[test]
    fn photon_lifetime_magnitude() {
        // 0.8 nm FWHM at 1550 nm → ~1.6 ps photon lifetime.
        let tau = photon_lifetime_s(0.8e-9);
        assert!(tau > 1.0e-12 && tau < 3.0e-12, "tau = {tau}");
    }

    #[test]
    fn frequency_bw_of_quarter_nm() {
        // The 0.25 nm DWDM channel gap at 1550 nm is ~31 GHz.
        let f = wavelength_bw_to_frequency_bw(0.25e-9);
        assert!((f - 31.2e9).abs() < 1e9, "f = {f}");
    }
}
