//! Optical link power budget — Eq. 4 of the paper in dB-domain accounting,
//! with the Table III parameter set.
//!
//! A SCONNA VDPC's light path is: laser diode → DWDM multiplexer → 1×M
//! splitter → input waveguide arm past a cascade of N OSMs → filter MRR →
//! photodetector. Every element contributes an insertion loss (on the
//! selected channel) or an out-of-band loss (on channels passing by), and
//! the received power must stay above the photodetector sensitivity
//! `P_PD-opt`.

use serde::{Deserialize, Serialize};

/// Table III link parameters. Field names follow the paper's symbols.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkParameters {
    /// Laser power per diode, dBm (`P_Laser`).
    pub laser_power_dbm: f64,
    /// Laser wall-plug efficiency (`η_WPE`): electrical→optical, used by
    /// the energy model, not the optical budget.
    pub wall_plug_efficiency: f64,
    /// Single-mode fiber insertion loss, dB (`IL_SMF`).
    pub il_smf_db: f64,
    /// Fiber-to-chip coupling insertion loss, dB (`IL_EC`).
    pub il_ec_db: f64,
    /// Silicon waveguide propagation loss, dB/mm (`IL_WG`).
    pub il_wg_db_per_mm: f64,
    /// Splitter excess loss per stage, dB (`EL_splitter`).
    pub el_splitter_db: f64,
    /// OSM insertion loss on its own channel, dB (`IL_OSM`).
    pub il_osm_db: f64,
    /// OSM out-of-band loss on passing channels, dB (`OBL_OSM`).
    pub obl_osm_db: f64,
    /// Filter MRR insertion loss, dB (`IL_MRR`).
    pub il_mrr_db: f64,
    /// Filter MRR out-of-band loss, dB (`OBL_MRR`).
    pub obl_mrr_db: f64,
    /// Aggregate network penalty (crosstalk, truncation, laser RIN
    /// margin), dB (`IL_penalty`).
    pub il_penalty_db: f64,
    /// Gap between adjacent OSMs, µm (`d_OSM`).
    pub d_osm_um: f64,
    /// Budget calibration offset, dB — see DESIGN.md §2.2: Eq. 4 as
    /// printed is ambiguous about how the ideal 1×M split interacts with
    /// the penalty term; this offset is fixed so the solver reproduces the
    /// paper's anchor `N = M = 176` at `P_PD-opt = −28 dBm`.
    pub calibration_offset_db: f64,
}

impl Default for LinkParameters {
    fn default() -> Self {
        Self {
            laser_power_dbm: 10.0,
            wall_plug_efficiency: 0.1,
            il_smf_db: 0.0,
            il_ec_db: 1.6,
            il_wg_db_per_mm: 0.3,
            el_splitter_db: 0.01,
            il_osm_db: 4.0,
            obl_osm_db: 0.01,
            il_mrr_db: 0.01,
            obl_mrr_db: 0.01,
            il_penalty_db: 7.3,
            d_osm_um: 20.0,
            calibration_offset_db: -2.09,
        }
    }
}

/// Itemized loss breakdown for one wavelength channel through a SCONNA
/// VDPE, in dB. Useful for reports and for asserting which term dominates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossBreakdown {
    /// Fiber + coupling losses.
    pub coupling_db: f64,
    /// Ideal 1×M power split.
    pub split_db: f64,
    /// Splitter excess loss across the log2(M) tree stages.
    pub split_excess_db: f64,
    /// Waveguide propagation along the N-OSM cascade.
    pub waveguide_db: f64,
    /// The channel's own OSM insertion loss.
    pub osm_insertion_db: f64,
    /// Out-of-band loss passing the other N−1 OSMs.
    pub osm_out_of_band_db: f64,
    /// Filter MRR insertion loss.
    pub filter_insertion_db: f64,
    /// Out-of-band loss passing the other N−1 filter MRRs.
    pub filter_out_of_band_db: f64,
    /// Aggregate network penalty.
    pub penalty_db: f64,
    /// Calibration offset (negative = credit; see [`LinkParameters`]).
    pub calibration_db: f64,
}

impl LossBreakdown {
    /// Total channel loss in dB.
    pub fn total_db(&self) -> f64 {
        self.coupling_db
            + self.split_db
            + self.split_excess_db
            + self.waveguide_db
            + self.osm_insertion_db
            + self.osm_out_of_band_db
            + self.filter_insertion_db
            + self.filter_out_of_band_db
            + self.penalty_db
            + self.calibration_db
    }
}

/// Computes the per-channel loss of a SCONNA VDPC with `n` OSMs per VDPE
/// and `m` VDPEs (waveguide arms).
///
/// # Panics
/// Panics if `n == 0` or `m == 0`.
pub fn sconna_channel_loss(params: &LinkParameters, n: usize, m: usize) -> LossBreakdown {
    assert!(n > 0 && m > 0, "VDPC dimensions must be positive");
    let n_f = n as f64;
    let m_f = m as f64;
    LossBreakdown {
        coupling_db: params.il_smf_db + params.il_ec_db,
        split_db: 10.0 * m_f.log10(),
        split_excess_db: params.el_splitter_db * m_f.log2(),
        waveguide_db: params.il_wg_db_per_mm * (n_f * params.d_osm_um * 1e-3),
        osm_insertion_db: params.il_osm_db,
        osm_out_of_band_db: (n_f - 1.0) * params.obl_osm_db,
        filter_insertion_db: params.il_mrr_db,
        filter_out_of_band_db: (n_f - 1.0) * params.obl_mrr_db,
        penalty_db: params.il_penalty_db,
        calibration_db: params.calibration_offset_db,
    }
}

/// Received optical power at the PCA photodetector, dBm, for the given
/// VDPC dimensions.
pub fn received_power_dbm(params: &LinkParameters, n: usize, m: usize) -> f64 {
    params.laser_power_dbm - sconna_channel_loss(params, n, m).total_db()
}

/// Electrical wall-plug power of one laser diode, watts (`P_opt / η_WPE`).
pub fn laser_wall_plug_w(params: &LinkParameters) -> f64 {
    crate::units::dbm_to_watts(params.laser_power_dbm) / params.wall_plug_efficiency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_monotone_in_n_and_m() {
        let p = LinkParameters::default();
        let base = sconna_channel_loss(&p, 64, 64).total_db();
        assert!(sconna_channel_loss(&p, 128, 64).total_db() > base);
        assert!(sconna_channel_loss(&p, 64, 128).total_db() > base);
    }

    #[test]
    fn split_loss_is_3db_per_doubling() {
        let p = LinkParameters::default();
        let a = sconna_channel_loss(&p, 16, 64);
        let b = sconna_channel_loss(&p, 16, 128);
        assert!((b.split_db - a.split_db - 10.0 * 2f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_matches_received_power() {
        let p = LinkParameters::default();
        let loss = sconna_channel_loss(&p, 176, 176);
        let rx = received_power_dbm(&p, 176, 176);
        assert!((p.laser_power_dbm - loss.total_db() - rx).abs() < 1e-9);
    }

    #[test]
    fn anchor_n176_is_within_budget_n177_is_not() {
        // Section V-B anchor: the calibrated budget supports exactly
        // N = M = 176 at the solved P_PD-opt (≈ −28 dBm) with a 10 dBm
        // laser.
        let p = LinkParameters::default();
        let sens = crate::photodetector::Photodetector::default()
            .sensitivity_dbm(1.0, crate::photodetector::sconna_effective_dr_hz(30e9, 8));
        assert!(received_power_dbm(&p, 176, 176) >= sens);
        assert!(received_power_dbm(&p, 177, 177) < sens);
    }

    #[test]
    fn split_dominates_at_large_m() {
        let p = LinkParameters::default();
        let loss = sconna_channel_loss(&p, 176, 176);
        assert!(loss.split_db > loss.waveguide_db);
        assert!(loss.split_db > loss.osm_insertion_db);
        assert!(loss.split_db > loss.penalty_db);
    }

    #[test]
    fn laser_wall_plug_power() {
        // 10 dBm optical at 10 % WPE = 100 mW electrical.
        let p = LinkParameters::default();
        assert!((laser_wall_plug_w(&p) - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_n_rejected() {
        let _ = sconna_channel_loss(&LinkParameters::default(), 0, 4);
    }
}
