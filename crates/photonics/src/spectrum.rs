//! DWDM spectrum management: channel grids and inter-channel crosstalk.
//!
//! SCONNA cascades N OSMs on one waveguide, one per DWDM channel
//! (Section IV-A). The FSR of the rings bounds the usable band and the
//! channel gap sets how many wavelengths fit (Section V-B: 50 nm / 0.25 nm
//! = 200 theoretical channels); each ring also skims a little power from
//! its neighbours, which is the crosstalk component of the link's
//! `IL_penalty`.

use crate::mrr::Mrr;
use crate::units::REFERENCE_WAVELENGTH_M;
use serde::{Deserialize, Serialize};

/// A uniform DWDM channel grid.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DwdmGrid {
    /// First channel wavelength, metres.
    pub start_m: f64,
    /// Channel spacing, metres.
    pub spacing_m: f64,
    /// Number of channels.
    pub channels: usize,
}

impl DwdmGrid {
    /// Builds the largest grid that fits in one FSR with the given
    /// spacing, centred on the C-band reference wavelength.
    ///
    /// # Panics
    /// Panics if the spacing is non-positive or exceeds the FSR.
    pub fn within_fsr(fsr_m: f64, spacing_m: f64) -> Self {
        assert!(spacing_m > 0.0, "spacing must be positive");
        assert!(spacing_m <= fsr_m, "spacing exceeds FSR");
        // Tolerate floating-point residue in exact ratios like
        // 50 nm / 0.25 nm = 200.
        let channels = (fsr_m / spacing_m + 1e-9).floor() as usize;
        Self {
            start_m: REFERENCE_WAVELENGTH_M - fsr_m / 2.0,
            spacing_m,
            channels,
        }
    }

    /// Wavelength of channel `i`.
    ///
    /// # Panics
    /// Panics if `i >= channels`.
    pub fn wavelength_m(&self, i: usize) -> f64 {
        assert!(
            i < self.channels,
            "channel {i} out of range {}",
            self.channels
        );
        self.start_m + i as f64 * self.spacing_m
    }

    /// Iterates over all channel wavelengths.
    pub fn wavelengths(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.channels).map(|i| self.wavelength_m(i))
    }
}

/// Fraction of a neighbouring channel's power a Lorentzian ring tuned to
/// channel `0` skims from a channel `k` gaps away.
pub fn neighbour_crosstalk(k: usize, spacing_m: f64, fwhm_m: f64) -> f64 {
    assert!(k > 0, "crosstalk is defined between distinct channels");
    // Use a 1 m FSR — far larger than any offset of interest — so the
    // comb folding in the Lorentzian model never kicks in.
    let ring = Mrr::new(REFERENCE_WAVELENGTH_M, fwhm_m, 1.0, 1.0);
    ring.drop_transmission(REFERENCE_WAVELENGTH_M + k as f64 * spacing_m)
}

/// Total crosstalk power fraction a channel in the middle of an `n`-channel
/// bank suffers from all other rings (worst-case channel position).
pub fn aggregate_crosstalk(n: usize, spacing_m: f64, fwhm_m: f64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let half = n / 2;
    let mut total = 0.0;
    for k in 1..=half {
        // Neighbours on both sides.
        let sides = if k <= n - 1 - half { 2.0 } else { 1.0 };
        total += sides * neighbour_crosstalk(k, spacing_m, fwhm_m);
    }
    total
}

/// Crosstalk power penalty in dB: the signal loses distinguishability as
/// leaked neighbour power stacks onto it,
/// `penalty = −10·log10(1 − X_total)` (standard first-order model).
/// Returns `f64::INFINITY` when the aggregate crosstalk reaches unity.
pub fn crosstalk_penalty_db(n: usize, spacing_m: f64, fwhm_m: f64) -> f64 {
    let x = aggregate_crosstalk(n, spacing_m, fwhm_m);
    if x >= 1.0 {
        f64::INFINITY
    } else {
        -10.0 * (1.0 - x).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_within_fsr_counts_200_channels() {
        // Section V-B: FSR 50 nm, gap 0.25 nm → 200 channels.
        let g = DwdmGrid::within_fsr(50e-9, 0.25e-9);
        assert_eq!(g.channels, 200);
        let span = g.wavelength_m(199) - g.wavelength_m(0);
        assert!((span - 199.0 * 0.25e-9).abs() < 1e-15);
    }

    #[test]
    fn wavelengths_strictly_increasing() {
        let g = DwdmGrid::within_fsr(50e-9, 0.25e-9);
        let ws: Vec<f64> = g.wavelengths().collect();
        assert_eq!(ws.len(), 200);
        for pair in ws.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_channel_panics() {
        let g = DwdmGrid::within_fsr(50e-9, 0.25e-9);
        let _ = g.wavelength_m(200);
    }

    #[test]
    fn neighbour_crosstalk_decays_with_distance() {
        let fwhm = 0.8e-9;
        let gap = 0.25e-9;
        let mut prev = f64::INFINITY;
        for k in 1..8 {
            let x = neighbour_crosstalk(k, gap, fwhm);
            assert!(x < prev, "crosstalk must decay, k={k}");
            assert!(x > 0.0);
            prev = x;
        }
    }

    #[test]
    fn aggregate_crosstalk_grows_with_bank_size() {
        let fwhm = 0.2e-9;
        let gap = 0.25e-9;
        let x16 = aggregate_crosstalk(16, gap, fwhm);
        let x176 = aggregate_crosstalk(176, gap, fwhm);
        assert!(x176 > x16);
    }

    #[test]
    fn penalty_shrinks_with_wider_spacing() {
        let fwhm = 0.2e-9;
        let tight = crosstalk_penalty_db(176, 0.25e-9, fwhm);
        let loose = crosstalk_penalty_db(176, 0.50e-9, fwhm);
        assert!(loose < tight);
        assert!(tight.is_finite());
    }

    #[test]
    fn single_channel_has_no_crosstalk() {
        assert_eq!(aggregate_crosstalk(1, 0.25e-9, 0.8e-9), 0.0);
        assert_eq!(crosstalk_penalty_db(1, 0.25e-9, 0.8e-9), 0.0);
    }
}
