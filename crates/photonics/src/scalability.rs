//! Scalability solvers — Section V of the paper.
//!
//! Two questions are answered here:
//!
//! 1. **SCONNA (digital/stochastic VDPC):** how many OSMs per VDPE
//!    (`N`, with `M = N` arms) fit in the optical power budget when the
//!    detector only needs 1-bit resolution? (Section V-B: `N = 176`.)
//! 2. **Analog VDPCs (AMM / MAM baselines):** how large can `N` be when
//!    the summation element (SE) must resolve `N · 2^B` distinct analog
//!    power levels? (Table I, reproduced from Sri & Thakkar, TCAD 2022
//!    \[21\].)
//!
//! ## Analog model
//!
//! An analog SE uses **balanced photodiodes** (Fig. 2(c)), which cancel
//! the laser's common-mode relative intensity noise; the SE therefore
//! operates in the shot/thermal-noise regime where `SNR ∝ 1/sqrt(DR)`.
//! The number of distinguishable levels is `2^BRes` (Eq. 2) at the SE's
//! received power, and the feasibility condition is
//! `2^BRes(P_SE, DR) ≥ N · 2^B`. The received power `P_SE` is calibrated
//! once per organization at Table I's 1 GS/s / 4-bit anchors (MAM: N = 44,
//! AMM: N = 31 — AMM's extra in-arm modulator array costs it ~1.5 dB);
//! every other table entry then follows from the noise model.

use crate::link::{received_power_dbm, LinkParameters};
use crate::photodetector::{sconna_effective_dr_hz, Photodetector};
use crate::units::dbm_to_watts;
use serde::{Deserialize, Serialize};

/// Analog VDPC organization (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnalogOrganization {
    /// Aggregation → Modulation (DIV) → Modulation (DKV): DEAP-CNN.
    Amm,
    /// Modulation (DIV) → Aggregation → Modulation (DKV): HOLYLIGHT.
    Mam,
}

impl AnalogOrganization {
    /// Display name with the representative accelerator from the paper.
    pub fn label(self) -> &'static str {
        match self {
            AnalogOrganization::Amm => "AMM (DEAP-CNN)",
            AnalogOrganization::Mam => "MAM (HOLYLIGHT)",
        }
    }

    /// Number of cascaded MRR arrays each wavelength passes per arm
    /// (AMM has both DIV and DKV arrays in the arm; MAM's DIV block is a
    /// single ring before aggregation).
    pub fn cascaded_arrays(self) -> usize {
        match self {
            AnalogOrganization::Amm => 2,
            AnalogOrganization::Mam => 1,
        }
    }

    /// Calibrated received power at the summation element, dBm (see
    /// module docs; re-derive with the ignored
    /// `print_calibrated_se_powers` test).
    pub fn se_power_dbm(self) -> f64 {
        match self {
            AnalogOrganization::Mam => MAM_SE_POWER_DBM,
            AnalogOrganization::Amm => AMM_SE_POWER_DBM,
        }
    }
}

/// MAM SE power calibrated so `max_analog_n(Mam, 4, 1 GS/s) == 44`.
pub const MAM_SE_POWER_DBM: f64 = -4.55;
/// AMM SE power calibrated so `max_analog_n(Amm, 4, 1 GS/s) == 31`.
pub const AMM_SE_POWER_DBM: f64 = -6.27;

/// Photodetector configuration of a balanced summation element: identical
/// to the Table III detector but with common-mode RIN cancelled by the
/// balanced pair.
pub fn balanced_photodetector() -> Photodetector {
    Photodetector {
        rin_db_per_hz: -400.0,
        ..Photodetector::default()
    }
}

/// Per-channel loss of an analog VDPC arm, dB — a reporting utility
/// showing where AMM's organizational disadvantage comes from (its second
/// in-arm MRR array). The feasibility model itself uses the calibrated SE
/// powers.
pub fn analog_channel_loss_db(
    params: &LinkParameters,
    org: AnalogOrganization,
    n: usize,
    m: usize,
) -> f64 {
    assert!(n > 0 && m > 0, "VDPC dimensions must be positive");
    let n_f = n as f64;
    let m_f = m as f64;
    let arrays = org.cascaded_arrays() as f64;
    params.il_smf_db
        + params.il_ec_db
        + 10.0 * m_f.log10()
        + params.el_splitter_db * m_f.log2()
        + params.il_wg_db_per_mm * (n_f * params.d_osm_um * 1e-3)
        + arrays * (params.il_mrr_db + (n_f - 1.0) * params.obl_mrr_db)
        + params.il_penalty_db
}

/// Largest VDPE size `N` an analog VDPC supports at precision `b` bits
/// and data rate `dr_hz` — the Table I model:
/// `N = floor(2^BRes(P_SE, DR) / 2^B)`.
pub fn max_analog_n(org: AnalogOrganization, b: u8, dr_hz: f64) -> usize {
    let pd = balanced_photodetector();
    let bres = pd.bit_resolution(dbm_to_watts(org.se_power_dbm()), dr_hz);
    if bres <= 0.0 {
        return 0;
    }
    let levels = 2f64.powf(bres);
    (levels / 2f64.powi(b as i32)).floor() as usize
}

/// One row of the reproduced Table I.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TableOneEntry {
    /// VDPC organization.
    pub org: AnalogOrganization,
    /// Input/weight precision, bits.
    pub precision_bits: u8,
    /// Data rate, samples/s.
    pub dr_hz: f64,
    /// Model-derived maximum VDPE size.
    pub model_n: usize,
    /// The paper's published value.
    pub paper_n: usize,
}

/// The published Table I values, used for comparison in reports and
/// regression tests.
pub const PAPER_TABLE_ONE: [(AnalogOrganization, u8, f64, usize); 16] = [
    (AnalogOrganization::Amm, 4, 1e9, 31),
    (AnalogOrganization::Amm, 4, 3e9, 20),
    (AnalogOrganization::Amm, 4, 5e9, 16),
    (AnalogOrganization::Amm, 4, 10e9, 11),
    (AnalogOrganization::Amm, 6, 1e9, 6),
    (AnalogOrganization::Amm, 6, 3e9, 3),
    (AnalogOrganization::Amm, 6, 5e9, 2),
    (AnalogOrganization::Amm, 6, 10e9, 1),
    (AnalogOrganization::Mam, 4, 1e9, 44),
    (AnalogOrganization::Mam, 4, 3e9, 29),
    (AnalogOrganization::Mam, 4, 5e9, 22),
    (AnalogOrganization::Mam, 4, 10e9, 16),
    (AnalogOrganization::Mam, 6, 1e9, 12),
    (AnalogOrganization::Mam, 6, 3e9, 7),
    (AnalogOrganization::Mam, 6, 5e9, 5),
    (AnalogOrganization::Mam, 6, 10e9, 3),
];

/// Reproduces the full Table I from the model.
pub fn reproduce_table_one() -> Vec<TableOneEntry> {
    PAPER_TABLE_ONE
        .iter()
        .map(|&(org, b, dr, paper_n)| TableOneEntry {
            org,
            precision_bits: b,
            dr_hz: dr,
            model_n: max_analog_n(org, b, dr),
            paper_n,
        })
        .collect()
}

/// SCONNA scalability result (Section V-B).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SconnaScalability {
    /// Photodetector sensitivity for 1-bit detection, dBm.
    pub p_pd_opt_dbm: f64,
    /// Power-budget-limited VDPE size.
    pub power_limited_n: usize,
    /// DWDM-channel-limited size (`FSR / channel gap`).
    pub channel_limited_n: usize,
    /// Achievable size: the minimum of the two.
    pub achievable_n: usize,
}

/// Solves the SCONNA VDPC size (Section V-B): detector sensitivity for
/// 1-bit resolution at the calibrated effective rate, then the largest
/// `N = M` the link budget sustains, capped by the DWDM channel count
/// `FSR / Δλ`.
pub fn sconna_scalability(
    params: &LinkParameters,
    pd: &Photodetector,
    bitrate_hz: f64,
    precision_bits: u8,
    fsr_m: f64,
    channel_gap_m: f64,
) -> SconnaScalability {
    let dr = sconna_effective_dr_hz(bitrate_hz, precision_bits);
    let p_pd_opt_dbm = pd.sensitivity_dbm(1.0, dr);
    let mut power_limited_n = 0usize;
    for n in 1..=2048usize {
        if received_power_dbm(params, n, n) >= p_pd_opt_dbm {
            power_limited_n = n;
        } else if n > power_limited_n + 8 {
            break;
        }
    }
    let channel_limited_n = (fsr_m / channel_gap_m + 1e-9).floor() as usize;
    SconnaScalability {
        p_pd_opt_dbm,
        power_limited_n,
        channel_limited_n,
        achievable_n: power_limited_n.min(channel_limited_n),
    }
}

/// The Section V-B operating point in one call: BR = 30 Gb/s, B = 8,
/// FSR = 50 nm, channel gap 0.25 nm.
pub fn sconna_scalability_default() -> SconnaScalability {
    sconna_scalability(
        &LinkParameters::default(),
        &Photodetector::default(),
        30e9,
        8,
        50e-9,
        0.25e-9,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sconna_anchor_n_176() {
        let s = sconna_scalability_default();
        assert_eq!(s.achievable_n, 176, "paper anchor N = 176, got {s:?}");
        assert_eq!(s.channel_limited_n, 200, "FSR/gap = 50/0.25 = 200");
        assert!((s.p_pd_opt_dbm + 28.0).abs() < 0.5);
        assert!(s.power_limited_n < s.channel_limited_n);
    }

    #[test]
    fn analog_anchors_match_paper() {
        assert_eq!(max_analog_n(AnalogOrganization::Mam, 4, 1e9), 44);
        assert_eq!(max_analog_n(AnalogOrganization::Amm, 4, 1e9), 31);
    }

    #[test]
    fn analog_n_decreases_with_rate_and_precision() {
        for org in [AnalogOrganization::Amm, AnalogOrganization::Mam] {
            let mut prev = usize::MAX;
            for dr in [1e9, 3e9, 5e9, 10e9] {
                let n = max_analog_n(org, 4, dr);
                assert!(n <= prev, "{org:?} N must fall with DR");
                prev = n;
            }
            for dr in [1e9, 3e9, 5e9, 10e9] {
                let n4 = max_analog_n(org, 4, dr);
                let n6 = max_analog_n(org, 6, dr);
                assert!(n6 < n4, "{org:?} N must fall with precision at {dr:e}");
            }
        }
    }

    #[test]
    fn mam_supports_more_than_amm() {
        for dr in [1e9, 3e9, 5e9, 10e9] {
            for b in [4u8, 6] {
                let mam = max_analog_n(AnalogOrganization::Mam, b, dr);
                let amm = max_analog_n(AnalogOrganization::Amm, b, dr);
                assert!(mam >= amm, "MAM must dominate at b={b} dr={dr:e}");
            }
        }
    }

    #[test]
    fn amm_organizational_loss_exceeds_mam() {
        // The second in-arm MRR array costs AMM more channel loss at any
        // size.
        let p = LinkParameters::default();
        for n in [8usize, 16, 44] {
            let amm = analog_channel_loss_db(&p, AnalogOrganization::Amm, n, n);
            let mam = analog_channel_loss_db(&p, AnalogOrganization::Mam, n, n);
            assert!(amm > mam, "n={n}");
        }
    }

    #[test]
    fn table_one_model_tracks_paper_shape() {
        // Model values must stay within ±35 % (or ±2 absolute for the
        // tiny entries) of the published table — the shape-reproduction
        // bar set in DESIGN.md.
        for e in reproduce_table_one() {
            let diff = (e.model_n as f64 - e.paper_n as f64).abs();
            let rel_ok = diff / e.paper_n as f64 <= 0.35;
            let abs_ok = diff <= 2.0;
            assert!(
                rel_ok || abs_ok,
                "{:?} b={} dr={:e}: model {} vs paper {}",
                e.org,
                e.precision_bits,
                e.dr_hz,
                e.model_n,
                e.paper_n
            );
        }
    }

    #[test]
    fn sconna_n_far_exceeds_analog_n() {
        // The whole point of the paper: digital 1-bit detection lets N
        // grow ~4x beyond the best analog VDPC.
        let s = sconna_scalability_default();
        let best_analog = max_analog_n(AnalogOrganization::Mam, 4, 1e9);
        assert!(s.achievable_n as f64 >= 3.0 * best_analog as f64);
    }
}

#[cfg(test)]
mod calibration {
    use super::*;

    /// Re-derives [`MAM_SE_POWER_DBM`] / [`AMM_SE_POWER_DBM`]: finds the
    /// SE power whose 1 GS/s level count lands the 4-bit anchor exactly.
    #[test]
    #[ignore]
    fn print_calibrated_se_powers() {
        let pd = balanced_photodetector();
        for (org, anchor_n) in [
            (AnalogOrganization::Mam, 44usize),
            (AnalogOrganization::Amm, 31usize),
        ] {
            // Aim mid-bucket: levels = (anchor + 0.5) * 16.
            let target_bres = ((anchor_n as f64 + 0.5) * 16.0).log2();
            let p = pd.sensitivity_dbm(target_bres, 1e9);
            println!("{org:?}: target_bres={target_bres:.4} -> P_SE = {p:.3} dBm");
        }
    }

    #[test]
    #[ignore]
    fn print_full_table_one() {
        for e in reproduce_table_one() {
            println!(
                "{:?} b={} dr={:.0e}: model {} paper {}",
                e.org, e.precision_bits, e.dr_hz, e.model_n, e.paper_n
            );
        }
    }
}
