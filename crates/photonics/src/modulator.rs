//! Analog MRR modulator — the device behind the baselines' DIV/DKV
//! blocks (Fig. 2).
//!
//! An analog VDPC imprints a 4-bit value onto a wavelength's power by
//! detuning a ring: the DAC drives the junction, the resonance moves,
//! and the through-port transmission sets the amplitude. Two properties
//! of this device are what Table I's level-count argument rests on:
//!
//! 1. the transmission-vs-detuning curve is a Lorentzian, so uniformly
//!    spaced *electrical* codes give **non-uniform optical levels** —
//!    the smallest level gap, not the average, must stay above the
//!    detector's resolution;
//! 2. the usable swing is bounded by the ring's extinction, so packing
//!    `2^B` levels into it shrinks gaps exponentially with `B`.

use crate::mrr::Mrr;
use crate::units::REFERENCE_WAVELENGTH_M;
use serde::{Deserialize, Serialize};

/// An analog amplitude modulator built from a through-port MRR.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnalogModulator {
    /// The ring; its resonance sits `max_detuning_m` below the carrier
    /// at code 0 and moves onto the carrier at full code.
    pub ring: Mrr,
    /// Carrier wavelength, metres.
    pub lambda_m: f64,
    /// Electro-refractive shift at full-scale drive, metres.
    pub max_detuning_m: f64,
    /// DAC resolution, bits.
    pub dac_bits: u8,
}

impl AnalogModulator {
    /// A representative 4-bit modulator: 0.8 nm FWHM ring, full-scale
    /// shift of two linewidths.
    pub fn baseline_4bit() -> Self {
        let fwhm = 0.8e-9;
        Self {
            ring: Mrr::new(REFERENCE_WAVELENGTH_M - 2.0 * fwhm, fwhm, 50e-9, 1.0),
            lambda_m: REFERENCE_WAVELENGTH_M,
            max_detuning_m: 2.0 * fwhm,
            dac_bits: 4,
        }
    }

    /// Number of DAC codes.
    pub fn codes(&self) -> u32 {
        1u32 << self.dac_bits
    }

    /// Through-port transmission for a DAC code (code 0 = most detuned =
    /// highest transmission; full code = on resonance = darkest).
    ///
    /// # Panics
    /// Panics if the code is out of range.
    pub fn transmission(&self, code: u32) -> f64 {
        assert!(code < self.codes(), "code {code} out of {}", self.codes());
        let frac = code as f64 / (self.codes() - 1) as f64;
        let shifted = self.ring.shifted(frac * self.max_detuning_m);
        shifted.through_transmission(self.lambda_m)
    }

    /// All optical levels in code order.
    pub fn levels(&self) -> Vec<f64> {
        (0..self.codes()).map(|c| self.transmission(c)).collect()
    }

    /// Smallest gap between adjacent optical levels — the quantity the
    /// summation element must resolve.
    pub fn min_level_gap(&self) -> f64 {
        let levels = self.levels();
        levels
            .windows(2)
            .map(|w| (w[0] - w[1]).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Usable optical swing (brightest minus darkest level).
    pub fn swing(&self) -> f64 {
        let levels = self.levels();
        let max = levels.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let min = levels.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        max - min
    }

    /// Ratio of the worst gap to the ideal uniform gap `swing / (2^B−1)`
    /// — 1.0 for a perfectly linear modulator, below 1 for the
    /// Lorentzian's crowded shoulder.
    pub fn linearity(&self) -> f64 {
        let ideal = self.swing() / (self.codes() - 1) as f64;
        self.min_level_gap() / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_decrease_monotonically() {
        let m = AnalogModulator::baseline_4bit();
        let levels = m.levels();
        assert_eq!(levels.len(), 16);
        for pair in levels.windows(2) {
            assert!(pair[0] > pair[1], "levels must fall toward resonance");
        }
    }

    #[test]
    fn swing_spans_most_of_the_extinction() {
        let m = AnalogModulator::baseline_4bit();
        // From 2 FWHM detuned (T≈0.94) to on-resonance (T≈0).
        assert!(m.swing() > 0.85, "swing {}", m.swing());
    }

    #[test]
    fn lorentzian_levels_are_non_uniform() {
        // The defining analog problem: the minimum gap is well below the
        // uniform ideal, so the detector budget is set by the shoulder.
        let m = AnalogModulator::baseline_4bit();
        assert!(
            m.linearity() < 0.6,
            "Lorentzian levels should crowd: linearity {}",
            m.linearity()
        );
        assert!(m.min_level_gap() > 0.0);
    }

    #[test]
    fn more_bits_shrink_the_worst_gap() {
        let b4 = AnalogModulator::baseline_4bit();
        let b6 = AnalogModulator {
            dac_bits: 6,
            ..AnalogModulator::baseline_4bit()
        };
        // 4x the codes → roughly 4x smaller worst-case gap: the Table I
        // mechanism (N·2^B levels must fit the same dynamic range).
        let ratio = b4.min_level_gap() / b6.min_level_gap();
        assert!(
            (3.0..6.0).contains(&ratio),
            "gap shrink ratio {ratio} should track the code-count ratio"
        );
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn code_out_of_range_panics() {
        let m = AnalogModulator::baseline_4bit();
        let _ = m.transmission(16);
    }
}
