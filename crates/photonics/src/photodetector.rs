//! Photodetector noise and resolution model — Eq. 2 and Eq. 3 of the paper
//! (adopted there from Al-Qadasi et al., "Scaling up silicon photonic-based
//! accelerators").
//!
//! Eq. 3 gives the input-referred noise current density
//! `β = sqrt( 2q(R·P + I_d) + 4kT/R_L + R²P²·RIN )` in A/√Hz (shot +
//! thermal + relative-intensity noise). Eq. 2 converts the resulting SNR
//! over the detection bandwidth `DR/2` into an effective number of bits:
//! `BRes = (SNR_dB − 1.76) / 6.02`.

use crate::units::{dbm_to_watts, watts_to_dbm, BOLTZMANN, ELEMENTARY_CHARGE};
use serde::{Deserialize, Serialize};

/// Photodetector electrical parameters (Table III values as defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Photodetector {
    /// Responsivity, A/W.
    pub responsivity_a_per_w: f64,
    /// Dark current, A.
    pub dark_current_a: f64,
    /// Load resistance, Ω.
    pub load_resistance_ohm: f64,
    /// Absolute temperature, K.
    pub temperature_k: f64,
    /// Laser relative intensity noise, dB/Hz.
    pub rin_db_per_hz: f64,
}

impl Default for Photodetector {
    fn default() -> Self {
        // Table III: R_PD = 1.2 A/W, I_d = 35 nA, R_L = 50 Ω, T = 300 K,
        // RIN = −140 dB/Hz.
        Self {
            responsivity_a_per_w: 1.2,
            dark_current_a: 35e-9,
            load_resistance_ohm: 50.0,
            temperature_k: 300.0,
            rin_db_per_hz: -140.0,
        }
    }
}

impl Photodetector {
    /// Input-referred noise current density β (Eq. 3), A/√Hz, at received
    /// optical power `power_w`.
    pub fn noise_density(&self, power_w: f64) -> f64 {
        let r = self.responsivity_a_per_w;
        let photocurrent = r * power_w;
        let shot = 2.0 * ELEMENTARY_CHARGE * (photocurrent + self.dark_current_a);
        let thermal = 4.0 * BOLTZMANN * self.temperature_k / self.load_resistance_ohm;
        let rin_lin = 10f64.powf(self.rin_db_per_hz / 10.0);
        let rin = photocurrent * photocurrent * rin_lin;
        (shot + thermal + rin).sqrt()
    }

    /// Signal-to-noise ratio (linear) at received power `power_w` and data
    /// rate `dr_hz` — signal photocurrent over integrated noise in the
    /// `DR/2` detection bandwidth.
    pub fn snr(&self, power_w: f64, dr_hz: f64) -> f64 {
        assert!(dr_hz > 0.0, "data rate must be positive");
        let signal = self.responsivity_a_per_w * power_w;
        let noise = self.noise_density(power_w) * (dr_hz / 2.0).sqrt();
        signal / noise
    }

    /// Effective bit resolution (Eq. 2): `BRes = (SNR_dB − 1.76) / 6.02`.
    /// Can be negative when the signal is below the noise floor.
    pub fn bit_resolution(&self, power_w: f64, dr_hz: f64) -> f64 {
        let snr_db = 20.0 * self.snr(power_w, dr_hz).log10();
        (snr_db - 1.76) / 6.02
    }

    /// Solves Eq. 2 for the optical sensitivity: the minimum received
    /// power (watts) achieving `bres_target` bits at data rate `dr_hz`.
    /// Monotone in power, so bisection converges; returns the power within
    /// 0.001 dB.
    pub fn sensitivity_w(&self, bres_target: f64, dr_hz: f64) -> f64 {
        let mut lo_dbm = -80.0;
        let mut hi_dbm = 30.0;
        assert!(
            self.bit_resolution(dbm_to_watts(hi_dbm), dr_hz) >= bres_target,
            "target resolution unreachable even at +30 dBm"
        );
        while hi_dbm - lo_dbm > 1e-3 {
            let mid = 0.5 * (lo_dbm + hi_dbm);
            if self.bit_resolution(dbm_to_watts(mid), dr_hz) >= bres_target {
                hi_dbm = mid;
            } else {
                lo_dbm = mid;
            }
        }
        dbm_to_watts(hi_dbm)
    }

    /// Sensitivity in dBm (convenience wrapper over
    /// [`Photodetector::sensitivity_w`]).
    pub fn sensitivity_dbm(&self, bres_target: f64, dr_hz: f64) -> f64 {
        watts_to_dbm(self.sensitivity_w(bres_target, dr_hz))
    }
}

/// SCONNA's effective detection rate (DESIGN.md §2.2 calibration): the
/// paper quotes `P_PD-opt = −28 dBm` for 1-bit resolution at BR = 30 Gb/s;
/// Eq. 2 reproduces that sensitivity when the noise is integrated over
/// `BR / B` (B = 8), i.e. a ~3.75 GS/s effective rate, which we adopt.
pub fn sconna_effective_dr_hz(bitrate_hz: f64, precision_bits: u8) -> f64 {
    bitrate_hz / precision_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_noise_dominates_at_low_power() {
        let pd = Photodetector::default();
        // At −28 dBm the thermal term 4kT/R_L ≈ 3.3e-22 dominates.
        let beta = pd.noise_density(dbm_to_watts(-28.0));
        assert!((beta - 1.82e-11).abs() / 1.82e-11 < 0.02, "beta = {beta:e}");
    }

    #[test]
    fn snr_increases_with_power_decreases_with_rate() {
        let pd = Photodetector::default();
        let p = dbm_to_watts(-28.0);
        assert!(pd.snr(p * 2.0, 1e9) > pd.snr(p, 1e9));
        assert!(pd.snr(p, 1e9) > pd.snr(p, 4e9));
    }

    #[test]
    fn bres_of_known_point() {
        // Hand-computed: at −28 dBm and DR = 3.75 GS/s, SNR ≈ 2.41 →
        // BRes ≈ 0.98.
        let pd = Photodetector::default();
        let bres = pd.bit_resolution(dbm_to_watts(-28.0), 3.75e9);
        assert!((bres - 0.98).abs() < 0.05, "bres = {bres}");
    }

    #[test]
    fn sconna_sensitivity_anchor_minus_28_dbm() {
        // Paper anchor (Section V-B): solving Eq. 2/3 for the SCONNA
        // operating point yields P_PD-opt = −28 dBm. With the calibrated
        // effective rate BR/B this must come out within ±0.5 dB.
        let pd = Photodetector::default();
        let dr = sconna_effective_dr_hz(30e9, 8);
        let sens = pd.sensitivity_dbm(1.0, dr);
        assert!((sens + 28.0).abs() < 0.5, "sensitivity {sens} dBm");
    }

    #[test]
    fn sensitivity_monotone_in_target_and_rate() {
        let pd = Photodetector::default();
        let s1 = pd.sensitivity_dbm(1.0, 5e9);
        let s4 = pd.sensitivity_dbm(4.0, 5e9);
        assert!(s4 > s1, "higher resolution needs more power");
        let s1_fast = pd.sensitivity_dbm(1.0, 20e9);
        assert!(s1_fast > s1, "higher rate needs more power");
    }

    #[test]
    fn sensitivity_inverts_bit_resolution() {
        let pd = Photodetector::default();
        for &(target, dr) in &[(1.0, 3.75e9), (4.0, 5e9), (8.0, 1e9)] {
            let p = pd.sensitivity_w(target, dr);
            let bres = pd.bit_resolution(p, dr);
            assert!(
                (bres - target).abs() < 0.01,
                "target {target} got {bres} at dr {dr:e}"
            );
        }
    }
}
