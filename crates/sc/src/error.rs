//! Error and correlation metrics for stochastic computing.
//!
//! The paper quantifies PCA/ADC error as mean absolute percentage error
//! (MAPE, Section V-C) and requires the LUT pairs to be *uncorrelated*
//! (Section IV-B); this module provides MAPE/RMSE and the standard
//! stochastic computing correlation (SCC) metric of Alaghi & Hayes.

use crate::bitstream::PackedBitstream;

/// Mean absolute percentage error of `measured` against `reference`,
/// in percent. Reference entries equal to zero are skipped (their relative
/// error is undefined), matching common MAPE practice.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mape(measured: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(measured.len(), reference.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&m, &r) in measured.iter().zip(reference) {
        if r != 0.0 {
            sum += ((m - r) / r).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Root-mean-square error.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn rmse(measured: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(measured.len(), reference.len(), "length mismatch");
    if measured.is_empty() {
        return 0.0;
    }
    let ss: f64 = measured
        .iter()
        .zip(reference)
        .map(|(&m, &r)| (m - r) * (m - r))
        .sum();
    (ss / measured.len() as f64).sqrt()
}

/// Maximum absolute error.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_abs_error(measured: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(measured.len(), reference.len(), "length mismatch");
    measured
        .iter()
        .zip(reference)
        .map(|(&m, &r)| (m - r).abs())
        .fold(0.0, f64::max)
}

/// Stochastic computing correlation (SCC) between two streams, in
/// `[-1, 1]`. `0` means the streams multiply without correlation-induced
/// error through an AND gate; `+1` is maximal overlap, `-1` maximal
/// avoidance (Alaghi & Hayes, "Exploiting correlation in stochastic circuit
/// design").
///
/// # Panics
/// Panics if the streams differ in length or are empty.
pub fn scc(x: &PackedBitstream, y: &PackedBitstream) -> f64 {
    assert_eq!(x.len(), y.len(), "stream length mismatch");
    assert!(!x.is_empty(), "SCC of empty streams is undefined");
    let n = x.len() as f64;
    let p11 = x.overlap(y) as f64 / n;
    let px = x.unipolar_value();
    let py = y.unipolar_value();
    let delta = p11 - px * py;
    if delta.abs() < 1e-15 {
        return 0.0;
    }
    if delta > 0.0 {
        let denom = px.min(py) - px * py;
        if denom <= 0.0 {
            0.0
        } else {
            delta / denom
        }
    } else {
        let denom = px * py - (px + py - 1.0).max(0.0);
        if denom <= 0.0 {
            0.0
        } else {
            delta / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Precision;
    use crate::sng::{LdsSng, StochasticNumberGenerator, ThermometerSng};

    #[test]
    fn mape_basic() {
        let m = [110.0, 95.0];
        let r = [100.0, 100.0];
        assert!((mape(&m, &r) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_reference() {
        let m = [5.0, 110.0];
        let r = [0.0, 100.0];
        assert!((mape(&m, &r) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_empty_is_zero() {
        assert_eq!(mape(&[], &[]), 0.0);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn rmse_basic() {
        assert!((rmse(&[3.0, 5.0], &[0.0, 1.0]) - 3.5355339).abs() < 1e-6);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn max_abs_error_basic() {
        assert_eq!(max_abs_error(&[1.0, -4.0, 2.0], &[0.0, 0.0, 0.0]), 4.0);
    }

    #[test]
    fn scc_identical_streams_is_one() {
        let s = LdsSng.generate(100, Precision::B8);
        assert!((scc(&s, &s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scc_complement_is_minus_one() {
        let s = LdsSng.generate(100, Precision::B8);
        let n = s.not();
        assert!((scc(&s, &n) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn scc_of_lut_pairs_is_near_zero_midrange() {
        // The LDS × thermometer pairing is the "uncorrelated combination"
        // requirement of Section IV-B: SCC must be ~0. SCC's normalizer
        // vanishes at the operand corners (e.g. 255×255), where even a
        // ±1-count rounding deviation saturates the metric, so the SCC
        // check uses mid-range operands; the corner behaviour is covered by
        // the absolute-deviation test below.
        let p = Precision::B8;
        let mut worst: f64 = 0.0;
        for &i in &[32u32, 64, 100, 128, 160, 200] {
            for &w in &[32u32, 64, 100, 128, 160, 200] {
                let iv = LdsSng.generate(i, p);
                let wv = ThermometerSng.generate(w, p);
                worst = worst.max(scc(&iv, &wv).abs());
            }
        }
        assert!(worst < 0.12, "worst |SCC| = {worst}");
    }

    #[test]
    fn lut_pair_overlap_deviation_bounded_everywhere() {
        // Non-normalized correlation check covering the corners too: the
        // AND-overlap of every LUT pair deviates from the ideal product
        // i*w/L by at most B counts (the low-discrepancy bound).
        let p = Precision::B8;
        let l = p.stream_len() as f64;
        for i in (0..=256u32).step_by(17) {
            for w in (0..=256u32).step_by(13) {
                let iv = LdsSng.generate(i, p);
                let wv = ThermometerSng.generate(w, p);
                let dev = (iv.overlap(&wv) as f64 - i as f64 * w as f64 / l).abs();
                assert!(dev <= p.bits() as f64, "i={i} w={w} dev={dev}");
            }
        }
    }
}
