//! The OSM peripheral: offline-generated bit-vector LUT plus serializers
//! (Fig. 5 of the paper).
//!
//! Section IV-B stores, for `B`-bit precision, `2^B` LUT entries, each
//! holding **two `2^B`-bit vectors** — the uncorrelated encoding of a value
//! as an input stream `Iv` and as a weight stream `Wv`. At run time the OSM
//! fetches `Iv` from the entry addressed by `Ib`, `Wv` from the entry
//! addressed by `Wb`, and pushes both through high-speed serializers into
//! the optical AND gate.
//!
//! The paper compresses the two fetches into one via an `Ib ⊕ Wb` hash; the
//! hash aliases distinct operand pairs onto one entry, so we model both the
//! collision-free two-fetch LUT (`PairLut`) and the hashed variant
//! (`XorHashedLut`) and quantify the hash's aliasing error in the SNG
//! ablation.

use crate::bitstream::PackedBitstream;
use crate::format::Precision;
use crate::multiply::{lds_product, lds_product_floor, multiply_streams};
use crate::sng::{LdsSng, StochasticNumberGenerator, ThermometerSng};

/// Offline-generated LUT of uncorrelated stream pairs: entry `k` stores
/// `(Iv(k), Wv(k))` where `Iv` is the low-discrepancy encoding and `Wv` the
/// thermometer encoding — a combination whose AND is the bounded-error
/// product (see [`crate::multiply`]).
#[derive(Debug, Clone)]
pub struct PairLut {
    precision: Precision,
    entries: Vec<(PackedBitstream, PackedBitstream)>,
}

impl PairLut {
    /// Generates the LUT offline for the given precision (`2^B + 1` entries
    /// so the full-scale value `2^B` is also encodable).
    pub fn generate(precision: Precision) -> Self {
        let l = precision.stream_len() as u32;
        let entries = (0..=l)
            .map(|k| {
                (
                    LdsSng.generate(k, precision),
                    ThermometerSng.generate(k, precision),
                )
            })
            .collect();
        Self { precision, entries }
    }

    /// Precision the LUT was generated for.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Fetches the input-side stream for binary value `ib`.
    ///
    /// # Panics
    /// Panics if `ib` is out of range.
    pub fn input_stream(&self, ib: u32) -> &PackedBitstream {
        &self.entries[ib as usize].0
    }

    /// Fetches the weight-side stream for binary value `wb`.
    ///
    /// # Panics
    /// Panics if `wb` is out of range.
    pub fn weight_stream(&self, wb: u32) -> &PackedBitstream {
        &self.entries[wb as usize].1
    }

    /// Full OSM data path: fetch both streams and AND them, returning the
    /// product ones-count.
    pub fn multiply(&self, ib: u32, wb: u32) -> u32 {
        multiply_streams(self.input_stream(ib), self.weight_stream(wb)) as u32
    }

    /// Storage footprint in bits: entries × two vectors × stream length —
    /// the eDRAM sizing quoted in Section IV-B ("2^B entries, each entry
    /// storing two 2^B-bits long bit-vectors").
    pub fn storage_bits(&self) -> usize {
        self.entries.len() * 2 * self.precision.stream_len()
    }
}

/// The paper's single-fetch variant: one `2^B`-entry table addressed by the
/// XOR hash `Ib ⊕ Wb`. Since the hash is lossy, the entry stores the pair
/// generated for the *representative* operand pair `(h, h)` of each hash
/// bucket; any other `(Ib, Wb)` in the bucket reads streams encoding the
/// wrong values. This type exists to measure that aliasing cost — the
/// collision-free [`PairLut`] is what the rest of the system uses.
#[derive(Debug, Clone)]
pub struct XorHashedLut {
    lut: PairLut,
}

impl XorHashedLut {
    /// Builds the hashed LUT on top of the canonical pair table.
    pub fn generate(precision: Precision) -> Self {
        Self {
            lut: PairLut::generate(precision),
        }
    }

    /// Hash index for an operand pair.
    #[inline]
    pub fn index(ib: u32, wb: u32) -> u32 {
        ib ^ wb
    }

    /// Single-fetch multiply: both streams come from the hashed entry.
    /// Exact when `ib == wb` (hash 0 bucket aside) and increasingly wrong
    /// as the operands diverge.
    pub fn multiply(&self, ib: u32, wb: u32) -> u32 {
        let h = Self::index(ib, wb) & (self.lut.precision.stream_len() as u32 - 1);
        multiply_streams(self.lut.input_stream(h), self.lut.weight_stream(h)) as u32
    }
}

/// Precomputed table of the **debiased OSM product** for every operand
/// pair — the in-simulator mirror of the paper's offline DPU conversion
/// LUT (Section II-B): just as the hardware converts binary operands to
/// streams offline so the online datapath is a fetch + AND, the simulator
/// converts the `O(B)` closed form into a table offline so the inference
/// inner loop is a table load plus a sign-steered add.
///
/// Both pairings of
/// [`osm_product_debiased`](crate::multiply::osm_product_debiased) are
/// stored interleaved — entry `2·((i << B) | w)` holds the ceil (LDS ×
/// thermometer) product, entry `2·((i << B) | w) + 1` the floor
/// (complement) product — so the lookup is a shift-or index plus the OSM
/// parity bit, with no table-select branch. At the paper's B = 8
/// operating point this is the `256 × 256 × 2` u16 table (256 KiB),
/// small enough to live in L2 next to the weights. The domain is the
/// representable magnitudes `[0, 2^B)`; the engines clamp operands
/// before the lookup, exactly as the hardware's `B`-bit registers do.
#[derive(Debug, Clone)]
pub struct OsmProductLut {
    precision: Precision,
    bits: u32,
    table: Vec<u16>,
}

impl OsmProductLut {
    /// Largest precision the table form supports: above B = 10 the
    /// `(2^B)^2 × 2` u16 grid outgrows any cache level that would make
    /// it faster than the closed form.
    pub const MAX_BITS: u8 = 10;

    /// Generates the interleaved product table for `precision`, or
    /// `None` when the precision exceeds [`Self::MAX_BITS`] (callers
    /// fall back to the closed form).
    pub fn try_generate(precision: Precision) -> Option<Self> {
        if precision.bits() > Self::MAX_BITS {
            return None;
        }
        let l = precision.stream_len() as u32;
        let mut table = Vec::with_capacity((l as usize) * (l as usize) * 2);
        for i in 0..l {
            for w in 0..l {
                table.push(lds_product(i, w, precision) as u16);
                table.push(lds_product_floor(i, w, precision) as u16);
            }
        }
        Some(Self {
            precision,
            bits: precision.bits() as u32,
            table,
        })
    }

    /// Generates the tables.
    ///
    /// # Panics
    /// Panics if `precision` exceeds [`Self::MAX_BITS`].
    pub fn generate(precision: Precision) -> Self {
        Self::try_generate(precision)
            .unwrap_or_else(|| panic!("OsmProductLut supports at most B{}", Self::MAX_BITS))
    }

    /// Process-wide shared tables for `precision` (generated once,
    /// then handed out as `Arc` clones): engines are constructed per
    /// serving instance and per experiment, and the tables are immutable,
    /// so there is no reason to regenerate them. The lock guards
    /// construction only — the hot path holds a plain `Arc`.
    pub fn shared(precision: Precision) -> Option<std::sync::Arc<Self>> {
        // sconna-lint: allow-file(no-unordered-report-iteration) -- cache is keyed get/insert only (entry API below), never iterated, so its order cannot reach any report
        use std::collections::HashMap;
        use std::sync::{Arc, Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<u8, Arc<OsmProductLut>>>> = OnceLock::new();
        if precision.bits() > Self::MAX_BITS {
            return None;
        }
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        // A poisoned cache still holds only fully-built Arc entries
        // (the entry API inserts after `generate` returns), so recover
        // the guard instead of panicking every later engine build.
        let mut map = cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(
            map.entry(precision.bits())
                .or_insert_with(|| Arc::new(Self::generate(precision)))
                .clone(),
        )
    }

    /// Precision the tables were generated for.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Debiased OSM product by table load — equals
    /// [`osm_product_debiased`](crate::multiply::osm_product_debiased)
    /// for every operand pair in `[0, 2^B)` (property-tested). Callers
    /// clamp operands to the representable range first (the engines'
    /// existing discipline); out-of-range operands are a debug-assert.
    #[inline]
    pub fn product(&self, i: u32, w: u32, osm_index: usize) -> u32 {
        debug_assert!(
            i < (1 << self.bits) && w < (1 << self.bits),
            "operands out of table domain"
        );
        let idx = ((((i as usize) << self.bits) | w as usize) << 1) | (osm_index & 1);
        self.table[idx] as u32
    }

    /// Host-memory footprint of the interleaved table in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u16>()
    }
}

/// A serializer models the LUT-to-OAG path: it drains a fetched bit-vector
/// one bit per `1/bitrate` interval (Section IV-B drives the OAG PN
/// junctions at up to 40 Gb/s). The iterator yields `(time_ps, bit)` pairs.
#[derive(Debug, Clone)]
pub struct Serializer {
    /// Serialization bitrate in bits per second.
    pub bitrate_hz: f64,
}

impl Serializer {
    /// Creates a serializer at the given bitrate.
    ///
    /// # Panics
    /// Panics if the bitrate is not positive.
    pub fn new(bitrate_hz: f64) -> Self {
        assert!(bitrate_hz > 0.0, "bitrate must be positive");
        Self { bitrate_hz }
    }

    /// Bit interval in picoseconds.
    pub fn bit_period_ps(&self) -> f64 {
        1e12 / self.bitrate_hz
    }

    /// Time to serialize a full stream of `len` bits, in picoseconds.
    pub fn stream_duration_ps(&self, len: usize) -> f64 {
        len as f64 * self.bit_period_ps()
    }

    /// Serializes a stream into `(time_ps, bit)` events.
    pub fn serialize<'a>(
        &'a self,
        stream: &'a PackedBitstream,
    ) -> impl Iterator<Item = (f64, bool)> + 'a {
        let period = self.bit_period_ps();
        stream
            .iter()
            .enumerate()
            .map(move |(t, b)| (t as f64 * period, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiply::{ideal_product, lds_product, osm_product_debiased};

    #[test]
    fn pair_lut_matches_closed_form_b4() {
        let p = Precision::B4;
        let lut = PairLut::generate(p);
        for i in 0..=16u32 {
            for w in 0..=16u32 {
                assert_eq!(lut.multiply(i, w), lds_product(i, w, p), "i={i} w={w}");
            }
        }
    }

    #[test]
    fn pair_lut_storage_matches_paper_sizing() {
        let p = Precision::B8;
        let lut = PairLut::generate(p);
        // Paper: 2^B entries × two 2^B-bit vectors = 256 * 2 * 256 bits
        // (plus our one extra full-scale entry).
        assert_eq!(lut.storage_bits(), 257 * 2 * 256);
    }

    #[test]
    fn xor_hash_is_exact_on_diagonal() {
        let p = Precision::B4;
        let hashed = XorHashedLut::generate(p);
        for v in 1..16u32 {
            // On the diagonal the hash is 0, so the fetched entry encodes
            // (0,0) — demonstrating that even the diagonal aliases under a
            // pure XOR index. This documents why the collision-free LUT is
            // the faithful model.
            assert_eq!(hashed.multiply(v, v), 0);
        }
    }

    #[test]
    fn xor_hash_error_is_nonzero_off_diagonal() {
        let p = Precision::B4;
        let hashed = XorHashedLut::generate(p);
        let mut total_err = 0u64;
        for i in 0..=15u32 {
            for w in 0..=15u32 {
                let got = hashed.multiply(i, w) as i64;
                let want = ideal_product(i, w, p) as i64;
                total_err += got.abs_diff(want);
            }
        }
        assert!(total_err > 0, "XOR hashing should show aliasing error");
    }

    #[test]
    fn serializer_timing() {
        let s = Serializer::new(30e9); // SCONNA's 30 Gb/s
        assert!((s.bit_period_ps() - 33.333).abs() < 0.01);
        // A 256-bit stream at 30 Gb/s takes ~8.53 ns (Section VI-C).
        assert!((s.stream_duration_ps(256) - 8533.3).abs() < 1.0);
    }

    #[test]
    fn serializer_emits_all_bits_in_order() {
        let s = Serializer::new(10e9);
        let stream = PackedBitstream::from_bits([true, false, true, true]);
        let events: Vec<(f64, bool)> = s.serialize(&stream).collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], (0.0, true));
        assert!((events[1].0 - 100.0).abs() < 1e-9);
        assert!(!events[1].1);
        assert!(events[3].1);
    }

    #[test]
    #[should_panic(expected = "bitrate must be positive")]
    fn serializer_rejects_zero_bitrate() {
        let _ = Serializer::new(0.0);
    }

    #[test]
    fn product_lut_matches_closed_form_exhaustive_b4() {
        let p = Precision::B4;
        let lut = OsmProductLut::generate(p);
        for i in 0..16u32 {
            for w in 0..16u32 {
                for osm in 0..4 {
                    assert_eq!(
                        lut.product(i, w, osm),
                        osm_product_debiased(i, w, p, osm),
                        "i={i} w={w} osm={osm}"
                    );
                }
            }
        }
    }

    #[test]
    fn product_lut_matches_closed_form_sampled_b8() {
        let p = Precision::B8;
        let lut = OsmProductLut::generate(p);
        for i in (0..256u32).step_by(7) {
            for w in (0..256u32).step_by(5) {
                assert_eq!(lut.product(i, w, 0), osm_product_debiased(i, w, p, 0));
                assert_eq!(lut.product(i, w, 1), osm_product_debiased(i, w, p, 1));
            }
        }
    }

    #[test]
    fn product_lut_b8_sizing() {
        let lut = OsmProductLut::generate(Precision::B8);
        // The paper-shaped 256 × 256 × 2 table at 2 bytes per entry.
        assert_eq!(lut.storage_bytes(), 256 * 256 * 2 * 2);
        assert_eq!(lut.precision(), Precision::B8);
    }

    #[test]
    fn product_lut_refuses_oversized_precision() {
        assert!(OsmProductLut::try_generate(Precision::new(10)).is_some());
        assert!(OsmProductLut::try_generate(Precision::new(11)).is_none());
    }
}
