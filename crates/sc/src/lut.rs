//! The OSM peripheral: offline-generated bit-vector LUT plus serializers
//! (Fig. 5 of the paper).
//!
//! Section IV-B stores, for `B`-bit precision, `2^B` LUT entries, each
//! holding **two `2^B`-bit vectors** — the uncorrelated encoding of a value
//! as an input stream `Iv` and as a weight stream `Wv`. At run time the OSM
//! fetches `Iv` from the entry addressed by `Ib`, `Wv` from the entry
//! addressed by `Wb`, and pushes both through high-speed serializers into
//! the optical AND gate.
//!
//! The paper compresses the two fetches into one via an `Ib ⊕ Wb` hash; the
//! hash aliases distinct operand pairs onto one entry, so we model both the
//! collision-free two-fetch LUT (`PairLut`) and the hashed variant
//! (`XorHashedLut`) and quantify the hash's aliasing error in the SNG
//! ablation.

use crate::bitstream::PackedBitstream;
use crate::format::Precision;
use crate::multiply::multiply_streams;
use crate::sng::{LdsSng, StochasticNumberGenerator, ThermometerSng};

/// Offline-generated LUT of uncorrelated stream pairs: entry `k` stores
/// `(Iv(k), Wv(k))` where `Iv` is the low-discrepancy encoding and `Wv` the
/// thermometer encoding — a combination whose AND is the bounded-error
/// product (see [`crate::multiply`]).
#[derive(Debug, Clone)]
pub struct PairLut {
    precision: Precision,
    entries: Vec<(PackedBitstream, PackedBitstream)>,
}

impl PairLut {
    /// Generates the LUT offline for the given precision (`2^B + 1` entries
    /// so the full-scale value `2^B` is also encodable).
    pub fn generate(precision: Precision) -> Self {
        let l = precision.stream_len() as u32;
        let entries = (0..=l)
            .map(|k| {
                (
                    LdsSng.generate(k, precision),
                    ThermometerSng.generate(k, precision),
                )
            })
            .collect();
        Self { precision, entries }
    }

    /// Precision the LUT was generated for.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Fetches the input-side stream for binary value `ib`.
    ///
    /// # Panics
    /// Panics if `ib` is out of range.
    pub fn input_stream(&self, ib: u32) -> &PackedBitstream {
        &self.entries[ib as usize].0
    }

    /// Fetches the weight-side stream for binary value `wb`.
    ///
    /// # Panics
    /// Panics if `wb` is out of range.
    pub fn weight_stream(&self, wb: u32) -> &PackedBitstream {
        &self.entries[wb as usize].1
    }

    /// Full OSM data path: fetch both streams and AND them, returning the
    /// product ones-count.
    pub fn multiply(&self, ib: u32, wb: u32) -> u32 {
        multiply_streams(self.input_stream(ib), self.weight_stream(wb)) as u32
    }

    /// Storage footprint in bits: entries × two vectors × stream length —
    /// the eDRAM sizing quoted in Section IV-B ("2^B entries, each entry
    /// storing two 2^B-bits long bit-vectors").
    pub fn storage_bits(&self) -> usize {
        self.entries.len() * 2 * self.precision.stream_len()
    }
}

/// The paper's single-fetch variant: one `2^B`-entry table addressed by the
/// XOR hash `Ib ⊕ Wb`. Since the hash is lossy, the entry stores the pair
/// generated for the *representative* operand pair `(h, h)` of each hash
/// bucket; any other `(Ib, Wb)` in the bucket reads streams encoding the
/// wrong values. This type exists to measure that aliasing cost — the
/// collision-free [`PairLut`] is what the rest of the system uses.
#[derive(Debug, Clone)]
pub struct XorHashedLut {
    lut: PairLut,
}

impl XorHashedLut {
    /// Builds the hashed LUT on top of the canonical pair table.
    pub fn generate(precision: Precision) -> Self {
        Self {
            lut: PairLut::generate(precision),
        }
    }

    /// Hash index for an operand pair.
    #[inline]
    pub fn index(ib: u32, wb: u32) -> u32 {
        ib ^ wb
    }

    /// Single-fetch multiply: both streams come from the hashed entry.
    /// Exact when `ib == wb` (hash 0 bucket aside) and increasingly wrong
    /// as the operands diverge.
    pub fn multiply(&self, ib: u32, wb: u32) -> u32 {
        let h = Self::index(ib, wb) & (self.lut.precision.stream_len() as u32 - 1);
        multiply_streams(self.lut.input_stream(h), self.lut.weight_stream(h)) as u32
    }
}

/// A serializer models the LUT-to-OAG path: it drains a fetched bit-vector
/// one bit per `1/bitrate` interval (Section IV-B drives the OAG PN
/// junctions at up to 40 Gb/s). The iterator yields `(time_ps, bit)` pairs.
#[derive(Debug, Clone)]
pub struct Serializer {
    /// Serialization bitrate in bits per second.
    pub bitrate_hz: f64,
}

impl Serializer {
    /// Creates a serializer at the given bitrate.
    ///
    /// # Panics
    /// Panics if the bitrate is not positive.
    pub fn new(bitrate_hz: f64) -> Self {
        assert!(bitrate_hz > 0.0, "bitrate must be positive");
        Self { bitrate_hz }
    }

    /// Bit interval in picoseconds.
    pub fn bit_period_ps(&self) -> f64 {
        1e12 / self.bitrate_hz
    }

    /// Time to serialize a full stream of `len` bits, in picoseconds.
    pub fn stream_duration_ps(&self, len: usize) -> f64 {
        len as f64 * self.bit_period_ps()
    }

    /// Serializes a stream into `(time_ps, bit)` events.
    pub fn serialize<'a>(
        &'a self,
        stream: &'a PackedBitstream,
    ) -> impl Iterator<Item = (f64, bool)> + 'a {
        let period = self.bit_period_ps();
        stream.iter().enumerate().map(move |(t, b)| (t as f64 * period, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiply::{ideal_product, lds_product};

    #[test]
    fn pair_lut_matches_closed_form_b4() {
        let p = Precision::B4;
        let lut = PairLut::generate(p);
        for i in 0..=16u32 {
            for w in 0..=16u32 {
                assert_eq!(lut.multiply(i, w), lds_product(i, w, p), "i={i} w={w}");
            }
        }
    }

    #[test]
    fn pair_lut_storage_matches_paper_sizing() {
        let p = Precision::B8;
        let lut = PairLut::generate(p);
        // Paper: 2^B entries × two 2^B-bit vectors = 256 * 2 * 256 bits
        // (plus our one extra full-scale entry).
        assert_eq!(lut.storage_bits(), 257 * 2 * 256);
    }

    #[test]
    fn xor_hash_is_exact_on_diagonal() {
        let p = Precision::B4;
        let hashed = XorHashedLut::generate(p);
        for v in 1..16u32 {
            // On the diagonal the hash is 0, so the fetched entry encodes
            // (0,0) — demonstrating that even the diagonal aliases under a
            // pure XOR index. This documents why the collision-free LUT is
            // the faithful model.
            assert_eq!(hashed.multiply(v, v), 0);
        }
    }

    #[test]
    fn xor_hash_error_is_nonzero_off_diagonal() {
        let p = Precision::B4;
        let hashed = XorHashedLut::generate(p);
        let mut total_err = 0u64;
        for i in 0..=15u32 {
            for w in 0..=15u32 {
                let got = hashed.multiply(i, w) as i64;
                let want = ideal_product(i, w, p) as i64;
                total_err += got.abs_diff(want);
            }
        }
        assert!(total_err > 0, "XOR hashing should show aliasing error");
    }

    #[test]
    fn serializer_timing() {
        let s = Serializer::new(30e9); // SCONNA's 30 Gb/s
        assert!((s.bit_period_ps() - 33.333).abs() < 0.01);
        // A 256-bit stream at 30 Gb/s takes ~8.53 ns (Section VI-C).
        assert!((s.stream_duration_ps(256) - 8533.3).abs() < 1.0);
    }

    #[test]
    fn serializer_emits_all_bits_in_order() {
        let s = Serializer::new(10e9);
        let stream = PackedBitstream::from_bits([true, false, true, true]);
        let events: Vec<(f64, bool)> = s.serialize(&stream).collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], (0.0, true));
        assert!((events[1].0 - 100.0).abs() < 1e-9);
        assert!(!events[1].1);
        assert!(events[3].1);
    }

    #[test]
    #[should_panic(expected = "bitrate must be positive")]
    fn serializer_rejects_zero_bitrate() {
        let _ = Serializer::new(0.0);
    }
}
