//! Stochastic multiplication — the computation an Optical Stochastic
//! Multiplier (OSM) performs.
//!
//! An OSM ANDs two unipolar streams `I` and `W`; the number of ones in the
//! result encodes `I*W` (Fig. 3 / Section IV-B of the paper). This module
//! provides:
//!
//! * the bit-stream-level multiply (any two [`PackedBitstream`]s),
//! * the **LDS × thermometer pairing** SCONNA's LUT stores, with both an
//!   `O(L)` reference and an `O(B)` closed form proven equal by property
//!   tests, and
//! * the ideal (round-to-nearest) product used as the error yardstick.
//!
//! The closed form is what makes whole-CNN simulation tractable: it returns
//! the *exact* integer the optical hardware would produce without
//! materializing 256-bit streams per multiply.

use crate::bitstream::PackedBitstream;
use crate::format::Precision;
use crate::sng::{bit_reverse, LdsSng, StochasticNumberGenerator, ThermometerSng};

/// ANDs two streams and returns the ones-count of the product stream.
///
/// # Panics
/// Panics if the streams differ in length.
pub fn multiply_streams(i: &PackedBitstream, w: &PackedBitstream) -> usize {
    i.overlap(w)
}

/// The ideal product numerator: `round(i * w / 2^B)`. A stochastic multiply
/// of `L`-bit streams cannot beat this; the SC error of a scheme is its
/// deviation from the *real-valued* product `i*w/2^B`, which even the ideal
/// rounding misses by up to 0.5.
#[inline]
pub fn ideal_product(i: u32, w: u32, precision: Precision) -> u32 {
    let l = precision.stream_len() as u64;
    (((i as u64 * w as u64) + l / 2) / l) as u32
}

/// Real-valued (un-rounded) product in ones-count units: `i*w / 2^B`.
#[inline]
pub fn real_product(i: u32, w: u32, precision: Precision) -> f64 {
    (i as f64 * w as f64) / precision.stream_len() as f64
}

/// `O(L)` reference for the LDS × thermometer product: counts positions
/// `t < w` whose bit-reversal is below `i`.
pub fn lds_product_reference(i: u32, w: u32, precision: Precision) -> u32 {
    let b = precision.bits();
    let l = precision.stream_len() as u32;
    assert!(i <= l && w <= l, "operands out of range");
    (0..w).filter(|&t| bit_reverse(t, b) < i).count() as u32
}

/// `O(B)` closed form for the LDS × thermometer product.
///
/// The thermometer stream is the index interval `[0, w)`; splitting it into
/// the dyadic intervals given by the set bits of `w`, the bit-reversal image
/// of each dyadic interval is an arithmetic progression
/// `{ m * 2^(j+1) + c : 0 <= m < 2^(B-j-1) }`, and counting progression
/// members below `i` is a single division.
pub fn lds_product(i: u32, w: u32, precision: Precision) -> u32 {
    let b = precision.bits() as u32;
    let l = 1u32 << b;
    assert!(i <= l && w <= l, "operands out of range");
    if w == l {
        // Full-length thermometer stream: every one of `i`'s ones survives.
        return i;
    }
    let mut count = 0u64;
    let mut prefix = 0u32; // high bits of t fixed so far (t < w path)
    for j in 0..b {
        let wbit = (w >> (b - 1 - j)) & 1;
        if wbit == 1 {
            // Dyadic interval: t has high j bits = prefix bits, bit j = 0,
            // low (b-j-1) bits free. Its reversal fixes the low j+1 bits to
            // c = bit_reverse(prefix_with_zero_bit) and strides the high
            // bits, i.e. values m * 2^(j+1) + c.
            // t's fixed high bits are `prefix` followed by a 0 at bit j;
            // reversing the whole B-bit index sends them to the low bits:
            // c = rev_j(prefix), computed via the B-bit reversal of the
            // fixed part placed at its true position.
            let c = bit_reverse(prefix << (b - j), precision.bits());
            let stride = 1u64 << (j + 1);
            let members = 1u64 << (b - 1 - j);
            if (c as u64) < i as u64 {
                let below = (i as u64 - c as u64).div_ceil(stride);
                count += below.min(members);
            }
            prefix = (prefix << 1) | 1;
        } else {
            prefix <<= 1;
        }
    }
    count as u32
}

/// Absolute error of the LDS product against the real-valued product, in
/// ones-count units.
pub fn lds_product_error(i: u32, w: u32, precision: Precision) -> f64 {
    (lds_product(i, w, precision) as f64 - real_product(i, w, precision)).abs()
}

/// The complementary ("floor") pairing: the weight stream carries its
/// ones at the *tail* of the stream (`Wv = NOT(thermometer(2^B − w))`),
/// so the overlap is `i − lds_product(i, 2^B − w)`.
///
/// [`lds_product`] has a systematic `≈ +1`-count bias (every dyadic
/// interval of the thermometer prefix rounds its contribution up); this
/// variant has the mirror-image `≈ −1` bias. Alternating the two
/// encodings across the OSMs of a VDPE — a free choice when generating
/// the LUT offline — cancels the bias pairwise, which matters because a
/// VDPE sums 176 products onto one rail.
pub fn lds_product_floor(i: u32, w: u32, precision: Precision) -> u32 {
    let l = precision.stream_len() as u32;
    assert!(i <= l && w <= l, "operands out of range");
    i - lds_product(i, l - w, precision)
}

/// Debiased OSM product: even-indexed OSMs use the ceil pairing,
/// odd-indexed the floor pairing (see [`lds_product_floor`]).
#[inline]
pub fn osm_product_debiased(i: u32, w: u32, precision: Precision, osm_index: usize) -> u32 {
    if osm_index.is_multiple_of(2) {
        lds_product(i, w, precision)
    } else {
        lds_product_floor(i, w, precision)
    }
}

/// Stream-level construction of the floor pairing, for verifying the
/// closed form: the weight stream is the complement of the
/// `2^B − w` thermometer stream.
pub fn osm_product_stream_floor(i: u32, w: u32, precision: Precision) -> PackedBitstream {
    let l = precision.stream_len() as u32;
    let iv = LdsSng.generate(i, precision);
    let wv = ThermometerSng.generate(l - w, precision).not();
    iv.and(&wv)
}

/// Performs the full bit-stream-level OSM multiply for the canonical
/// LDS × thermometer pairing: generates both streams, ANDs them, and
/// returns the product stream (what travels down the VDPE's waveguide to
/// the PCA).
pub fn osm_product_stream(i: u32, w: u32, precision: Precision) -> PackedBitstream {
    let iv = LdsSng.generate(i, precision);
    let wv = ThermometerSng.generate(w, precision);
    iv.and(&wv)
}

/// Hardware-equivalent OSM product count — the `O(B)` fast path. Equals
/// `osm_product_stream(i, w, p).count_ones()` for every operand pair
/// (property-tested).
#[inline]
pub fn osm_product(i: u32, w: u32, precision: Precision) -> u32 {
    lds_product(i, w, precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ideal_product_examples() {
        let p = Precision::B8;
        assert_eq!(ideal_product(128, 128, p), 64);
        assert_eq!(ideal_product(255, 255, p), 254);
        assert_eq!(ideal_product(0, 255, p), 0);
        assert_eq!(ideal_product(256, 256, p), 256);
    }

    #[test]
    fn lds_product_matches_reference_exhaustive_b4() {
        let p = Precision::B4;
        for i in 0..=16u32 {
            for w in 0..=16u32 {
                assert_eq!(
                    lds_product(i, w, p),
                    lds_product_reference(i, w, p),
                    "i={i} w={w}"
                );
            }
        }
    }

    #[test]
    fn lds_product_matches_stream_and_b4() {
        let p = Precision::B4;
        for i in 0..=16u32 {
            for w in 0..=16u32 {
                let stream = osm_product_stream(i, w, p);
                assert_eq!(stream.count_ones() as u32, lds_product(i, w, p));
            }
        }
    }

    #[test]
    fn lds_edge_cases_b8() {
        let p = Precision::B8;
        // Multiplying by the full-scale stream is the identity.
        for v in [0u32, 1, 100, 255, 256] {
            assert_eq!(lds_product(v, 256, p), v);
            assert_eq!(lds_product(256, v, p), v);
            assert_eq!(lds_product(v, 0, p), 0);
            assert_eq!(lds_product(0, v, p), 0);
        }
    }

    #[test]
    fn lds_error_bounded_by_bits() {
        let p = Precision::B8;
        let bound = p.bits() as f64; // low-discrepancy bound: one unit per set bit of w
        let mut worst: f64 = 0.0;
        for i in 0..=256u32 {
            for w in 0..=256u32 {
                worst = worst.max(lds_product_error(i, w, p));
            }
        }
        assert!(
            worst <= bound,
            "worst LDS error {worst} exceeds discrepancy bound {bound}"
        );
    }

    #[test]
    fn lds_is_monotone_in_each_operand() {
        let p = Precision::B4;
        for i in 0..16u32 {
            for w in 0..=16u32 {
                assert!(lds_product(i, w, p) <= lds_product(i + 1, w, p));
                assert!(lds_product(w, i, p) <= lds_product(w, i + 1, p));
            }
        }
    }

    #[test]
    fn floor_variant_matches_its_stream_exhaustive_b4() {
        let p = Precision::B4;
        for i in 0..=16u32 {
            for w in 0..=16u32 {
                assert_eq!(
                    osm_product_stream_floor(i, w, p).count_ones() as u32,
                    lds_product_floor(i, w, p),
                    "i={i} w={w}"
                );
            }
        }
    }

    #[test]
    fn ceil_and_floor_biases_cancel() {
        let p = Precision::B8;
        let mut ceil_bias = 0.0;
        let mut floor_bias = 0.0;
        let mut pair_bias = 0.0;
        let mut n = 0u64;
        // Full operand grid: sub-sampling on even strides skews the bias
        // estimate (round multiples of 4 have fewer set bits, hence fewer
        // up-rounding dyadic intervals).
        for i in 0..=256u32 {
            for w in 0..=256u32 {
                let real = real_product(i, w, p);
                let c = lds_product(i, w, p) as f64 - real;
                let f = lds_product_floor(i, w, p) as f64 - real;
                ceil_bias += c;
                floor_bias += f;
                pair_bias += c + f;
                n += 1;
            }
        }
        let n = n as f64;
        assert!(ceil_bias / n > 0.5, "ceil pairing biases up");
        assert!(floor_bias / n < -0.5, "floor pairing biases down");
        assert!(
            (pair_bias / n).abs() < 0.05,
            "alternating pairing must cancel: {}",
            pair_bias / n
        );
    }

    #[test]
    fn debiased_alternates_by_index() {
        let p = Precision::B8;
        assert_eq!(
            osm_product_debiased(100, 100, p, 0),
            lds_product(100, 100, p)
        );
        assert_eq!(
            osm_product_debiased(100, 100, p, 1),
            lds_product_floor(100, 100, p)
        );
    }

    proptest! {
        #[test]
        fn prop_floor_error_bounded(i in 0u32..=256, w in 0u32..=256) {
            let p = Precision::B8;
            let err = (lds_product_floor(i, w, p) as f64 - real_product(i, w, p)).abs();
            prop_assert!(err <= p.bits() as f64 + 1.0);
        }

        #[test]
        fn prop_lds_matches_reference_b8(i in 0u32..=256, w in 0u32..=256) {
            let p = Precision::B8;
            prop_assert_eq!(lds_product(i, w, p), lds_product_reference(i, w, p));
        }

        #[test]
        fn prop_lds_matches_stream_b8(i in 0u32..=256, w in 0u32..=256) {
            let p = Precision::B8;
            let stream = osm_product_stream(i, w, p);
            prop_assert_eq!(stream.count_ones() as u32, lds_product(i, w, p));
        }

        #[test]
        fn prop_lds_matches_reference_b6(i in 0u32..=64, w in 0u32..=64) {
            let p = Precision::new(6);
            prop_assert_eq!(lds_product(i, w, p), lds_product_reference(i, w, p));
        }

        #[test]
        fn prop_product_never_exceeds_operands(i in 0u32..=256, w in 0u32..=256) {
            // AND can only keep ones present in both streams.
            let p = Precision::B8;
            let prod = lds_product(i, w, p);
            prop_assert!(prod <= i && prod <= w);
        }

        #[test]
        fn prop_multiply_streams_commutative(i in 0u32..=256, w in 0u32..=256) {
            let p = Precision::B8;
            let a = LdsSng.generate(i, p);
            let b = ThermometerSng.generate(w, p);
            prop_assert_eq!(multiply_streams(&a, &b), multiply_streams(&b, &a));
        }

        #[test]
        fn prop_lds_matches_stream_all_precisions(
            bits in 1u8..=16,
            iraw in 0u32..=(1 << 16),
            wraw in 0u32..=(1 << 16),
        ) {
            // The closed form must equal the materialized
            // stream-AND-popcount path at *every* precision the substrate
            // admits, not just the paper's B8 operating point.
            let p = Precision::new(bits);
            let l = p.stream_len() as u32;
            let i = iraw % (l + 1);
            let w = wraw % (l + 1);
            let stream = osm_product_stream(i, w, p);
            prop_assert_eq!(
                stream.count_ones() as u32,
                lds_product(i, w, p),
                "ceil pairing B={} i={} w={}", bits, i, w
            );
            let floor = osm_product_stream_floor(i, w, p);
            prop_assert_eq!(
                floor.count_ones() as u32,
                lds_product_floor(i, w, p),
                "floor pairing B={} i={} w={}", bits, i, w
            );
        }

        #[test]
        fn prop_lds_matches_reference_all_precisions(
            bits in 1u8..=16,
            iraw in 0u32..=(1 << 16),
            wraw in 0u32..=(1 << 16),
        ) {
            let p = Precision::new(bits);
            let l = p.stream_len() as u32;
            let i = iraw % (l + 1);
            let w = wraw % (l + 1);
            prop_assert_eq!(
                lds_product(i, w, p),
                lds_product_reference(i, w, p),
                "B={} i={} w={}", bits, i, w
            );
        }
    }

    #[test]
    fn lds_full_scale_and_zero_edges_every_precision() {
        // Deterministic sweep of the corner operands (0, 1, L−1, L) where
        // the dyadic-interval bookkeeping is most fragile, at every
        // admissible precision.
        for bits in 1..=16u8 {
            let p = Precision::new(bits);
            let l = p.stream_len() as u32;
            for v in [0, 1, l - 1, l] {
                assert_eq!(lds_product(v, l, p), v, "B={bits} v={v}·L");
                assert_eq!(lds_product(l, v, p), v, "B={bits} L·v={v}");
                assert_eq!(lds_product(v, 0, p), 0, "B={bits}");
                assert_eq!(
                    lds_product(v, l - 1, p),
                    osm_product_stream(v, l - 1, p).count_ones() as u32,
                    "B={bits} v={v}·(L-1)"
                );
            }
        }
    }
}
