//! Stochastic accumulation — the computation the Photo-Charge Accumulator
//! (PCA) performs, abstracted from its analog circuit (the circuit model
//! lives in `sconna-photonics::pca`).
//!
//! A PCA counts optical `1` bits across all product streams incident on its
//! photodetector (unipolar *unscaled* addition, Section IV-C). A VDPE pairs
//! a positive-rail PCA (OWA) with a negative-rail PCA (OWA'); the signed
//! VDP result is the difference of the two counts.

use crate::bitstream::PackedBitstream;
use crate::format::Precision;
use crate::multiply::osm_product_debiased;

/// Ones-counting accumulator for one output waveguide arm (one PCA).
#[derive(Debug, Clone, Default)]
pub struct PcaCounter {
    total_ones: u64,
    streams_seen: usize,
}

impl PcaCounter {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one product stream (all its ones land on the
    /// photodetector).
    pub fn accumulate(&mut self, stream: &PackedBitstream) {
        self.total_ones += stream.count_ones() as u64;
        self.streams_seen += 1;
    }

    /// Accumulates a pre-counted number of ones (fast path used by the
    /// closed-form multiplier).
    pub fn accumulate_count(&mut self, ones: u32) {
        self.total_ones += ones as u64;
        self.streams_seen += 1;
    }

    /// Total ones accumulated so far — the analog charge in count units.
    pub fn total(&self) -> u64 {
        self.total_ones
    }

    /// Number of streams merged.
    pub fn streams_seen(&self) -> usize {
        self.streams_seen
    }

    /// Resets for the next accumulation phase (capacitor discharge).
    pub fn reset(&mut self) {
        self.total_ones = 0;
        self.streams_seen = 0;
    }
}

/// One VDPE's signed accumulator: positive and negative rails.
#[derive(Debug, Clone, Default)]
pub struct SignedAccumulator {
    /// OWA rail: products of non-negative weights.
    pub positive: PcaCounter,
    /// OWA' rail: products of negative weights.
    pub negative: PcaCounter,
}

impl SignedAccumulator {
    /// Creates an empty signed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes a product count to the rail selected by the weight's sign bit
    /// (the filter MRR's steering function).
    pub fn accumulate(&mut self, product_ones: u32, weight_negative: bool) {
        if weight_negative {
            self.negative.accumulate_count(product_ones);
        } else {
            self.positive.accumulate_count(product_ones);
        }
    }

    /// Signed result in ones-count units: `positive − negative`.
    pub fn signed_total(&self) -> i64 {
        self.positive.total() as i64 - self.negative.total() as i64
    }

    /// Resets both rails.
    pub fn reset(&mut self) {
        self.positive.reset();
        self.negative.reset();
    }
}

/// Hardware-equivalent stochastic vector dot product: each element goes
/// through an OSM ([`osm_product_debiased`], alternating the two LUT
/// pairings so encoding bias cancels) and the filter-MRR/PCA pair
/// ([`SignedAccumulator`]).
///
/// `inputs` are unsigned (post-ReLU) numerators; `weights` are signed
/// integers whose magnitude is the weight numerator. The result is in
/// ones-count units, i.e. `Σ i_k·w_k / 2^B` up to per-element SC rounding.
///
/// # Panics
/// Panics if the slices differ in length or any operand is out of range
/// for `precision`.
pub fn stochastic_vdp(inputs: &[u32], weights: &[i32], precision: Precision) -> i64 {
    assert_eq!(inputs.len(), weights.len(), "vector length mismatch");
    let mut acc = SignedAccumulator::new();
    for (k, (&i, &w)) in inputs.iter().zip(weights).enumerate() {
        let prod = osm_product_debiased(i, w.unsigned_abs(), precision, k);
        acc.accumulate(prod, w < 0);
    }
    acc.signed_total()
}

/// Reference dot product in the same scaled units, computed exactly in
/// binary arithmetic: `round-free Σ i_k·w_k / 2^B` as a real number. Used
/// as the yardstick for SC error in tests and the accuracy study.
pub fn exact_vdp_scaled(inputs: &[u32], weights: &[i32], precision: Precision) -> f64 {
    assert_eq!(inputs.len(), weights.len(), "vector length mismatch");
    let l = precision.stream_len() as f64;
    inputs
        .iter()
        .zip(weights)
        .map(|(&i, &w)| i as f64 * w as f64 / l)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiply::{osm_product_stream, osm_product_stream_floor};
    use proptest::prelude::*;

    /// Bitstream-level reference VDP: materializes every OSM product
    /// stream (alternating the ceil/floor LUT pairings exactly as
    /// [`stochastic_vdp`] does), counts ones on the photodetector, and
    /// routes counts by weight sign. The closed-form path must match this
    /// bit for bit.
    fn bitstream_vdp_reference(inputs: &[u32], weights: &[i32], precision: Precision) -> i64 {
        assert_eq!(inputs.len(), weights.len());
        let mut acc = SignedAccumulator::new();
        for (k, (&i, &w)) in inputs.iter().zip(weights).enumerate() {
            let mag = w.unsigned_abs();
            let stream = if k % 2 == 0 {
                osm_product_stream(i, mag, precision)
            } else {
                osm_product_stream_floor(i, mag, precision)
            };
            if w < 0 {
                acc.negative.accumulate(&stream);
            } else {
                acc.positive.accumulate(&stream);
            }
        }
        acc.signed_total()
    }

    #[test]
    fn counter_accumulates_streams() {
        let mut c = PcaCounter::new();
        c.accumulate(&PackedBitstream::ones(10));
        c.accumulate(&PackedBitstream::zeros(10));
        c.accumulate_count(5);
        assert_eq!(c.total(), 15);
        assert_eq!(c.streams_seen(), 3);
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.streams_seen(), 0);
    }

    #[test]
    fn signed_accumulator_routes_by_sign() {
        let mut acc = SignedAccumulator::new();
        acc.accumulate(10, false);
        acc.accumulate(4, true);
        acc.accumulate(3, false);
        assert_eq!(acc.positive.total(), 13);
        assert_eq!(acc.negative.total(), 4);
        assert_eq!(acc.signed_total(), 9);
    }

    #[test]
    fn vdp_zero_vectors() {
        let p = Precision::B8;
        assert_eq!(stochastic_vdp(&[], &[], p), 0);
        assert_eq!(stochastic_vdp(&[0; 8], &[0; 8], p), 0);
    }

    #[test]
    fn vdp_full_scale_identity() {
        // Inputs at full scale (256) pass every weight through unchanged.
        let p = Precision::B8;
        let inputs = vec![256u32; 4];
        let weights = vec![10i32, -20, 30, -5];
        assert_eq!(stochastic_vdp(&inputs, &weights, p), 15);
    }

    #[test]
    fn vdp_close_to_exact() {
        let p = Precision::B8;
        let inputs: Vec<u32> = (0..64).map(|k| (k * 4) % 256).collect();
        let weights: Vec<i32> = (0..64).map(|k| ((k * 7) % 255) - 127).collect();
        let sc = stochastic_vdp(&inputs, &weights, p) as f64;
        let exact = exact_vdp_scaled(&inputs, &weights, p);
        // Per-element error ≤ B counts; 64 elements with random signs
        // partially cancel, but the hard bound is 64 * 8.
        assert!((sc - exact).abs() <= 64.0 * 8.0, "sc={sc} exact={exact}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vdp_length_mismatch_panics() {
        let _ = stochastic_vdp(&[1, 2], &[1], Precision::B8);
    }

    proptest! {
        #[test]
        fn prop_vdp_error_bounded(
            pairs in proptest::collection::vec((0u32..=256, -255i32..=255), 1..64)
        ) {
            let p = Precision::B8;
            let inputs: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
            let weights: Vec<i32> = pairs.iter().map(|&(_, w)| w).collect();
            let sc = stochastic_vdp(&inputs, &weights, p) as f64;
            let exact = exact_vdp_scaled(&inputs, &weights, p);
            let bound = pairs.len() as f64 * (p.bits() as f64);
            prop_assert!((sc - exact).abs() <= bound);
        }

        #[test]
        fn prop_vdp_matches_bitstream_reference(
            pairs in proptest::collection::vec((0u32..=256, -256i32..=256), 1..48)
        ) {
            // Exact equality, not an error bound: the closed-form VDP is
            // the same computation as the optical datapath.
            let p = Precision::B8;
            let inputs: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
            let weights: Vec<i32> = pairs.iter().map(|&(_, w)| w).collect();
            prop_assert_eq!(
                stochastic_vdp(&inputs, &weights, p),
                bitstream_vdp_reference(&inputs, &weights, p)
            );
        }

        #[test]
        fn prop_vdp_matches_bitstream_reference_b4(
            pairs in proptest::collection::vec((0u32..=16, -16i32..=16), 1..32)
        ) {
            let p = Precision::B4;
            let inputs: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
            let weights: Vec<i32> = pairs.iter().map(|&(_, w)| w).collect();
            prop_assert_eq!(
                stochastic_vdp(&inputs, &weights, p),
                bitstream_vdp_reference(&inputs, &weights, p)
            );
        }

        #[test]
        fn prop_vdp_sign_symmetry(
            pairs in proptest::collection::vec((0u32..=256, -255i32..=255), 1..32)
        ) {
            // Negating every weight negates the result exactly (the two
            // rails swap).
            let p = Precision::B8;
            let inputs: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
            let weights: Vec<i32> = pairs.iter().map(|&(_, w)| w).collect();
            let neg: Vec<i32> = weights.iter().map(|w| -w).collect();
            prop_assert_eq!(
                stochastic_vdp(&inputs, &weights, p),
                -stochastic_vdp(&inputs, &neg, p)
            );
        }
    }
}
