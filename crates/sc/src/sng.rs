//! Stochastic number generators (SNGs).
//!
//! An SNG converts a binary integer into a bit-stream whose fraction of ones
//! encodes the value. The SCONNA paper generates **pairs** of uncorrelated
//! streams offline and stores them in a LUT (see [`crate::lut`]); the
//! generators here are the building blocks for that LUT plus the
//! conventional LFSR baseline used for comparison in the SNG ablation.

use crate::bitstream::PackedBitstream;
use crate::format::Precision;

/// Converts a binary numerator into a stochastic bit-stream of length
/// `precision.stream_len()`.
pub trait StochasticNumberGenerator {
    /// Generates the stream for `numerator / 2^B`.
    ///
    /// Implementations must produce a stream of exactly
    /// `precision.stream_len()` bits.
    ///
    /// # Panics
    /// Panics if `numerator > precision.stream_len()`.
    fn generate(&self, numerator: u32, precision: Precision) -> PackedBitstream;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Reverses the low `bits` bits of `x`.
#[inline]
pub fn bit_reverse(x: u32, bits: u8) -> u32 {
    x.reverse_bits() >> (32 - bits as u32)
}

/// Deterministic low-discrepancy SNG based on the van der Corput (bit
/// reversal) sequence.
///
/// Bit `t` of the stream is `1` iff `bit_reverse(t, B) < numerator`. Because
/// bit reversal permutes `[0, 2^B)`, the stream contains *exactly*
/// `numerator` ones — the encoding is error-free — and the ones are spread
/// maximally evenly, which is what bounds the multiplication error when
/// paired with a thermometer stream (see [`crate::multiply`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct LdsSng;

impl StochasticNumberGenerator for LdsSng {
    fn generate(&self, numerator: u32, precision: Precision) -> PackedBitstream {
        let l = precision.stream_len();
        assert!(
            numerator as usize <= l,
            "numerator {numerator} > stream length {l}"
        );
        let b = precision.bits();
        PackedBitstream::from_bits((0..l).map(|t| bit_reverse(t as u32, b) < numerator))
    }

    fn name(&self) -> &'static str {
        "lds"
    }
}

/// Thermometer (unary-prefix) SNG: the first `numerator` bits are `1`.
///
/// On its own a thermometer stream is maximally correlated with any other
/// thermometer stream; its role is as the *partner* of an [`LdsSng`] stream,
/// where the pair behaves as an uncorrelated combination (the
/// clock-division construction of UGEMM's unipolar circuit).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThermometerSng;

impl StochasticNumberGenerator for ThermometerSng {
    fn generate(&self, numerator: u32, precision: Precision) -> PackedBitstream {
        let l = precision.stream_len();
        assert!(
            numerator as usize <= l,
            "numerator {numerator} > stream length {l}"
        );
        PackedBitstream::from_bits((0..l).map(|t| (t as u32) < numerator))
    }

    fn name(&self) -> &'static str {
        "thermometer"
    }
}

/// Maximal-length LFSR feedback taps (Fibonacci form, XOR of the tapped
/// bits feeds bit 0) for register widths 3..=16. Tap positions are 1-based
/// bit indices as conventionally tabulated.
const LFSR_TAPS: [(u8, &[u8]); 14] = [
    (3, &[3, 2]),
    (4, &[4, 3]),
    (5, &[5, 3]),
    (6, &[6, 5]),
    (7, &[7, 6]),
    (8, &[8, 6, 5, 4]),
    (9, &[9, 5]),
    (10, &[10, 7]),
    (11, &[11, 9]),
    (12, &[12, 11, 10, 4]),
    (13, &[13, 12, 11, 8]),
    (14, &[14, 13, 12, 2]),
    (15, &[15, 14]),
    (16, &[16, 15, 13, 4]),
];

/// Classic comparator SNG driven by a maximal-length LFSR.
///
/// At cycle `t` the stream bit is `1` iff the LFSR state is **less than**
/// the numerator. A `B`-bit maximal LFSR visits every value in
/// `[1, 2^B - 1]` exactly once per period, so over `2^B` cycles the stream
/// carries `numerator` ones up to a ±1 bias from the missing zero state —
/// this small bias and the pseudo-random correlation between two LFSR
/// streams are exactly the error sources the paper's LUT approach avoids.
#[derive(Debug, Clone, Copy)]
pub struct LfsrSng {
    /// Initial LFSR state (seed); must be non-zero.
    pub seed: u32,
}

impl Default for LfsrSng {
    fn default() -> Self {
        Self { seed: 1 }
    }
}

impl LfsrSng {
    /// Creates an LFSR SNG with the given non-zero seed.
    ///
    /// # Panics
    /// Panics if `seed == 0` (the all-zero state is absorbing).
    pub fn new(seed: u32) -> Self {
        assert!(seed != 0, "LFSR seed must be non-zero");
        Self { seed }
    }

    fn taps(width: u8) -> &'static [u8] {
        LFSR_TAPS.iter().find(|(w, _)| *w == width).map_or_else(
            || panic!("no LFSR taps tabulated for width {width}"),
            |(_, t)| *t,
        )
    }

    /// Advances a Fibonacci LFSR of `width` bits by one step.
    #[inline]
    fn step(state: u32, width: u8, taps: &[u8]) -> u32 {
        let fb = taps
            .iter()
            .fold(0u32, |acc, &tap| acc ^ (state >> (tap - 1)) & 1);
        ((state << 1) | fb) & ((1u32 << width) - 1)
    }

    /// Full LFSR state sequence of length `2^width` starting from the seed
    /// (the maximal period is `2^width - 1`; the final element repeats the
    /// first so that stream lengths of `2^B` are covered).
    pub fn sequence(&self, width: u8) -> Vec<u32> {
        let taps = Self::taps(width);
        let mask = (1u32 << width) - 1;
        let mut state = self.seed & mask;
        if state == 0 {
            state = 1;
        }
        let len = 1usize << width;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(state);
            state = Self::step(state, width, taps);
        }
        out
    }
}

impl StochasticNumberGenerator for LfsrSng {
    fn generate(&self, numerator: u32, precision: Precision) -> PackedBitstream {
        let l = precision.stream_len();
        assert!(
            numerator as usize <= l,
            "numerator {numerator} > stream length {l}"
        );
        let seq = self.sequence(precision.bits());
        PackedBitstream::from_bits(seq.iter().map(|&s| s < numerator))
    }

    fn name(&self) -> &'static str {
        "lfsr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_is_permutation() {
        for b in [3u8, 4, 8] {
            let n = 1u32 << b;
            let mut seen = vec![false; n as usize];
            for x in 0..n {
                let r = bit_reverse(x, b);
                assert!(r < n);
                assert!(!seen[r as usize], "collision at {x}");
                seen[r as usize] = true;
            }
        }
    }

    #[test]
    fn lds_exact_encoding() {
        let p = Precision::B8;
        for n in [0u32, 1, 7, 128, 255, 256] {
            let s = LdsSng.generate(n, p);
            assert_eq!(s.count_ones() as u32, n, "n={n}");
            assert_eq!(s.len(), 256);
        }
    }

    #[test]
    fn thermometer_prefix_property() {
        let p = Precision::B4;
        let s = ThermometerSng.generate(5, p);
        for t in 0..16 {
            assert_eq!(s.get(t), t < 5);
        }
    }

    #[test]
    fn lfsr_is_maximal_period() {
        for width in 3u8..=12 {
            let seq = LfsrSng::default().sequence(width);
            let period = 1usize << width;
            // All 2^width - 1 non-zero states must appear in one period.
            let mut seen = vec![false; period];
            for &s in &seq[..period - 1] {
                assert!(s != 0, "LFSR reached zero state at width {width}");
                assert!(
                    !seen[s as usize],
                    "LFSR repeated state early at width {width}"
                );
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn lfsr_encoding_error_is_at_most_one() {
        let p = Precision::B8;
        for n in 0..=256u32 {
            let s = LfsrSng::default().generate(n, p);
            let err = (s.count_ones() as i64 - n as i64).abs();
            assert!(err <= 1, "n={n} err={err}");
        }
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn lfsr_zero_seed_rejected() {
        let _ = LfsrSng::new(0);
    }

    #[test]
    fn generators_report_names() {
        assert_eq!(LdsSng.name(), "lds");
        assert_eq!(ThermometerSng.name(), "thermometer");
        assert_eq!(LfsrSng::default().name(), "lfsr");
    }
}
