//! Bipolar stochastic computing.
//!
//! SCONNA's data path is unipolar (ReLU activations carry no sign; weight
//! signs ride a separate bit into the filter MRRs), but the SC literature
//! the paper builds on — and any extension handling signed activations in
//! the stream domain — uses the **bipolar** format: a stream of length
//! `L` with `N₁` ones encodes `v = 2·N₁/L − 1 ∈ [−1, 1]`. Multiplication
//! becomes XNOR, and scaled addition a 2:1 multiplexer driven by a
//! half-density select stream. This module provides both, with the same
//! LDS-based deterministic generation discipline as the unipolar path.

use crate::bitstream::PackedBitstream;
use crate::format::Precision;
use crate::sng::{LdsSng, StochasticNumberGenerator, ThermometerSng};

/// A bipolar stochastic value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bipolar {
    /// Number of ones in the stream.
    pub ones: u32,
    /// Precision (stream length `2^B`).
    pub precision: Precision,
}

impl Bipolar {
    /// Quantizes a real value in `[−1, 1]` to the nearest representable
    /// bipolar stream.
    ///
    /// # Panics
    /// Panics if `v` is outside `[−1, 1]` or not finite.
    pub fn quantize(v: f64, precision: Precision) -> Self {
        assert!(
            v.is_finite() && (-1.0..=1.0).contains(&v),
            "bipolar value {v}"
        );
        let l = precision.stream_len() as f64;
        let ones = ((v + 1.0) / 2.0 * l).round() as u32;
        Self { ones, precision }
    }

    /// Real value `2·ones/L − 1`.
    pub fn value(self) -> f64 {
        2.0 * self.ones as f64 / self.precision.stream_len() as f64 - 1.0
    }

    /// Generates the stream with the low-discrepancy SNG.
    pub fn stream_lds(self) -> PackedBitstream {
        LdsSng.generate(self.ones, self.precision)
    }

    /// Generates the stream with the thermometer SNG (for pairing).
    pub fn stream_thermometer(self) -> PackedBitstream {
        ThermometerSng.generate(self.ones, self.precision)
    }
}

/// Bipolar multiplication: XNOR of the two streams. For the
/// LDS × thermometer pairing the result value approximates `a·b` with
/// the same discrepancy bound as the unipolar AND (the XNOR count is an
/// affine function of the AND overlap).
pub fn bipolar_multiply(a: &PackedBitstream, b: &PackedBitstream) -> PackedBitstream {
    a.xnor(b)
}

/// Closed-form ones-count of the XNOR product of the LDS(a) ×
/// thermometer(b) pairing: `L − a₁ − b₁ + 2·overlap`.
pub fn bipolar_multiply_count(a: Bipolar, b: Bipolar) -> u32 {
    assert_eq!(a.precision, b.precision, "precision mismatch");
    let l = a.precision.stream_len() as i64;
    let overlap = crate::multiply::lds_product(a.ones, b.ones, a.precision) as i64;
    (l - a.ones as i64 - b.ones as i64 + 2 * overlap) as u32
}

/// Scaled (MUX) addition: a 2:1 multiplexer selecting between streams
/// `a` and `b` under a half-density select stream computes `(a + b) / 2`
/// in either format.
///
/// The select source must be **uncorrelated with both inputs** — any
/// deterministic pattern correlates with some operand of the
/// deterministic SNGs (e.g. a half-density LDS select picks exactly the
/// even stream positions, which is also where small-value LDS operands
/// concentrate their ones). A maximal-length LFSR with a fixed seed is
/// the standard independent source; its residual correlation gives the
/// classic `O(√L)` MUX-adder error instead of the multiplier's `O(log L)`.
///
/// # Panics
/// Panics if the streams differ in length.
pub fn scaled_add(
    a: &PackedBitstream,
    b: &PackedBitstream,
    precision: Precision,
) -> PackedBitstream {
    assert_eq!(a.len(), b.len(), "stream length mismatch");
    assert_eq!(a.len(), precision.stream_len(), "stream/precision mismatch");
    let half = precision.stream_len() as u32 / 2;
    let select = crate::sng::LfsrSng::new(0xB5).generate(half, precision);
    // out = (select AND a) OR (NOT select AND b)
    select.and(a).or(&select.not().and(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantize_roundtrip_endpoints() {
        let p = Precision::B8;
        assert_eq!(Bipolar::quantize(-1.0, p).ones, 0);
        assert_eq!(Bipolar::quantize(0.0, p).ones, 128);
        assert_eq!(Bipolar::quantize(1.0, p).ones, 256);
        assert!((Bipolar::quantize(0.5, p).value() - 0.5).abs() < 1e-2);
    }

    #[test]
    fn xnor_multiply_signs() {
        let p = Precision::B8;
        let cases = [
            (0.75, 0.5, 0.375),
            (-0.75, 0.5, -0.375),
            (-0.5, -0.5, 0.25),
            (1.0, -1.0, -1.0),
            (0.0, 0.9, 0.0),
        ];
        for (av, bv, want) in cases {
            let a = Bipolar::quantize(av, p);
            let b = Bipolar::quantize(bv, p);
            let out = bipolar_multiply(&a.stream_lds(), &b.stream_thermometer());
            let got = out.bipolar_value();
            assert!(
                (got - want).abs() < 0.08,
                "{av} x {bv}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn closed_form_matches_stream_xnor() {
        let p = Precision::B8;
        for a1 in (0..=256u32).step_by(16) {
            for b1 in (0..=256u32).step_by(16) {
                let a = Bipolar {
                    ones: a1,
                    precision: p,
                };
                let b = Bipolar {
                    ones: b1,
                    precision: p,
                };
                let stream = bipolar_multiply(&a.stream_lds(), &b.stream_thermometer());
                assert_eq!(
                    stream.count_ones() as u32,
                    bipolar_multiply_count(a, b),
                    "a={a1} b={b1}"
                );
            }
        }
    }

    #[test]
    fn scaled_add_halves_the_sum() {
        let p = Precision::B8;
        let a = LdsSng.generate(200, p);
        let b = ThermometerSng.generate(60, p);
        let out = scaled_add(&a, &b, p);
        let got = out.count_ones() as f64;
        let want = (200.0 + 60.0) / 2.0;
        assert!((got - want).abs() <= 24.0, "got {got}, want {want}");
    }

    #[test]
    fn scaled_add_identity_and_zero() {
        let p = Precision::B8;
        let zeros = PackedBitstream::zeros(256);
        let ones = PackedBitstream::ones(256);
        // (0 + 0)/2 = 0, (1 + 1)/2 = 1.
        assert_eq!(scaled_add(&zeros, &zeros, p).count_ones(), 0);
        assert_eq!(scaled_add(&ones, &ones, p).count_ones(), 256);
    }

    proptest! {
        #[test]
        fn prop_bipolar_multiply_error_bounded(
            a1 in 0u32..=256, b1 in 0u32..=256
        ) {
            // XNOR count error inherits 2x the AND-overlap discrepancy.
            let p = Precision::B8;
            let a = Bipolar { ones: a1, precision: p };
            let b = Bipolar { ones: b1, precision: p };
            let got = Bipolar { ones: bipolar_multiply_count(a, b), precision: p }.value();
            let want = a.value() * b.value();
            prop_assert!((got - want).abs() <= 2.0 * 8.0 * 2.0 / 256.0 + 1e-9);
        }

        #[test]
        fn prop_scaled_add_bounded(a1 in 0u32..=256, b1 in 0u32..=256) {
            let p = Precision::B8;
            let a = LdsSng.generate(a1, p);
            let b = ThermometerSng.generate(b1, p);
            let got = scaled_add(&a, &b, p).count_ones() as f64;
            let want = (a1 + b1) as f64 / 2.0;
            // MUX selection error is the O(sqrt(L)) pseudo-random bound
            // of the LFSR select source.
            prop_assert!((got - want).abs() <= 32.0, "got {} want {}", got, want);
        }
    }
}
