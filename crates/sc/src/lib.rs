//! # sconna-sc — stochastic computing substrate
//!
//! Implements the stochastic-computing layer of the SCONNA reproduction
//! (Sri Vatsavai et al., IPDPS 2023): unipolar stochastic numbers as packed
//! bit-streams, the stochastic number generators behind the paper's offline
//! LUT, the AND-gate multiplication an Optical Stochastic Multiplier (OSM)
//! performs, and the ones-counting accumulation a Photo-Charge Accumulator
//! (PCA) performs.
//!
//! Two equivalent computation paths are provided and property-tested
//! against each other:
//!
//! * **bit-stream path** — materialize `2^B`-bit streams, AND them, count
//!   ones (what the hardware physically does);
//! * **closed-form path** — `O(B)` integer arithmetic producing the exact
//!   same counts ([`multiply::lds_product`]), which makes simulating
//!   billion-multiply CNN inferences tractable.
//!
//! ```
//! use sconna_sc::{Precision, multiply::osm_product, accumulate::stochastic_vdp};
//!
//! let p = Precision::B8;
//! // One OSM multiply: 128/256 × 64/256 ≈ 32/256.
//! assert_eq!(osm_product(128, 64, p), 32);
//! // One VDPE: signed dot product in ones-count units.
//! let acc = stochastic_vdp(&[100, 200], &[50, -30], p);
//! assert!((acc as f64 - (100.0 * 50.0 - 200.0 * 30.0) / 256.0).abs() <= 16.0);
//! ```

pub mod accumulate;
pub mod analysis;
pub mod bipolar;
pub mod bitstream;
pub mod error;
pub mod format;
pub mod lut;
pub mod multiply;
pub mod sng;

pub use bitstream::PackedBitstream;
pub use format::{Precision, SignMagnitude, Unipolar};
pub use lut::{OsmProductLut, PairLut};
