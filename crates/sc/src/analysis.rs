//! Statistical analysis of stochastic-computing error.
//!
//! The accuracy story of the paper rests on how per-multiply rounding
//! error behaves when a VDPE sums 176 products and a CNN sums thousands
//! of VDPE results: deterministic per-element errors are bounded
//! (`O(B)` counts), the alternating LUT pairing makes them zero-mean,
//! and accumulation then concentrates the relative error like `1/√n`.
//! This module computes those statistics exactly (exhaustive over the
//! operand grid) and empirically (over operand distributions), feeding
//! both the tests and the reports.

use crate::format::Precision;
use crate::multiply::{lds_product, lds_product_floor, real_product};
use rand::Rng;

/// Exhaustive error statistics of a multiplier against the real-valued
/// product, over the full `(i, w)` operand grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean signed error (bias), ones-counts.
    pub bias: f64,
    /// Standard deviation of the error, ones-counts.
    pub std_dev: f64,
    /// Largest |error|, ones-counts.
    pub worst: f64,
}

/// Computes [`ErrorStats`] for a multiplier function over the full grid.
pub fn multiplier_stats(
    precision: Precision,
    mul: impl Fn(u32, u32, Precision) -> u32,
) -> ErrorStats {
    let l = precision.stream_len() as u32;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut worst = 0.0f64;
    let mut n = 0u64;
    for i in 0..=l {
        for w in 0..=l {
            let e = mul(i, w, precision) as f64 - real_product(i, w, precision);
            sum += e;
            sum_sq += e * e;
            worst = worst.max(e.abs());
            n += 1;
        }
    }
    let n = n as f64;
    let bias = sum / n;
    ErrorStats {
        bias,
        std_dev: (sum_sq / n - bias * bias).max(0.0).sqrt(),
        worst,
    }
}

/// Stats of the ceil (LDS × thermometer) pairing.
pub fn ceil_pairing_stats(precision: Precision) -> ErrorStats {
    multiplier_stats(precision, lds_product)
}

/// Stats of the floor (complement) pairing.
pub fn floor_pairing_stats(precision: Precision) -> ErrorStats {
    multiplier_stats(precision, lds_product_floor)
}

/// Stats of the alternating (debiased) pairing, averaged over both
/// parities.
pub fn debiased_pairing_stats(precision: Precision) -> ErrorStats {
    multiplier_stats(precision, |i, w, p| {
        // Average of both pairings, rounded — the per-pair effective
        // multiplier of an even/odd OSM couple.
        (lds_product(i, w, p) + lds_product_floor(i, w, p)).div_ceil(2)
    })
}

/// Empirical relative error of `n`-element stochastic dot products over
/// random operands (uniform codes), as RMSE over RMS of the exact value.
///
/// With `signed_weights`, the reference dot product is zero-mean and
/// grows like `√n`, matching the error's growth — relative error stays
/// roughly flat. With non-negative weights the reference grows like `n`
/// and the relative error concentrates like `1/√n` (the accumulation
/// argument behind the paper's small accuracy drops: post-ReLU rail
/// sums are non-negative).
pub fn empirical_vdp_relative_error<R: Rng + ?Sized>(
    precision: Precision,
    n: usize,
    trials: usize,
    signed_weights: bool,
    rng: &mut R,
) -> f64 {
    assert!(n > 0 && trials > 0, "degenerate experiment");
    let qmax = precision.max_value();
    let lo = if signed_weights { -(qmax as i32) } else { 0 };
    let mut err_sq = 0.0f64;
    let mut ref_sq = 0.0f64;
    for _ in 0..trials {
        let inputs: Vec<u32> = (0..n).map(|_| rng.gen_range(0..=qmax)).collect();
        let weights: Vec<i32> = (0..n).map(|_| rng.gen_range(lo..=qmax as i32)).collect();
        let sc = crate::accumulate::stochastic_vdp(&inputs, &weights, precision) as f64;
        let exact: f64 = inputs
            .iter()
            .zip(&weights)
            .map(|(&i, &w)| i as f64 * w as f64 / precision.stream_len() as f64)
            .sum();
        err_sq += (sc - exact) * (sc - exact);
        ref_sq += exact * exact;
    }
    (err_sq / ref_sq.max(1e-12)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ceil_and_floor_are_mirror_images() {
        let p = Precision::new(6);
        let ceil = ceil_pairing_stats(p);
        let floor = floor_pairing_stats(p);
        assert!(ceil.bias > 0.4, "ceil bias {}", ceil.bias);
        assert!(floor.bias < -0.4, "floor bias {}", floor.bias);
        assert!((ceil.bias + floor.bias).abs() < 0.05, "biases must cancel");
        assert!((ceil.worst - floor.worst).abs() < 1.5);
    }

    #[test]
    fn debiasing_kills_the_bias_without_hurting_worst_case() {
        let p = Precision::new(6);
        let ceil = ceil_pairing_stats(p);
        let debiased = debiased_pairing_stats(p);
        assert!(
            debiased.bias.abs() < 0.51,
            "debiased bias {}",
            debiased.bias
        );
        assert!(debiased.bias.abs() < ceil.bias.abs());
        assert!(debiased.worst <= ceil.worst + 1.0);
    }

    #[test]
    fn worst_error_scales_with_bits() {
        // The discrepancy bound is O(B): each extra bit adds at most one
        // more up-rounding dyadic interval.
        let w4 = ceil_pairing_stats(Precision::B4).worst;
        let w8 = ceil_pairing_stats(Precision::B8).worst;
        assert!(w8 > w4);
        assert!(w8 <= 8.0 && w4 <= 4.0);
    }

    #[test]
    fn positive_rail_error_concentrates_with_length() {
        // Non-negative weights model a single PCA rail: the reference
        // grows like n while the error grows like sqrt(n), so relative
        // error concentrates.
        let p = Precision::B8;
        let mut rng = StdRng::seed_from_u64(9);
        let short = empirical_vdp_relative_error(p, 16, 200, false, &mut rng);
        let long = empirical_vdp_relative_error(p, 1024, 50, false, &mut rng);
        assert!(
            long < short,
            "rail relative error must shrink: {short} -> {long}"
        );
    }

    #[test]
    fn signed_vdp_error_stays_flat_and_small() {
        // Zero-mean references grow like sqrt(n), matching the error's
        // growth: relative error neither explodes nor concentrates.
        let p = Precision::B8;
        let mut rng = StdRng::seed_from_u64(9);
        let short = empirical_vdp_relative_error(p, 16, 200, true, &mut rng);
        let long = empirical_vdp_relative_error(p, 1024, 50, true, &mut rng);
        assert!(short < 0.05 && long < 0.05, "short {short}, long {long}");
        assert!((short - long).abs() < 0.02, "flat: {short} vs {long}");
    }

    #[test]
    fn vdp_relative_error_is_small_at_vdpe_size() {
        let p = Precision::B8;
        let mut rng = StdRng::seed_from_u64(4);
        let at_176 = empirical_vdp_relative_error(p, 176, 200, true, &mut rng);
        assert!(at_176 < 0.05, "VDPE-size relative error {at_176}");
    }
}
