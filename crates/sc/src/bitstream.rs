//! Packed stochastic bit-streams.
//!
//! A stochastic number (SN) is a bit-stream of length `L` whose value is the
//! fraction of `1` bits (unipolar format, Section II-D of the SCONNA paper).
//! Streams are stored packed into `u64` words so that the bit-wise operations
//! an optical AND gate (or any SC logic gate) performs map onto whole-word
//! integer operations plus a final `popcount`.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-length bit-stream packed into `u64` words, LSB-first within each
/// word (bit `t` of the stream lives at `words[t / 64] >> (t % 64) & 1`).
///
/// Lengths need not be multiples of 64; bits past `len` in the final word are
/// kept zero as an invariant so that [`PackedBitstream::count_ones`] never
/// needs masking.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PackedBitstream {
    words: Vec<u64>,
    len: usize,
}

impl PackedBitstream {
    /// Creates an all-zero stream of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates an all-one stream of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut s = Self {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        s.mask_tail();
        s
    }

    /// Builds a stream from an iterator of booleans; the iterator's length
    /// defines the stream length.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        let mut cur = 0u64;
        for b in bits {
            if b {
                cur |= 1u64 << (len % WORD_BITS);
            }
            len += 1;
            if len.is_multiple_of(WORD_BITS) {
                words.push(cur);
                cur = 0;
            }
        }
        if !len.is_multiple_of(WORD_BITS) {
            words.push(cur);
        }
        Self { words, len }
    }

    /// Stream length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `t`.
    ///
    /// # Panics
    /// Panics if `t >= len`.
    #[inline]
    pub fn get(&self, t: usize) -> bool {
        assert!(t < self.len, "bit index {t} out of range {}", self.len);
        (self.words[t / WORD_BITS] >> (t % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `t`.
    ///
    /// # Panics
    /// Panics if `t >= len`.
    #[inline]
    pub fn set(&mut self, t: usize, v: bool) {
        assert!(t < self.len, "bit index {t} out of range {}", self.len);
        let w = &mut self.words[t / WORD_BITS];
        let mask = 1u64 << (t % WORD_BITS);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of `1` bits — the numerator of the unipolar value.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Unipolar value `count_ones / len` in `[0, 1]`.
    pub fn unipolar_value(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.count_ones() as f64 / self.len as f64
    }

    /// Bipolar value `2 * unipolar - 1` in `[-1, 1]`.
    pub fn bipolar_value(&self) -> f64 {
        2.0 * self.unipolar_value() - 1.0
    }

    /// Bit-wise AND (the stochastic unipolar multiplier, Fig. 3 of the
    /// paper).
    ///
    /// # Panics
    /// Panics if the streams differ in length.
    pub fn and(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bit-wise OR (unipolar saturating add for uncorrelated inputs).
    pub fn or(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bit-wise XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Bit-wise XNOR (the stochastic bipolar multiplier).
    pub fn xnor(&self, other: &Self) -> Self {
        let mut out = self.zip_with(other, |a, b| !(a ^ b));
        out.mask_tail();
        out
    }

    /// Bit-wise NOT (unipolar complement `1 - v`).
    pub fn not(&self) -> Self {
        let mut out = Self {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    /// Number of positions where both streams are `1`; the AND-overlap count
    /// used by correlation metrics without materializing the AND stream.
    ///
    /// # Panics
    /// Panics if the streams differ in length.
    pub fn overlap(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "stream length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Left-rotates the stream by `k` bits (stream position `t` moves to
    /// `(t + k) % len`). Rotation is the classic decorrelation primitive for
    /// re-using one random source across SNGs.
    pub fn rotate_left(&self, k: usize) -> Self {
        if self.len == 0 {
            return self.clone();
        }
        let k = k % self.len;
        Self::from_bits((0..self.len).map(|t| {
            let src = (t + self.len - k) % self.len;
            self.get(src)
        }))
    }

    /// Iterates over the bits in stream order (what a serializer emits to
    /// the optical AND gate, Section IV-B).
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |t| self.get(t))
    }

    /// Raw packed words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.len, other.len, "stream length mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            len: self.len,
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for PackedBitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedBitstream[{}; ", self.len)?;
        let shown = self.len.min(64);
        for t in 0..shown {
            write!(f, "{}", u8::from(self.get(t)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Asserts the storage invariant: exactly `ceil(len/64)` words, and
    /// every bit at position ≥ `len` in the final word is zero.
    fn assert_tail_clear(s: &PackedBitstream) {
        assert_eq!(
            s.words().len(),
            s.len().div_ceil(WORD_BITS),
            "word count for len {}",
            s.len()
        );
        let rem = s.len() % WORD_BITS;
        if rem != 0 {
            let last = *s.words().last().unwrap();
            assert_eq!(
                last & !((1u64 << rem) - 1),
                0,
                "bits leak past len {} (last word {last:#018x})",
                s.len()
            );
        }
    }

    #[test]
    fn tail_invariant_holds_at_every_boundary_length() {
        // Fuzzed lengths 0..=256 cover the 63/64/65 and 127/128/129 word
        // boundaries the packing arithmetic pivots on.
        for len in 0..=256usize {
            let ones = PackedBitstream::ones(len);
            assert_eq!(ones.count_ones(), len, "ones({len})");
            assert_tail_clear(&ones);

            let from = PackedBitstream::from_bits((0..len).map(|_| true));
            assert_eq!(from.count_ones(), len, "from_bits all-true len {len}");
            assert_tail_clear(&from);
            assert_eq!(from, ones, "from_bits(true;{len}) == ones({len})");

            let complement = PackedBitstream::zeros(len).not();
            assert_eq!(complement.count_ones(), len, "not(zeros({len}))");
            assert_tail_clear(&complement);

            let xnor = PackedBitstream::zeros(len).xnor(&PackedBitstream::zeros(len));
            assert_eq!(xnor.count_ones(), len, "xnor tail at len {len}");
            assert_tail_clear(&xnor);
        }
    }

    proptest! {
        #[test]
        fn prop_tail_never_leaks(len in 0usize..=256, seed in 0u64..=(u64::MAX - 1)) {
            // A cheap deterministic bit pattern from the seed.
            let mut state = seed | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state & 1 == 1
            };
            let bits: Vec<bool> = (0..len).map(|_| next()).collect();
            let s = PackedBitstream::from_bits(bits.iter().copied());
            let expected = bits.iter().filter(|&&b| b).count();
            prop_assert_eq!(s.len(), len);
            prop_assert_eq!(s.count_ones(), expected);
            assert_tail_clear(&s);

            // Every operator preserves the invariant and the complement
            // identity count(s) + count(!s) == len.
            let n = s.not();
            assert_tail_clear(&n);
            prop_assert_eq!(s.count_ones() + n.count_ones(), len);
            assert_tail_clear(&s.and(&n));
            prop_assert_eq!(s.and(&n).count_ones(), 0);
            assert_tail_clear(&s.or(&n));
            prop_assert_eq!(s.or(&n).count_ones(), len);
            assert_tail_clear(&s.xor(&n));
            assert_tail_clear(&s.xnor(&s));
            prop_assert_eq!(s.xnor(&s).count_ones(), len);
            let r = s.rotate_left(seed as usize % (len + 1));
            assert_tail_clear(&r);
            prop_assert_eq!(r.count_ones(), expected);
        }
    }

    #[test]
    fn zeros_and_ones_counts() {
        assert_eq!(PackedBitstream::zeros(100).count_ones(), 0);
        assert_eq!(PackedBitstream::ones(100).count_ones(), 100);
        assert_eq!(PackedBitstream::ones(64).count_ones(), 64);
        assert_eq!(PackedBitstream::ones(65).count_ones(), 65);
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits: Vec<bool> = (0..130).map(|t| t % 3 == 0).collect();
        let s = PackedBitstream::from_bits(bits.iter().copied());
        assert_eq!(s.len(), 130);
        for (t, &b) in bits.iter().enumerate() {
            assert_eq!(s.get(t), b, "bit {t}");
        }
    }

    #[test]
    fn set_get() {
        let mut s = PackedBitstream::zeros(70);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(69, true);
        assert_eq!(s.count_ones(), 4);
        s.set(63, false);
        assert_eq!(s.count_ones(), 3);
        assert!(!s.get(63));
    }

    #[test]
    fn and_is_multiplication_of_example_from_paper() {
        // Fig. 3: I = 4/8, W = 6/8, overlap chosen so A = 3/8.
        let i = PackedBitstream::from_bits([true, false, true, false, true, false, true, false]);
        let w = PackedBitstream::from_bits([true, true, true, true, true, true, false, false]);
        let a = i.and(&w);
        assert_eq!(a.count_ones(), 3);
        assert!((a.unipolar_value() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn not_complements_value() {
        let s = PackedBitstream::from_bits((0..100).map(|t| t < 30));
        let n = s.not();
        assert_eq!(n.count_ones(), 70);
        assert_eq!(n.len(), 100);
    }

    #[test]
    fn xnor_tail_is_masked() {
        let a = PackedBitstream::zeros(10);
        let b = PackedBitstream::zeros(10);
        let x = a.xnor(&b);
        // XNOR of zeros is all ones, but only within the 10-bit length.
        assert_eq!(x.count_ones(), 10);
    }

    #[test]
    fn rotate_left_preserves_count() {
        let s = PackedBitstream::from_bits((0..77).map(|t| t % 5 == 0));
        let ones = s.count_ones();
        for k in [0, 1, 13, 76, 77, 200] {
            let r = s.rotate_left(k);
            assert_eq!(r.count_ones(), ones, "k={k}");
        }
        // Position check: bit at t moves to (t + k) % len.
        let r = s.rotate_left(3);
        for t in 0..77 {
            assert_eq!(r.get((t + 3) % 77), s.get(t));
        }
    }

    #[test]
    fn overlap_matches_and_popcount() {
        let a = PackedBitstream::from_bits((0..200).map(|t| t % 2 == 0));
        let b = PackedBitstream::from_bits((0..200).map(|t| t % 3 == 0));
        assert_eq!(a.overlap(&b), a.and(&b).count_ones());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let a = PackedBitstream::zeros(8);
        let b = PackedBitstream::zeros(9);
        let _ = a.and(&b);
    }

    #[test]
    fn bipolar_value_range() {
        assert_eq!(PackedBitstream::zeros(16).bipolar_value(), -1.0);
        assert_eq!(PackedBitstream::ones(16).bipolar_value(), 1.0);
    }
}
