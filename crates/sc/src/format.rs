//! Value formats for stochastic numbers.
//!
//! SCONNA uses the **unipolar** format: a `B`-bit unsigned integer `n` is
//! encoded as a stream of `L = 2^B` bits containing exactly `n` ones, i.e.
//! the value `n / 2^B ∈ [0, 1)`. Weights carry a separate sign bit that the
//! filter MRRs use to steer products to the positive or negative
//! accumulator (Section IV-A), so magnitude streams are always unipolar.

use serde::{Deserialize, Serialize};

/// Precision descriptor: `B` bits of binary precision, stream length
/// `L = 2^B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Precision {
    bits: u8,
}

impl Precision {
    /// Creates a precision of `bits` binary bits.
    ///
    /// # Panics
    /// Panics if `bits == 0` or `bits > 16` (streams longer than 65536 bits
    /// are outside any regime the paper considers and would make LUTs
    /// enormous).
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "precision must be in 1..=16, got {bits}"
        );
        Self { bits }
    }

    /// The paper's operating point: 8-bit integer quantization, 256-bit
    /// streams.
    pub const B8: Self = Self { bits: 8 };

    /// 4-bit precision (the operating point the analog baselines are stuck
    /// at).
    pub const B4: Self = Self { bits: 4 };

    /// Number of binary bits `B`.
    #[inline]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Stream length `L = 2^B`.
    #[inline]
    pub fn stream_len(self) -> usize {
        1usize << self.bits
    }

    /// Largest representable magnitude `2^B - 1`.
    #[inline]
    pub fn max_value(self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Checks that `n` is representable at this precision.
    #[inline]
    pub fn contains(self, n: u32) -> bool {
        n <= self.max_value()
    }
}

/// A unipolar stochastic value: integer numerator over stream length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unipolar {
    /// Number of ones in the stream.
    pub numerator: u32,
    /// Precision (denominator is `precision.stream_len()`).
    pub precision: Precision,
}

impl Unipolar {
    /// Creates a unipolar value `numerator / 2^B`.
    ///
    /// # Panics
    /// Panics if the numerator exceeds the stream length (values above 1.0
    /// are not representable).
    pub fn new(numerator: u32, precision: Precision) -> Self {
        assert!(
            numerator as usize <= precision.stream_len(),
            "numerator {numerator} exceeds stream length {}",
            precision.stream_len()
        );
        Self {
            numerator,
            precision,
        }
    }

    /// Real value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.numerator as f64 / self.precision.stream_len() as f64
    }

    /// Quantizes a real value in `[0, 1]` to the nearest representable
    /// unipolar numerator (round-to-nearest, clamped).
    pub fn quantize(v: f64, precision: Precision) -> Self {
        let l = precision.stream_len() as f64;
        let n = (v * l).round().clamp(0.0, l) as u32;
        Self {
            numerator: n,
            precision,
        }
    }
}

/// A signed stochastic operand: unipolar magnitude plus sign bit, matching
/// the paper's weight representation (`W` stream + sign bit driving the
/// filter MRR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignMagnitude {
    /// Magnitude in unipolar format.
    pub magnitude: Unipolar,
    /// True for negative values; the filter MRR steers the product stream
    /// onto the OWA' (negative) waveguide when set.
    pub negative: bool,
}

impl SignMagnitude {
    /// Creates a signed value from an integer in
    /// `[-(2^B - 1), 2^B - 1]`.
    ///
    /// # Panics
    /// Panics if the magnitude is not representable at `precision`.
    pub fn from_int(v: i32, precision: Precision) -> Self {
        let mag = v.unsigned_abs();
        assert!(
            precision.contains(mag),
            "magnitude {mag} not representable at {} bits",
            precision.bits()
        );
        Self {
            magnitude: Unipolar::new(mag, precision),
            negative: v < 0,
        }
    }

    /// Signed real value in `[-1, 1]`.
    pub fn value(self) -> f64 {
        let m = self.magnitude.value();
        if self.negative {
            -m
        } else {
            m
        }
    }

    /// Signed integer numerator.
    pub fn signed_numerator(self) -> i32 {
        let m = self.magnitude.numerator as i32;
        if self.negative {
            -m
        } else {
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basics() {
        let p = Precision::B8;
        assert_eq!(p.bits(), 8);
        assert_eq!(p.stream_len(), 256);
        assert_eq!(p.max_value(), 255);
        assert!(p.contains(255));
        assert!(!p.contains(256));
    }

    #[test]
    #[should_panic(expected = "precision must be in 1..=16")]
    fn precision_zero_rejected() {
        let _ = Precision::new(0);
    }

    #[test]
    fn unipolar_value() {
        let u = Unipolar::new(64, Precision::B8);
        assert!((u.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unipolar_quantize_round_trip() {
        for n in 0..=256u32 {
            let u = Unipolar::new(n, Precision::B8);
            let q = Unipolar::quantize(u.value(), Precision::B8);
            assert_eq!(q.numerator, n);
        }
    }

    #[test]
    fn quantize_clamps() {
        assert_eq!(Unipolar::quantize(-0.5, Precision::B4).numerator, 0);
        assert_eq!(Unipolar::quantize(2.0, Precision::B4).numerator, 16);
    }

    #[test]
    fn sign_magnitude_roundtrip() {
        let s = SignMagnitude::from_int(-127, Precision::B8);
        assert!(s.negative);
        assert_eq!(s.signed_numerator(), -127);
        assert!((s.value() + 127.0 / 256.0).abs() < 1e-12);

        let p = SignMagnitude::from_int(42, Precision::B8);
        assert!(!p.negative);
        assert_eq!(p.signed_numerator(), 42);
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn sign_magnitude_overflow_rejected() {
        let _ = SignMagnitude::from_int(256, Precision::B8);
    }
}
