//! A small trainable CNN — the in-repo stand-in for the paper's
//! pretrained ImageNet models in the Table V accuracy experiment
//! (substitution documented in DESIGN.md §2.3).
//!
//! Topology: conv3×3(pad 1) → ReLU → maxpool2 → conv3×3(pad 1) → ReLU →
//! maxpool2 → FC → logits, trained with plain SGD on the synthetic
//! dataset, then post-training-quantized into a [`QuantizedNetwork`] that
//! runs on any [`crate::engine::VdpEngine`].

use crate::dataset::Sample;
use crate::fp;
use crate::layers::{MaxPool2d, QConv2d, QFc};
use crate::network::{QLayer, QuantizedNetwork};
use crate::quant::{ActivationQuant, Requant, WeightQuant};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Architecture hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SmallCnnConfig {
    /// Input side length (must be divisible by 4).
    pub input_size: usize,
    /// Channels after conv1.
    pub channels1: usize,
    /// Channels after conv2.
    pub channels2: usize,
    /// Output classes.
    pub classes: usize,
}

impl Default for SmallCnnConfig {
    fn default() -> Self {
        Self {
            input_size: 16,
            channels1: 8,
            channels2: 16,
            classes: 8,
        }
    }
}

/// The float-precision model with its trainable parameters.
#[derive(Debug, Clone)]
pub struct SmallCnn {
    /// Architecture.
    pub cfg: SmallCnnConfig,
    w1: Tensor<f32>,
    b1: Vec<f32>,
    w2: Tensor<f32>,
    b2: Vec<f32>,
    wf: Tensor<f32>,
    bf: Vec<f32>,
}

/// Intermediate activations kept for backprop.
struct Caches {
    x: Tensor<f32>,
    z1: Tensor<f32>,
    a1: Tensor<f32>,
    p1: Tensor<f32>,
    arg1: Vec<usize>,
    z2: Tensor<f32>,
    a2: Tensor<f32>,
    p2: Tensor<f32>,
    arg2: Vec<usize>,
    logits: Vec<f32>,
}

impl SmallCnn {
    /// He-initialized network.
    ///
    /// # Panics
    /// Panics if the input size is not divisible by 4.
    pub fn new(cfg: SmallCnnConfig, seed: u64) -> Self {
        assert!(
            cfg.input_size.is_multiple_of(4),
            "input size must be divisible by 4"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let init = |dims: &[usize], fan_in: usize, rng: &mut StdRng| {
            let s = (2.0 / fan_in as f32).sqrt();
            Tensor::from_fn(dims, |_| rng.gen_range(-s..s))
        };
        let fc_in = cfg.channels2 * (cfg.input_size / 4) * (cfg.input_size / 4);
        let w1 = init(&[cfg.channels1, 1, 3, 3], 9, &mut rng);
        let w2 = init(
            &[cfg.channels2, cfg.channels1, 3, 3],
            9 * cfg.channels1,
            &mut rng,
        );
        let wf = init(&[cfg.classes, fc_in], fc_in, &mut rng);
        Self {
            cfg,
            w1,
            b1: vec![0.0; cfg.channels1],
            w2,
            b2: vec![0.0; cfg.channels2],
            wf,
            bf: vec![0.0; cfg.classes],
        }
    }

    fn forward_cached(&self, x: &Tensor<f32>) -> Caches {
        let z1 = fp::conv_forward(x, &self.w1, &self.b1, 1);
        let a1 = fp::relu_forward(&z1);
        let (p1, arg1) = fp::maxpool2_forward(&a1);
        let z2 = fp::conv_forward(&p1, &self.w2, &self.b2, 1);
        let a2 = fp::relu_forward(&z2);
        let (p2, arg2) = fp::maxpool2_forward(&a2);
        let logits = fp::fc_forward(p2.as_slice(), &self.wf, &self.bf);
        Caches {
            x: x.clone(),
            z1,
            a1,
            p1,
            arg1,
            z2,
            a2,
            p2,
            arg2,
            logits,
        }
    }

    /// Float-precision logits for one image.
    pub fn logits(&self, x: &Tensor<f32>) -> Vec<f32> {
        self.forward_cached(x).logits
    }

    /// Float-precision prediction.
    pub fn predict(&self, x: &Tensor<f32>) -> usize {
        crate::layers::argmax(&self.logits(x))
    }

    /// Float-precision top-1 accuracy.
    pub fn accuracy(&self, samples: &[Sample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let ok = samples
            .iter()
            .filter(|s| self.predict(&s.image) == s.label)
            .count();
        ok as f64 / samples.len() as f64
    }

    /// One SGD step on one sample; returns the loss.
    pub fn sgd_step(&mut self, sample: &Sample, lr: f32) -> f32 {
        let c = self.forward_cached(&sample.image);
        let (loss, grad_logits) = fp::softmax_cross_entropy(&c.logits, sample.label);

        let (gp2, gwf, gbf) = fp::fc_backward(c.p2.as_slice(), &self.wf, &grad_logits);
        let gp2 = Tensor::from_vec(c.p2.dims(), gp2);
        let ga2 = fp::maxpool2_backward(c.a2.dims(), &c.arg2, &gp2);
        let gz2 = fp::relu_backward(&c.z2, &ga2);
        let (gp1, gw2, gb2) = fp::conv_backward(&c.p1, &self.w2, &gz2, 1);
        let ga1 = fp::maxpool2_backward(c.a1.dims(), &c.arg1, &gp1);
        let gz1 = fp::relu_backward(&c.z1, &ga1);
        let (_, gw1, gb1) = fp::conv_backward(&c.x, &self.w1, &gz1, 1);

        apply(&mut self.w1, &gw1, lr);
        apply_vec(&mut self.b1, &gb1, lr);
        apply(&mut self.w2, &gw2, lr);
        apply_vec(&mut self.b2, &gb2, lr);
        apply(&mut self.wf, &gwf, lr);
        apply_vec(&mut self.bf, &gbf, lr);
        loss
    }

    /// Trains for `epochs` full passes over `samples`; returns the mean
    /// loss of the final epoch.
    pub fn train(&mut self, samples: &[Sample], epochs: usize, lr: f32) -> f32 {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        let mut last = 0.0;
        for _ in 0..epochs {
            last = samples.iter().map(|s| self.sgd_step(s, lr)).sum::<f32>() / samples.len() as f32;
        }
        last
    }

    /// Post-training quantization: calibrates activation ranges on
    /// `calibration` samples and emits the int-`bits` network.
    ///
    /// # Panics
    /// Panics if the calibration set is empty.
    pub fn quantize(&self, calibration: &[Sample], bits: u8) -> QuantizedNetwork {
        assert!(!calibration.is_empty(), "calibration set must be non-empty");
        let mut a1_max = 0.0f32;
        let mut a2_max = 0.0f32;
        for s in calibration {
            let c = self.forward_cached(&s.image);
            a1_max = a1_max.max(c.a1.max_abs());
            a2_max = a2_max.max(c.a2.max_abs());
        }
        let input_q = ActivationQuant::fit(1.0, bits);
        let act1_q = ActivationQuant::fit(a1_max.max(1e-6), bits);
        let act2_q = ActivationQuant::fit(a2_max.max(1e-6), bits);
        let wq1 = WeightQuant::fit(self.w1.max_abs().max(1e-6), bits);
        let wq2 = WeightQuant::fit(self.w2.max_abs().max(1e-6), bits);
        let wqf = WeightQuant::fit(self.wf.max_abs().max(1e-6), bits);

        QuantizedNetwork {
            input_quant: input_q,
            layers: vec![
                QLayer::Conv(QConv2d {
                    name: "conv1".into(),
                    weights: wq1.quantize_tensor(&self.w1),
                    bias: self
                        .b1
                        .iter()
                        .map(|&b| (b / (input_q.scale * wq1.scale)) as f64)
                        .collect(),
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    requant: Requant::new(input_q, wq1, act1_q),
                }),
                QLayer::MaxPool(MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                }),
                QLayer::Conv(QConv2d {
                    name: "conv2".into(),
                    weights: wq2.quantize_tensor(&self.w2),
                    bias: self
                        .b2
                        .iter()
                        .map(|&b| (b / (act1_q.scale * wq2.scale)) as f64)
                        .collect(),
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    requant: Requant::new(act1_q, wq2, act2_q),
                }),
                QLayer::MaxPool(MaxPool2d {
                    kernel: 2,
                    stride: 2,
                    padding: 0,
                }),
                QLayer::Fc(QFc {
                    name: "fc".into(),
                    weights: wqf.quantize_tensor(&self.wf),
                    bias: self.bf.clone(),
                    dequant: act2_q.scale * wqf.scale,
                }),
            ],
        }
    }
}

fn apply(param: &mut Tensor<f32>, grad: &Tensor<f32>, lr: f32) {
    for (p, g) in param.as_mut_slice().iter_mut().zip(grad.as_slice()) {
        *p -= lr * g;
    }
}

fn apply_vec(param: &mut [f32], grad: &[f32], lr: f32) {
    for (p, g) in param.iter_mut().zip(grad) {
        *p -= lr * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::engine::ExactEngine;

    fn small_cfg() -> SmallCnnConfig {
        SmallCnnConfig {
            input_size: 12,
            channels1: 6,
            channels2: 12,
            classes: 6,
        }
    }

    #[test]
    fn untrained_accuracy_is_chance_level() {
        let data = SyntheticDataset::new(6, 12, 0.1, 11);
        let test = data.batch(10, 1);
        let net = SmallCnn::new(small_cfg(), 0);
        let acc = net.accuracy(&test);
        assert!(acc < 0.6, "untrained accuracy {acc} suspiciously high");
    }

    #[test]
    fn training_reaches_high_accuracy() {
        let data = SyntheticDataset::new(6, 12, 0.15, 11);
        let train = data.batch(25, 1);
        let test = data.batch(10, 2);
        let mut net = SmallCnn::new(small_cfg(), 0);
        let loss = net.train(&train, 10, 0.05);
        let acc = net.accuracy(&test);
        assert!(acc > 0.85, "trained accuracy {acc}, final loss {loss}");
    }

    #[test]
    fn loss_decreases_during_training() {
        let data = SyntheticDataset::new(6, 12, 0.15, 3);
        let train = data.batch(10, 5);
        let mut net = SmallCnn::new(small_cfg(), 0);
        let first = net.train(&train, 1, 0.05);
        let later = net.train(&train, 3, 0.05);
        assert!(later < first, "loss must fall: {first} -> {later}");
    }

    #[test]
    fn quantized_network_tracks_fp_accuracy() {
        let data = SyntheticDataset::new(6, 12, 0.15, 11);
        let train = data.batch(25, 1);
        let test = data.batch(10, 2);
        let mut net = SmallCnn::new(small_cfg(), 0);
        net.train(&train, 10, 0.05);
        let fp_acc = net.accuracy(&test);
        let qnet = net.quantize(&train, 8);
        let q_acc = qnet.accuracy(&test, &ExactEngine);
        assert!(
            (fp_acc - q_acc).abs() <= 0.05,
            "fp {fp_acc} vs int8 {q_acc}"
        );
    }

    #[test]
    fn four_bit_quantization_degrades_more() {
        let data = SyntheticDataset::new(6, 12, 0.15, 11);
        let train = data.batch(25, 1);
        let test = data.batch(10, 2);
        let mut net = SmallCnn::new(small_cfg(), 0);
        net.train(&train, 10, 0.05);
        let q8 = net.quantize(&train, 8).accuracy(&test, &ExactEngine);
        let q4 = net.quantize(&train, 4).accuracy(&test, &ExactEngine);
        assert!(q4 <= q8 + 0.05, "4-bit {q4} should not beat 8-bit {q8}");
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn odd_input_size_rejected() {
        let _ = SmallCnn::new(
            SmallCnnConfig {
                input_size: 10,
                ..small_cfg()
            },
            0,
        );
    }
}
