#![allow(clippy::needless_range_loop)] // index loops span several parallel slices

//! Floating-point reference operators: forward passes for quantization
//! calibration / parity tests, and backward passes for training the small
//! CNN. Stride-1 convolution only — the small CNN downsamples with
//! pooling, and the big models run through the quantized path.
//!
//! Convolution (forward and backward) runs through **im2col + GEMM**: the
//! padded patch matrix is gathered once, and all three convolution
//! contractions — output, weight gradient, input gradient — become dense
//! matrix products over contiguous slices. This replaces per-element
//! indexed accesses (each carrying a bounds assert) with vectorizable
//! inner loops, which is what makes small-CNN training fast enough to
//! test routinely.

use crate::tensor::Tensor;

/// Gathers the stride-1 zero-padded im2col patch matrix: one row of
/// length `C·K·K` (in `(c, ky, kx)` order) per output position, rows in
/// `(oy, ox)` row-major order. Returns `(col, h_out, w_out)`.
fn im2col(input: &Tensor<f32>, kh: usize, kw: usize, pad: usize) -> (Vec<f32>, usize, usize) {
    let [c_in, h, w] = *input.dims() else {
        panic!("conv input must be rank 3, got {:?}", input.dims());
    };
    let h_out = h + 2 * pad - kh + 1;
    let w_out = w + 2 * pad - kw + 1;
    let s = c_in * kh * kw;
    let x = input.as_slice();
    let mut col = vec![0.0f32; h_out * w_out * s];
    for oy in 0..h_out {
        for ox in 0..w_out {
            let row = &mut col[(oy * w_out + ox) * s..(oy * w_out + ox + 1) * s];
            let mut idx = 0;
            for c in 0..c_in {
                for ky in 0..kh {
                    let iy = oy + ky;
                    if iy < pad || iy - pad >= h {
                        idx += kw;
                        continue;
                    }
                    let src = (c * h + (iy - pad)) * w;
                    for kx in 0..kw {
                        let ix = ox + kx;
                        if ix >= pad && ix - pad < w {
                            row[idx] = x[src + ix - pad];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
    (col, h_out, w_out)
}

/// Stride-1 zero-padded convolution forward: input `[C, H, W]`, weights
/// `[L, C, K, K]`, bias `[L]` → output `[L, H', W']`.
///
/// # Panics
/// Panics on shape mismatches.
pub fn conv_forward(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: &[f32],
    pad: usize,
) -> Tensor<f32> {
    let [c_in, _, _] = *input.dims() else {
        panic!("conv input must be rank 3, got {:?}", input.dims());
    };
    let [l, c_w, kh, kw] = *weights.dims() else {
        panic!("conv weights must be rank 4, got {:?}", weights.dims());
    };
    assert_eq!(c_in, c_w, "channel mismatch");
    assert_eq!(bias.len(), l, "bias length mismatch");
    let (col, h_out, w_out) = im2col(input, kh, kw, pad);
    let s = c_in * kh * kw;
    let p_total = h_out * w_out;
    let wd = weights.as_slice();
    let mut out = Tensor::<f32>::zeros(&[l, h_out, w_out]);
    let od = out.as_mut_slice();
    for pix in 0..p_total {
        let crow = &col[pix * s..(pix + 1) * s];
        for k in 0..l {
            let wrow = &wd[k * s..(k + 1) * s];
            let mut acc = bias[k];
            for (cv, wv) in crow.iter().zip(wrow) {
                acc += cv * wv;
            }
            od[k * p_total + pix] = acc;
        }
    }
    out
}

/// Convolution backward: returns `(grad_input, grad_weights, grad_bias)`.
pub fn conv_backward(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    grad_out: &Tensor<f32>,
    pad: usize,
) -> (Tensor<f32>, Tensor<f32>, Vec<f32>) {
    let [c_in, h, w] = *input.dims() else {
        panic!("rank")
    };
    let [l, _, kh, kw] = *weights.dims() else {
        panic!("rank")
    };
    let [lo, h_out, w_out] = *grad_out.dims() else {
        panic!("rank")
    };
    assert_eq!(l, lo, "kernel count mismatch");

    let (col, ch_out, cw_out) = im2col(input, kh, kw, pad);
    assert_eq!((ch_out, cw_out), (h_out, w_out), "grad_out shape mismatch");
    let s = c_in * kh * kw;
    let p_total = h_out * w_out;
    let go = grad_out.as_slice();
    let wd = weights.as_slice();

    let mut grad_w = Tensor::<f32>::zeros(weights.dims());
    let mut grad_b = vec![0.0f32; l];
    // gcol[pix][s] = Σ_k g[k][pix] · w[k][s] — the input gradient in
    // im2col coordinates, scattered back by col2im below.
    let mut gcol = vec![0.0f32; p_total * s];

    for k in 0..l {
        let go_row = &go[k * p_total..(k + 1) * p_total];
        let wrow = &wd[k * s..(k + 1) * s];
        let gw_row = &mut grad_w.as_mut_slice()[k * s..(k + 1) * s];
        for (pix, &g) in go_row.iter().enumerate() {
            // ReLU upstream makes grad_out sparse; skipping zeros keeps
            // the old fast path for dead units.
            if g == 0.0 {
                continue;
            }
            grad_b[k] += g;
            let crow = &col[pix * s..(pix + 1) * s];
            let grow = &mut gcol[pix * s..(pix + 1) * s];
            for idx in 0..s {
                gw_row[idx] += g * crow[idx];
                grow[idx] += g * wrow[idx];
            }
        }
    }

    // col2im: scatter-add the patch-coordinate gradients back to input
    // coordinates.
    let mut grad_in = Tensor::<f32>::zeros(&[c_in, h, w]);
    let gi = grad_in.as_mut_slice();
    for oy in 0..h_out {
        for ox in 0..w_out {
            let grow = &gcol[(oy * w_out + ox) * s..(oy * w_out + ox + 1) * s];
            let mut idx = 0;
            for c in 0..c_in {
                for ky in 0..kh {
                    let iy = oy + ky;
                    if iy < pad || iy - pad >= h {
                        idx += kw;
                        continue;
                    }
                    let dst = (c * h + (iy - pad)) * w;
                    for kx in 0..kw {
                        let ix = ox + kx;
                        if ix >= pad && ix - pad < w {
                            gi[dst + ix - pad] += grow[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
    (grad_in, grad_w, grad_b)
}

/// ReLU forward.
pub fn relu_forward(x: &Tensor<f32>) -> Tensor<f32> {
    x.map(|v| v.max(0.0))
}

/// ReLU backward: gates the gradient by the forward input's sign.
pub fn relu_backward(x: &Tensor<f32>, grad_out: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(x.dims(), grad_out.dims(), "shape mismatch");
    Tensor::from_fn(x.dims(), |i| {
        if x.as_slice()[i] > 0.0 {
            grad_out.as_slice()[i]
        } else {
            0.0
        }
    })
}

/// 2×2 stride-2 max-pool forward; also returns the argmax flat indices
/// for the backward pass.
pub fn maxpool2_forward(x: &Tensor<f32>) -> (Tensor<f32>, Vec<usize>) {
    let [c, h, w] = *x.dims() else { panic!("rank") };
    assert!(h % 2 == 0 && w % 2 == 0, "maxpool2 needs even spatial dims");
    let (h2, w2) = (h / 2, w / 2);
    let mut out = Tensor::<f32>::zeros(&[c, h2, w2]);
    let mut arg = vec![0usize; c * h2 * w2];
    for ci in 0..c {
        for oy in 0..h2 {
            for ox in 0..w2 {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let (y, x_) = (oy * 2 + dy, ox * 2 + dx);
                        let v = x.at3(ci, y, x_);
                        if v > best {
                            best = v;
                            best_idx = (ci * h + y) * w + x_;
                        }
                    }
                }
                out.set3(ci, oy, ox, best);
                arg[(ci * h2 + oy) * w2 + ox] = best_idx;
            }
        }
    }
    (out, arg)
}

/// 2×2 max-pool backward: routes gradients to the argmax positions.
pub fn maxpool2_backward(
    input_dims: &[usize],
    argmax: &[usize],
    grad_out: &Tensor<f32>,
) -> Tensor<f32> {
    let mut grad_in = Tensor::<f32>::zeros(input_dims);
    for (i, &src) in argmax.iter().enumerate() {
        grad_in.as_mut_slice()[src] += grad_out.as_slice()[i];
    }
    grad_in
}

/// Fully-connected forward: `y = W x + b` with `W: [out, in]`.
pub fn fc_forward(x: &[f32], weights: &Tensor<f32>, bias: &[f32]) -> Vec<f32> {
    let [out_f, in_f] = *weights.dims() else {
        panic!("rank")
    };
    assert_eq!(x.len(), in_f, "fc input length mismatch");
    assert_eq!(bias.len(), out_f, "fc bias length mismatch");
    (0..out_f)
        .map(|o| {
            let row = &weights.as_slice()[o * in_f..(o + 1) * in_f];
            row.iter().zip(x).map(|(w, v)| w * v).sum::<f32>() + bias[o]
        })
        .collect()
}

/// Fully-connected backward: returns `(grad_x, grad_w, grad_b)`.
pub fn fc_backward(
    x: &[f32],
    weights: &Tensor<f32>,
    grad_out: &[f32],
) -> (Vec<f32>, Tensor<f32>, Vec<f32>) {
    let [out_f, in_f] = *weights.dims() else {
        panic!("rank")
    };
    let mut grad_x = vec![0.0f32; in_f];
    let mut grad_w = Tensor::<f32>::zeros(&[out_f, in_f]);
    for o in 0..out_f {
        let g = grad_out[o];
        let row = &weights.as_slice()[o * in_f..(o + 1) * in_f];
        let grow = &mut grad_w.as_mut_slice()[o * in_f..(o + 1) * in_f];
        for i in 0..in_f {
            grad_x[i] += g * row[i];
            grow[i] = g * x[i];
        }
    }
    (grad_x, grad_w, grad_out.to_vec())
}

/// Softmax + cross-entropy: returns `(loss, grad_logits)` for one sample.
pub fn softmax_cross_entropy(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    assert!(label < logits.len(), "label out of range");
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let probs: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
    let loss = -probs[label].max(1e-12).ln();
    let grad = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| if i == label { p - 1.0 } else { p })
        .collect();
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_tensor(dims: &[usize], rng: &mut StdRng) -> Tensor<f32> {
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0f32..1.0))
    }

    #[test]
    fn conv_forward_identity() {
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]);
        let out = conv_forward(&input, &w, &[1.0], 0);
        assert_eq!(out.as_slice(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn conv_gradient_check() {
        // Numerical vs analytic gradients on a tiny problem.
        let mut rng = StdRng::seed_from_u64(42);
        let input = rand_tensor(&[2, 4, 4], &mut rng);
        let w = rand_tensor(&[3, 2, 3, 3], &mut rng);
        let bias = vec![0.1, -0.2, 0.3];
        let pad = 1;

        // Loss = sum of outputs (grad_out = ones).
        let out = conv_forward(&input, &w, &bias, pad);
        let grad_out = Tensor::from_fn(out.dims(), |_| 1.0f32);
        let (gi, gw, gb) = conv_backward(&input, &w, &grad_out, pad);

        let eps = 1e-3f32;
        let loss = |inp: &Tensor<f32>, wt: &Tensor<f32>, b: &[f32]| -> f32 {
            conv_forward(inp, wt, b, pad).as_slice().iter().sum()
        };
        // Check a handful of weight coordinates.
        for &idx in &[0usize, 7, 23, 53] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            let ana = gw.as_slice()[idx];
            assert!((num - ana).abs() < 0.05, "w[{idx}]: num {num} ana {ana}");
        }
        // Check input coordinates.
        for &idx in &[0usize, 5, 17, 31] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let num = (loss(&ip, &w, &bias) - loss(&im, &w, &bias)) / (2.0 * eps);
            let ana = gi.as_slice()[idx];
            assert!((num - ana).abs() < 0.05, "x[{idx}]: num {num} ana {ana}");
        }
        // Bias gradient = number of output positions.
        assert!((gb[0] - out.dims()[1] as f32 * out.dims()[2] as f32).abs() < 1e-3);
    }

    #[test]
    fn relu_gates_gradient() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let g = Tensor::from_vec(&[4], vec![1.0, 1.0, 1.0, 1.0]);
        let y = relu_forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(relu_backward(&x, &g).as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn maxpool_roundtrip() {
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let (y, arg) = maxpool2_forward(&x);
        assert_eq!(y.as_slice(), &[5.0]);
        assert_eq!(arg, vec![1]);
        let g = maxpool2_backward(&[1, 2, 2], &arg, &Tensor::from_vec(&[1, 1, 1], vec![2.0]));
        assert_eq!(g.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn fc_gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let w = rand_tensor(&[3, 6], &mut rng);
        let b = vec![0.0f32; 3];
        let grad_out = vec![1.0f32, -2.0, 0.5];
        let (gx, gw, gb) = fc_backward(&x, &w, &grad_out);

        let eps = 1e-3f32;
        let loss = |x_: &[f32], w_: &Tensor<f32>| -> f32 {
            fc_forward(x_, w_, &b)
                .iter()
                .zip(&grad_out)
                .map(|(y, g)| y * g)
                .sum()
        };
        for idx in 0..6 {
            let mut xp = x.clone();
            xp[idx] += eps;
            let mut xm = x.clone();
            xm[idx] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - gx[idx]).abs() < 0.02, "x[{idx}]");
        }
        for idx in 0..18 {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - gw.as_slice()[idx]).abs() < 0.02, "w[{idx}]");
        }
        assert_eq!(gb, grad_out);
    }

    #[test]
    fn softmax_ce_properties() {
        let (loss, grad) = softmax_cross_entropy(&[1.0, 2.0, 3.0], 2);
        assert!(loss > 0.0);
        // Gradient sums to zero and is negative only at the label.
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(grad[2] < 0.0 && grad[0] > 0.0 && grad[1] > 0.0);
        // Confident correct prediction → low loss.
        let (low, _) = softmax_cross_entropy(&[0.0, 20.0], 1);
        assert!(low < 1e-6);
    }
}
